//! Cross-crate integration tests: mapper → overlay → NoC/LUT vector units
//! → engine, over every Table II configuration.

use nova::engine::{evaluate, ApproximatorKind};
use nova::{Mapper, NovaOverlay, VectorUnit};
use nova_accel::AcceleratorConfig;
use nova_approx::Activation;
use nova_fixed::{Fixed, Rounding, Q4_12};
use nova_synth::TechModel;
use nova_workloads::bert::BertConfig;

fn batch(routers: usize, neurons: usize, seed: f64) -> Vec<Vec<Fixed>> {
    (0..routers)
        .map(|r| {
            (0..neurons)
                .map(|n| {
                    let x = ((r * neurons + n) as f64 * 0.61 + seed).sin() * 6.5;
                    Fixed::from_f64(x, Q4_12, Rounding::NearestEven)
                })
                .collect()
        })
        .collect()
}

/// The full pipeline on every Table II host: compile a mapping, then
/// build *every* approximator kind through the unified `VectorUnit`
/// dispatch and verify bit-identical results across all of them.
#[test]
fn every_host_all_units_agree() {
    let tech = TechModel::cmos22();
    for cfg in AcceleratorConfig::table2() {
        let plan = Mapper::paper_default()
            .compile(
                &[Activation::Exp, Activation::Gelu],
                &tech,
                cfg.nova_routers,
                cfg.frequency_ghz(),
                cfg.router_pitch_mm,
            )
            .expect("paper configs must map");
        let overlay = NovaOverlay::new(&cfg);
        for mapping in &plan.mappings {
            let inputs = batch(cfg.nova_routers, cfg.neurons_per_router, 0.9);
            let mut outputs = Vec::new();
            for kind in ApproximatorKind::all() {
                let mut unit = overlay
                    .unit(&tech, &mapping.table, kind)
                    .expect("dispatched unit must build");
                outputs.push(unit.lookup_batch(&inputs).expect("batch"));
            }
            for (out, kind) in outputs[1..].iter().zip(&ApproximatorKind::all()[1..]) {
                assert_eq!(
                    *out,
                    outputs[0],
                    "{}: {} diverges from NOVA on {}",
                    cfg.name,
                    kind.label(),
                    mapping.activation
                );
            }
            // Spot-check against the table itself.
            assert_eq!(outputs[0][0][0], mapping.table.eval(inputs[0][0]));
        }
    }
}

/// The mapper's NoC multiplier is 2× for 16 breakpoints on every host.
#[test]
fn paper_multiplier_on_every_host() {
    let tech = TechModel::cmos22();
    for cfg in AcceleratorConfig::table2() {
        let plan = Mapper::paper_default()
            .compile(
                &[Activation::Exp],
                &tech,
                cfg.nova_routers,
                cfg.frequency_ghz(),
                cfg.router_pitch_mm,
            )
            .unwrap();
        assert_eq!(plan.noc_clock_multiplier, 2, "{}", cfg.name);
    }
}

/// Fig 8 orderings hold for every (host, model) pair: NOVA < per-neuron <
/// per-core on energy.
#[test]
fn fig8_energy_ordering_everywhere() {
    let hosts = [
        AcceleratorConfig::react(),
        AcceleratorConfig::tpu_v3_like(),
        AcceleratorConfig::tpu_v4_like(),
    ];
    for host in &hosts {
        let seq = host.default_seq_len;
        for model in BertConfig::fig8_benchmarks() {
            let nova = evaluate(host, &model, seq, ApproximatorKind::NovaNoc).unwrap();
            let pn = evaluate(host, &model, seq, ApproximatorKind::PerNeuronLut).unwrap();
            let pc = evaluate(host, &model, seq, ApproximatorKind::PerCoreLut).unwrap();
            assert!(
                nova.approximator_energy_mj < pn.approximator_energy_mj
                    && pn.approximator_energy_mj < pc.approximator_energy_mj,
                "{} / {}: energies {} {} {}",
                host.name,
                model.name,
                nova.approximator_energy_mj,
                pn.approximator_energy_mj,
                pc.approximator_energy_mj
            );
        }
    }
}

/// Engine consistency: runtime and queries are approximator-independent;
/// only power/energy differ.
#[test]
fn engine_runtime_is_approximator_independent() {
    let host = AcceleratorConfig::tpu_v3_like();
    let m = BertConfig::mobilebert_base();
    let reports: Vec<_> = ApproximatorKind::fig8_contenders()
        .iter()
        .map(|&k| evaluate(&host, &m, 1024, k).unwrap())
        .collect();
    for r in &reports[1..] {
        assert_eq!(r.matmul_cycles, reports[0].matmul_cycles);
        assert_eq!(r.nl_queries, reports[0].nl_queries);
        assert_eq!(r.nl_cycles, reports[0].nl_cycles);
        assert_eq!(r.total_seconds, reports[0].total_seconds);
    }
}

/// Breakpoint ablation through the whole stack: 8-breakpoint tables use a
/// 1× NoC clock and still produce within-tolerance results.
#[test]
fn eight_breakpoint_ablation() {
    let tech = TechModel::cmos22();
    let cfg = AcceleratorConfig::react();
    let plan = Mapper::paper_default()
        .with_segments(8)
        .compile(
            &[Activation::Sigmoid],
            &tech,
            cfg.nova_routers,
            cfg.frequency_ghz(),
            1.0,
        )
        .unwrap();
    assert_eq!(plan.noc_clock_multiplier, 1);
    let overlay = NovaOverlay::with_breakpoints(&cfg, 8);
    let table = &plan.mappings[0].table;
    let mut unit = overlay.vector_unit(&tech, table).unwrap();
    let inputs = batch(cfg.nova_routers, cfg.neurons_per_router, 0.2);
    let out = unit.lookup_batch(&inputs).unwrap();
    for (r, row) in inputs.iter().enumerate() {
        for (n, &x) in row.iter().enumerate() {
            let expect = Activation::Sigmoid.eval(x.to_f64());
            assert!(
                (out[r][n].to_f64() - expect).abs() < 0.05,
                "8-breakpoint sigmoid err at ({r},{n})"
            );
        }
    }
}
