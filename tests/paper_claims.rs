//! The paper's headline claims, asserted end-to-end against the
//! reproduction. Each test names the claim and the paper section it comes
//! from.

use nova::engine::{approximator_power_mw, evaluate, ApproximatorKind};
use nova::NovaOverlay;
use nova_accel::AcceleratorConfig;
use nova_synth::{timing, units, LutSharing, TechModel};
use nova_workloads::bert::BertConfig;
use nova_workloads::{models::TableOneModel, synthetic};

/// Abstract: "up to 37.8× more power-efficient than state-of-the-art
/// hardware approximators" — the Jetson SDP comparison (§V.E.2).
#[test]
fn claim_jetson_power_gap() {
    let tech = TechModel::cmos22();
    let cfg = AcceleratorConfig::jetson_xavier_nx();
    let sdp = approximator_power_mw(&tech, &cfg, ApproximatorKind::NvdlaSdp);
    let nova = approximator_power_mw(&tech, &cfg, ApproximatorKind::NovaNoc);
    let ratio = sdp / nova;
    // The paper measures 37.8×; the calibrated model must land the same
    // order of magnitude with NOVA clearly ahead.
    assert!(ratio > 10.0, "SDP/NOVA power ratio {ratio:.1} (paper 37.8)");
}

/// §I contribution (iii): NOVA is more area- and power-efficient than
/// existing vector units, on average by 3.23× and 16.56×.
#[test]
fn claim_average_area_power_gains() {
    let tech = TechModel::cmos22();
    let mut area_ratios = Vec::new();
    let mut power_ratios = Vec::new();
    for cfg in [
        AcceleratorConfig::react(),
        AcceleratorConfig::tpu_v3_like(),
        AcceleratorConfig::tpu_v4_like(),
    ] {
        let overlay = NovaOverlay::new(&cfg);
        let nova = overlay.area_power(&tech);
        for sharing in [LutSharing::PerNeuron, LutSharing::PerCore] {
            let lut = overlay.lut_area_power(&tech, sharing);
            area_ratios.push(lut.area_mm2 / nova.area_mm2);
            power_ratios.push(lut.power_mw / nova.power_mw);
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (a, p) = (avg(&area_ratios), avg(&power_ratios));
    assert!(a > 2.0, "average area gain {a:.2}x (paper 3.23x)");
    assert!(p > 3.0, "average power gain {p:.2}x (paper 16.56x)");
}

/// §V.D.2: on TPU-v4, the LUT baselines burn ≈4.14× / 9.4× NOVA's energy
/// per input sample.
#[test]
fn claim_tpu_v4_energy_ratios() {
    let cfg = AcceleratorConfig::tpu_v4_like();
    let mut pn_ratios = Vec::new();
    let mut pc_ratios = Vec::new();
    for model in BertConfig::fig8_benchmarks() {
        let nova = evaluate(&cfg, &model, 1024, ApproximatorKind::NovaNoc).unwrap();
        let pn = evaluate(&cfg, &model, 1024, ApproximatorKind::PerNeuronLut).unwrap();
        let pc = evaluate(&cfg, &model, 1024, ApproximatorKind::PerCoreLut).unwrap();
        pn_ratios.push(pn.approximator_energy_mj / nova.approximator_energy_mj);
        pc_ratios.push(pc.approximator_energy_mj / nova.approximator_energy_mj);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let (pn, pc) = (avg(&pn_ratios), avg(&pc_ratios));
    assert!(
        (2.0..9.0).contains(&pn),
        "per-neuron/NOVA {pn:.2}x (paper 4.14x)"
    );
    assert!(
        (4.0..20.0).contains(&pc),
        "per-core/NOVA {pc:.2}x (paper 9.4x)"
    );
    assert!(pc > pn, "per-core must be the worse baseline");
}

/// §V.F: BERT on TPU-v4 with NOVA has an energy overhead of only ~0.5%.
#[test]
fn claim_half_percent_overhead() {
    let cfg = AcceleratorConfig::tpu_v4_like();
    for model in BertConfig::fig8_benchmarks() {
        let r = evaluate(&cfg, &model, 1024, ApproximatorKind::NovaNoc).unwrap();
        assert!(
            r.energy_overhead_pct < 3.0,
            "{}: {:.2}% (paper ~0.5%)",
            model.name,
            r.energy_overhead_pct
        );
    }
}

/// §V.A: 10 routers, 1 mm apart, traversable at 1.5 GHz in one cycle —
/// and 11 are not.
#[test]
fn claim_scalability_boundary() {
    let tech = TechModel::cmos22();
    assert_eq!(timing::max_hops_per_cycle(&tech, 1.5, 1.0), 10);
    assert!(timing::broadcast_cycles(&tech, 11, 1.5, 1.0) > 1);
}

/// Table I: approximation leaves predictions essentially unchanged on all
/// six benchmarks.
#[test]
fn claim_table1_accuracy_preserved() {
    for model in TableOneModel::all() {
        let row = synthetic::evaluate_model(&model, 4000, 11).unwrap();
        assert!(
            (row.accuracy_exact - row.accuracy_approx).abs() < 0.5,
            "{}: {:.2} vs {:.2}",
            row.name,
            row.accuracy_exact,
            row.accuracy_approx
        );
        assert!(
            row.agreement > 99.0,
            "{}: agreement {:.2}%",
            row.name,
            row.agreement
        );
    }
}

/// §V.C: NOVA on REACT costs ~9.11% of the die; the LUT baselines cost
/// 31% / 19.2% — NOVA is the only single-digit overlay.
#[test]
fn claim_react_die_overheads() {
    let tech = TechModel::cmos22();
    let react = AcceleratorConfig::react();
    let overlay = NovaOverlay::new(&react);
    let die = react.die_area_mm2.unwrap();
    let nova_pct = overlay.area_overhead_pct(&tech).unwrap();
    let pn_pct = 100.0
        * overlay
            .lut_area_power(&tech, LutSharing::PerNeuron)
            .area_mm2
        / die;
    let pc_pct = 100.0 * overlay.lut_area_power(&tech, LutSharing::PerCore).area_mm2 / die;
    assert!(nova_pct < 15.0, "NOVA {nova_pct:.1}% (paper 9.11%)");
    assert!(pn_pct > 20.0, "per-neuron {pn_pct:.1}% (paper 31%)");
    assert!(nova_pct < pc_pct && pc_pct < pn_pct);
}

/// Table IV: one NOVA approximator slice is smaller and lower-power than
/// I-BERT's published 22 nm unit (2941 µm², 0.201 mW).
#[test]
fn claim_table4_unit_comparison() {
    let tech = TechModel::cmos22();
    let router = units::nova_router(&tech, 16, 16, 0.3);
    let area_per_neuron = router.area_um2 / 16.0;
    let power_per_neuron = router.power_mw(&tech, 1.4, 2.8, 0.1) / 16.0;
    assert!(area_per_neuron < 2941.0, "area {area_per_neuron:.0} µm²");
    assert!(power_per_neuron < 0.201, "power {power_per_neuron:.3} mW");
}
