//! Serde wiring tests for the data-structure types (C-SERDE):
//! configurations and reports must be serializable so downstream tooling
//! can persist sweep results. The dependency policy excludes format
//! crates (serde_json etc.), so these tests verify the derive wiring via
//! trait bounds and serde's built-in value deserializer.

use nova::engine::{evaluate, ApproximatorKind, InferenceReport};
use nova_accel::AcceleratorConfig;
use nova_synth::{AreaPower, TechModel};
use nova_workloads::bert::{census, BertConfig, OpCensus};

/// Compile-time assertions that the report/config types implement both
/// serde traits.
#[test]
fn serde_traits_present() {
    fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
    fn assert_serialize<T: serde::Serialize>() {}
    assert_serde::<OpCensus>();
    assert_serde::<InferenceReport>();
    assert_serde::<AreaPower>();
    // Config types hold `&'static str` names: serializable, and
    // deserializable only from static input — assert the write side.
    assert_serialize::<AcceleratorConfig>();
    assert_serialize::<TechModel>();
}

/// Value-level round-trip through serde's self-describing value
/// deserializer — no external format crate needed.
#[test]
fn area_power_survives_value_roundtrip() {
    use serde::de::IntoDeserializer;

    let ap = AreaPower::new(1.25, 42.5);
    let as_map: std::collections::BTreeMap<String, f64> = [
        ("area_mm2".to_string(), ap.area_mm2),
        ("power_mw".to_string(), ap.power_mw),
    ]
    .into_iter()
    .collect();
    let de: serde::de::value::MapDeserializer<'_, _, serde::de::value::Error> =
        as_map.into_deserializer();
    let back: AreaPower =
        serde::Deserialize::deserialize(de).expect("AreaPower round-trips");
    assert_eq!(back, ap);
}

/// The engine's reports are cloneable, comparable data (usable as golden
/// artifacts).
#[test]
fn inference_report_is_data() {
    let cfg = AcceleratorConfig::react();
    let r = evaluate(&cfg, &BertConfig::bert_tiny(), 64, ApproximatorKind::NovaNoc)
        .expect("valid evaluation");
    let copy = r.clone();
    assert_eq!(copy, r);
    let c1 = census(&BertConfig::bert_tiny(), 64);
    let c2 = census(&BertConfig::bert_tiny(), 64);
    assert_eq!(c1, c2);
}
