//! Serialization wiring tests for the data-structure types (C-SERDE):
//! configurations and reports must be serializable so downstream tooling
//! can persist sweep results. The dependency policy excludes external
//! crates, so the workspace ships its own serialization layer
//! (`nova-serde`: a self-describing `Value` model plus a JSON text
//! format); these tests verify the impl wiring via trait bounds, a
//! value-level round-trip and a full JSON text round-trip.

use nova::engine::{evaluate, ApproximatorKind, InferenceReport};
use nova_accel::AcceleratorConfig;
use nova_serde::{Deserialize, Serialize, Value};
use nova_synth::{AreaPower, TechModel};
use nova_workloads::bert::{census, BertConfig, OpCensus};

/// Compile-time assertions that the report/config types implement the
/// serialization traits.
#[test]
fn serde_traits_present() {
    fn assert_serde<T: Serialize + Deserialize>() {}
    fn assert_serialize<T: Serialize>() {}
    assert_serde::<OpCensus>();
    assert_serde::<InferenceReport>();
    assert_serde::<AreaPower>();
    // Config types hold `&'static str` names: serializable, and
    // deserializable only from static input — assert the write side.
    assert_serialize::<AcceleratorConfig>();
    assert_serialize::<TechModel>();
}

/// Value-level round-trip through the self-describing value model — no
/// text format involved.
#[test]
fn area_power_survives_value_roundtrip() {
    let ap = AreaPower::new(1.25, 42.5);
    let as_map = Value::Map(vec![
        ("area_mm2".to_string(), Value::F64(ap.area_mm2)),
        ("power_mw".to_string(), Value::F64(ap.power_mw)),
    ]);
    let back = AreaPower::from_value(&as_map).expect("AreaPower round-trips");
    assert_eq!(back, ap);
    // The hand-built map equals what Serialize emits.
    assert_eq!(ap.to_value(), as_map);
}

/// Full JSON text round-trip of an engine report: serialize, re-parse,
/// rebuild, compare — the sweep-persistence path end to end.
#[test]
fn inference_report_survives_json_roundtrip() {
    let cfg = AcceleratorConfig::react();
    let r = evaluate(
        &cfg,
        &BertConfig::bert_tiny(),
        64,
        ApproximatorKind::NovaNoc,
    )
    .expect("valid evaluation");
    let json = r.to_json_string();
    let back = InferenceReport::from_json_str(&json).expect("report re-parses");
    assert_eq!(back, r);
    // Sanity: the text really is JSON with the expected fields.
    assert!(json.starts_with('{') && json.contains("\"approximator_energy_mj\""));
}

/// Censuses round-trip too (they carry the matmul list).
#[test]
fn census_survives_json_roundtrip() {
    let c = census(&BertConfig::bert_mini(), 32);
    let back = OpCensus::from_json_str(&c.to_json_string()).expect("census re-parses");
    assert_eq!(back, c);
}

/// The engine's reports are cloneable, comparable data (usable as golden
/// artifacts).
#[test]
fn inference_report_is_data() {
    let cfg = AcceleratorConfig::react();
    let r = evaluate(
        &cfg,
        &BertConfig::bert_tiny(),
        64,
        ApproximatorKind::NovaNoc,
    )
    .expect("valid evaluation");
    let copy = r.clone();
    assert_eq!(copy, r);
    let c1 = census(&BertConfig::bert_tiny(), 64);
    let c2 = census(&BertConfig::bert_tiny(), 64);
    assert_eq!(c1, c2);
}
