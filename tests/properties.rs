//! Workspace-level property tests: the full mapper → overlay → unit
//! pipeline under randomized settings.
//!
//! Checked over deterministic pseudo-random stimulus from the workspace
//! PRNG (`nova_fixed::rng`) instead of proptest, per the no-external-
//! dependency policy.

use nova::serving::{Plan, ServingEngine, ServingRequest, TableCache, TableKey};
use nova::vector_unit::build;
use nova::{
    ApproximatorKind, FixedBatch, LutVariant, LutVectorUnit, Mapper, NovaVectorUnit,
    SegmentedNovaUnit, VectorUnit,
};
use nova_approx::Activation;
use nova_fixed::rng::StdRng;
use nova_fixed::{Fixed, Rounding, Q4_12};
use nova_noc::LineConfig;
use nova_synth::TechModel;

const ACTIVATIONS: [Activation; 5] = [
    Activation::Exp,
    Activation::Gelu,
    Activation::Sigmoid,
    Activation::Tanh,
    Activation::Silu,
];

fn pick_activation(rng: &mut StdRng) -> Activation {
    ACTIVATIONS[rng.gen_range(0..ACTIVATIONS.len())]
}

/// For any activation, segment budget, geometry and inputs: the NOVA
/// unit, the segmented NOVA unit and both LUT baselines agree bit for
/// bit, and all equal the compiled table.
#[test]
fn all_units_agree_under_random_mappings() {
    let mut rng = StdRng::seed_from_u64(0xD001);
    for _ in 0..24 {
        let a = pick_activation(&mut rng);
        let segments = rng.gen_range(2usize..17);
        let routers = rng.gen_range(1usize..11);
        let neurons = rng.gen_range(1usize..7);
        let reach = rng.gen_range(1usize..11);
        let n_raws = rng.gen_range(1usize..64);
        let raws: Vec<i64> = (0..n_raws)
            .map(|_| rng.gen_range(i64::from(i16::MIN)..i64::from(i16::MAX) + 1))
            .collect();
        let tech = TechModel::cmos22();
        let plan = Mapper::paper_default()
            .with_segments(segments)
            .compile(&[a], &tech, routers, 1.0, 1.0)
            .unwrap();
        let table = &plan.mappings[0].table;
        let mut config = LineConfig::paper_default(routers, neurons);
        config.max_hops_per_cycle = reach;
        let inputs: Vec<Vec<Fixed>> = (0..routers)
            .map(|r| {
                (0..neurons)
                    .map(|n| {
                        let raw = raws[(r * neurons + n) % raws.len()];
                        Fixed::from_raw(raw, Q4_12).unwrap()
                    })
                    .collect()
            })
            .collect();
        let mut nova = NovaVectorUnit::new(config, table).unwrap();
        let mut seg = SegmentedNovaUnit::new(config, table).unwrap();
        let mut pn = LutVectorUnit::new(table, routers, neurons, LutVariant::PerNeuron);
        let mut pc = LutVectorUnit::new(table, routers, neurons, LutVariant::PerCore);
        let x = nova.lookup_batch(&inputs).unwrap();
        assert_eq!(x, seg.lookup_batch(&inputs).unwrap());
        assert_eq!(x, pn.lookup_batch(&inputs).unwrap());
        assert_eq!(x, pc.lookup_batch(&inputs).unwrap());
        for (row_out, row_in) in x.iter().zip(&inputs) {
            for (&o, &i) in row_out.iter().zip(row_in) {
                assert_eq!(o, table.eval(i));
            }
        }
    }
}

/// The flat zero-copy pipeline is functionally invisible: for every
/// approximator kind, random geometry and random inputs, the
/// `FixedBatch` + `lookup_batch_into` path is bit-identical to the
/// legacy nested path, and recycled output buffers stay bit-exact
/// across reuse.
#[test]
fn flat_path_bit_identical_to_nested_for_all_kinds_under_random_geometries() {
    let mut rng = StdRng::seed_from_u64(0xF1A7);
    let cache = TableCache::new();
    for round in 0..12 {
        let activation = pick_activation(&mut rng);
        let routers = rng.gen_range(1usize..9);
        let neurons = rng.gen_range(1usize..17);
        let table = cache
            .get_or_fit(TableKey::paper(activation))
            .expect("paper keys fit");
        let config = LineConfig::paper_default(routers, neurons);
        let inputs: Vec<Vec<Fixed>> = (0..routers)
            .map(|_| {
                (0..neurons)
                    .map(|_| {
                        Fixed::from_f64(rng.gen_range(-8.0..8.0), Q4_12, Rounding::NearestEven)
                    })
                    .collect()
            })
            .collect();
        let flat = FixedBatch::from_rows(&inputs).expect("rectangular by construction");
        let mut out = FixedBatch::empty();
        for kind in ApproximatorKind::all() {
            let mut nested_unit = build(kind, config, &table).unwrap();
            let mut flat_unit = build(kind, config, &table).unwrap();
            let nested = nested_unit.lookup_batch(&inputs).unwrap();
            // Reuse one output buffer across kinds and rounds — recycling
            // must never leak a previous batch's words.
            flat_unit.lookup_batch_into(&flat, &mut out).unwrap();
            assert_eq!(
                out.to_rows(),
                nested,
                "round {round}: {} diverged on a {routers}x{neurons} grid",
                kind.label()
            );
        }
    }
}

/// Serving through the flat pipeline is bit-identical to the sequential
/// reference for every kind × shard geometry × ragged tail shape (query
/// totals chosen coprime to the batch capacity so tail batches are
/// genuinely partial) × activation tenancy mix — and steady-state
/// repeats mint no buffers, even though multi-table slates keep
/// re-programming the workers' units between activation runs.
#[test]
fn flat_serving_bit_identical_across_kinds_geometries_and_ragged_tails() {
    let mut rng = StdRng::seed_from_u64(0xF1A8);
    let cache = TableCache::new();
    let gelu = TableKey::paper(Activation::Gelu);
    let exp = TableKey::paper(Activation::Exp);
    for (routers, neurons) in [(2usize, 5usize), (4, 8)] {
        for queries_per_stream in [1usize, 13, 61] {
            // Streams 0/2 hit the GELU table, stream 1 the exp table —
            // a genuinely mixed-activation slate in arrival order.
            let requests: Vec<ServingRequest> = (0..3)
                .map(|stream| {
                    ServingRequest::new(
                        stream,
                        if stream % 2 == 0 { gelu } else { exp },
                        (0..queries_per_stream)
                            .map(|_| {
                                Fixed::from_f64(
                                    rng.gen_range(-6.0..6.0),
                                    Q4_12,
                                    Rounding::NearestEven,
                                )
                            })
                            .collect(),
                    )
                })
                .collect();
            for kind in ApproximatorKind::all() {
                let mut engine = ServingEngine::builder(kind)
                    .line(LineConfig::paper_default(routers, neurons))
                    .cache(&cache)
                    .tables([gelu, exp])
                    .shards(2)
                    .build()
                    .unwrap();
                let reference = engine.serve_reference(&requests);
                assert_eq!(
                    engine.serve(&requests).unwrap(),
                    reference,
                    "{} diverged: {routers}x{neurons}, {queries_per_stream} q/stream",
                    kind.label()
                );
                let minted = engine.buffers_created();
                assert_eq!(engine.serve(&requests).unwrap(), reference);
                assert_eq!(
                    engine.buffers_created(),
                    minted,
                    "steady state minted buffers for {}",
                    kind.label()
                );
                assert_eq!(
                    engine.stats().table_switches > 0,
                    queries_per_stream > 0,
                    "mixed tenancy must re-program {} workers",
                    kind.label()
                );
            }
        }
    }
}

/// Fat work units are functionally invisible: for every approximator
/// kind × worker count {1, 2, 4} × unit cap K ∈ {1, 3, 8}, a mixed-
/// activation slate with ragged tail batches serves bit-identically to
/// the sequential reference, steady-state repeats mint no input
/// buffers through the SPSC rings, and the job ledger confirms runs
/// actually coalesced (`jobs <= batches`, strictly fewer once K > 1
/// and a run spans multiple batches).
#[test]
fn fat_units_bit_identical_across_workers_kinds_and_unit_caps() {
    let mut rng = StdRng::seed_from_u64(0xFA7);
    let cache = TableCache::new();
    let gelu = TableKey::paper(Activation::Gelu);
    let exp = TableKey::paper(Activation::Exp);
    // 3×7 grid (capacity 21) with 47 queries/stream: every stream ends
    // in a genuinely partial tail batch (47 = 2·21 + 5).
    let (routers, neurons, queries_per_stream) = (3usize, 7usize, 47usize);
    let requests: Vec<ServingRequest> = (0..4)
        .map(|stream| {
            ServingRequest::new(
                stream,
                if stream % 2 == 0 { gelu } else { exp },
                (0..queries_per_stream)
                    .map(|_| {
                        Fixed::from_f64(rng.gen_range(-6.0..6.0), Q4_12, Rounding::NearestEven)
                    })
                    .collect(),
            )
        })
        .collect();
    for kind in ApproximatorKind::all() {
        for workers in [1usize, 2, 4] {
            for unit_cap in [1usize, 3, 8] {
                let mut engine = ServingEngine::builder(kind)
                    .line(LineConfig::paper_default(routers, neurons))
                    .cache(&cache)
                    .tables([gelu, exp])
                    .shards(workers)
                    .max_batches_per_unit(unit_cap)
                    .build()
                    .unwrap();
                let label = format!("{} w={workers} K={unit_cap}", kind.label());
                let reference = engine.serve_reference(&requests);
                assert_eq!(engine.serve(&requests).unwrap(), reference, "{label}");
                let minted = engine.buffers_created();
                assert_eq!(engine.serve(&requests).unwrap(), reference, "{label}");
                assert_eq!(
                    engine.buffers_created(),
                    minted,
                    "steady state minted buffers: {label}"
                );
                let stats = engine.stats();
                assert!(stats.jobs > 0 && stats.jobs <= stats.batches, "{label}");
                if unit_cap == 1 {
                    // K = 1 degenerates to one batch per job.
                    assert_eq!(stats.jobs, stats.batches, "{label}");
                } else if workers == 1 {
                    // Three-batch runs on one shard must coalesce.
                    assert!(stats.jobs < stats.batches, "runs never packed: {label}");
                }
            }
        }
    }
}

/// Op-graph plans are functionally invisible too: for every approximator
/// kind × worker count {1, 2, 4} × seeded ragged slate — fused softmax
/// rows (including empty and full-batch-width ones) interleaved with
/// single-lookup tenants — the worker pool serves bit-identically to
/// the sequential op-graph interpreter, steady-state repeats mint no
/// buffers, and every non-empty fused row comes back normalized.
#[test]
fn fused_plans_bit_identical_across_workers_kinds_and_ragged_slates() {
    let mut rng = StdRng::seed_from_u64(0xF5ED);
    let cache = TableCache::new();
    let gelu = TableKey::paper(Activation::Gelu);
    let softmax = Plan::fused_softmax(Q4_12, Rounding::NearestEven);
    // 2×5 grid (capacity 10): fused rows up to the full batch width, so
    // row-aligned packing keeps sealing genuinely partial batches.
    let (routers, neurons) = (2usize, 5usize);
    let capacity = routers * neurons;
    for round in 0..3 {
        let requests: Vec<ServingRequest> = (0..9)
            .map(|stream| {
                let fused = stream % 3 != 0;
                let width = if fused {
                    rng.gen_range(0usize..capacity + 1)
                } else {
                    rng.gen_range(1usize..24)
                };
                let inputs: Vec<Fixed> = (0..width)
                    .map(|_| {
                        Fixed::from_f64(rng.gen_range(-6.0..6.0), Q4_12, Rounding::NearestEven)
                    })
                    .collect();
                if fused {
                    ServingRequest::new(stream, softmax.clone(), inputs)
                } else {
                    ServingRequest::new(stream, gelu, inputs)
                }
            })
            .collect();
        for kind in ApproximatorKind::all() {
            for workers in [1usize, 2, 4] {
                let mut engine = ServingEngine::builder(kind)
                    .line(LineConfig::paper_default(routers, neurons))
                    .cache(&cache)
                    .table(gelu)
                    .plan(&softmax)
                    .shards(workers)
                    .build()
                    .unwrap();
                let label = format!("{} w={workers} round={round}", kind.label());
                let reference = engine.serve_reference(&requests);
                assert_eq!(engine.serve(&requests).unwrap(), reference, "{label}");
                let minted = engine.buffers_created();
                assert_eq!(engine.serve(&requests).unwrap(), reference, "{label}");
                assert_eq!(
                    engine.buffers_created(),
                    minted,
                    "steady state minted buffers: {label}"
                );
                for (request, out) in requests.iter().zip(&reference) {
                    if request.plan.single_lookup().is_none() && !out.is_empty() {
                        let sum: f64 = out.iter().map(|y| y.to_f64()).sum();
                        assert!((sum - 1.0).abs() < 0.1, "{label}: fused row sums to {sum}");
                    }
                }
            }
        }
    }
}

/// The mapper's clock multiplier is exactly ⌈segments/8⌉ on the paper
/// link, and the plan's reach shrinks monotonically with core clock.
#[test]
fn mapper_multiplier_formula() {
    let mut rng = StdRng::seed_from_u64(0xD002);
    for _ in 0..24 {
        let segments = rng.gen_range(1usize..17);
        let core_mhz = rng.gen_range(100.0..2000.0);
        let tech = TechModel::cmos22();
        let plan = Mapper::paper_default()
            .with_segments(segments)
            .compile(&[Activation::Tanh], &tech, 4, core_mhz / 1000.0, 1.0)
            .unwrap();
        assert_eq!(plan.noc_clock_multiplier, segments.div_ceil(8).max(1));
        let slower = Mapper::paper_default()
            .with_segments(segments)
            .compile(&[Activation::Tanh], &tech, 4, core_mhz / 2000.0, 1.0)
            .unwrap();
        assert!(slower.reach >= plan.reach);
    }
}

/// Approximation accuracy through the full mapper pipeline improves
/// (weakly) with the segment budget for every activation.
#[test]
fn mapper_accuracy_monotone() {
    for a in ACTIVATIONS {
        let tech = TechModel::cmos22();
        let err = |segments: usize| {
            let plan = Mapper::paper_default()
                .with_segments(segments)
                .compile(&[a], &tech, 1, 1.0, 1.0)
                .unwrap();
            let table = &plan.mappings[0].table;
            let (lo, hi) = a.domain();
            (0..200)
                .map(|k| lo + (hi - lo) * k as f64 / 199.0)
                .map(|x| (table.eval_f64(x) - a.eval(x)).abs())
                .fold(0.0f64, f64::max)
        };
        // Allow a little fixed-point noise between adjacent budgets.
        assert!(err(16) <= err(4) + 0.01, "{a:?}");
    }
}
