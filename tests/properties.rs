//! Workspace-level property tests: the full mapper → overlay → unit
//! pipeline under randomized settings.

use nova::{LutVariant, LutVectorUnit, Mapper, NovaVectorUnit, SegmentedNovaUnit, VectorUnit};
use nova_approx::Activation;
use nova_fixed::{Fixed, Q4_12};
use nova_noc::LineConfig;
use nova_synth::TechModel;
use proptest::prelude::*;

fn activations() -> impl Strategy<Value = Activation> {
    prop_oneof![
        Just(Activation::Exp),
        Just(Activation::Gelu),
        Just(Activation::Sigmoid),
        Just(Activation::Tanh),
        Just(Activation::Silu),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any activation, segment budget, geometry and inputs: the NOVA
    /// unit, the segmented NOVA unit and both LUT baselines agree bit for
    /// bit, and all equal the compiled table.
    #[test]
    fn all_units_agree_under_random_mappings(
        a in activations(),
        segments in 2usize..=16,
        routers in 1usize..=10,
        neurons in 1usize..=6,
        reach in 1usize..=10,
        raws in prop::collection::vec(any::<i16>(), 1..64),
    ) {
        let tech = TechModel::cmos22();
        let plan = Mapper::paper_default()
            .with_segments(segments)
            .compile(&[a], &tech, routers, 1.0, 1.0)
            .unwrap();
        let table = &plan.mappings[0].table;
        let mut config = LineConfig::paper_default(routers, neurons);
        config.max_hops_per_cycle = reach;
        let inputs: Vec<Vec<Fixed>> = (0..routers)
            .map(|r| {
                (0..neurons)
                    .map(|n| {
                        let raw = raws[(r * neurons + n) % raws.len()];
                        Fixed::from_raw(i64::from(raw), Q4_12).unwrap()
                    })
                    .collect()
            })
            .collect();
        let mut nova = NovaVectorUnit::new(config, table).unwrap();
        let mut seg = SegmentedNovaUnit::new(config, table).unwrap();
        let mut pn = LutVectorUnit::new(table, routers, neurons, LutVariant::PerNeuron);
        let mut pc = LutVectorUnit::new(table, routers, neurons, LutVariant::PerCore);
        let x = nova.lookup_batch(&inputs).unwrap();
        prop_assert_eq!(&x, &seg.lookup_batch(&inputs).unwrap());
        prop_assert_eq!(&x, &pn.lookup_batch(&inputs).unwrap());
        prop_assert_eq!(&x, &pc.lookup_batch(&inputs).unwrap());
        for (row_out, row_in) in x.iter().zip(&inputs) {
            for (&o, &i) in row_out.iter().zip(row_in) {
                prop_assert_eq!(o, table.eval(i));
            }
        }
    }

    /// The mapper's clock multiplier is exactly ⌈segments/8⌉ on the paper
    /// link, and the plan's reach shrinks monotonically with core clock.
    #[test]
    fn mapper_multiplier_formula(segments in 1usize..=16, core_mhz in 100.0f64..2000.0) {
        let tech = TechModel::cmos22();
        let plan = Mapper::paper_default()
            .with_segments(segments)
            .compile(&[Activation::Tanh], &tech, 4, core_mhz / 1000.0, 1.0)
            .unwrap();
        prop_assert_eq!(plan.noc_clock_multiplier, segments.div_ceil(8).max(1));
        let slower = Mapper::paper_default()
            .with_segments(segments)
            .compile(&[Activation::Tanh], &tech, 4, core_mhz / 2000.0, 1.0)
            .unwrap();
        prop_assert!(slower.reach >= plan.reach);
    }

    /// Approximation accuracy through the full mapper pipeline improves
    /// (weakly) with the segment budget for every activation.
    #[test]
    fn mapper_accuracy_monotone(a in activations()) {
        let tech = TechModel::cmos22();
        let err = |segments: usize| {
            let plan = Mapper::paper_default()
                .with_segments(segments)
                .compile(&[a], &tech, 1, 1.0, 1.0)
                .unwrap();
            let table = &plan.mappings[0].table;
            let (lo, hi) = a.domain();
            (0..200)
                .map(|k| lo + (hi - lo) * k as f64 / 199.0)
                .map(|x| (table.eval_f64(x) - a.eval(x)).abs())
                .fold(0.0f64, f64::max)
        };
        // Allow a little fixed-point noise between adjacent budgets.
        prop_assert!(err(16) <= err(4) + 0.01);
    }
}
