//! Golden-value tests: pin the calibrated model to the paper's published
//! numbers within stated tolerances, so a refactor of the technology
//! model cannot silently drift the reproduction.
//!
//! Tolerances are deliberately loose where EXPERIMENTS.md documents known
//! residuals and tight where the calibration is good.

use nova::NovaOverlay;
use nova_accel::AcceleratorConfig;
use nova_synth::{timing, units, LutSharing, TechModel};

fn within(measured: f64, paper: f64, tolerance: f64) -> bool {
    (measured / paper - 1.0).abs() <= tolerance
}

#[test]
fn golden_table3_nova_areas() {
    let tech = TechModel::cmos22();
    // (config, paper mm², tolerance)
    let rows = [
        (AcceleratorConfig::react(), 1.817, 0.10),
        (AcceleratorConfig::tpu_v3_like(), 0.414, 0.15),
        (AcceleratorConfig::tpu_v4_like(), 0.82, 0.15),
        (AcceleratorConfig::jetson_xavier_nx(), 0.0276, 0.15),
    ];
    for (cfg, paper, tol) in rows {
        let a = NovaOverlay::new(&cfg).area_power(&tech).area_mm2;
        assert!(
            within(a, paper, tol),
            "{}: {a:.4} vs paper {paper}",
            cfg.name
        );
    }
}

#[test]
fn golden_table3_nova_powers() {
    let tech = TechModel::cmos22();
    let rows = [
        (AcceleratorConfig::react(), 117.51, 0.25),
        (AcceleratorConfig::tpu_v3_like(), 103.78, 0.15),
        (AcceleratorConfig::tpu_v4_like(), 184.83, 0.20),
        (AcceleratorConfig::jetson_xavier_nx(), 1.294, 0.25),
    ];
    for (cfg, paper, tol) in rows {
        let p = NovaOverlay::new(&cfg).area_power(&tech).power_mw;
        assert!(
            within(p, paper, tol),
            "{}: {p:.2} vs paper {paper}",
            cfg.name
        );
    }
}

#[test]
fn golden_table3_lut_baselines_tpu() {
    let tech = TechModel::cmos22();
    let overlay = NovaOverlay::new(&AcceleratorConfig::tpu_v3_like());
    let pn = overlay.lut_area_power(&tech, LutSharing::PerNeuron);
    let pc = overlay.lut_area_power(&tech, LutSharing::PerCore);
    assert!(within(pn.area_mm2, 1.267, 0.10), "pn area {}", pn.area_mm2);
    assert!(
        within(pn.power_mw, 382.468, 0.10),
        "pn power {}",
        pn.power_mw
    );
    assert!(within(pc.area_mm2, 1.004, 0.10), "pc area {}", pc.area_mm2);
    assert!(
        within(pc.power_mw, 862.472, 0.10),
        "pc power {}",
        pc.power_mw
    );
}

#[test]
fn golden_table4_unit() {
    let tech = TechModel::cmos22();
    let router = units::nova_router(&tech, 16, 16, 0.3);
    let area = router.area_um2 / 16.0;
    let power = router.power_mw(&tech, 1.4, 2.8, 0.1) / 16.0;
    assert!(within(area, 898.75, 0.10), "unit area {area:.1}");
    assert!(within(power, 0.046, 0.10), "unit power {power:.4}");
}

#[test]
fn golden_scalability_point() {
    let tech = TechModel::cmos22();
    assert_eq!(timing::max_hops_per_cycle(&tech, 1.5, 1.0), 10);
}

#[test]
fn golden_react_overhead_percent() {
    let tech = TechModel::cmos22();
    let pct = NovaOverlay::new(&AcceleratorConfig::react())
        .area_overhead_pct(&tech)
        .unwrap();
    assert!(
        within(pct, 9.11, 0.10),
        "REACT overhead {pct:.2}% vs paper 9.11%"
    );
}

#[test]
fn golden_jetson_sdp_ratio() {
    // Paper: 37.8× power; model lands ~45× (documented in EXPERIMENTS.md).
    let tech = TechModel::cmos22();
    let cfg = AcceleratorConfig::jetson_xavier_nx();
    let sdp = nova::engine::approximator_power_mw(&tech, &cfg, nova::ApproximatorKind::NvdlaSdp);
    let nova_p = nova::engine::approximator_power_mw(&tech, &cfg, nova::ApproximatorKind::NovaNoc);
    let ratio = sdp / nova_p;
    assert!(
        (20.0..80.0).contains(&ratio),
        "SDP/NOVA {ratio:.1} (paper 37.8)"
    );
}
