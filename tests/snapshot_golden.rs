//! Golden-file pin of the `TableCache` warm-start snapshot format
//! (`nova-table-cache/v1`): a daemon restart must be able to restore a
//! snapshot written by any earlier build, so the serialized bytes are
//! part of the public contract — any layout change fails here until the
//! golden is deliberately re-blessed *with a migration path*.
//!
//! Re-bless (after such a deliberate change) with:
//! `NOVA_BLESS=1 cargo test --test snapshot_golden`

use nova::serving::{TableCache, TableKey};
use nova_approx::Activation;
use nova_fixed::Rounding;
use nova_serde::Value;

const GOLDEN_PATH: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/data/table_cache_snapshot_v1.json"
);

/// The pinned key set: the two paper tables the serving examples lean
/// on, plus one off-default rounding/breakpoint combination so the
/// golden exercises every serialized field with non-default values.
fn golden_cache() -> TableCache {
    let cache = TableCache::new();
    for key in [
        TableKey::paper(Activation::Gelu),
        TableKey::paper(Activation::Exp),
        TableKey {
            breakpoints: 9,
            rounding: Rounding::Floor,
            ..TableKey::paper(Activation::Tanh)
        },
    ] {
        cache.get_or_fit(key).expect("paper tables fit");
    }
    cache
}

#[test]
fn snapshot_golden_file_is_byte_stable() {
    let json = golden_cache().snapshot().to_json();
    if std::env::var_os("NOVA_BLESS").is_some() {
        std::fs::write(GOLDEN_PATH, &json).expect("bless golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file present");
    assert_eq!(
        json, golden,
        "snapshot bytes drifted from the pinned v1 layout — if the \
         change is deliberate, bump SNAPSHOT_FORMAT and re-bless"
    );
}

#[test]
fn golden_snapshot_restores_raw_word_identical() {
    // The CI round-trip gate: restoring the *pinned* bytes (not a
    // freshly written snapshot) reproduces every table raw-identical to
    // a fresh fit, and re-snapshotting the restored cache closes the
    // loop byte-identically.
    let golden = std::fs::read_to_string(GOLDEN_PATH).expect("golden file present");
    let snapshot = Value::from_json(&golden).expect("golden parses");
    let warm = TableCache::new();
    assert_eq!(warm.restore(&snapshot).expect("golden restores"), 3);
    let fresh = golden_cache();
    for key in [
        TableKey::paper(Activation::Gelu),
        TableKey::paper(Activation::Exp),
        TableKey {
            breakpoints: 9,
            rounding: Rounding::Floor,
            ..TableKey::paper(Activation::Tanh)
        },
    ] {
        let table = fresh.get_or_fit(key).expect("fresh fit");
        let restored = warm.get_or_fit(key).expect("resident after restore");
        assert_eq!(warm.misses(), 0, "warm start must never refit");
        assert_eq!(restored.slopes_raw(), table.slopes_raw(), "{key:?}");
        assert_eq!(restored.biases_raw(), table.biases_raw(), "{key:?}");
        assert_eq!(restored.breakpoints(), table.breakpoints(), "{key:?}");
    }
    assert_eq!(warm.snapshot().to_json(), golden, "round-trip closes");
}
