//! The paper's two walkthroughs, executed: Fig 2 (LUT-based baseline) and
//! Fig 4 (NOVA NoC) on the same 8-PE accelerator with 8 breakpoints.
//!
//! Run with: `cargo run --example walkthrough`

use nova_approx::{fit, Activation, QuantizedPwl};
use nova_fixed::{Fixed, Rounding, Q4_12};
use nova_lut::walkthrough::fig2_walkthrough;
use nova_noc::{sim::BroadcastSim, LineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 8 breakpoints, as in both figures.
    let pwl = fit::fit_activation(Activation::Sigmoid, 8, fit::BreakpointStrategy::Uniform)?;
    let table = QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven)?;

    // One PE output per section of the piecewise function, like x1..x8.
    let edges = pwl.edges();
    let mut inputs = [Fixed::zero(Q4_12); 8];
    for (i, input) in inputs.iter_mut().enumerate() {
        let mid = (edges[i] + edges[i + 1]) / 2.0;
        *input = Fixed::from_f64(mid, Q4_12, Rounding::NearestEven);
    }

    println!("=== Fig 2: LUT-based approximation (8 PEs as a 4×2 grid) ===");
    println!("cycle 1: comparators generate lookup addresses, LUT banks fetch (slope, bias)");
    println!("cycle 2: per-PE MACs compute a·x + b\n");
    for row in fig2_walkthrough(&table, &inputs)? {
        println!(
            "PE({},{}) x = {:>7.3} → address {} → (a={:>7.4}, b={:>7.4}) → result {:>7.4}",
            row.pe.0,
            row.pe.1,
            row.input.to_f64(),
            row.address + 1, // the paper numbers sections 1–8
            row.pair.slope.to_f64(),
            row.pair.bias.to_f64(),
            row.result.to_f64(),
        );
    }

    println!("\n=== Fig 4: the same approximation on the NOVA NoC ===");
    println!("The slope/bias pairs live on the wire: one 257-bit flit snakes through");
    println!("all 8 routers in a single cycle (clockless repeaters); each router's tag");
    println!("match latches the pair its lookup address selects.\n");
    let config = LineConfig::paper_default(8, 1);
    let mut sim = BroadcastSim::new(config, &table)?;
    let batch: Vec<Vec<Fixed>> = inputs.iter().map(|&x| vec![x]).collect();
    let out = sim.run(&batch)?;
    for (r, row) in out.outputs.iter().enumerate() {
        println!(
            "router {r}: x = {:>7.3} → result {:>7.4} (bit-identical to LUT: {})",
            inputs[r].to_f64(),
            row[0].to_f64(),
            row[0] == table.eval(inputs[r]),
        );
    }
    println!(
        "\nstats: {} flit injected, {} NoC cycles, {} hops, latency {} core cycles — same 2-cycle latency as the LUT baseline, with zero SRAM banks.",
        out.stats.flits_injected, out.stats.noc_cycles, out.stats.hops, out.stats.core_cycle_latency,
    );
    Ok(())
}
