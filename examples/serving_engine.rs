//! Multi-tenant serving: batch non-linear queries from many concurrent
//! inference streams — across *multiple activation tables* — through a
//! pool of worker threads.
//!
//! Walks the full v2 serving path: a thread-shared keyed table cache
//! (fit once, share the `Arc`), a builder-configured `ServingEngine`
//! with two resident tables (GELU + softmax-exp) whose admission stage
//! coalesces eight tenants' bursts into full `(routers × neurons)`
//! batches per activation run and feeds them to four shard worker
//! threads over bounded channels, workers re-programming their unit
//! between runs (`VectorUnit::switch_table` — free on NOVA, a bank
//! rewrite on LUT/SDP), reorder/scatter that is bit-identical to
//! dedicated sequential evaluation, the non-blocking session surface
//! (`submit` → `try_poll`/`drain`), and the analytic multi-stream
//! report over a seeded mixed-activation BERT/CNN/synthetic trace.
//!
//! Run with: `cargo run --example serving_engine`

use nova_repro::accel::AcceleratorConfig;
use nova_repro::approx::Activation;
use nova_repro::engine::{evaluate_multi_stream, ApproximatorKind};
use nova_repro::fixed::{Rounding, Q4_12};
use nova_repro::serving::{gather_by_stream, ServingEngine, ServingRequest, TableCache, TableKey};
use nova_repro::synth::TechModel;
use nova_repro::workloads::traffic::{query_words_into, TrafficMix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = TechModel::cmos22();
    let host = AcceleratorConfig::tpu_v4_like();
    println!(
        "Serving on {}: one {}-query batch per 2-cycle lookup+MAC\n",
        host.name,
        host.total_neurons()
    );

    // 1. The table cache: the GELU and exp fits happen once; every
    //    engine (and any thread — `get_or_fit` is `&self`) shares the
    //    same Arc'd tables.
    let cache = TableCache::new();
    let gelu = TableKey::paper(Activation::Gelu);
    let exp = TableKey::paper(Activation::Exp);
    let table = cache.get_or_fit(gelu)?;
    let again = cache.get_or_fit(gelu)?;
    println!(
        "Table cache: {} fit(s), {} hit(s), shared allocation: {}",
        cache.misses(),
        cache.hits(),
        std::sync::Arc::ptr_eq(&table, &again)
    );

    // 2. Eight concurrent tenants, each with a small burst — far below
    //    one batch on its own. Even streams hit the GELU table, odd
    //    streams the softmax-exp table, so the engine really is
    //    multi-tenant across activations. Queries extract straight into
    //    fixed-point words (no intermediate f64 vector).
    let requests: Vec<ServingRequest> = (0..8)
        .map(|stream| {
            let mut inputs = Vec::new();
            query_words_into(
                stream as u64,
                300,
                -6.0,
                6.0,
                Q4_12,
                Rounding::NearestEven,
                &mut inputs,
            );
            ServingRequest::new(stream, if stream % 2 == 0 { gelu } else { exp }, inputs)
        })
        .collect();
    // The v2 builder replaces the positional constructors: geometry from
    // the host, tables by key through the shared cache, 4 shard workers.
    let mut engine = ServingEngine::builder(ApproximatorKind::NovaNoc)
        .host(&tech, &host)
        .cache(&cache)
        .tables([gelu, exp])
        .shards(4)
        .build()?;
    let outputs = engine.serve(&requests)?;

    // 3. Reorder/scatter is bit-identical to a dedicated sequential
    //    evaluation — four worker threads and two interleaved activation
    //    tables are functionally invisible.
    assert_eq!(outputs, engine.serve_reference(&requests));
    for (request, out) in requests.iter().zip(&outputs) {
        let key = request.plan.single_lookup().expect("one-stage plan");
        let table = engine.table_for(key).expect("resident table");
        for (&x, &y) in request.inputs.iter().zip(out) {
            assert_eq!(y, table.eval(x), "threading must be invisible");
        }
    }
    let by_stream = gather_by_stream(&requests, &outputs);
    let stats = engine.stats();
    println!(
        "Served {} queries from {} streams in {} batches ({} padded slots): \
         occupancy {:.1}%, {:.3e} queries/s — bit-identical per stream ({} streams gathered)",
        stats.queries,
        requests.len(),
        stats.batches,
        stats.padded_slots,
        engine.occupancy_pct(),
        engine.queries_per_second(host.frequency_ghz()),
        by_stream.len()
    );
    let loads = engine.worker_loads();
    println!(
        "Worker pool: {} shard threads served {:?} batches each; {} table switch(es) \
         cost {} cycle(s) on NOVA; makespan {} cycles vs {} serial",
        engine.shards(),
        loads.iter().map(|l| l.batches).collect::<Vec<_>>(),
        stats.table_switches,
        stats.switch_cycles,
        engine.makespan_cycles(),
        stats.latency_cycles
    );

    // 4. The non-blocking session surface: submit two slates, check the
    //    second without blocking, then block on it (no spinning — `wait`
    //    parks on worker completions), then drain the rest.
    let early = engine.submit(&requests[..4])?;
    let late = engine.submit(&requests[4..])?;
    let late_result = match engine.try_poll(late)? {
        Some(out) => out, // already finished between submits
        None => engine.wait(late)?,
    };
    assert_eq!(late_result, engine.serve_reference(&requests[4..]));
    let drained = engine.drain();
    assert_eq!(drained.len(), 1);
    assert_eq!(drained[0].0, early);
    assert_eq!(
        drained[0].1.as_ref().expect("ticket served"),
        &engine.serve_reference(&requests[..4])
    );
    println!(
        "Session surface: submitted 2 tickets, polled #{} early, drained #{} — \
         {} tickets left in flight",
        late.id(),
        early.id(),
        engine.in_flight()
    );

    // 5. The analytic view over a seeded mixed-activation traffic trace.
    let slate = TrafficMix::mixed_activations(8).census_slate();
    let report = evaluate_multi_stream(&tech, &host, &slate, ApproximatorKind::NovaNoc, 4)?;
    println!(
        "\nMixed traffic (8 streams, {} requests, {} activations, {} workers): {} queries \
         → {} batches vs {} naive (occupancy {:.2}%, NL speedup {:.3}x, {} switches for \
         {} stall cycles, NL makespan {} of {} serial cycles, {:.1} inferences/s)",
        report.requests,
        report.activations,
        report.workers,
        report.total_queries,
        report.coalesced_batches,
        report.naive_batches,
        report.batch_occupancy_pct,
        report.nl_speedup,
        report.table_switches,
        report.switch_cycles,
        report.makespan_nl_cycles,
        report.nl_cycles,
        report.inferences_per_second
    );
    Ok(())
}
