//! Multi-stream serving: batch non-linear queries from many concurrent
//! inference streams through a pool of worker threads sharing one table.
//!
//! Walks the full serving path: a thread-shared keyed table cache (fit
//! once, share the `Arc`), a `ServingEngine` whose admission stage
//! coalesces eight tenants' GELU bursts into full `(routers × neurons)`
//! batches and feeds them to four shard worker threads over bounded
//! channels, reorder/scatter that is bit-identical to dedicated
//! sequential evaluation, and the analytic multi-stream report (with
//! worker-pool makespan) over a seeded mixed BERT/CNN/synthetic trace.
//!
//! Run with: `cargo run --example serving_engine`

use nova_repro::accel::AcceleratorConfig;
use nova_repro::approx::Activation;
use nova_repro::engine::{evaluate_multi_stream, ApproximatorKind};
use nova_repro::fixed::{Rounding, Q4_12};
use nova_repro::serving::{gather_by_stream, ServingEngine, ServingRequest, TableCache, TableKey};
use nova_repro::synth::TechModel;
use nova_repro::workloads::bert::OpCensus;
use nova_repro::workloads::traffic::{query_words_into, TrafficMix};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = TechModel::cmos22();
    let host = AcceleratorConfig::tpu_v4_like();
    println!(
        "Serving on {}: one {}-query batch per 2-cycle lookup+MAC\n",
        host.name,
        host.total_neurons()
    );

    // 1. The table cache: the GELU fit happens once; the second request
    //    (and every engine, on any thread — `get_or_fit` is `&self`)
    //    shares the same Arc'd table.
    let cache = TableCache::new();
    let key = TableKey::paper(Activation::Gelu);
    let table = cache.get_or_fit(key)?;
    let again = cache.get_or_fit(key)?;
    println!(
        "Table cache: {} fit(s), {} hit(s), shared allocation: {}",
        cache.misses(),
        cache.hits(),
        std::sync::Arc::ptr_eq(&table, &again)
    );

    // 2. Eight concurrent streams, each with a small GELU burst — far
    //    below one batch on its own. Queries are extracted straight into
    //    fixed-point words (no intermediate f64 vector).
    let requests: Vec<ServingRequest> = (0..8)
        .map(|stream| {
            let mut inputs = Vec::new();
            query_words_into(
                stream as u64,
                300,
                -6.0,
                6.0,
                Q4_12,
                Rounding::NearestEven,
                &mut inputs,
            );
            ServingRequest { stream, inputs }
        })
        .collect();
    let mut engine =
        ServingEngine::for_host(ApproximatorKind::NovaNoc, &tech, &host, &cache, key, 4)?;
    let outputs = engine.serve(&requests)?;

    // 3. Reorder/scatter is bit-identical to a dedicated sequential
    //    evaluation — four worker threads are functionally invisible.
    assert_eq!(outputs, engine.serve_reference(&requests));
    for (request, out) in requests.iter().zip(&outputs) {
        for (&x, &y) in request.inputs.iter().zip(out) {
            assert_eq!(y, engine.table().eval(x), "threading must be invisible");
        }
    }
    let by_stream = gather_by_stream(&requests, &outputs);
    let stats = engine.stats();
    println!(
        "Served {} queries from {} streams in {} batches ({} padded slots): \
         occupancy {:.1}%, {:.3e} queries/s — bit-identical per stream ({} streams gathered)",
        stats.queries,
        requests.len(),
        stats.batches,
        stats.padded_slots,
        engine.occupancy_pct(),
        engine.queries_per_second(host.frequency_ghz()),
        by_stream.len()
    );
    let loads = engine.worker_loads();
    println!(
        "Worker pool: {} shard threads served {:?} batches each; makespan {} cycles \
         vs {} serial",
        engine.shards(),
        loads.iter().map(|l| l.batches).collect::<Vec<_>>(),
        engine.makespan_cycles(),
        stats.latency_cycles
    );

    // 4. The analytic view over a seeded mixed-traffic trace.
    let censuses: Vec<OpCensus> = TrafficMix::paper_default(8).census_slate();
    let report = evaluate_multi_stream(&tech, &host, &censuses, ApproximatorKind::NovaNoc, 4)?;
    println!(
        "\nMixed traffic (8 streams, {} requests, {} workers): {} queries → {} batches \
         vs {} naive (occupancy {:.2}%, NL speedup {:.3}x, NL makespan {} of {} serial \
         cycles, {:.1} inferences/s)",
        report.requests,
        report.workers,
        report.total_queries,
        report.coalesced_batches,
        report.naive_batches,
        report.batch_occupancy_pct,
        report.nl_speedup,
        report.makespan_nl_cycles,
        report.nl_cycles,
        report.inferences_per_second
    );
    Ok(())
}
