//! A single attention head end-to-end: scores on the cycle-accurate
//! systolic array, softmax through the NOVA-approximated fixed-point
//! pipeline, compared against the exact floating-point reference.
//!
//! Run with: `cargo run --example attention_inference`

use nova::engine::{evaluate, ApproximatorKind};
use nova_accel::systolic::cycle_accurate;
use nova_accel::AcceleratorConfig;
use nova_approx::softmax::{softmax_exact, ApproxSoftmax};
use nova_fixed::{Rounding, Q4_12};
use nova_workloads::bert::{BertConfig, MatmulDims};

const SEQ: usize = 12;
const DIM: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Integer Q/K matrices (small, deterministic).
    let q: Vec<i64> = (0..SEQ * DIM).map(|i| ((i * 7) % 5) as i64 - 2).collect();
    let kt: Vec<i64> = (0..DIM * SEQ).map(|i| ((i * 3) % 7) as i64 - 3).collect();

    // 1. Scores S = Q·Kᵀ on a cycle-accurate 8×8 output-stationary array.
    let dims = MatmulDims {
        m: SEQ,
        k: DIM,
        n: SEQ,
    };
    let run = cycle_accurate::matmul(8, 8, dims, &q, &kt);
    println!(
        "systolic: {}×{}×{} matmul on an 8×8 OS array took {} cycles",
        SEQ, DIM, SEQ, run.cycles
    );

    // 2. Row-wise softmax: exact vs the NOVA PWL fixed-point pipeline
    //    (1/√d scaling applied first, as attention does).
    let scale = 1.0 / (DIM as f64).sqrt();
    let unit = ApproxSoftmax::new(16, Q4_12, Rounding::NearestEven)?;
    let mut worst = 0.0f64;
    for r in 0..SEQ {
        let logits: Vec<f64> = run.output[r * SEQ..(r + 1) * SEQ]
            .iter()
            .map(|&v| v as f64 * scale)
            .collect();
        let exact = softmax_exact(&logits);
        let approx = unit.eval(&logits);
        for (e, a) in exact.iter().zip(&approx) {
            worst = worst.max((e - a).abs());
        }
        if r == 0 {
            println!("row 0 exact  : {:?}", round3(&exact));
            println!("row 0 approx : {:?}", round3(&approx));
        }
    }
    println!(
        "max |exact − approx| over all {} attention rows: {:.4}",
        SEQ, worst
    );
    assert!(worst < 0.02, "16-breakpoint softmax must stay within 2e-2");

    // 3. What does this cost at scale? The engine's view of BERT-mini.
    let host = AcceleratorConfig::tpu_v3_like();
    for kind in ApproximatorKind::fig8_contenders() {
        let r = evaluate(&host, &BertConfig::bert_mini(), 1024, kind)?;
        println!(
            "{:<28} power {:>8.2} mW, energy/inference {:>8.4} mJ",
            r.approximator, r.approximator_power_mw, r.approximator_energy_mj
        );
    }
    Ok(())
}

fn round3(xs: &[f64]) -> Vec<f64> {
    xs.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}
