//! Mapping a *custom* non-linear function onto NOVA: the NN-LUT flow from
//! scratch — train the 2-layer MLP on your function, extract breakpoints,
//! quantize, compile the broadcast schedule, and verify through the
//! cycle-accurate NoC.
//!
//! Run with: `cargo run --example custom_function`

use nova_approx::mlp::{MlpApproximator, TrainConfig};
use nova_approx::{metrics, QuantizedPwl};
use nova_fixed::{Fixed, Rounding, Q4_12};
use nova_noc::{sim::BroadcastSim, LineConfig};

/// Mish: x·tanh(softplus(x)) — an activation the paper never shipped a
/// table for, approximated with the same machinery.
fn mish(x: f64) -> f64 {
    x * (x.exp().ln_1p()).tanh()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let domain = (-6.0, 6.0);

    // 1. NN-LUT style: a 15-hidden-unit ReLU MLP learns the breakpoints.
    let cfg = TrainConfig {
        hidden: 15,
        epochs: 4000,
        ..TrainConfig::default()
    };
    let mlp = MlpApproximator::train_fn(&mish, domain, cfg)?;
    println!("MLP trained: final MSE {:.2e}", mlp.final_loss());

    // 2. Extract the exact piecewise-linear function the network computes.
    let pwl = mlp.to_piecewise()?;
    let report = metrics::compare(&mish, &|x| pwl.eval(x), domain, 2000);
    println!("extracted PWL: {} segments, {report}", pwl.segments());

    // 3. Quantize to the 16-bit hardware tables.
    let table = QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven)?;
    let qreport = metrics::compare(&mish, &|x| table.eval_f64(x), domain, 2000);
    println!("quantized (Q4.12): {qreport}");

    // 4. Broadcast it over a 4-router NOVA line and spot-check.
    let mut sim = BroadcastSim::new(LineConfig::paper_default(4, 8), &table)?;
    let inputs: Vec<Vec<Fixed>> = (0..4)
        .map(|r| {
            (0..8)
                .map(|n| {
                    Fixed::from_f64(
                        -6.0 + (r * 8 + n) as f64 * 12.0 / 31.0,
                        Q4_12,
                        Rounding::NearestEven,
                    )
                })
                .collect()
        })
        .collect();
    let out = sim.run(&inputs)?;
    println!(
        "\nNoC run: {} flits, {} NoC cycles, latency {} core cycles",
        out.stats.flits_injected, out.stats.noc_cycles, out.stats.core_cycle_latency
    );
    for (r, n) in [(0usize, 0usize), (1, 4), (3, 7)] {
        let x = inputs[r][n].to_f64();
        println!(
            "  mish({x:>6.3}) ≈ {:>7.4} on the NoC (reference {:>7.4})",
            out.outputs[r][n].to_f64(),
            mish(x)
        );
    }
    Ok(())
}
