//! CNN inference on the Jetson Xavier NX: the NVDLA path of the paper
//! (Fig 5c / Table III bottom rows). Runs the four Table I vision models
//! through the engine with the native SDP vs the NOVA overlay.
//!
//! Run with: `cargo run --example cnn_on_jetson`

use nova::engine::{evaluate_cnn, ApproximatorKind};
use nova_accel::AcceleratorConfig;
use nova_workloads::cnn::{census, CnnConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let jetson = AcceleratorConfig::jetson_xavier_nx();
    println!(
        "Host: {} — {} NVDLA cores, {} output neurons each\n",
        jetson.name, jetson.nova_routers, jetson.neurons_per_router
    );
    println!(
        "{:<26} | {:>12} | {:>12} | {:>14} | {:>14} | {:>8}",
        "Model", "MACs", "NL queries", "SDP E (mJ)", "NOVA E (mJ)", "SDP/NOVA"
    );
    for model in CnnConfig::table1_models() {
        let ops = census(&model);
        let sdp = evaluate_cnn(&jetson, &model, ApproximatorKind::NvdlaSdp)?;
        let nova = evaluate_cnn(&jetson, &model, ApproximatorKind::NovaNoc)?;
        println!(
            "{:<26} | {:>12} | {:>12} | {:>14.6} | {:>14.6} | {:>7.1}x",
            model.name,
            ops.total_matmul_macs(),
            ops.approximator_queries(),
            sdp.approximator_energy_mj,
            nova.approximator_energy_mj,
            sdp.approximator_energy_mj / nova.approximator_energy_mj,
        );
    }
    println!(
        "\nThe paper reports the SDP at 48.9 mW vs NOVA at 1.29 mW on this SoC\n\
         (37.8× power); per-inference energy follows the same ratio since the\n\
         lookup latency is comparable."
    );
    Ok(())
}
