//! Quickstart: map GELU onto a NOVA NoC overlaid on a TPU-v4-like
//! accelerator, run a batch through the cycle-accurate simulator, and ask
//! the engine what an inference costs.
//!
//! Run with: `cargo run --example quickstart`

use nova::engine::{evaluate, ApproximatorKind};
use nova::{Mapper, NovaOverlay};
use nova_accel::AcceleratorConfig;
use nova_approx::Activation;
use nova_fixed::{Fixed, Rounding, Q4_12};
use nova_synth::TechModel;
use nova_workloads::bert::BertConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = TechModel::cmos22();
    let host = AcceleratorConfig::tpu_v4_like();
    println!(
        "Host: {} ({} routers × {} neurons)",
        host.name, host.nova_routers, host.neurons_per_router
    );

    // 1. The mapper compiles the activation table and programs the NoC.
    let mapper = Mapper::paper_default();
    let plan = mapper.compile(
        &[Activation::Gelu],
        &tech,
        host.nova_routers,
        host.frequency_ghz(),
        host.router_pitch_mm,
    )?;
    println!(
        "Mapper: {} breakpoints → {} flits/lookup, NoC at {}× core clock ({:.1} GHz), reach {} routers",
        mapper.segments(),
        plan.mappings[0].schedule.flit_count(),
        plan.noc_clock_multiplier,
        plan.noc_clock_ghz,
        plan.reach,
    );

    // 2. Overlay NOVA and run a batch bit-accurately through the NoC,
    //    built through the unified ApproximatorKind dispatch.
    let overlay = NovaOverlay::new(&host);
    let table = &plan.mappings[0].table;
    let mut unit = overlay.unit(&tech, table, ApproximatorKind::NovaNoc)?;
    let inputs: Vec<Vec<Fixed>> = (0..host.nova_routers)
        .map(|r| {
            (0..host.neurons_per_router)
                .map(|n| {
                    let x = ((r * 131 + n) as f64 * 0.37).sin() * 6.0;
                    Fixed::from_f64(x, Q4_12, Rounding::NearestEven)
                })
                .collect()
        })
        .collect();
    let outputs = unit.lookup_batch(&inputs)?;
    let x = inputs[0][0].to_f64();
    println!(
        "Broadcast done in {} core cycles; GELU({x:.3}) ≈ {:.4} (exact {:.4})",
        unit.latency_cycles(),
        outputs[0][0].to_f64(),
        Activation::Gelu.eval(x),
    );

    // 3. Cost: hardware overhead and per-inference energy.
    let ap = overlay.area_power(&tech);
    println!("NOVA NoC on {}: {ap}", host.name);
    let report = evaluate(
        &host,
        &BertConfig::bert_tiny(),
        1024,
        ApproximatorKind::NovaNoc,
    )?;
    println!(
        "BERT-tiny @1024: {} non-linear queries, approximator energy {:.4} mJ ({:.2}% of host compute energy)",
        report.nl_queries, report.approximator_energy_mj, report.energy_overhead_pct
    );
    Ok(())
}
