//! Fused softmax as an op-graph plan: attention rows served end-to-end
//! by the multi-tenant engine — exp lookup, in-engine row reduction,
//! reciprocal lookup and range scale as *one* request, with a table
//! switch between the two lookup stages that is free on the NOVA NoC
//! and a bank rewrite on LUT/SDP hardware.
//!
//! Walks the op-graph serving path top to bottom: the fused plan
//! itself, `EngineSoftmax` rows vs the exact softmax, a real encoder
//! layer scoring its attention through the engine via the
//! `SoftmaxOffload` backend hook, and the per-kind switch ledger on the
//! same fused trace.
//!
//! Run with: `cargo run --example fused_softmax`

use nova_repro::accel::AcceleratorConfig;
use nova_repro::approx::softmax::softmax_exact;
use nova_repro::engine::evaluate_fused_softmax;
use nova_repro::fixed::rng::StdRng;
use nova_repro::noc::LineConfig;
use nova_repro::serving::{Plan, TableCache};
use nova_repro::workloads::attention::{
    max_deviation, EncoderLayer, ExactBackend, Matrix, NonLinearBackend, PwlBackend,
};
use nova_repro::workloads::bert::BertConfig;
use nova_repro::workloads::traffic::TrafficMix;
use nova_repro::{ApproximatorKind, EngineSoftmax};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The plan: what used to be a single activation tag is now an
    //    ordered op graph. The fused softmax pipeline runs five stages,
    //    two of them table lookups (exp, then reciprocal) — so every
    //    batch re-programs the vector unit mid-flight.
    let cache = TableCache::new();
    let soft = EngineSoftmax::new(
        ApproximatorKind::NovaNoc,
        LineConfig::paper_default(2, 8),
        &cache,
    )?;
    let plan: &Plan = soft.plan();
    println!(
        "Fused plan: {} stages over {} table lookup(s), max row {} lanes",
        plan.stages().len(),
        plan.table_keys().count(),
        soft.max_row()
    );

    // 2. Score rows through the engine vs the exact softmax: the whole
    //    pipeline runs in Q4.12 on the modeled hardware, so the outputs
    //    track exp-normalize within the paper's PWL error envelope.
    let mut rng = StdRng::seed_from_u64(0xF05E);
    let rows: Vec<Vec<f64>> = [4usize, 9, 1, 13]
        .iter()
        .map(|&w| (0..w).map(|_| rng.gen_range(-4.0..4.0)).collect())
        .collect();
    let served = soft.softmax_rows(&rows)?;
    let mut worst = 0.0f64;
    for (row, got) in rows.iter().zip(&served) {
        let exact = softmax_exact(row);
        for (g, e) in got.iter().zip(&exact) {
            worst = worst.max((g - e).abs());
        }
        let sum: f64 = got.iter().sum();
        assert!((sum - 1.0).abs() < 0.05, "fused row must stay normalized");
    }
    println!(
        "Served {} ragged rows: worst lane deviation {:.4} from exact softmax",
        rows.len(),
        worst
    );

    // 3. A real encoder layer scores its attention through the engine:
    //    `PwlBackend::with_softmax_offload` reroutes softmax to the
    //    fused plan while matmuls, GELU and LayerNorm stay on the host.
    let config = BertConfig {
        name: "fused-example",
        layers: 1,
        hidden: 32,
        heads: 4,
        ffn: 64,
    };
    let layer = EncoderLayer::random(config, 7);
    let x = Matrix::random(12, 32, 1.0, &mut rng);
    let exact = layer.forward(&x, &ExactBackend);
    let backend = PwlBackend::new(16)?.with_softmax_offload(&soft);
    let fused = layer.forward(&x, &backend);
    let stats = soft.stats();
    assert!(stats.table_switches > 0, "fused plans must re-program");
    assert_eq!(stats.switch_cycles, 0, "NOVA switches are free");
    println!(
        "Encoder attention on '{}': deviation {:.4} from exact; engine ledger: {} requests, \
         {} batches, {} table switch(es) for {} stall cycle(s)",
        backend.name(),
        max_deviation(&exact, &fused),
        stats.requests,
        stats.batches,
        stats.table_switches,
        stats.switch_cycles
    );

    // 4. The per-kind switch ledger on the traffic generator's
    //    fused-attention trace: same rows, same batches — only the NoC
    //    broadcasts its way out of the re-programming bill.
    let host = AcceleratorConfig::tpu_v4_like();
    let trace = TrafficMix::fused_attention(8).fused_rows_slate();
    println!(
        "\nFused-attention trace ({} attention rows) per kind:",
        trace.len()
    );
    for kind in ApproximatorKind::all() {
        let r = evaluate_fused_softmax(&host, &trace, kind, 2)?;
        println!(
            "  {:<28} {} batches, {} switches, switch overhead {:>8.2}%, {:.3e} lanes/s",
            r.approximator,
            r.batches,
            r.table_switches,
            r.switch_overhead_pct,
            r.queries_per_second
        );
    }

    // The line the CI example smoke greps.
    println!(
        "\nFused softmax example: {} rows served as op-graph plans with 0 NOVA stall cycles",
        rows.len() + stats.requests as usize
    );
    Ok(())
}
