//! Degraded-mode serving: a broadcast-link fault fires mid-slate, the
//! canary check catches it, the runtime quarantines the failed shard and
//! requeues its in-flight work units — and the slate still completes
//! bit-identical to the sequential reference. Then a "daemon restart":
//! the fitted table cache warm-starts from a `nova-serde` snapshot
//! instead of refitting every tenant's table.
//!
//! Run with: `cargo run --example degraded_serving`

use nova_repro::approx::Activation;
use nova_repro::engine::ApproximatorKind;
use nova_repro::fixed::{Rounding, Q4_12};
use nova_repro::noc::LineConfig;
use nova_repro::serde::Value;
use nova_repro::serving::{
    FaultInjector, FaultPolicy, ServingEngine, ServingRequest, TableCache, TableKey,
};
use nova_repro::workloads::traffic::query_words_into;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Two resident paper tables, eight tenants' bursts — the same
    //    multi-tenant slate the healthy serving example uses.
    let cache = TableCache::new();
    let gelu = TableKey::paper(Activation::Gelu);
    let exp = TableKey::paper(Activation::Exp);
    let requests: Vec<ServingRequest> = (0..8)
        .map(|stream| {
            let mut inputs = Vec::new();
            query_words_into(
                stream as u64,
                300,
                -6.0,
                6.0,
                Q4_12,
                Rounding::NearestEven,
                &mut inputs,
            );
            ServingRequest::new(stream, if stream % 2 == 0 { gelu } else { exp }, inputs)
        })
        .collect();

    // 2. Four shard workers with fault detection armed, and a
    //    deterministic bit-flip scheduled on shard 1: its third lookup
    //    evaluation comes back with one corrupted output word, exactly
    //    what a flipped broadcast-link bit produces.
    let mut engine = ServingEngine::builder(ApproximatorKind::NovaNoc)
        .line(LineConfig::paper_default(8, 32))
        .cache(&cache)
        .tables([gelu, exp])
        .shards(4)
        .fault_check(FaultPolicy::new().inject(1, FaultInjector::bit_flip(2, 11)))
        .build()?;
    println!(
        "Armed fault detection on {} shards; injecting a bit flip on shard 1 mid-slate",
        engine.shards()
    );

    // 3. Serve through the fault. The canary catches the corrupted
    //    word, shard 1 is quarantined, its in-flight units re-run on
    //    the three survivors — and the output is still bit-identical.
    let reference = engine.serve_reference(&requests);
    let outputs = engine.serve(&requests)?;
    let identical = outputs == reference;
    let stats = engine.stats();
    println!(
        "degraded serve: bit-identical to reference: {identical}, \
         quarantined {} of {} shards ({}% capacity lost), requeued {} unit(s)",
        stats.quarantined_shards,
        engine.shards(),
        stats.degraded_capacity_pct,
        stats.requeued_units
    );
    assert!(identical, "quarantine must be functionally invisible");
    assert_eq!(stats.quarantined_shards, 1);
    assert_eq!(engine.healthy_shards(), 3);
    println!(
        "requeue cost attributed: {} ns across {} requeued unit(s)",
        engine.stage_times().requeue_ns,
        stats.requeued_units
    );

    // 4. Degraded steady state: the survivors keep serving correctly.
    let again = engine.serve(&requests)?;
    assert_eq!(again, reference);
    println!(
        "degraded steady state: follow-up slate bit-identical: {}, healthy shards: {}",
        again == reference,
        engine.healthy_shards()
    );

    // 5. Warm start: snapshot the fitted tables, "restart the daemon"
    //    (a fresh empty cache), restore, and rebuild the engine without
    //    a single refit — the restored raw words are bit-identical.
    let snapshot_json = cache.snapshot().to_json();
    let restarted = TableCache::new();
    let restored = restarted.restore(&Value::from_json(&snapshot_json)?)?;
    let before_misses = restarted.misses();
    let warm_gelu = restarted.get_or_fit(gelu)?;
    let cold_gelu = cache.get_or_fit(gelu)?;
    assert_eq!(restarted.misses(), before_misses, "no refit on warm start");
    assert_eq!(warm_gelu.slopes_raw(), cold_gelu.slopes_raw());
    assert_eq!(warm_gelu.biases_raw(), cold_gelu.biases_raw());
    println!(
        "warm start: restored {restored} table(s) from a {}-byte snapshot, \
         raw-word-identical: true, refits: 0",
        snapshot_json.len()
    );
    let mut warm_engine = ServingEngine::builder(ApproximatorKind::NovaNoc)
        .line(LineConfig::paper_default(8, 32))
        .cache(&restarted)
        .tables([gelu, exp])
        .shards(4)
        .build()?;
    assert_eq!(warm_engine.serve(&requests)?, reference);
    println!("warm-started engine serves bit-identical: true");
    Ok(())
}
