//! Generate the NOVA router SystemVerilog and a self-checking testbench
//! with golden vectors from the bit-accurate model — the reverse of the
//! paper's flow (their RTL was the source of truth; here the Rust model
//! is, and anyone with an RTL simulator can close the loop).
//!
//! Run with: `cargo run --example generate_rtl`
//! Outputs: `target/rtl/nova_router.sv`, `target/rtl/nova_router_tb.sv`

use std::fs;

use nova_approx::{fit, Activation, QuantizedPwl};
use nova_fixed::{Fixed, Rounding, Q4_12};
use nova_noc::rtl;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pwl = fit::fit_activation(Activation::Gelu, 16, fit::BreakpointStrategy::GreedyRefine)?;
    let table = QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven)?;

    // 64 golden vectors spanning the whole domain.
    let vectors: Vec<Fixed> = (0..64)
        .map(|i| Fixed::from_f64(-7.9 + i as f64 * 0.25, Q4_12, Rounding::NearestEven))
        .collect();

    let bundle = rtl::emit(&table, &vectors)?;
    fs::create_dir_all("target/rtl")?;
    fs::write("target/rtl/nova_router.sv", &bundle.router)?;
    fs::write("target/rtl/nova_router_tb.sv", &bundle.testbench)?;

    println!(
        "wrote target/rtl/nova_router.sv     ({} lines)",
        bundle.router.lines().count()
    );
    println!(
        "wrote target/rtl/nova_router_tb.sv  ({} lines, {} golden vectors)",
        bundle.testbench.lines().count(),
        vectors.len()
    );
    println!("\nRouter module header:");
    for line in bundle.router.lines().take(12) {
        println!("  {line}");
    }
    println!(
        "\nSimulate with any SV simulator, e.g.:\n\
         \x20 verilator --binary target/rtl/nova_router.sv target/rtl/nova_router_tb.sv\n\
         \x20 # or: vcs -sverilog target/rtl/*.sv && ./simv"
    );
    Ok(())
}
