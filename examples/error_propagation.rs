//! How does PWL approximation error propagate through a deep encoder?
//!
//! The paper's Table I shows end-task accuracy is unchanged, but never
//! shows *why* depth doesn't compound the error. This study runs a full
//! encoder stack in lockstep with exact and PWL backends and prints the
//! per-layer deviation profile for several breakpoint budgets.
//!
//! Run with: `cargo run --release --example error_propagation`

use nova_fixed::rng::StdRng;
use nova_workloads::attention::{EncoderStack, ExactBackend, Matrix, PwlBackend};
use nova_workloads::bert::BertConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = BertConfig {
        name: "study",
        layers: 8,
        hidden: 64,
        heads: 4,
        ffn: 128,
    };
    let stack = EncoderStack::random(cfg, 99);
    let mut rng = StdRng::seed_from_u64(5);
    let x = Matrix::random(16, cfg.hidden, 1.0, &mut rng);

    println!(
        "Per-layer max deviation vs exact f64, {}-layer encoder (hidden {}, {} heads):\n",
        cfg.layers, cfg.hidden, cfg.heads
    );
    println!(
        "{:>7} | {:>12} | {:>12} | {:>12}",
        "layer", "4 bp", "8 bp", "16 bp"
    );
    let profiles: Vec<Vec<f64>> = [4usize, 8, 16]
        .iter()
        .map(|&bp| {
            let backend = PwlBackend::new(bp).expect("fit succeeds");
            stack.deviation_profile(&x, &ExactBackend, &backend)
        })
        .collect();
    for (layer, ((p4, p8), p16)) in profiles[0]
        .iter()
        .zip(&profiles[1])
        .zip(&profiles[2])
        .enumerate()
    {
        println!("{:>7} | {p4:>12.5} | {p8:>12.5} | {p16:>12.5}", layer + 1);
    }
    let last = cfg.layers - 1;
    println!(
        "\nObservations: residual connections + LayerNorm keep the deviation from\n\
         compounding exponentially; at the paper's 16 breakpoints the {}-layer\n\
         output deviates by {:.4} — well inside the decision margins Table I's\n\
         agreement numbers reflect. Halving the budget to 8 costs {:.1}x more\n\
         deviation.",
        cfg.layers,
        profiles[2][last],
        profiles[1][last] / profiles[2][last].max(1e-12),
    );
    Ok(())
}
