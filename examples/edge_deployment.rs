//! Edge deployment study: REACT (the paper's wearable-class host) running
//! MobileBERT-tiny at edge sequence lengths, with the mapper's feasibility
//! report and an energy sweep.
//!
//! Run with: `cargo run --example edge_deployment`

use nova::engine::{evaluate, ApproximatorKind};
use nova::{Mapper, NovaOverlay};
use nova_accel::AcceleratorConfig;
use nova_approx::Activation;
use nova_synth::TechModel;
use nova_workloads::bert::BertConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let tech = TechModel::cmos22();
    let react = AcceleratorConfig::react();
    let model = BertConfig::mobilebert_tiny();

    // The full attention operator set an encoder needs.
    let ops = [
        Activation::Exp,
        Activation::Recip,
        Activation::Gelu,
        Activation::Rsqrt,
    ];
    let plan = Mapper::paper_default().compile(
        &ops,
        &tech,
        react.nova_routers,
        react.frequency_ghz(),
        react.router_pitch_mm,
    )?;
    println!(
        "REACT mapping: NoC at {}× core clock = {:.2} GHz; SMART reach {} routers; single-cycle broadcast: {}",
        plan.noc_clock_multiplier, plan.noc_clock_ghz, plan.reach, plan.single_cycle_broadcast
    );

    let overlay = NovaOverlay::new(&react);
    println!(
        "NOVA NoC hardware on REACT: {} ({}% of the die)",
        overlay.area_power(&tech),
        overlay
            .area_overhead_pct(&tech)
            .map(|p| format!("{p:.2}"))
            .unwrap_or_default()
    );

    println!("\n{} on REACT, energy vs sequence length:", model.name);
    println!(
        "{:>7} | {:>12} | {:>12} | {:>12} | {:>9}",
        "seq", "NOVA (mJ)", "per-neuron", "per-core", "PC/NOVA"
    );
    for seq in [32usize, 64, 128, 256, 512] {
        let nova = evaluate(&react, &model, seq, ApproximatorKind::NovaNoc)?;
        let pn = evaluate(&react, &model, seq, ApproximatorKind::PerNeuronLut)?;
        let pc = evaluate(&react, &model, seq, ApproximatorKind::PerCoreLut)?;
        println!(
            "{seq:>7} | {:>12.5} | {:>12.5} | {:>12.5} | {:>8.2}x",
            nova.approximator_energy_mj,
            pn.approximator_energy_mj,
            pc.approximator_energy_mj,
            pc.approximator_energy_mj / nova.approximator_energy_mj,
        );
    }
    println!(
        "\nThe paper keeps REACT at seq len 128 — edge workloads — where the\n\
         savings already dominate; softmax's quadratic query count makes the\n\
         gap grow with sequence length."
    );
    Ok(())
}
