//! Workspace umbrella crate for the NOVA (DATE 2024) reproduction.
//!
//! Re-exports the entire stack so downstream users can depend on one
//! crate and reach every layer:
//!
//! - the top-level API ([`engine`], [`Mapper`], [`NovaOverlay`], the
//!   [`VectorUnit`] dispatch) re-exported flat from the `nova` core
//!   crate, and
//! - each underlying layer under its own module name ([`fixed`],
//!   [`approx`], [`lut`], [`noc`], [`synth`], [`accel`], [`workloads`],
//!   [`serde`]).
//!
//! The repo-level `tests/` and `examples/` exercise the stack through
//! these same public crates.
//!
//! ```
//! use nova_repro::{engine, ApproximatorKind};
//! use nova_repro::accel::AcceleratorConfig;
//! use nova_repro::workloads::bert::BertConfig;
//!
//! # fn main() -> Result<(), nova_repro::NovaError> {
//! let tpu = AcceleratorConfig::tpu_v4_like();
//! let report = engine::evaluate(&tpu, &BertConfig::bert_tiny(), 128,
//!                               ApproximatorKind::NovaNoc)?;
//! assert!(report.approximator_energy_mj > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// The top of the stack, flattened: `nova_repro::engine::evaluate`,
// `nova_repro::ApproximatorKind`, ... mirror the `nova` crate root.
pub use nova::*;

/// Fixed-point substrate (`nova-fixed`).
pub use nova_fixed as fixed;

/// Non-linear function approximators (`nova-approx`).
pub use nova_approx as approx;

/// SRAM LUT baselines (`nova-lut`).
pub use nova_lut as lut;

/// The 257-bit line NoC (`nova-noc`).
pub use nova_noc as noc;

/// 22 nm synthesis cost models (`nova-synth`).
pub use nova_synth as synth;

/// Host accelerator models (`nova-accel`).
pub use nova_accel as accel;

/// Workload censuses and functional references (`nova-workloads`).
pub use nova_workloads as workloads;

/// Dependency-free serialization layer (`nova-serde`).
pub use nova_serde as serde;
