//! Workspace umbrella crate: see the `nova` crate for the library API.
