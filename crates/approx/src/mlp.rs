//! The NN-LUT-style MLP approximator.
//!
//! NN-LUT (and therefore NOVA) learns the piecewise-linear approximation of
//! a non-linear function with a tiny 2-layer MLP: `f(x) ≈ b₂ + Σᵢ w₂ᵢ ·
//! ReLU(w₁ᵢ·x + b₁ᵢ)`. A 1-D ReLU network *is* a piecewise-linear function
//! whose kinks sit at `xᵢ = -b₁ᵢ/w₁ᵢ`, so "the number of nodes in the
//! hidden layer represents the number of breakpoints" (paper, §IV). After
//! training, the kinks are extracted as breakpoints and the per-segment
//! `(slope, bias)` pairs are read off (and optionally re-fit by least
//! squares, which can only reduce error since LUT segments are
//! independent).
//!
//! Training happens "at compile time" in the paper's flow; here it is an
//! ordinary deterministic function of the target activation and a seed.

use nova_fixed::rng::StdRng;

use crate::{Activation, ApproxError, PiecewiseLinear};

/// Training hyperparameters for [`MlpApproximator::train`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Number of hidden ReLU units (= learned interior breakpoints).
    pub hidden: usize,
    /// Full-batch Adam epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Training samples drawn uniformly over the domain.
    pub samples: usize,
    /// RNG seed (training is deterministic given the seed).
    pub seed: u64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            hidden: 15,
            epochs: 3000,
            learning_rate: 0.02,
            samples: 256,
            seed: DEFAULT_SEED,
        }
    }
}

/// Default training seed (any fixed value; training is deterministic).
pub const DEFAULT_SEED: u64 = 0x5eed_0007;

/// The 2-layer (1 hidden layer) ReLU MLP: `y = b₂ + Σᵢ w₂ᵢ·ReLU(w₁ᵢ·x+b₁ᵢ)`.
///
/// # Example
///
/// ```
/// use nova_approx::{Activation, MlpApproximator};
/// use nova_approx::mlp::TrainConfig;
///
/// # fn main() -> Result<(), nova_approx::ApproxError> {
/// let cfg = TrainConfig { hidden: 15, epochs: 1500, ..TrainConfig::default() };
/// let mlp = MlpApproximator::train(Activation::Sigmoid, cfg)?;
/// let pwl = mlp.to_piecewise()?;
/// assert!(pwl.segments() <= 16);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MlpApproximator {
    w1: Vec<f64>,
    b1: Vec<f64>,
    w2: Vec<f64>,
    b2: f64,
    domain: (f64, f64),
    /// Final training loss (MSE), exposed for convergence diagnostics.
    final_loss: f64,
}

impl MlpApproximator {
    /// Trains an MLP to approximate `activation` on its default domain.
    ///
    /// Deterministic for a fixed [`TrainConfig`] (seeded RNG, full-batch
    /// Adam). Hidden kinks are initialized on a uniform grid over the
    /// domain so every unit starts responsible for one region — the same
    /// trick NN-LUT uses to stabilize breakpoint learning.
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::BadTrainingConfig`] for zero hidden units,
    /// zero epochs/samples or a non-positive learning rate.
    pub fn train(activation: Activation, config: TrainConfig) -> Result<Self, ApproxError> {
        Self::train_fn(&move |x| activation.eval(x), activation.domain(), config)
    }

    /// Trains against an arbitrary target function on `domain`.
    ///
    /// # Errors
    ///
    /// Same as [`MlpApproximator::train`], plus [`ApproxError::BadDomain`]
    /// for an empty domain.
    pub fn train_fn(
        target: &dyn Fn(f64) -> f64,
        domain: (f64, f64),
        config: TrainConfig,
    ) -> Result<Self, ApproxError> {
        if config.hidden == 0 {
            return Err(ApproxError::BadTrainingConfig("hidden units must be > 0"));
        }
        if config.epochs == 0 || config.samples < 2 {
            return Err(ApproxError::BadTrainingConfig(
                "epochs and samples must be > 0",
            ));
        }
        if !(config.learning_rate > 0.0) {
            return Err(ApproxError::BadTrainingConfig(
                "learning rate must be positive",
            ));
        }
        let (lo, hi) = domain;
        if !(lo < hi) {
            return Err(ApproxError::BadDomain { lo, hi });
        }

        let mut rng = StdRng::seed_from_u64(config.seed);
        let h = config.hidden;
        let span = hi - lo;

        // Kink-grid initialization: unit i responds above x ≈ lo + span·(i+1)/(h+1).
        let mut w1 = vec![0.0; h];
        let mut b1 = vec![0.0; h];
        let mut w2 = vec![0.0; h];
        for i in 0..h {
            let kink = lo + span * (i + 1) as f64 / (h + 1) as f64;
            let w = 1.0 + rng.gen_range(-0.05..0.05);
            w1[i] = w;
            b1[i] = -w * kink + rng.gen_range(-0.01..0.01) * span;
            w2[i] = rng.gen_range(-0.1..0.1);
        }
        let mut b2 = target(lo);

        // Training set: even grid plus jitter (full batch).
        let n = config.samples;
        let xs: Vec<f64> = (0..n)
            .map(|k| lo + span * k as f64 / (n - 1) as f64)
            .collect();
        let ys: Vec<f64> = xs.iter().map(|&x| target(x)).collect();

        // Adam state.
        let (beta1, beta2, eps) = (0.9, 0.999, 1e-8);
        let mut m = vec![0.0; 3 * h + 1];
        let mut v = vec![0.0; 3 * h + 1];
        let mut final_loss = f64::INFINITY;

        for epoch in 1..=config.epochs {
            // Forward + gradient accumulation (full batch).
            let mut g_w1 = vec![0.0; h];
            let mut g_b1 = vec![0.0; h];
            let mut g_w2 = vec![0.0; h];
            let mut g_b2 = 0.0;
            let mut loss = 0.0;
            for (&x, &y) in xs.iter().zip(&ys) {
                let mut pred = b2;
                for i in 0..h {
                    let z = w1[i] * x + b1[i];
                    if z > 0.0 {
                        pred += w2[i] * z;
                    }
                }
                let err = pred - y;
                loss += err * err;
                let d = 2.0 * err / n as f64;
                g_b2 += d;
                for i in 0..h {
                    let z = w1[i] * x + b1[i];
                    if z > 0.0 {
                        g_w2[i] += d * z;
                        g_w1[i] += d * w2[i] * x;
                        g_b1[i] += d * w2[i];
                    }
                }
            }
            final_loss = loss / n as f64;

            // Adam update over the flattened parameter vector.
            let lr = config.learning_rate;
            let t = epoch as f64;
            let mut step = |idx: usize, grad: f64, param: &mut f64| {
                m[idx] = beta1 * m[idx] + (1.0 - beta1) * grad;
                v[idx] = beta2 * v[idx] + (1.0 - beta2) * grad * grad;
                let mh = m[idx] / (1.0 - beta1.powf(t));
                let vh = v[idx] / (1.0 - beta2.powf(t));
                *param -= lr * mh / (vh.sqrt() + eps);
            };
            for i in 0..h {
                step(i, g_w1[i], &mut w1[i]);
                step(h + i, g_b1[i], &mut b1[i]);
                step(2 * h + i, g_w2[i], &mut w2[i]);
            }
            step(3 * h, g_b2, &mut b2);
        }

        Ok(Self {
            w1,
            b1,
            w2,
            b2,
            domain,
            final_loss,
        })
    }

    /// Evaluates the network at `x` (no clamping; the PWL extraction adds
    /// the hardware clamp).
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let mut y = self.b2;
        for i in 0..self.w1.len() {
            let z = self.w1[i] * x + self.b1[i];
            if z > 0.0 {
                y += self.w2[i] * z;
            }
        }
        y
    }

    /// Number of hidden units.
    #[must_use]
    pub fn hidden(&self) -> usize {
        self.w1.len()
    }

    /// Final full-batch MSE after training.
    #[must_use]
    pub fn final_loss(&self) -> f64 {
        self.final_loss
    }

    /// The training domain.
    #[must_use]
    pub fn domain(&self) -> (f64, f64) {
        self.domain
    }

    /// Extracts the exact piecewise-linear function the network computes:
    /// breakpoints at the in-domain hidden kinks, slopes/biases accumulated
    /// segment by segment.
    ///
    /// The result has at most `hidden() + 1` segments (kinks that trained
    /// themselves outside the domain are dropped — the network decided it
    /// needed fewer pieces there).
    ///
    /// # Errors
    ///
    /// Propagates [`PiecewiseLinear::new`] validation failures (cannot
    /// happen for a well-formed network; kept as `Result` for API honesty).
    pub fn to_piecewise(&self) -> Result<PiecewiseLinear, ApproxError> {
        let (lo, hi) = self.domain;
        let h = self.w1.len();
        // Kinks strictly inside the domain, sorted and deduplicated.
        let mut kinks: Vec<f64> = (0..h)
            .filter(|&i| self.w1[i].abs() > 1e-12)
            .map(|i| -self.b1[i] / self.w1[i])
            .filter(|&k| k > lo + 1e-9 && k < hi - 1e-9)
            .collect();
        kinks.sort_by(f64::total_cmp);
        kinks.dedup_by(|a, b| (*a - *b).abs() < 1e-9);

        // Accumulate (slope, bias) per segment by walking the segments and
        // summing the units active in each one. A unit with w1 > 0 is
        // active right of its kink; with w1 < 0, left of it.
        let mut edges = Vec::with_capacity(kinks.len() + 2);
        edges.push(lo);
        edges.extend_from_slice(&kinks);
        edges.push(hi);
        let mut slopes = Vec::with_capacity(edges.len() - 1);
        let mut biases = Vec::with_capacity(edges.len() - 1);
        for w in edges.windows(2) {
            let mid = (w[0] + w[1]) / 2.0;
            let mut a = 0.0;
            let mut b = self.b2;
            for i in 0..h {
                if self.w1[i] * mid + self.b1[i] > 0.0 {
                    a += self.w2[i] * self.w1[i];
                    b += self.w2[i] * self.b1[i];
                }
            }
            slopes.push(a);
            biases.push(b);
        }
        PiecewiseLinear::new(kinks, slopes, biases, self.domain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    fn quick_cfg(hidden: usize) -> TrainConfig {
        TrainConfig {
            hidden,
            epochs: 1200,
            samples: 128,
            ..TrainConfig::default()
        }
    }

    #[test]
    fn config_validation() {
        let bad = TrainConfig {
            hidden: 0,
            ..quick_cfg(1)
        };
        assert!(MlpApproximator::train(Activation::Tanh, bad).is_err());
        let bad = TrainConfig {
            epochs: 0,
            ..quick_cfg(4)
        };
        assert!(MlpApproximator::train(Activation::Tanh, bad).is_err());
        let bad = TrainConfig {
            learning_rate: 0.0,
            ..quick_cfg(4)
        };
        assert!(MlpApproximator::train(Activation::Tanh, bad).is_err());
    }

    #[test]
    fn training_is_deterministic() {
        let a = MlpApproximator::train(Activation::Sigmoid, quick_cfg(7)).unwrap();
        let b = MlpApproximator::train(Activation::Sigmoid, quick_cfg(7)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn mlp_learns_sigmoid() {
        let mlp = MlpApproximator::train(Activation::Sigmoid, quick_cfg(15)).unwrap();
        let report = metrics::compare(
            &|x| Activation::Sigmoid.eval(x),
            &|x| mlp.eval(x),
            Activation::Sigmoid.domain(),
            500,
        );
        assert!(report.max_abs < 0.05, "MLP max err {report}");
        assert!(mlp.final_loss() < 1e-3);
    }

    #[test]
    fn extracted_pwl_matches_network_exactly() {
        let mlp = MlpApproximator::train(Activation::Gelu, quick_cfg(10)).unwrap();
        let pwl = mlp.to_piecewise().unwrap();
        let (lo, hi) = mlp.domain();
        for k in 0..=400 {
            let x = lo + (hi - lo) * k as f64 / 400.0;
            // Skip points exactly at kinks where the two may disagree by
            // floating-point association order.
            let d = (pwl.eval(x) - mlp.eval(x)).abs();
            assert!(
                d < 1e-9,
                "x={x}: pwl {} vs mlp {}",
                pwl.eval(x),
                mlp.eval(x)
            );
        }
    }

    #[test]
    fn segment_budget_respected() {
        let mlp = MlpApproximator::train(Activation::Tanh, quick_cfg(15)).unwrap();
        let pwl = mlp.to_piecewise().unwrap();
        assert!(pwl.segments() <= 16, "got {} segments", pwl.segments());
        assert!(pwl.segments() >= 4, "kinks should mostly stay in-domain");
    }

    #[test]
    fn relu_is_learned_exactly_with_one_unit() {
        // ReLU is itself a 1-kink PWL; a 2-unit net should nail it.
        let cfg = TrainConfig {
            hidden: 2,
            epochs: 3000,
            ..TrainConfig::default()
        };
        let mlp = MlpApproximator::train(Activation::Relu, cfg).unwrap();
        let report = metrics::compare(
            &|x| Activation::Relu.eval(x),
            &|x| mlp.eval(x),
            Activation::Relu.domain(),
            300,
        );
        assert!(report.max_abs < 0.05, "{report}");
    }
}
