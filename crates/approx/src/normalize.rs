//! LayerNorm denominator support: fixed-point reciprocal square root.
//!
//! LayerNorm (`(x - μ) / √(σ² + ε)`) is the third non-linear operator class
//! the paper's workloads query the approximator for. Mean and variance are
//! exact accumulations on the accelerator; only `1/√(σ²+ε)` needs the PWL
//! unit. Range reduction: `v = m·4^e` with `m ∈ [1, 4)` gives
//! `rsqrt(v) = rsqrt(m)·2^{-e}` — one PWL query per LayerNorm row, plus an
//! exact shift.

use nova_fixed::{Fixed, QFormat, Rounding};

use crate::{fit, Activation, ApproxError, QuantizedPwl};

/// Fixed-point `1/√x` evaluator built on a PWL table over `[1, 4]`.
///
/// # Example
///
/// ```
/// use nova_approx::normalize::ApproxRsqrt;
/// use nova_fixed::{Q4_12, Rounding};
///
/// # fn main() -> Result<(), nova_approx::ApproxError> {
/// let unit = ApproxRsqrt::new(16, Q4_12, Rounding::NearestEven)?;
/// let y = unit.eval_f64(2.25); // 1/1.5
/// assert!((y - 2.0 / 3.0).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxRsqrt {
    table: QuantizedPwl,
    format: QFormat,
    rounding: Rounding,
}

impl ApproxRsqrt {
    /// Builds the unit with `segments` PWL segments on the reduced domain.
    ///
    /// # Errors
    ///
    /// Propagates fitting/quantization failures.
    pub fn new(segments: usize, format: QFormat, rounding: Rounding) -> Result<Self, ApproxError> {
        let pwl = fit::fit_activation(
            Activation::Rsqrt,
            segments,
            fit::BreakpointStrategy::GreedyRefine,
        )?;
        Ok(Self {
            table: QuantizedPwl::from_pwl(&pwl, format, rounding)?,
            format,
            rounding,
        })
    }

    /// The underlying PWL table (for broadcast scheduling).
    #[must_use]
    pub fn table(&self) -> &QuantizedPwl {
        &self.table
    }

    /// Evaluates `1/√x` for a positive fixed-point input via range
    /// reduction to `[1, 4)` + one PWL query + an exact shift.
    ///
    /// Returns `None` for non-positive inputs (hardware raises a sticky
    /// flag and substitutes the maximum word; callers decide policy).
    #[must_use]
    pub fn eval(&self, x: Fixed) -> Option<Fixed> {
        if x.raw() <= 0 {
            return None;
        }
        let scale = self.format.scale();
        // Reduce raw = m_raw · 4^e with m_raw in [scale, 4·scale).
        let mut e: i32 = 0;
        let mut m_raw = x.raw();
        while m_raw >= 4 * scale {
            m_raw >>= 2;
            e += 1;
        }
        while m_raw < scale {
            m_raw <<= 2;
            e -= 1;
        }
        let m = Fixed::from_raw_saturating(m_raw, self.format);
        let r = self.table.eval(m); // rsqrt(m) ∈ (0.5, 1]
                                    // rsqrt(x) = rsqrt(m) · 2^{-e}
        let raw = if e >= 0 {
            r.raw() >> e.min(62)
        } else {
            r.raw() << (-e).min(62)
        };
        Some(Fixed::from_raw_saturating(raw, self.format))
    }

    /// Convenience `f64 → f64` wrapper.
    #[must_use]
    pub fn eval_f64(&self, x: f64) -> f64 {
        self.eval(Fixed::from_f64(x, self.format, self.rounding))
            .map_or(f64::NAN, Fixed::to_f64)
    }
}

/// Exact reference LayerNorm over a slice (software gold model).
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn layernorm_exact(xs: &[f64], eps: f64) -> Vec<f64> {
    assert!(!xs.is_empty(), "layernorm of empty slice");
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let inv = (var + eps).sqrt().recip();
    xs.iter().map(|x| (x - mean) * inv).collect()
}

/// LayerNorm where the `1/√(σ²+ε)` step goes through the PWL unit — the
/// hardware path the paper maps. Mean/variance stay exact (they are MAC
/// reductions on the accelerator).
///
/// # Panics
///
/// Panics on an empty slice.
#[must_use]
pub fn layernorm_approx(xs: &[f64], eps: f64, rsqrt: &ApproxRsqrt) -> Vec<f64> {
    assert!(!xs.is_empty(), "layernorm of empty slice");
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let inv = rsqrt.eval_f64(var + eps);
    xs.iter().map(|x| (x - mean) * inv).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use nova_fixed::Q4_12;

    #[test]
    fn rsqrt_accuracy_over_wide_range() {
        let unit = ApproxRsqrt::new(16, Q4_12, Rounding::NearestEven).unwrap();
        for x in [0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 6.0] {
            let y = unit.eval_f64(x);
            let expect = 1.0 / x.sqrt();
            assert!(
                (y - expect).abs() < 0.02 * expect.max(1.0),
                "x={x}: {y} vs {expect}"
            );
        }
    }

    #[test]
    fn rsqrt_rejects_nonpositive() {
        let unit = ApproxRsqrt::new(8, Q4_12, Rounding::NearestEven).unwrap();
        assert!(unit.eval(Fixed::zero(Q4_12)).is_none());
        assert!(unit
            .eval(Fixed::from_f64(-1.0, Q4_12, Rounding::NearestEven))
            .is_none());
    }

    #[test]
    fn layernorm_exact_zero_mean_unit_var() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let y = layernorm_exact(&xs, 1e-5);
        let mean: f64 = y.iter().sum::<f64>() / 4.0;
        let var: f64 = y.iter().map(|v| v * v).sum::<f64>() / 4.0;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn layernorm_approx_close_to_exact() {
        let unit = ApproxRsqrt::new(16, Q4_12, Rounding::NearestEven).unwrap();
        let xs: Vec<f64> = (0..64).map(|i| (i as f64 * 0.31).cos() * 2.0).collect();
        let exact = layernorm_exact(&xs, 1e-5);
        let approx = layernorm_approx(&xs, 1e-5, &unit);
        let report = metrics::compare_slices(&exact, &approx);
        assert!(report.max_abs < 0.05, "{report}");
    }
}
