//! Breakpoint placement strategies and one-call activation fitting.
//!
//! The paper (following NN-LUT) learns breakpoints with an MLP; this module
//! also provides direct placement baselines so the design choice can be
//! ablated: uniform spacing, curvature-weighted quantile spacing, and a
//! greedy error-driven refinement.

use nova_fixed::{QFormat, Rounding};

use crate::{Activation, ApproxError, PiecewiseLinear, QuantizedPwl};

/// How interior breakpoints are placed before the per-segment least-squares
/// fit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[non_exhaustive]
pub enum BreakpointStrategy {
    /// Evenly spaced over the domain. Cheapest; the hardware walkthroughs
    /// (Fig 2/Fig 4) implicitly assume this.
    #[default]
    Uniform,
    /// Quantiles of the function's absolute curvature: more segments where
    /// the function bends. A strong non-learned baseline.
    CurvatureQuantile,
    /// Start uniform, then repeatedly move a breakpoint into the segment
    /// with the largest max-error. Approaches minimax placement.
    GreedyRefine,
}

/// Number of evaluation samples used per segment during fitting.
const FIT_SAMPLES: usize = 64;
/// Dense grid used for curvature estimation and greedy error scans.
const SCAN_SAMPLES: usize = 4096;

/// Places `segments - 1` interior breakpoints for `f` on `domain` with the
/// chosen strategy.
///
/// # Errors
///
/// Returns [`ApproxError::TooFewSegments`] when `segments == 0` and
/// [`ApproxError::BadDomain`] for an empty domain.
pub fn place_breakpoints(
    f: &dyn Fn(f64) -> f64,
    domain: (f64, f64),
    segments: usize,
    strategy: BreakpointStrategy,
) -> Result<Vec<f64>, ApproxError> {
    if segments == 0 {
        return Err(ApproxError::TooFewSegments);
    }
    let (lo, hi) = domain;
    if !(lo < hi) {
        return Err(ApproxError::BadDomain { lo, hi });
    }
    if segments == 1 {
        return Ok(Vec::new());
    }
    match strategy {
        BreakpointStrategy::Uniform => Ok(uniform(domain, segments)),
        BreakpointStrategy::CurvatureQuantile => Ok(curvature_quantile(f, domain, segments)),
        BreakpointStrategy::GreedyRefine => greedy_refine(f, domain, segments),
    }
}

/// Fits a PWL approximation of `f` with `segments` slope/bias pairs.
///
/// # Errors
///
/// Propagates placement and construction errors.
pub fn fit_function(
    f: &dyn Fn(f64) -> f64,
    domain: (f64, f64),
    segments: usize,
    strategy: BreakpointStrategy,
) -> Result<PiecewiseLinear, ApproxError> {
    let bps = place_breakpoints(f, domain, segments, strategy)?;
    PiecewiseLinear::fit(f, domain, &bps, FIT_SAMPLES)
}

/// Fits a named activation on its default hardware domain.
///
/// # Errors
///
/// Propagates placement and construction errors.
///
/// # Example
///
/// ```
/// use nova_approx::fit::{fit_activation, BreakpointStrategy};
/// use nova_approx::Activation;
///
/// # fn main() -> Result<(), nova_approx::ApproxError> {
/// let pwl = fit_activation(Activation::Tanh, 16, BreakpointStrategy::GreedyRefine)?;
/// assert_eq!(pwl.segments(), 16);
/// # Ok(())
/// # }
/// ```
pub fn fit_activation(
    activation: Activation,
    segments: usize,
    strategy: BreakpointStrategy,
) -> Result<PiecewiseLinear, ApproxError> {
    fit_function(
        &move |x| activation.eval(x),
        activation.domain(),
        segments,
        strategy,
    )
}

/// Fits a named activation and quantizes it into hardware tables in one
/// call — the fit → [`QuantizedPwl::from_pwl`] two-step every serving
/// setup, bench and test otherwise repeats.
///
/// # Errors
///
/// Propagates placement, construction and quantization errors.
///
/// # Example
///
/// ```
/// use nova_approx::fit::{fit_quantized, BreakpointStrategy};
/// use nova_approx::Activation;
/// use nova_fixed::{Rounding, Q4_12};
///
/// # fn main() -> Result<(), nova_approx::ApproxError> {
/// let q = fit_quantized(
///     Activation::Gelu,
///     16,
///     BreakpointStrategy::Uniform,
///     Q4_12,
///     Rounding::NearestEven,
/// )?;
/// assert!(q.uses_dense_address());
/// # Ok(())
/// # }
/// ```
pub fn fit_quantized(
    activation: Activation,
    segments: usize,
    strategy: BreakpointStrategy,
    format: QFormat,
    rounding: Rounding,
) -> Result<QuantizedPwl, ApproxError> {
    let pwl = fit_activation(activation, segments, strategy)?;
    QuantizedPwl::from_pwl(&pwl, format, rounding)
}

fn uniform(domain: (f64, f64), segments: usize) -> Vec<f64> {
    let (lo, hi) = domain;
    (1..segments)
        .map(|i| lo + (hi - lo) * i as f64 / segments as f64)
        .collect()
}

/// Places breakpoints at equal-mass quantiles of |f''| (estimated by second
/// differences), so curvy regions get more segments.
fn curvature_quantile(f: &dyn Fn(f64) -> f64, domain: (f64, f64), segments: usize) -> Vec<f64> {
    let (lo, hi) = domain;
    let n = SCAN_SAMPLES;
    let step = (hi - lo) / (n - 1) as f64;
    // Cumulative curvature mass, with a small floor so flat functions
    // degrade gracefully to uniform placement.
    let mut mass = Vec::with_capacity(n);
    let mut acc = 0.0;
    for k in 0..n {
        let x = lo + step * k as f64;
        let c = if k == 0 || k == n - 1 {
            0.0
        } else {
            (f(x + step) - 2.0 * f(x) + f(x - step)).abs() / (step * step)
        };
        acc += c.sqrt() + 1e-9; // sqrt-mass is the L2-optimal density weight
        mass.push(acc);
    }
    let total = acc;
    let mut bps = Vec::with_capacity(segments - 1);
    let mut k = 0usize;
    for i in 1..segments {
        let target = total * i as f64 / segments as f64;
        while k + 1 < n && mass[k] < target {
            k += 1;
        }
        let x = lo + step * k as f64;
        // Keep strict monotonicity even if the mass is locally flat.
        let x = match bps.last() {
            Some(&prev) if x <= prev => prev + step,
            _ => x,
        };
        if x < hi {
            bps.push(x);
        }
    }
    bps.dedup_by(|a, b| *a <= *b);
    bps
}

/// Uniform start, then iteratively rebalance: find the segment with the
/// largest max-error and split it, removing the boundary of the pair of
/// adjacent segments whose merged error is smallest.
fn greedy_refine(
    f: &dyn Fn(f64) -> f64,
    domain: (f64, f64),
    segments: usize,
) -> Result<Vec<f64>, ApproxError> {
    let mut bps = uniform(domain, segments);
    let rounds = 4 * segments;
    for _ in 0..rounds {
        let pwl = PiecewiseLinear::fit(f, domain, &bps, FIT_SAMPLES)?;
        let edges = pwl.edges();
        // Max error per segment over a dense scan.
        let mut seg_err = vec![0.0f64; pwl.segments()];
        let (lo, hi) = domain;
        let step = (hi - lo) / (SCAN_SAMPLES - 1) as f64;
        for k in 0..SCAN_SAMPLES {
            let x = lo + step * k as f64;
            let i = pwl.segment_index(x);
            seg_err[i] = seg_err[i].max((pwl.eval(x) - f(x)).abs());
        }
        // Worst segment: split in the middle.
        let (worst, _) = seg_err
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("at least one segment");
        // Cheapest merge: adjacent pair with the smallest combined error,
        // excluding the worst segment itself.
        let mut best_merge = None;
        let mut best_cost = f64::INFINITY;
        for i in 0..seg_err.len() - 1 {
            if i == worst || i + 1 == worst {
                continue;
            }
            let cost = seg_err[i].max(seg_err[i + 1]);
            if cost < best_cost {
                best_cost = cost;
                best_merge = Some(i);
            }
        }
        let Some(merge) = best_merge else { break };
        // The worst segment's max error must exceed the merged error for the
        // move to help; otherwise we are at a fixed point.
        if seg_err[worst] <= best_cost * 1.05 {
            break;
        }
        // Apply: remove boundary `merge` (between segment merge and merge+1),
        // insert midpoint of worst segment.
        let split_at = (edges[worst] + edges[worst + 1]) / 2.0;
        let mut new_bps: Vec<f64> = Vec::with_capacity(bps.len());
        for (j, &b) in bps.iter().enumerate() {
            if j != merge {
                new_bps.push(b);
            }
        }
        new_bps.push(split_at);
        new_bps.sort_by(f64::total_cmp);
        new_bps.dedup();
        if new_bps.len() != segments - 1 {
            break; // degenerate split (hit an existing boundary); stop
        }
        bps = new_bps;
    }
    Ok(bps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    fn max_err(f: &dyn Fn(f64) -> f64, pwl: &PiecewiseLinear) -> f64 {
        metrics::compare(f, &|x| pwl.eval(x), pwl.domain(), 2000).max_abs
    }

    #[test]
    fn uniform_spacing_counts() {
        let bps = place_breakpoints(&|x| x, (0.0, 1.0), 8, BreakpointStrategy::Uniform).unwrap();
        assert_eq!(bps.len(), 7);
        assert!((bps[0] - 0.125).abs() < 1e-12);
        assert!((bps[6] - 0.875).abs() < 1e-12);
    }

    #[test]
    fn single_segment_has_no_breakpoints() {
        for s in [
            BreakpointStrategy::Uniform,
            BreakpointStrategy::CurvatureQuantile,
            BreakpointStrategy::GreedyRefine,
        ] {
            let bps = place_breakpoints(&|x| x * x, (0.0, 1.0), 1, s).unwrap();
            assert!(bps.is_empty());
        }
    }

    #[test]
    fn zero_segments_rejected() {
        assert!(matches!(
            place_breakpoints(&|x| x, (0.0, 1.0), 0, BreakpointStrategy::Uniform),
            Err(ApproxError::TooFewSegments)
        ));
    }

    #[test]
    fn curvature_beats_uniform_on_exp() {
        let a = Activation::Exp;
        let f = move |x: f64| a.eval(x);
        let uni = fit_activation(a, 8, BreakpointStrategy::Uniform).unwrap();
        let curv = fit_activation(a, 8, BreakpointStrategy::CurvatureQuantile).unwrap();
        assert!(max_err(&f, &curv) < max_err(&f, &uni));
    }

    #[test]
    fn greedy_no_worse_than_uniform() {
        for a in [Activation::Gelu, Activation::Tanh, Activation::Exp] {
            let f = move |x: f64| a.eval(x);
            let uni = fit_activation(a, 16, BreakpointStrategy::Uniform).unwrap();
            let greedy = fit_activation(a, 16, BreakpointStrategy::GreedyRefine).unwrap();
            assert!(
                max_err(&f, &greedy) <= max_err(&f, &uni) * 1.01,
                "{a}: greedy must not regress"
            );
        }
    }

    #[test]
    fn sixteen_breakpoints_hit_paper_accuracy() {
        // The paper reports negligible accuracy loss at 16 breakpoints; the
        // function-level counterpart is max error well under 1% of range.
        for a in [
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Gelu,
            Activation::Exp,
        ] {
            let f = move |x: f64| a.eval(x);
            let pwl = fit_activation(a, 16, BreakpointStrategy::GreedyRefine).unwrap();
            let e = max_err(&f, &pwl);
            assert!(e < 0.02, "{a}: 16-segment max error {e} too large");
        }
    }

    #[test]
    fn strategies_produce_sorted_unique_breakpoints() {
        for s in [
            BreakpointStrategy::Uniform,
            BreakpointStrategy::CurvatureQuantile,
            BreakpointStrategy::GreedyRefine,
        ] {
            let bps = place_breakpoints(&|x| (5.0 * x).sin(), (-2.0, 2.0), 16, s).unwrap();
            for w in bps.windows(2) {
                assert!(w[0] < w[1], "{s:?}: breakpoints must strictly increase");
            }
        }
    }
}
