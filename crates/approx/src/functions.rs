use std::fmt;

/// The non-linear operators attention-based models need, with reference
/// (double-precision) implementations.
///
/// These are the functions the paper's Section II lists as the bottleneck of
/// attention layers (Softmax is built from [`Activation::Exp`] and
/// [`Activation::Recip`]; LayerNorm needs [`Activation::Rsqrt`]). Each
/// variant carries a *default domain*: the clamp range the hardware
/// comparators assume, chosen so that values outside it are saturated
/// regions of the function (e.g. `exp(x) ≈ 0` for `x < -8` after
/// max-subtraction).
///
/// # Example
///
/// ```
/// use nova_approx::Activation;
///
/// assert!((Activation::Sigmoid.eval(0.0) - 0.5).abs() < 1e-12);
/// let (lo, hi) = Activation::Exp.domain();
/// assert!(lo < hi && hi <= 0.0); // softmax exp sees only x - max(x) <= 0
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Activation {
    /// Rectified linear unit `max(0, x)` (exact in PWL form).
    Relu,
    /// Gaussian error linear unit `x·Φ(x)` (BERT/GPT feed-forward).
    Gelu,
    /// Logistic sigmoid `1/(1+e^{-x})`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Exponential on the softmax-normalized domain `[-8, 0]`
    /// (inputs are `x - max(x)`, so always non-positive).
    Exp,
    /// Error function `erf(x)` (GELU's underlying primitive).
    Erf,
    /// SiLU / swish `x·sigmoid(x)` (MobileNet-v3, some BERT variants).
    Silu,
    /// Softplus `ln(1+e^x)`.
    Softplus,
    /// Reciprocal `1/x` on the range-reduced mantissa domain `[1, 2]`
    /// (softmax denominator after power-of-two normalization).
    Recip,
    /// Reciprocal square root `1/√x` on `[1, 4]` (LayerNorm denominator
    /// after power-of-two range reduction with even exponent).
    Rsqrt,
    /// Square root on `[0, 4]`.
    Sqrt,
}

impl Activation {
    /// Every supported activation, for exhaustive sweeps.
    #[must_use]
    pub fn all() -> &'static [Activation] {
        &[
            Activation::Relu,
            Activation::Gelu,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Exp,
            Activation::Erf,
            Activation::Silu,
            Activation::Softplus,
            Activation::Recip,
            Activation::Rsqrt,
            Activation::Sqrt,
        ]
    }

    /// Reference evaluation at `x` (not clamped; callers that model the
    /// hardware clamp first — see `PiecewiseLinear::eval`).
    #[must_use]
    pub fn eval(self, x: f64) -> f64 {
        match self {
            Activation::Relu => x.max(0.0),
            Activation::Gelu => 0.5 * x * (1.0 + erf(x / std::f64::consts::SQRT_2)),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Exp => x.exp(),
            Activation::Erf => erf(x),
            Activation::Silu => x / (1.0 + (-x).exp()),
            Activation::Softplus => {
                // Numerically stable ln(1+e^x).
                if x > 30.0 {
                    x
                } else {
                    x.exp().ln_1p()
                }
            }
            Activation::Recip => x.recip(),
            Activation::Rsqrt => x.sqrt().recip(),
            Activation::Sqrt => x.sqrt(),
        }
    }

    /// The default hardware clamp domain for this function.
    ///
    /// The bounds fit inside the Q4.12 word range (`[-8, 8)`), matching the
    /// 16-bit datapath of the paper's routers.
    #[must_use]
    pub fn domain(self) -> (f64, f64) {
        match self {
            Activation::Relu => (-7.99, 7.99),
            Activation::Gelu => (-7.99, 7.99),
            Activation::Sigmoid => (-7.99, 7.99),
            Activation::Tanh => (-4.0, 4.0),
            Activation::Exp => (-8.0, 0.0),
            Activation::Erf => (-3.0, 3.0),
            Activation::Silu => (-7.99, 7.99),
            Activation::Softplus => (-7.99, 7.99),
            Activation::Recip => (1.0, 2.0),
            Activation::Rsqrt => (1.0, 4.0),
            Activation::Sqrt => (0.0, 4.0),
        }
    }

    /// Human-readable operator name as used in the paper's text.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Activation::Relu => "ReLU",
            Activation::Gelu => "GeLU",
            Activation::Sigmoid => "Sigmoid",
            Activation::Tanh => "Tanh",
            Activation::Exp => "Exp",
            Activation::Erf => "Erf",
            Activation::Silu => "SiLU",
            Activation::Softplus => "Softplus",
            Activation::Recip => "Recip",
            Activation::Rsqrt => "Rsqrt",
            Activation::Sqrt => "Sqrt",
        }
    }
}

impl fmt::Display for Activation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error function via the Abramowitz–Stegun 7.1.26 rational approximation
/// (max absolute error 1.5e-7, far below 16-breakpoint PWL error), used so
/// the crate has no libm dependency beyond `std`.
pub(crate) fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_matches_definition() {
        assert_eq!(Activation::Relu.eval(-3.0), 0.0);
        assert_eq!(Activation::Relu.eval(2.5), 2.5);
    }

    #[test]
    fn gelu_known_values() {
        // GELU(0) = 0; GELU(x) -> x for large x; GELU(-x) small.
        assert_eq!(Activation::Gelu.eval(0.0), 0.0);
        assert!((Activation::Gelu.eval(6.0) - 6.0).abs() < 1e-6);
        assert!(Activation::Gelu.eval(-6.0).abs() < 1e-6);
        // Reference value gelu(1.0) ≈ 0.8413447
        assert!((Activation::Gelu.eval(1.0) - 0.841_344_7).abs() < 1e-4);
    }

    #[test]
    fn erf_accuracy_against_known_points() {
        // A&S 7.1.26 has ~1e-9 residual at 0 (coefficients sum to 1-1e-9).
        assert!((erf(0.0)).abs() < 1e-8);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_91).abs() < 1e-6);
    }

    #[test]
    fn sigmoid_tanh_silu_relations() {
        for x in [-3.0, -0.5, 0.0, 0.7, 2.0] {
            let s = Activation::Sigmoid.eval(x);
            assert!(
                (Activation::Tanh.eval(x) - (2.0 * Activation::Sigmoid.eval(2.0 * x) - 1.0)).abs()
                    < 1e-12
            );
            assert!((Activation::Silu.eval(x) - x * s).abs() < 1e-12);
        }
    }

    #[test]
    fn softplus_stable_for_large_inputs() {
        assert!((Activation::Softplus.eval(50.0) - 50.0).abs() < 1e-9);
        assert!(Activation::Softplus.eval(-50.0) < 1e-9);
    }

    #[test]
    fn domains_are_well_formed_and_fit_q4_12() {
        for &a in Activation::all() {
            let (lo, hi) = a.domain();
            assert!(lo < hi, "{a}: domain must be non-empty");
            assert!(
                lo >= -8.0 && hi < 8.0 || a == Activation::Exp,
                "{a}: fits Q4.12"
            );
        }
    }

    #[test]
    fn recip_rsqrt_on_reduced_domain() {
        assert!((Activation::Recip.eval(1.0) - 1.0).abs() < 1e-12);
        assert!((Activation::Recip.eval(2.0) - 0.5).abs() < 1e-12);
        assert!((Activation::Rsqrt.eval(4.0) - 0.5).abs() < 1e-12);
        assert!((Activation::Sqrt.eval(4.0) - 2.0).abs() < 1e-12);
    }
}
