use std::error::Error;
use std::fmt;

/// Errors produced while constructing or fitting approximators.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ApproxError {
    /// A piecewise-linear function was given inconsistent table lengths.
    TableShape {
        /// Number of segments implied by the slope table.
        slopes: usize,
        /// Number of segments implied by the bias table.
        biases: usize,
        /// Number of interior breakpoints supplied.
        breakpoints: usize,
    },
    /// Breakpoints were not strictly increasing or fell outside the domain.
    BadBreakpoints,
    /// The requested domain is empty or inverted.
    BadDomain {
        /// Requested lower bound.
        lo: f64,
        /// Requested upper bound.
        hi: f64,
    },
    /// Fewer than one segment was requested.
    TooFewSegments,
    /// An MLP training configuration was invalid (zero hidden units, zero
    /// samples, non-positive learning rate, …).
    BadTrainingConfig(&'static str),
    /// A fixed-point conversion failed.
    Fixed(nova_fixed::FixedError),
}

impl fmt::Display for ApproxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApproxError::TableShape { slopes, biases, breakpoints } => write!(
                f,
                "inconsistent PWL table: {slopes} slopes, {biases} biases, {breakpoints} breakpoints"
            ),
            ApproxError::BadBreakpoints => {
                write!(f, "breakpoints must be strictly increasing and inside the domain")
            }
            ApproxError::BadDomain { lo, hi } => write!(f, "empty domain [{lo}, {hi}]"),
            ApproxError::TooFewSegments => write!(f, "at least one segment is required"),
            ApproxError::BadTrainingConfig(msg) => write!(f, "bad training config: {msg}"),
            ApproxError::Fixed(e) => write!(f, "fixed-point conversion failed: {e}"),
        }
    }
}

impl Error for ApproxError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ApproxError::Fixed(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nova_fixed::FixedError> for ApproxError {
    fn from(e: nova_fixed::FixedError) -> Self {
        ApproxError::Fixed(e)
    }
}
