use nova_fixed::{Fixed, QFormat, Rounding};

use crate::{ApproxError, PiecewiseLinear};

/// One broadcast/LUT entry: a quantized `(slope, bias)` pair.
///
/// On the NOVA NoC each pair occupies two 16-bit words of the 257-bit flit;
/// in the LUT baselines each pair is 4 bytes of a 64-byte bank (16 pairs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlopeBias {
    /// Quantized segment slope `a_i`.
    pub slope: Fixed,
    /// Quantized segment bias `b_i`.
    pub bias: Fixed,
}

/// The hardware form of a [`PiecewiseLinear`] function: Q-format breakpoint
/// thresholds for the comparator front-end plus Q-format `(slope, bias)`
/// pairs for the MAC back-end.
///
/// Evaluation is bit-exact with the 16-bit datapath: the comparators
/// produce a lookup address, the addressed pair feeds a fused
/// multiply-add, and one rounding step produces the output word.
///
/// # Example
///
/// ```
/// use nova_approx::{Activation, fit, QuantizedPwl};
/// use nova_fixed::{Fixed, Q4_12, Rounding};
///
/// # fn main() -> Result<(), nova_approx::ApproxError> {
/// let pwl = fit::fit_activation(Activation::Sigmoid, 16, fit::BreakpointStrategy::Uniform)?;
/// let q = QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven)?;
/// let x = Fixed::from_f64(1.0, Q4_12, Rounding::NearestEven);
/// let y = q.eval(x);
/// assert!((y.to_f64() - 0.731).abs() < 0.02);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedPwl {
    format: QFormat,
    rounding: Rounding,
    /// Interior thresholds, strictly increasing (comparator inputs).
    breakpoints: Vec<Fixed>,
    /// One pair per segment (`breakpoints.len() + 1` entries).
    pairs: Vec<SlopeBias>,
    /// Clamp bounds in the fixed format.
    lo: Fixed,
    hi: Fixed,
}

impl QuantizedPwl {
    /// Quantizes a real-valued PWL function into hardware tables.
    ///
    /// Slopes and biases are quantized independently with `rounding`;
    /// breakpoints are quantized and deduplicated (two breakpoints closer
    /// than one resolution step collapse, merging their segments — this is
    /// what the RTL's comparator thresholds would do too).
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::BadBreakpoints`] if after quantization no
    /// valid strictly-increasing threshold list remains but segments
    /// disagree, or a fixed-point error if the domain does not fit the
    /// format.
    pub fn from_pwl(
        pwl: &PiecewiseLinear,
        format: QFormat,
        rounding: Rounding,
    ) -> Result<Self, ApproxError> {
        let (dlo, dhi) = pwl.domain();
        let lo = Fixed::from_f64(dlo, format, rounding);
        let hi = Fixed::from_f64(dhi, format, rounding);

        let mut breakpoints: Vec<Fixed> = Vec::with_capacity(pwl.breakpoints().len());
        let mut pairs: Vec<SlopeBias> = Vec::with_capacity(pwl.segments());
        pairs.push(SlopeBias {
            slope: Fixed::from_f64(pwl.slopes()[0], format, rounding),
            bias: Fixed::from_f64(pwl.biases()[0], format, rounding),
        });
        for (i, &d) in pwl.breakpoints().iter().enumerate() {
            let qd = Fixed::from_f64(d, format, rounding);
            let pair = SlopeBias {
                slope: Fixed::from_f64(pwl.slopes()[i + 1], format, rounding),
                bias: Fixed::from_f64(pwl.biases()[i + 1], format, rounding),
            };
            // Collapse breakpoints that quantize onto an existing threshold
            // (or the domain edge): the later segment wins, as in RTL where
            // equal thresholds make the lower comparator redundant.
            let degenerate = breakpoints.last().is_some_and(|&p| qd.raw() <= p.raw())
                || qd.raw() <= lo.raw()
                || qd.raw() >= hi.raw();
            if degenerate {
                *pairs.last_mut().expect("at least one segment") = pair;
            } else {
                breakpoints.push(qd);
                pairs.push(pair);
            }
        }
        Ok(Self {
            format,
            rounding,
            breakpoints,
            pairs,
            lo,
            hi,
        })
    }

    /// The word format of the tables.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// The rounding mode used for quantization and the MAC output.
    #[must_use]
    pub fn rounding(&self) -> Rounding {
        self.rounding
    }

    /// Number of segments (= slope/bias pairs after quantization).
    #[must_use]
    pub fn segments(&self) -> usize {
        self.pairs.len()
    }

    /// The quantized `(slope, bias)` pairs, one per segment. These are the
    /// words the NOVA NoC broadcasts (8 per flit).
    #[must_use]
    pub fn pairs(&self) -> &[SlopeBias] {
        &self.pairs
    }

    /// The quantized interior thresholds the comparators hold.
    #[must_use]
    pub fn breakpoints(&self) -> &[Fixed] {
        &self.breakpoints
    }

    /// Clamp bounds in the fixed format.
    #[must_use]
    pub fn clamp_bounds(&self) -> (Fixed, Fixed) {
        (self.lo, self.hi)
    }

    /// Clamps an input word to the function domain (the saturating
    /// comparator front-end).
    #[must_use]
    pub fn clamp(&self, x: Fixed) -> Fixed {
        if x.raw() < self.lo.raw() {
            self.lo
        } else if x.raw() > self.hi.raw() {
            self.hi
        } else {
            x
        }
    }

    /// The lookup address the comparator tree generates for input `x`:
    /// the number of thresholds `<= x` after clamping.
    ///
    /// For 16 segments this is the 4-bit address whose LSB is matched
    /// against the NoC flit's tag bit and whose upper bits select the pair
    /// within the flit.
    #[must_use]
    pub fn lookup_address(&self, x: Fixed) -> usize {
        let x = self.clamp(x);
        self.breakpoints.partition_point(|d| d.raw() <= x.raw())
    }

    /// Full datapath evaluation: clamp → comparator address → pair select →
    /// fused MAC with a single output rounding.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in the table's format (a wiring bug, not a data
    /// condition — hardware cannot mix word formats).
    #[must_use]
    pub fn eval(&self, x: Fixed) -> Fixed {
        assert_eq!(
            x.format(),
            self.format,
            "input word format must match table format"
        );
        let xc = self.clamp(x);
        let pair = self.pairs[self.lookup_address(xc)];
        pair.slope
            .mul_add(xc, pair.bias, self.rounding)
            .expect("formats verified equal above")
    }

    /// Evaluates a whole vector through the datapath.
    #[must_use]
    pub fn eval_slice(&self, xs: &[Fixed]) -> Vec<Fixed> {
        let mut out = Vec::new();
        self.eval_into(xs, &mut out);
        out
    }

    /// Evaluates a whole vector through the datapath into a caller-owned
    /// buffer. `out` is cleared first, so steady-state callers (serving
    /// hot loops that evaluate one batch after another) can reuse one
    /// allocation across calls instead of paying a fresh `Vec` per
    /// [`eval_slice`](Self::eval_slice).
    pub fn eval_into(&self, xs: &[Fixed], out: &mut Vec<Fixed>) {
        out.clear();
        out.reserve(xs.len());
        out.extend(xs.iter().map(|&x| self.eval(x)));
    }

    /// Convenience: quantize an `f64`, evaluate, return `f64`.
    #[must_use]
    pub fn eval_f64(&self, x: f64) -> f64 {
        self.eval(Fixed::from_f64(x, self.format, self.rounding))
            .to_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fit, Activation, PiecewiseLinear};
    use nova_fixed::{Q4_12, Q6_10};

    fn sigmoid16() -> QuantizedPwl {
        let pwl =
            fit::fit_activation(Activation::Sigmoid, 16, fit::BreakpointStrategy::Uniform).unwrap();
        QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
    }

    #[test]
    fn sixteen_segments_survive_quantization() {
        let q = sigmoid16();
        assert_eq!(q.segments(), 16);
        assert_eq!(q.breakpoints().len(), 15);
    }

    #[test]
    fn eval_matches_float_pwl_within_quantization() {
        let pwl =
            fit::fit_activation(Activation::Sigmoid, 16, fit::BreakpointStrategy::Uniform).unwrap();
        let q = QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap();
        for k in 0..100 {
            let x = -7.5 + 15.0 * k as f64 / 99.0;
            let err = (q.eval_f64(x) - pwl.eval(x)).abs();
            // Quantization of x, slope, bias and the output each contribute
            // up to half a resolution step; slope error is amplified by |x|<8.
            assert!(err < 8.5 * Q4_12.resolution() * 2.0, "x={x} err={err}");
        }
    }

    #[test]
    fn lookup_address_monotone_nondecreasing() {
        let q = sigmoid16();
        let mut prev = 0;
        for raw in (Q4_12.min_raw()..Q4_12.max_raw()).step_by(257) {
            let x = Fixed::from_raw(raw, Q4_12).unwrap();
            let a = q.lookup_address(x);
            assert!(a >= prev, "address must not decrease as x grows");
            assert!(a < q.segments());
            prev = a;
        }
    }

    #[test]
    fn degenerate_breakpoints_collapse() {
        // Two breakpoints closer than one Q4.12 step must merge.
        let eps = 1e-6;
        let pwl = PiecewiseLinear::new(
            vec![0.5, 0.5 + eps],
            vec![1.0, 2.0, 3.0],
            vec![0.0, 0.1, 0.2],
            (0.0, 1.0),
        )
        .unwrap();
        let q = QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap();
        assert_eq!(q.segments(), 2);
        // The surviving second segment is the *later* one (slope 3).
        assert!((q.pairs()[1].slope.to_f64() - 3.0).abs() < 1e-3);
    }

    #[test]
    fn clamp_bounds_respected() {
        let q = sigmoid16();
        let big = Fixed::from_f64(7.99, Q4_12, Rounding::NearestEven);
        let clamped = q.clamp(big);
        let (_, hi) = q.clamp_bounds();
        assert!(clamped.raw() <= hi.raw());
    }

    #[test]
    fn eval_into_matches_eval_slice_and_reuses_capacity() {
        let q = sigmoid16();
        let xs: Vec<Fixed> = (0..100)
            .map(|k| Fixed::from_f64(-7.5 + 0.15 * k as f64, Q4_12, Rounding::NearestEven))
            .collect();
        let mut out = Vec::new();
        q.eval_into(&xs, &mut out);
        assert_eq!(out, q.eval_slice(&xs));
        // A second, smaller batch reuses the buffer: same result as a
        // fresh eval, stale tail cleared, no reallocation needed.
        let cap = out.capacity();
        q.eval_into(&xs[..10], &mut out);
        assert_eq!(out, q.eval_slice(&xs[..10]));
        assert_eq!(out.capacity(), cap, "steady-state call must not realloc");
    }

    #[test]
    #[should_panic(expected = "format")]
    fn mixed_format_input_panics() {
        let q = sigmoid16();
        let wrong = Fixed::zero(Q6_10);
        let _ = q.eval(wrong);
    }
}
