use nova_fixed::{Fixed, QFormat, Rounding};

use crate::{ApproxError, PiecewiseLinear};

/// One broadcast/LUT entry: a quantized `(slope, bias)` pair.
///
/// On the NOVA NoC each pair occupies two 16-bit words of the 257-bit flit;
/// in the LUT baselines each pair is 4 bytes of a 64-byte bank (16 pairs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlopeBias {
    /// Quantized segment slope `a_i`.
    pub slope: Fixed,
    /// Quantized segment bias `b_i`.
    pub bias: Fixed,
}

/// The hardware form of a [`PiecewiseLinear`] function: Q-format breakpoint
/// thresholds for the comparator front-end plus Q-format `(slope, bias)`
/// pairs for the MAC back-end.
///
/// Evaluation is bit-exact with the 16-bit datapath: the comparators
/// produce a lookup address, the addressed pair feeds a fused
/// multiply-add, and one rounding step produces the output word.
///
/// # Storage layout and the batch kernel
///
/// The table is stored twice, deliberately. The architectural view is
/// `pairs: Vec<SlopeBias>` — an array of structs, in exactly the shape
/// the NoC flit packer and the LUT banks consume. The evaluation view is
/// a structure-of-arrays mirror (`slopes_raw` / `biases_raw`, plain
/// `i64` words): the batch kernel
/// ([`eval_to_slice_unchecked`](Self::eval_to_slice_unchecked)) gathers
/// slope and bias from the two parallel arrays at unit stride instead of
/// striding 32-byte `SlopeBias` records, which is what lets LLVM
/// autovectorize the MAC loop. At ≤ `2^16` segments the duplication
/// costs at most a few hundred KiB against the dense address table's
/// 256 KiB, and typically (16 segments) under 300 bytes. The mirrors are
/// rebuilt on [`from_pwl`](Self::from_pwl) and kept in lockstep by
/// [`copy_from`](Self::copy_from); they are not independently mutable.
///
/// Measured (256-query Q4.12 GELU batch, one AVX-512 core, the
/// `pwl/eval_*` rows of `cargo bench -p nova-bench`): per-element
/// binary search ≈ 14 ns/query, the retired AoS direct-index gather
/// ≈ 10, this SoA kernel ≈ 5–6. All three are bit-identical over every
/// raw word of the format (the full-sweep test below).
///
/// # Example
///
/// ```
/// use nova_approx::{Activation, fit, QuantizedPwl};
/// use nova_fixed::{Fixed, Q4_12, Rounding};
///
/// # fn main() -> Result<(), nova_approx::ApproxError> {
/// let pwl = fit::fit_activation(Activation::Sigmoid, 16, fit::BreakpointStrategy::Uniform)?;
/// let q = QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven)?;
/// let x = Fixed::from_f64(1.0, Q4_12, Rounding::NearestEven);
/// let y = q.eval(x);
/// assert!((y.to_f64() - 0.731).abs() < 0.02);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedPwl {
    format: QFormat,
    rounding: Rounding,
    /// Interior thresholds, strictly increasing (comparator inputs).
    breakpoints: Vec<Fixed>,
    /// One pair per segment (`breakpoints.len() + 1` entries). This is
    /// the architectural (AoS) view — what the NoC broadcasts and the
    /// LUT banks store; the batch kernel reads the SoA mirrors below.
    pairs: Vec<SlopeBias>,
    /// Structure-of-arrays mirror of `pairs`: the raw slope words, in
    /// segment order. An AoS gather (`pairs[addr].slope.raw()`) strides
    /// 32 bytes per element and drags the unused `QFormat` tags through
    /// the cache; these parallel raw arrays give the MAC loop unit-stride
    /// 8-byte gathers the vectorizer can live with. Kept in lockstep with
    /// `pairs` by construction ([`from_pwl`](Self::from_pwl)) and
    /// re-programming ([`copy_from`](Self::copy_from)).
    slopes_raw: Vec<i64>,
    /// SoA mirror of `pairs`: the raw bias words (see `slopes_raw`).
    biases_raw: Vec<i64>,
    /// Clamp bounds in the fixed format.
    lo: Fixed,
    hi: Fixed,
    /// Dense comparator-address table: entry `raw - lo.raw()` holds the
    /// segment address for that clamped raw word, so the eval hot loop
    /// replaces a binary search with one indexed load. Empty when the
    /// clamped raw span exceeds [`DENSE_ADDR_MAX_ENTRIES`] (wide
    /// formats), in which case lookup falls back to `partition_point`.
    addr_table: Vec<u32>,
}

/// Size cap on the dense segment-address table, in entries.
///
/// The boundary is exact and *span-based*, not format-width-based: a table
/// is dense if and only if its clamped raw span
/// `hi.raw() - lo.raw() + 1 <= DENSE_ADDR_MAX_ENTRIES`. Consequences:
///
/// - Any 16-bit format stays dense even on a full-range domain — the
///   widest possible span is exactly 65 536 entries (`i16::MIN..=i16::MAX`),
///   which is `==` the cap, so it fits.
/// - The narrowest format that can fall back is 17 bits total: a
///   full-range 17-bit domain spans 131 072 entries. Whether it *does*
///   fall back still depends on the fitted function's domain — a 24-bit
///   format whose clamped domain covers ≤ 65 536 raw words is dense too.
///
/// Past the cap, [`QuantizedPwl::lookup_address_clamped`] and the batch
/// kernels use the comparator-tree binary search (`partition_point`)
/// instead of paying a multi-megabyte table per fitted function;
/// [`QuantizedPwl::uses_dense_address`] reports which path a table took.
/// The boundary tests pin both sides (65 536-entry span dense,
/// 65 537-entry span not).
pub const DENSE_ADDR_MAX_ENTRIES: usize = 1 << 16;

impl QuantizedPwl {
    /// Quantizes a real-valued PWL function into hardware tables.
    ///
    /// Slopes and biases are quantized independently with `rounding`;
    /// breakpoints are quantized and deduplicated (two breakpoints closer
    /// than one resolution step collapse, merging their segments — this is
    /// what the RTL's comparator thresholds would do too).
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::BadBreakpoints`] if after quantization no
    /// valid strictly-increasing threshold list remains but segments
    /// disagree, or a fixed-point error if the domain does not fit the
    /// format.
    pub fn from_pwl(
        pwl: &PiecewiseLinear,
        format: QFormat,
        rounding: Rounding,
    ) -> Result<Self, ApproxError> {
        let (dlo, dhi) = pwl.domain();
        let lo = Fixed::from_f64(dlo, format, rounding);
        let hi = Fixed::from_f64(dhi, format, rounding);

        let mut breakpoints: Vec<Fixed> = Vec::with_capacity(pwl.breakpoints().len());
        let mut pairs: Vec<SlopeBias> = Vec::with_capacity(pwl.segments());
        pairs.push(SlopeBias {
            slope: Fixed::from_f64(pwl.slopes()[0], format, rounding),
            bias: Fixed::from_f64(pwl.biases()[0], format, rounding),
        });
        for (i, &d) in pwl.breakpoints().iter().enumerate() {
            let qd = Fixed::from_f64(d, format, rounding);
            let pair = SlopeBias {
                slope: Fixed::from_f64(pwl.slopes()[i + 1], format, rounding),
                bias: Fixed::from_f64(pwl.biases()[i + 1], format, rounding),
            };
            // Collapse breakpoints that quantize onto an existing threshold
            // (or the domain edge): the later segment wins, as in RTL where
            // equal thresholds make the lower comparator redundant.
            let degenerate = breakpoints.last().is_some_and(|&p| qd.raw() <= p.raw())
                || qd.raw() <= lo.raw()
                || qd.raw() >= hi.raw();
            if degenerate {
                *pairs.last_mut().expect("at least one segment") = pair;
            } else {
                breakpoints.push(qd);
                pairs.push(pair);
            }
        }
        let addr_table = build_addr_table(&breakpoints, lo, hi);
        let slopes_raw = pairs.iter().map(|p| p.slope.raw()).collect();
        let biases_raw = pairs.iter().map(|p| p.bias.raw()).collect();
        Ok(Self {
            format,
            rounding,
            breakpoints,
            pairs,
            slopes_raw,
            biases_raw,
            lo,
            hi,
            addr_table,
        })
    }

    /// Overwrites this table with `other`'s contents, reusing this
    /// table's heap allocations where capacities allow (the
    /// `Vec::clone_from` path) — the allocation-light re-program a
    /// serving-time table switch wants, in contrast to `clone()` which
    /// always mints fresh vectors.
    pub fn copy_from(&mut self, other: &QuantizedPwl) {
        self.format = other.format;
        self.rounding = other.rounding;
        self.breakpoints.clone_from(&other.breakpoints);
        self.pairs.clone_from(&other.pairs);
        self.slopes_raw.clone_from(&other.slopes_raw);
        self.biases_raw.clone_from(&other.biases_raw);
        self.lo = other.lo;
        self.hi = other.hi;
        self.addr_table.clone_from(&other.addr_table);
    }

    /// Rebuilds a table from its raw serialized words — the warm-start
    /// snapshot codec ([`slopes_raw`](Self::slopes_raw) /
    /// [`biases_raw`](Self::biases_raw) plus raw breakpoints and clamp
    /// bounds). Every derived structure (the AoS pair view, the SoA
    /// mirrors, the dense address table) is reconstructed, so a restored
    /// table is indistinguishable from — and compares equal to — the
    /// [`from_pwl`](Self::from_pwl) original it was snapshotted from.
    ///
    /// # Errors
    ///
    /// Returns [`ApproxError::TableShape`] if the pair arrays disagree or
    /// don't hold exactly one more entry than the breakpoint list,
    /// [`ApproxError::BadDomain`] for an empty or inverted clamp range,
    /// [`ApproxError::BadBreakpoints`] unless the thresholds are strictly
    /// increasing and strictly inside the clamp bounds, and a fixed-point
    /// error if any raw word does not fit `format`.
    pub fn from_raw_parts(
        format: QFormat,
        rounding: Rounding,
        lo_raw: i64,
        hi_raw: i64,
        breakpoints_raw: &[i64],
        slopes_raw: &[i64],
        biases_raw: &[i64],
    ) -> Result<Self, ApproxError> {
        if slopes_raw.len() != biases_raw.len() || slopes_raw.len() != breakpoints_raw.len() + 1 {
            return Err(ApproxError::TableShape {
                slopes: slopes_raw.len(),
                biases: biases_raw.len(),
                breakpoints: breakpoints_raw.len(),
            });
        }
        let lo = Fixed::from_raw(lo_raw, format)?;
        let hi = Fixed::from_raw(hi_raw, format)?;
        if lo_raw >= hi_raw {
            return Err(ApproxError::BadDomain {
                lo: lo.to_f64(),
                hi: hi.to_f64(),
            });
        }
        let mut breakpoints: Vec<Fixed> = Vec::with_capacity(breakpoints_raw.len());
        for &raw in breakpoints_raw {
            let increasing = breakpoints.last().is_none_or(|p| p.raw() < raw);
            if !increasing || raw <= lo_raw || raw >= hi_raw {
                return Err(ApproxError::BadBreakpoints);
            }
            breakpoints.push(Fixed::from_raw(raw, format)?);
        }
        let mut pairs: Vec<SlopeBias> = Vec::with_capacity(slopes_raw.len());
        for (&s, &b) in slopes_raw.iter().zip(biases_raw) {
            pairs.push(SlopeBias {
                slope: Fixed::from_raw(s, format)?,
                bias: Fixed::from_raw(b, format)?,
            });
        }
        let addr_table = build_addr_table(&breakpoints, lo, hi);
        Ok(Self {
            format,
            rounding,
            breakpoints,
            pairs,
            slopes_raw: slopes_raw.to_vec(),
            biases_raw: biases_raw.to_vec(),
            lo,
            hi,
            addr_table,
        })
    }

    /// The word format of the tables.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// The rounding mode used for quantization and the MAC output.
    #[must_use]
    pub fn rounding(&self) -> Rounding {
        self.rounding
    }

    /// Number of segments (= slope/bias pairs after quantization).
    #[must_use]
    pub fn segments(&self) -> usize {
        self.pairs.len()
    }

    /// The quantized `(slope, bias)` pairs, one per segment. These are the
    /// words the NOVA NoC broadcasts (8 per flit).
    #[must_use]
    pub fn pairs(&self) -> &[SlopeBias] {
        &self.pairs
    }

    /// The quantized interior thresholds the comparators hold.
    #[must_use]
    pub fn breakpoints(&self) -> &[Fixed] {
        &self.breakpoints
    }

    /// Clamp bounds in the fixed format.
    #[must_use]
    pub fn clamp_bounds(&self) -> (Fixed, Fixed) {
        (self.lo, self.hi)
    }

    /// The SoA mirror of the segment slopes as raw format words, in
    /// segment order — the view a warm-start snapshot serializes and
    /// [`from_raw_parts`](Self::from_raw_parts) consumes.
    #[must_use]
    pub fn slopes_raw(&self) -> &[i64] {
        &self.slopes_raw
    }

    /// The SoA mirror of the segment biases as raw format words (see
    /// [`slopes_raw`](Self::slopes_raw)).
    #[must_use]
    pub fn biases_raw(&self) -> &[i64] {
        &self.biases_raw
    }

    /// Clamps an input word to the function domain (the saturating
    /// comparator front-end).
    #[must_use]
    pub fn clamp(&self, x: Fixed) -> Fixed {
        if x.raw() < self.lo.raw() {
            self.lo
        } else if x.raw() > self.hi.raw() {
            self.hi
        } else {
            x
        }
    }

    /// The lookup address the comparator tree generates for input `x`:
    /// the number of thresholds `<= x` after clamping.
    ///
    /// For 16 segments this is the 4-bit address whose LSB is matched
    /// against the NoC flit's tag bit and whose upper bits select the pair
    /// within the flit.
    #[must_use]
    pub fn lookup_address(&self, x: Fixed) -> usize {
        self.lookup_address_clamped(self.clamp(x))
    }

    /// The lookup address for a word that is *already clamped* to the
    /// function domain — the batch-eval fast path: one dense-table load
    /// (or, for wide formats past the table cap, one binary search)
    /// without re-clamping.
    ///
    /// # Panics
    ///
    /// May panic (or return an arbitrary in-range address) if `xc` is not
    /// the output of [`clamp`](Self::clamp) — callers own the clamp.
    #[must_use]
    pub fn lookup_address_clamped(&self, xc: Fixed) -> usize {
        debug_assert!(
            xc.raw() >= self.lo.raw() && xc.raw() <= self.hi.raw(),
            "lookup_address_clamped needs a clamped word"
        );
        if self.addr_table.is_empty() {
            self.breakpoints.partition_point(|d| d.raw() <= xc.raw())
        } else {
            self.addr_table[(xc.raw() - self.lo.raw()) as usize] as usize
        }
    }

    /// Entries in the dense segment-address table — 0 when the format's
    /// clamped span exceeds [`DENSE_ADDR_MAX_ENTRIES`] and lookups fall
    /// back to binary search.
    #[must_use]
    pub fn dense_address_entries(&self) -> usize {
        self.addr_table.len()
    }

    /// Whether this table resolves segment addresses through the dense
    /// direct-index table (clamped span ≤ [`DENSE_ADDR_MAX_ENTRIES`]) or
    /// fell back to the comparator-tree binary search. Serving setups
    /// should assert this is `true` for their hot tables — the dense path
    /// is the one the SoA batch kernel vectorizes.
    #[must_use]
    pub fn uses_dense_address(&self) -> bool {
        !self.addr_table.is_empty()
    }

    /// Full datapath evaluation: clamp → comparator address → pair select →
    /// fused MAC with a single output rounding. The clamp happens exactly
    /// once — the address lookup consumes the already-saturated word, as
    /// the comparator front-end does in hardware.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not in the table's format (a wiring bug, not a data
    /// condition — hardware cannot mix word formats).
    #[must_use]
    pub fn eval(&self, x: Fixed) -> Fixed {
        assert_eq!(
            x.format(),
            self.format,
            "input word format must match table format"
        );
        self.eval_clamped(self.clamp(x))
    }

    /// The format-checked, clamped core of [`eval`](Self::eval): pair
    /// select through the dense address table plus the fused MAC.
    #[inline]
    fn eval_clamped(&self, xc: Fixed) -> Fixed {
        let pair = self.pairs[self.lookup_address_clamped(xc)];
        pair.slope
            .mul_add(xc, pair.bias, self.rounding)
            .expect("formats verified equal by the caller")
    }

    /// Evaluates a whole vector through the datapath.
    ///
    /// # Panics
    ///
    /// Panics if any word is not in the table's format.
    #[must_use]
    pub fn eval_slice(&self, xs: &[Fixed]) -> Vec<Fixed> {
        let mut out = Vec::new();
        self.eval_into(xs, &mut out);
        out
    }

    /// Evaluates a whole vector through the datapath into a caller-owned
    /// buffer. `out` is cleared first, so steady-state callers (serving
    /// hot loops that evaluate one batch after another) can reuse one
    /// allocation across calls instead of paying a fresh `Vec` per
    /// [`eval_slice`](Self::eval_slice).
    ///
    /// This is the branch-free batch path: the format check runs as one
    /// pass over the batch instead of per element, and the loop itself
    /// is a `max`/`min` raw-word clamp + dense-table address + raw fused
    /// MAC — no assert, no compare-chain clamp, no per-element `Result`.
    ///
    /// # Panics
    ///
    /// Panics if any word is not in the table's format (checked up front,
    /// before any evaluation).
    pub fn eval_into(&self, xs: &[Fixed], out: &mut Vec<Fixed>) {
        assert!(
            xs.iter().all(|x| x.format() == self.format),
            "input word format must match table format"
        );
        out.clear();
        out.resize(xs.len(), Fixed::zero(self.format));
        self.eval_to_slice_unchecked(xs, out);
    }

    /// Evaluates a slice *in place* over an output slice of equal length —
    /// the zero-copy core the flat batch pipeline drives. Same format
    /// contract (and single up-front check) as [`eval_into`](Self::eval_into).
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != xs.len()` or any word is format-mismatched.
    pub fn eval_to_slice(&self, xs: &[Fixed], out: &mut [Fixed]) {
        assert_eq!(xs.len(), out.len(), "output slice must match input length");
        assert!(
            xs.iter().all(|x| x.format() == self.format),
            "input word format must match table format"
        );
        self.eval_to_slice_unchecked(xs, out);
    }

    /// The structure-of-arrays batch kernel shared by every batch path
    /// (and, through the `nova-lut` / `nova-noc` fast paths, by the whole
    /// serving data plane).
    ///
    /// "Unchecked" refers to the *format* contract only — no `unsafe` is
    /// involved: callers must already have verified that every word of
    /// `xs` is in the table's format and that `out.len() == xs.len()`
    /// (both debug-asserted). [`eval_into`](Self::eval_into) and
    /// [`eval_to_slice`](Self::eval_to_slice) are the checked wrappers.
    ///
    /// The dense path runs chunked 8-wide over raw `i64` words: a first
    /// pass clamps (`max`/`min`, no branch) and gathers the dense segment
    /// address into a small reused index scratch; a second pass gathers
    /// slope/bias from the unit-stride SoA arrays and does the fused MAC
    /// with a branch-free rounding increment. No `Fixed` wrapper exists
    /// inside the loop, format/rounding state is hoisted, and the
    /// rounding mode is monomorphized at dispatch so LLVM can
    /// autovectorize the arithmetic. Bit-identity with the scalar
    /// clamp → [`eval_clamped`](Self::eval_clamped) datapath is pinned by
    /// the full-raw-word sweep test.
    pub fn eval_to_slice_unchecked(&self, xs: &[Fixed], out: &mut [Fixed]) {
        debug_assert_eq!(xs.len(), out.len(), "caller owns the length check");
        debug_assert!(
            xs.iter().all(|x| x.format() == self.format),
            "caller owns the format check"
        );
        if self.addr_table.is_empty() {
            self.eval_binary_search_pass(xs, out);
        } else {
            // Dispatch once so `rounding` is a compile-time constant in
            // each monomorphized copy of the (inlined) dense pass: the
            // rounding match folds away and the loop body is branch-free.
            match self.rounding {
                Rounding::NearestEven => self.eval_dense_soa_pass(xs, out, Rounding::NearestEven),
                Rounding::NearestAway => self.eval_dense_soa_pass(xs, out, Rounding::NearestAway),
                Rounding::Floor => self.eval_dense_soa_pass(xs, out, Rounding::Floor),
            }
        }
    }

    /// The dense-table SoA kernel (see
    /// [`eval_to_slice_unchecked`](Self::eval_to_slice_unchecked)).
    /// `#[inline(always)]` + a literal `rounding` argument at every call
    /// site is what makes each copy monomorphic without duplicating the
    /// rounding logic.
    #[inline(always)]
    fn eval_dense_soa_pass(&self, xs: &[Fixed], out: &mut [Fixed], rounding: Rounding) {
        /// Chunk width of the two-pass loop. 8 × i64 is one 64-byte cache
        /// line and a multiple of every SIMD width the default target
        /// supports, so the stack scratch below vectorizes cleanly.
        const LANES: usize = 8;
        let format = self.format;
        let lo = self.lo.raw();
        let hi = self.hi.raw();
        let table = self.addr_table.as_slice();
        let slopes = self.slopes_raw.as_slice();
        let biases = self.biases_raw.as_slice();
        // `.min(last)` index clamps below keep the compiler's bounds
        // checks out of the loops without `unsafe`; the clamp never binds
        // (addresses are in range by construction of `addr_table`).
        let t_last = table.len() - 1;
        let s_last = slopes.len().min(biases.len()) - 1;
        // Reused per-chunk scratch: clamped raw words and their dense
        // segment addresses, filled by pass 1 and consumed by pass 2.
        let mut craw = [0i64; LANES];
        let mut idx = [0u32; LANES];
        let mut in_chunks = xs.chunks_exact(LANES);
        let mut out_chunks = out.chunks_exact_mut(LANES);
        for (cx, co) in (&mut in_chunks).zip(&mut out_chunks) {
            for j in 0..LANES {
                let c = cx[j].raw().max(lo).min(hi);
                craw[j] = c;
                idx[j] = table[((c - lo) as usize).min(t_last)];
            }
            for j in 0..LANES {
                let a = (idx[j] as usize).min(s_last);
                let raw = Fixed::mul_add_raw(slopes[a], craw[j], biases[a], format, rounding);
                co[j] = Fixed::from_raw_saturating(raw, format);
            }
        }
        // Remainder (< LANES elements): same body, scalar.
        for (&x, slot) in in_chunks
            .remainder()
            .iter()
            .zip(out_chunks.into_remainder())
        {
            let c = x.raw().max(lo).min(hi);
            let a = (table[((c - lo) as usize).min(t_last)] as usize).min(s_last);
            let raw = Fixed::mul_add_raw(slopes[a], c, biases[a], format, rounding);
            *slot = Fixed::from_raw_saturating(raw, format);
        }
    }

    /// Wide formats past the dense-table cap: comparator-tree binary
    /// search per element. The clamp and the fused MAC are the same raw
    /// SoA operations as the dense pass; only the address generation
    /// differs (and dominates), so this path is not chunked.
    fn eval_binary_search_pass(&self, xs: &[Fixed], out: &mut [Fixed]) {
        let format = self.format;
        let rounding = self.rounding;
        let lo = self.lo.raw();
        let hi = self.hi.raw();
        let s_last = self.slopes_raw.len().min(self.biases_raw.len()) - 1;
        for (&x, slot) in xs.iter().zip(out) {
            let craw = x.raw().max(lo).min(hi);
            let addr = self
                .breakpoints
                .partition_point(|d| d.raw() <= craw)
                .min(s_last);
            let raw = Fixed::mul_add_raw(
                self.slopes_raw[addr],
                craw,
                self.biases_raw[addr],
                format,
                rounding,
            );
            *slot = Fixed::from_raw_saturating(raw, format);
        }
    }

    /// Convenience: quantize an `f64`, evaluate, return `f64`.
    #[must_use]
    pub fn eval_f64(&self, x: f64) -> f64 {
        self.eval(Fixed::from_f64(x, self.format, self.rounding))
            .to_f64()
    }
}

/// Precomputes the dense segment-address table over the clamped raw span
/// `[lo, hi]`: one `u32` address per raw word, produced by a single
/// monotone sweep over the (strictly increasing) thresholds. Returns an
/// empty table when the span exceeds [`DENSE_ADDR_MAX_ENTRIES`].
fn build_addr_table(breakpoints: &[Fixed], lo: Fixed, hi: Fixed) -> Vec<u32> {
    let span = (hi.raw() - lo.raw()) as u128 + 1;
    if span > DENSE_ADDR_MAX_ENTRIES as u128 {
        return Vec::new();
    }
    let span = span as usize;
    let mut table = Vec::with_capacity(span);
    let mut addr = 0usize;
    for offset in 0..span {
        let raw = lo.raw() + offset as i64;
        while addr < breakpoints.len() && breakpoints[addr].raw() <= raw {
            addr += 1;
        }
        table.push(addr as u32);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fit, Activation, PiecewiseLinear};
    use nova_fixed::{Q4_12, Q6_10};

    fn sigmoid16() -> QuantizedPwl {
        let pwl =
            fit::fit_activation(Activation::Sigmoid, 16, fit::BreakpointStrategy::Uniform).unwrap();
        QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
    }

    #[test]
    fn sixteen_segments_survive_quantization() {
        let q = sigmoid16();
        assert_eq!(q.segments(), 16);
        assert_eq!(q.breakpoints().len(), 15);
    }

    #[test]
    fn from_raw_parts_round_trips_a_fitted_table() {
        let q = sigmoid16();
        let (lo, hi) = q.clamp_bounds();
        let bp_raw: Vec<i64> = q.breakpoints().iter().map(|b| b.raw()).collect();
        let r = QuantizedPwl::from_raw_parts(
            q.format(),
            q.rounding(),
            lo.raw(),
            hi.raw(),
            &bp_raw,
            q.slopes_raw(),
            q.biases_raw(),
        )
        .unwrap();
        // Raw-word identical, derived structures rebuilt in lockstep.
        assert_eq!(r, q);
        assert_eq!(r.uses_dense_address(), q.uses_dense_address());
        for raw in (Q4_12.min_raw()..=Q4_12.max_raw()).step_by(97) {
            let x = Fixed::from_raw(raw, Q4_12).unwrap();
            assert_eq!(r.eval(x), q.eval(x));
        }
    }

    #[test]
    fn from_raw_parts_rejects_malformed_snapshots() {
        let q = sigmoid16();
        let (lo, hi) = q.clamp_bounds();
        let bp_raw: Vec<i64> = q.breakpoints().iter().map(|b| b.raw()).collect();
        let parts = |bp: &[i64], slopes: &[i64], biases: &[i64], lo: i64, hi: i64| {
            QuantizedPwl::from_raw_parts(q.format(), q.rounding(), lo, hi, bp, slopes, biases)
        };
        // Pair arrays out of step with the breakpoint list.
        assert!(matches!(
            parts(
                &bp_raw,
                &q.slopes_raw()[1..],
                q.biases_raw(),
                lo.raw(),
                hi.raw()
            ),
            Err(ApproxError::TableShape { .. })
        ));
        // Inverted clamp range.
        assert!(matches!(
            parts(&bp_raw, q.slopes_raw(), q.biases_raw(), hi.raw(), lo.raw()),
            Err(ApproxError::BadDomain { .. })
        ));
        // Non-increasing thresholds.
        let mut shuffled = bp_raw.clone();
        shuffled.swap(0, 1);
        assert!(matches!(
            parts(
                &shuffled,
                q.slopes_raw(),
                q.biases_raw(),
                lo.raw(),
                hi.raw()
            ),
            Err(ApproxError::BadBreakpoints)
        ));
        // A threshold sitting on the clamp edge.
        let mut edged = bp_raw.clone();
        edged[0] = lo.raw();
        assert!(matches!(
            parts(&edged, q.slopes_raw(), q.biases_raw(), lo.raw(), hi.raw()),
            Err(ApproxError::BadBreakpoints)
        ));
        // A raw word outside the format.
        let mut wide = bp_raw.clone();
        wide[0] = i64::from(i32::MAX);
        assert!(parts(&wide, q.slopes_raw(), q.biases_raw(), lo.raw(), hi.raw()).is_err());
    }

    #[test]
    fn eval_matches_float_pwl_within_quantization() {
        let pwl =
            fit::fit_activation(Activation::Sigmoid, 16, fit::BreakpointStrategy::Uniform).unwrap();
        let q = QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap();
        for k in 0..100 {
            let x = -7.5 + 15.0 * k as f64 / 99.0;
            let err = (q.eval_f64(x) - pwl.eval(x)).abs();
            // Quantization of x, slope, bias and the output each contribute
            // up to half a resolution step; slope error is amplified by |x|<8.
            assert!(err < 8.5 * Q4_12.resolution() * 2.0, "x={x} err={err}");
        }
    }

    #[test]
    fn lookup_address_monotone_nondecreasing() {
        let q = sigmoid16();
        let mut prev = 0;
        for raw in (Q4_12.min_raw()..Q4_12.max_raw()).step_by(257) {
            let x = Fixed::from_raw(raw, Q4_12).unwrap();
            let a = q.lookup_address(x);
            assert!(a >= prev, "address must not decrease as x grows");
            assert!(a < q.segments());
            prev = a;
        }
    }

    #[test]
    fn degenerate_breakpoints_collapse() {
        // Two breakpoints closer than one Q4.12 step must merge.
        let eps = 1e-6;
        let pwl = PiecewiseLinear::new(
            vec![0.5, 0.5 + eps],
            vec![1.0, 2.0, 3.0],
            vec![0.0, 0.1, 0.2],
            (0.0, 1.0),
        )
        .unwrap();
        let q = QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap();
        assert_eq!(q.segments(), 2);
        // The surviving second segment is the *later* one (slope 3).
        assert!((q.pairs()[1].slope.to_f64() - 3.0).abs() < 1e-3);
    }

    #[test]
    fn clamp_bounds_respected() {
        let q = sigmoid16();
        let big = Fixed::from_f64(7.99, Q4_12, Rounding::NearestEven);
        let clamped = q.clamp(big);
        let (_, hi) = q.clamp_bounds();
        assert!(clamped.raw() <= hi.raw());
    }

    #[test]
    fn eval_into_matches_eval_slice_and_reuses_capacity() {
        let q = sigmoid16();
        let xs: Vec<Fixed> = (0..100)
            .map(|k| Fixed::from_f64(-7.5 + 0.15 * k as f64, Q4_12, Rounding::NearestEven))
            .collect();
        let mut out = Vec::new();
        q.eval_into(&xs, &mut out);
        assert_eq!(out, q.eval_slice(&xs));
        // A second, smaller batch reuses the buffer: same result as a
        // fresh eval, stale tail cleared, no reallocation needed.
        let cap = out.capacity();
        q.eval_into(&xs[..10], &mut out);
        assert_eq!(out, q.eval_slice(&xs[..10]));
        assert_eq!(out.capacity(), cap, "steady-state call must not realloc");
    }

    #[test]
    #[should_panic(expected = "format")]
    fn mixed_format_input_panics() {
        let q = sigmoid16();
        let wrong = Fixed::zero(Q6_10);
        let _ = q.eval(wrong);
    }

    #[test]
    #[should_panic(expected = "format")]
    fn mixed_format_batch_panics_before_evaluating() {
        let q = sigmoid16();
        let xs = vec![Fixed::zero(Q4_12), Fixed::zero(Q6_10)];
        let mut out = Vec::new();
        q.eval_into(&xs, &mut out);
    }

    #[test]
    fn dense_address_table_matches_partition_point_for_every_raw_word() {
        // The tentpole bit-identity proof: for every raw word a 16-bit
        // format can hold, the direct-indexed address equals the
        // comparator tree's binary search, and eval agrees with a
        // from-scratch clamp + partition_point + MAC datapath.
        for activation in [Activation::Sigmoid, Activation::Gelu, Activation::Exp] {
            for segments in [4usize, 16] {
                let pwl =
                    fit::fit_activation(activation, segments, fit::BreakpointStrategy::Uniform)
                        .unwrap();
                let q = QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap();
                let (lo, hi) = q.clamp_bounds();
                assert_eq!(
                    q.dense_address_entries(),
                    (hi.raw() - lo.raw()) as usize + 1,
                    "16-bit span must be dense-indexed"
                );
                for raw in Q4_12.min_raw()..=Q4_12.max_raw() {
                    let x = Fixed::from_raw(raw, Q4_12).unwrap();
                    let xc = q.clamp(x);
                    let reference = q.breakpoints().partition_point(|d| d.raw() <= xc.raw());
                    assert_eq!(
                        q.lookup_address(x),
                        reference,
                        "{activation:?}/{segments}: raw {raw}"
                    );
                    let pair = q.pairs()[reference];
                    let expect = pair.slope.mul_add(xc, pair.bias, q.rounding()).unwrap();
                    assert_eq!(q.eval(x), expect, "{activation:?}/{segments}: raw {raw}");
                }
                // The SoA batch paths (hoisted format check, chunked
                // `max`/`min` raw clamp, raw-word slope/bias gather, raw
                // fused MAC) must agree with scalar eval — and therefore
                // with the per-element AoS datapath checked above — over
                // the same full-raw-word sweep.
                let xs: Vec<Fixed> = (Q4_12.min_raw()..=Q4_12.max_raw())
                    .map(|raw| Fixed::from_raw(raw, Q4_12).unwrap())
                    .collect();
                let scalar: Vec<Fixed> = xs.iter().map(|&x| q.eval(x)).collect();
                let mut batched = Vec::new();
                q.eval_into(&xs, &mut batched);
                assert_eq!(batched, scalar, "{activation:?}/{segments}: eval_into");
                let mut sliced = vec![Fixed::zero(Q4_12); xs.len()];
                q.eval_to_slice(&xs, &mut sliced);
                assert_eq!(sliced, scalar, "{activation:?}/{segments}: eval_to_slice");
            }
        }
    }

    #[test]
    fn soa_arrays_mirror_pairs_through_construction_and_reprogram() {
        // The SoA mirrors must be the raw words of `pairs`, in order,
        // both after `from_pwl` and after an allocation-reusing
        // `copy_from` re-program.
        let sigmoid = sigmoid16();
        let check = |q: &QuantizedPwl| {
            assert_eq!(q.slopes_raw.len(), q.pairs().len());
            assert_eq!(q.biases_raw.len(), q.pairs().len());
            for (i, p) in q.pairs().iter().enumerate() {
                assert_eq!(q.slopes_raw[i], p.slope.raw(), "slope {i}");
                assert_eq!(q.biases_raw[i], p.bias.raw(), "bias {i}");
            }
        };
        check(&sigmoid);
        let gelu_pwl =
            fit::fit_activation(Activation::Gelu, 4, fit::BreakpointStrategy::Uniform).unwrap();
        let gelu = QuantizedPwl::from_pwl(&gelu_pwl, Q4_12, Rounding::NearestEven).unwrap();
        let mut reprogrammed = sigmoid.clone();
        reprogrammed.copy_from(&gelu);
        check(&reprogrammed);
        assert_eq!(reprogrammed, gelu);
    }

    #[test]
    fn dense_address_cap_boundary_is_exact() {
        // The fallback boundary is span-based. A full-range 16-bit domain
        // spans exactly DENSE_ADDR_MAX_ENTRIES raw words — the widest
        // span that stays dense...
        let ramp = |x: f64| 0.125 * x;
        let full16 = fit::fit_function(&ramp, (-8.0, 8.0), 4, fit::BreakpointStrategy::Uniform)
            .map(|pwl| QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap())
            .unwrap();
        let (lo, hi) = full16.clamp_bounds();
        assert_eq!(lo.raw(), Q4_12.min_raw());
        assert_eq!(hi.raw(), Q4_12.max_raw());
        assert_eq!(full16.dense_address_entries(), DENSE_ADDR_MAX_ENTRIES);
        assert!(full16.uses_dense_address());
        // ...while one more total bit over the same real domain doubles
        // the span past the cap: 17 bits is the narrowest format that
        // can fall back, and a full-range 17-bit domain does.
        let q5_12 = QFormat::new(17, 12).unwrap();
        let wide = fit::fit_function(&ramp, (-16.0, 16.0), 4, fit::BreakpointStrategy::Uniform)
            .map(|pwl| QuantizedPwl::from_pwl(&pwl, q5_12, Rounding::NearestEven).unwrap())
            .unwrap();
        let (wlo, whi) = wide.clamp_bounds();
        assert!(
            (whi.raw() - wlo.raw()) as usize + 1 > DENSE_ADDR_MAX_ENTRIES,
            "full 17-bit span must exceed the cap"
        );
        assert_eq!(wide.dense_address_entries(), 0);
        assert!(!wide.uses_dense_address());
        // A *narrow-domain* wide format stays dense — the boundary is the
        // span, not the word width.
        let narrow_domain =
            fit::fit_function(&ramp, (-2.0, 2.0), 4, fit::BreakpointStrategy::Uniform)
                .map(|pwl| QuantizedPwl::from_pwl(&pwl, q5_12, Rounding::NearestEven).unwrap())
                .unwrap();
        assert!(narrow_domain.uses_dense_address());
        assert_eq!(narrow_domain.dense_address_entries(), 4 * 4096 + 1);
        // Both sides of the boundary still evaluate identically to the
        // scalar datapath on their edge words.
        for q in [&full16, &wide, &narrow_domain] {
            let (lo, hi) = q.clamp_bounds();
            let xs = [lo, hi, Fixed::zero(q.format())];
            let mut out = vec![Fixed::zero(q.format()); xs.len()];
            q.eval_to_slice(&xs, &mut out);
            for (&x, &y) in xs.iter().zip(&out) {
                assert_eq!(y, q.eval(x));
            }
        }
    }

    #[test]
    fn empty_and_single_element_batches_on_both_paths() {
        // Chunked-kernel edge pins: the remainder loop must handle a
        // 0-element and a 1-element batch on the dense path, and the
        // binary-search path must do the same.
        let dense = sigmoid16();
        let wide_fmt = QFormat::new(24, 20).unwrap();
        let wide_pwl =
            fit::fit_activation(Activation::Tanh, 16, fit::BreakpointStrategy::Uniform).unwrap();
        let wide = QuantizedPwl::from_pwl(&wide_pwl, wide_fmt, Rounding::NearestEven).unwrap();
        assert!(dense.uses_dense_address());
        assert!(!wide.uses_dense_address());
        for q in [&dense, &wide] {
            let fmt = q.format();
            // Empty: no panic, output untouched/cleared.
            q.eval_to_slice(&[], &mut []);
            let mut out = vec![Fixed::one(fmt); 3];
            q.eval_into(&[], &mut out);
            assert!(out.is_empty(), "eval_into must clear to the input length");
            // Single element, including the clamp edges.
            let (lo, hi) = q.clamp_bounds();
            for x in [lo, hi, Fixed::zero(fmt), Fixed::one(fmt)] {
                let mut one = [Fixed::zero(fmt)];
                q.eval_to_slice(&[x], &mut one);
                assert_eq!(one[0], q.eval(x));
                let mut v = Vec::new();
                q.eval_into(&[x], &mut v);
                assert_eq!(v, vec![q.eval(x)]);
            }
        }
    }

    #[test]
    fn wide_formats_fall_back_to_binary_search() {
        // At 20 fraction bits tanh's clamped domain spans ~2^23 raw
        // values — past the dense-table cap, so the table must stay empty
        // and lookups must still agree with partition_point on sampled
        // words.
        let wide = QFormat::new(24, 20).unwrap();
        let pwl =
            fit::fit_activation(Activation::Tanh, 16, fit::BreakpointStrategy::Uniform).unwrap();
        let q = QuantizedPwl::from_pwl(&pwl, wide, Rounding::NearestEven).unwrap();
        assert_eq!(q.dense_address_entries(), 0, "wide span must not be dense");
        for raw in (wide.min_raw()..wide.max_raw()).step_by(65_537) {
            let x = Fixed::from_raw(raw, wide).unwrap();
            let xc = q.clamp(x);
            assert_eq!(
                q.lookup_address(x),
                q.breakpoints().partition_point(|d| d.raw() <= xc.raw())
            );
        }
        // The batch paths' binary-search branch must agree with scalar
        // eval too.
        let xs: Vec<Fixed> = (wide.min_raw()..wide.max_raw())
            .step_by(65_537)
            .map(|raw| Fixed::from_raw(raw, wide).unwrap())
            .collect();
        let mut out = vec![Fixed::zero(wide); xs.len()];
        q.eval_to_slice(&xs, &mut out);
        for (&x, &y) in xs.iter().zip(&out) {
            assert_eq!(y, q.eval(x));
        }
    }

    #[test]
    fn eval_to_slice_matches_eval_slice() {
        let q = sigmoid16();
        let xs: Vec<Fixed> = (0..257)
            .map(|k| Fixed::from_f64(-8.0 + 0.0625 * k as f64, Q4_12, Rounding::NearestEven))
            .collect();
        let mut out = vec![Fixed::zero(Q4_12); xs.len()];
        q.eval_to_slice(&xs, &mut out);
        assert_eq!(out, q.eval_slice(&xs));
    }
}
