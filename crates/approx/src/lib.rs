//! Non-linear function approximation substrate for the NOVA reproduction.
//!
//! NN-LUT (Yu et al., DAC 2022) showed that a tiny 2-layer MLP can learn a
//! piecewise-linear (PWL) approximation of any activation function used by
//! attention models, and that 16 breakpoints suffice for negligible accuracy
//! loss. NOVA keeps exactly that mapping and only changes *where* the
//! slope/bias table lives (NoC wires instead of LUT SRAM). This crate is the
//! software half of that story:
//!
//! - [`Activation`]: reference implementations of the non-linear operators
//!   attention layers need (exp, GELU, sigmoid, tanh, erf, reciprocal, …),
//! - [`PiecewiseLinear`]: the PWL function type with per-segment
//!   least-squares fitting,
//! - [`MlpApproximator`]: the NN-LUT-style 2-layer MLP whose hidden ReLU
//!   kinks *are* the learned breakpoints,
//! - [`fit`]: direct breakpoint-placement baselines (uniform / quantile /
//!   greedy) for ablations,
//! - [`QuantizedPwl`]: the hardware table — Q-format slope/bias pairs and
//!   breakpoints, plus the comparator address function,
//! - [`softmax`]: exact, online-normalizer and PWL-approximated softmax
//!   pipelines,
//! - [`metrics`]: error reports used by the Table I reproduction.
//!
//! # Example: approximate GELU with 16 breakpoints
//!
//! ```
//! use nova_approx::{Activation, fit, metrics};
//!
//! # fn main() -> Result<(), nova_approx::ApproxError> {
//! let pwl = fit::fit_activation(Activation::Gelu, 16, fit::BreakpointStrategy::GreedyRefine)?;
//! let report = metrics::compare(&|x| Activation::Gelu.eval(x), &|x| pwl.eval(x),
//!                               pwl.domain(), 1000);
//! assert!(report.max_abs < 0.02);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// `!(lo < hi)` is used deliberately for NaN-rejecting domain validation:
// it is true for NaN bounds where `lo >= hi` would be false.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

mod error;
mod functions;
mod piecewise;
mod quantized;

pub mod fit;
pub mod metrics;
pub mod mlp;
pub mod normalize;
pub mod softmax;

pub use error::ApproxError;
pub use functions::Activation;
pub use mlp::MlpApproximator;
pub use piecewise::PiecewiseLinear;
pub use quantized::{QuantizedPwl, SlopeBias, DENSE_ADDR_MAX_ENTRIES};

/// The breakpoint count the paper uses for all attention-model evaluations
/// (Table I: "all models use 16 breakpoints except CIFAR-10 which uses 8").
pub const PAPER_BREAKPOINTS: usize = 16;

/// The breakpoint count used by the Fig 2 / Fig 4 walkthroughs.
pub const WALKTHROUGH_BREAKPOINTS: usize = 8;
