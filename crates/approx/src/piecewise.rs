use std::fmt;

use crate::ApproxError;

/// A piecewise-linear function: `n` segments over a clamp domain, each with
/// an independent slope and bias (`y = a_i·x + b_i` on segment `i`).
///
/// This is the mathematical object NN-LUT stores in SRAM and NOVA stores in
/// wires. Segments need not join continuously — each `(slope, bias)` pair is
/// fit independently, which is exactly what a LUT of per-segment pairs
/// expresses and gives strictly lower L2 error than a continuous fit.
///
/// Interior breakpoints `d_1 < d_2 < … < d_{n-1}` split the domain
/// `[lo, hi]`; inputs are clamped to the domain first, mirroring the
/// saturating comparator front-end of the hardware.
///
/// # Example
///
/// ```
/// use nova_approx::PiecewiseLinear;
///
/// # fn main() -> Result<(), nova_approx::ApproxError> {
/// // |x| on [-1, 1] with one breakpoint at 0.
/// let pwl = PiecewiseLinear::new(vec![0.0], vec![-1.0, 1.0], vec![0.0, 0.0], (-1.0, 1.0))?;
/// assert_eq!(pwl.eval(-0.5), 0.5);
/// assert_eq!(pwl.eval(0.25), 0.25);
/// assert_eq!(pwl.eval(9.0), 1.0); // clamped to the domain edge
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PiecewiseLinear {
    breakpoints: Vec<f64>,
    slopes: Vec<f64>,
    biases: Vec<f64>,
    domain: (f64, f64),
}

impl PiecewiseLinear {
    /// Builds a PWL function from explicit tables.
    ///
    /// `breakpoints` are the `n-1` interior boundaries for `n = slopes.len()`
    /// segments.
    ///
    /// # Errors
    ///
    /// - [`ApproxError::TableShape`] if `slopes`, `biases`, `breakpoints`
    ///   lengths are inconsistent,
    /// - [`ApproxError::TooFewSegments`] if there are no segments,
    /// - [`ApproxError::BadDomain`] if `lo >= hi`,
    /// - [`ApproxError::BadBreakpoints`] if breakpoints are not strictly
    ///   increasing inside `(lo, hi)`.
    pub fn new(
        breakpoints: Vec<f64>,
        slopes: Vec<f64>,
        biases: Vec<f64>,
        domain: (f64, f64),
    ) -> Result<Self, ApproxError> {
        if slopes.is_empty() {
            return Err(ApproxError::TooFewSegments);
        }
        if slopes.len() != biases.len() || breakpoints.len() + 1 != slopes.len() {
            return Err(ApproxError::TableShape {
                slopes: slopes.len(),
                biases: biases.len(),
                breakpoints: breakpoints.len(),
            });
        }
        let (lo, hi) = domain;
        if !(lo < hi) {
            return Err(ApproxError::BadDomain { lo, hi });
        }
        let mut prev = lo;
        for &d in &breakpoints {
            if !(d > prev && d < hi) {
                return Err(ApproxError::BadBreakpoints);
            }
            prev = d;
        }
        Ok(Self {
            breakpoints,
            slopes,
            biases,
            domain,
        })
    }

    /// Fits per-segment least-squares lines to `f` over the given interior
    /// breakpoints using `samples_per_segment` evenly spaced samples.
    ///
    /// # Errors
    ///
    /// Propagates the constructor's validation errors for the supplied
    /// breakpoints/domain.
    pub fn fit(
        f: &dyn Fn(f64) -> f64,
        domain: (f64, f64),
        breakpoints: &[f64],
        samples_per_segment: usize,
    ) -> Result<Self, ApproxError> {
        let n = breakpoints.len() + 1;
        let mut slopes = Vec::with_capacity(n);
        let mut biases = Vec::with_capacity(n);
        let edges = Self::edges_of(domain, breakpoints);
        for w in edges.windows(2) {
            let (a, b) = least_squares_line(f, w[0], w[1], samples_per_segment.max(2));
            slopes.push(a);
            biases.push(b);
        }
        Self::new(breakpoints.to_vec(), slopes, biases, domain)
    }

    fn edges_of(domain: (f64, f64), breakpoints: &[f64]) -> Vec<f64> {
        let mut edges = Vec::with_capacity(breakpoints.len() + 2);
        edges.push(domain.0);
        edges.extend_from_slice(breakpoints);
        edges.push(domain.1);
        edges
    }

    /// Number of segments (= slope/bias pairs = the paper's "breakpoints").
    #[must_use]
    pub fn segments(&self) -> usize {
        self.slopes.len()
    }

    /// The clamp domain `[lo, hi]`.
    #[must_use]
    pub fn domain(&self) -> (f64, f64) {
        self.domain
    }

    /// Interior breakpoints (`segments() - 1` of them).
    #[must_use]
    pub fn breakpoints(&self) -> &[f64] {
        &self.breakpoints
    }

    /// Per-segment slopes.
    #[must_use]
    pub fn slopes(&self) -> &[f64] {
        &self.slopes
    }

    /// Per-segment biases.
    #[must_use]
    pub fn biases(&self) -> &[f64] {
        &self.biases
    }

    /// Segment boundaries including the domain edges
    /// (`segments() + 1` values).
    #[must_use]
    pub fn edges(&self) -> Vec<f64> {
        Self::edges_of(self.domain, &self.breakpoints)
    }

    /// The segment index a (clamped) input falls into — the "lookup
    /// address" the hardware comparators generate.
    #[must_use]
    pub fn segment_index(&self, x: f64) -> usize {
        let x = x.clamp(self.domain.0, self.domain.1);
        // partition_point returns the number of breakpoints <= x, i.e. the
        // comparator count that fired — exactly the thermometer-to-binary
        // encoding of the hardware address generator.
        self.breakpoints.partition_point(|&d| d <= x)
    }

    /// Evaluates the PWL function (clamping the input to the domain).
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let xc = x.clamp(self.domain.0, self.domain.1);
        let i = self.segment_index(xc);
        self.slopes[i] * xc + self.biases[i]
    }
}

impl fmt::Display for PiecewiseLinear {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PWL({} segments on [{}, {}])",
            self.segments(),
            self.domain.0,
            self.domain.1
        )
    }
}

/// Least-squares line `y = a·x + b` over `n` even samples of `f` on
/// `[lo, hi]`.
fn least_squares_line(f: &dyn Fn(f64) -> f64, lo: f64, hi: f64, n: usize) -> (f64, f64) {
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    let step = (hi - lo) / (n - 1) as f64;
    for k in 0..n {
        let x = lo + step * k as f64;
        let y = f(x);
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    let nf = n as f64;
    let denom = nf * sxx - sx * sx;
    if denom.abs() < 1e-30 {
        // Degenerate (all x identical): flat line through the mean.
        return (0.0, sy / nf);
    }
    let a = (nf * sxy - sx * sy) / denom;
    let b = (sy - a * sx) / nf;
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Activation;

    #[test]
    fn constructor_validates_shapes() {
        assert!(matches!(
            PiecewiseLinear::new(vec![], vec![], vec![], (0.0, 1.0)),
            Err(ApproxError::TooFewSegments)
        ));
        assert!(matches!(
            PiecewiseLinear::new(vec![0.5], vec![1.0], vec![0.0], (0.0, 1.0)),
            Err(ApproxError::TableShape { .. })
        ));
        assert!(matches!(
            PiecewiseLinear::new(vec![], vec![1.0], vec![0.0], (1.0, 1.0)),
            Err(ApproxError::BadDomain { .. })
        ));
        assert!(matches!(
            PiecewiseLinear::new(vec![2.0], vec![1.0, 1.0], vec![0.0, 0.0], (0.0, 1.0)),
            Err(ApproxError::BadBreakpoints)
        ));
        assert!(matches!(
            PiecewiseLinear::new(vec![0.5, 0.5], vec![1.0; 3], vec![0.0; 3], (0.0, 1.0)),
            Err(ApproxError::BadBreakpoints)
        ));
    }

    #[test]
    fn segment_index_thermometer() {
        let pwl = PiecewiseLinear::new(
            vec![-1.0, 0.0, 1.0],
            vec![0.0; 4],
            vec![0.0; 4],
            (-2.0, 2.0),
        )
        .unwrap();
        assert_eq!(pwl.segment_index(-1.5), 0);
        assert_eq!(pwl.segment_index(-1.0), 1); // breakpoint belongs to the upper segment
        assert_eq!(pwl.segment_index(-0.5), 1);
        assert_eq!(pwl.segment_index(0.7), 2);
        assert_eq!(pwl.segment_index(1.2), 3);
        assert_eq!(pwl.segment_index(99.0), 3); // clamped
        assert_eq!(pwl.segment_index(-99.0), 0);
    }

    #[test]
    fn fit_linear_function_is_exact() {
        let f = |x: f64| 3.0 * x - 1.0;
        let pwl = PiecewiseLinear::fit(&f, (-2.0, 2.0), &[0.0], 50).unwrap();
        for x in [-1.9, -0.3, 0.0, 1.4] {
            assert!((pwl.eval(x) - f(x)).abs() < 1e-9);
        }
    }

    #[test]
    fn more_segments_reduce_error() {
        let f = |x: f64| Activation::Sigmoid.eval(x);
        let dom = (-6.0, 6.0);
        let coarse = PiecewiseLinear::fit(&f, dom, &[-2.0, 2.0], 50).unwrap();
        let bp16: Vec<f64> = (1..16).map(|i| -6.0 + 12.0 * i as f64 / 16.0).collect();
        let fine = PiecewiseLinear::fit(&f, dom, &bp16, 50).unwrap();
        let err = |p: &PiecewiseLinear| {
            (0..=600)
                .map(|k| -6.0 + k as f64 * 0.02)
                .map(|x| (p.eval(x) - f(x)).abs())
                .fold(0.0f64, f64::max)
        };
        assert!(err(&fine) < err(&coarse) / 4.0);
    }

    #[test]
    fn eval_clamps_to_domain() {
        let f = |x: f64| x * x;
        let pwl = PiecewiseLinear::fit(&f, (0.0, 2.0), &[1.0], 50).unwrap();
        assert_eq!(pwl.eval(5.0), pwl.eval(2.0));
        assert_eq!(pwl.eval(-5.0), pwl.eval(0.0));
    }

    #[test]
    fn edges_include_domain() {
        let pwl =
            PiecewiseLinear::new(vec![0.5], vec![1.0, 1.0], vec![0.0, 0.0], (0.0, 1.0)).unwrap();
        assert_eq!(pwl.edges(), vec![0.0, 0.5, 1.0]);
    }
}
