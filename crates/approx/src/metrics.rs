//! Approximation error metrics used by the Table I reproduction and the
//! fitting ablations.

use std::fmt;

/// Error statistics of an approximation against a reference over a scan
/// grid.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ErrorReport {
    /// Maximum absolute error.
    pub max_abs: f64,
    /// Mean absolute error.
    pub mean_abs: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// Maximum relative error (w.r.t. reference values with |y| > 1e-6).
    pub max_rel: f64,
    /// Input location of the maximum absolute error.
    pub argmax: f64,
}

impl fmt::Display for ErrorReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "max|e|={:.3e} @x={:.3}, mean|e|={:.3e}, rmse={:.3e}, max rel={:.3e}",
            self.max_abs, self.argmax, self.mean_abs, self.rmse, self.max_rel
        )
    }
}

/// Compares `approx` against `reference` over `n` evenly spaced points of
/// `domain`.
///
/// # Panics
///
/// Panics if `n < 2` or the domain is empty — both are harness bugs, not
/// data conditions.
#[must_use]
pub fn compare(
    reference: &dyn Fn(f64) -> f64,
    approx: &dyn Fn(f64) -> f64,
    domain: (f64, f64),
    n: usize,
) -> ErrorReport {
    assert!(n >= 2, "need at least two scan points");
    let (lo, hi) = domain;
    assert!(lo < hi, "empty domain");
    let step = (hi - lo) / (n - 1) as f64;
    let mut report = ErrorReport::default();
    let mut sum_abs = 0.0;
    let mut sum_sq = 0.0;
    for k in 0..n {
        let x = lo + step * k as f64;
        let y = reference(x);
        let e = (approx(x) - y).abs();
        sum_abs += e;
        sum_sq += e * e;
        if e > report.max_abs {
            report.max_abs = e;
            report.argmax = x;
        }
        if y.abs() > 1e-6 {
            report.max_rel = report.max_rel.max(e / y.abs());
        }
    }
    report.mean_abs = sum_abs / n as f64;
    report.rmse = (sum_sq / n as f64).sqrt();
    report
}

/// Compares two vectors elementwise (e.g. exact vs approximated softmax
/// outputs).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
#[must_use]
pub fn compare_slices(reference: &[f64], approx: &[f64]) -> ErrorReport {
    assert_eq!(reference.len(), approx.len(), "length mismatch");
    assert!(!reference.is_empty(), "empty comparison");
    let mut report = ErrorReport::default();
    let mut sum_abs = 0.0;
    let mut sum_sq = 0.0;
    for (i, (&y, &a)) in reference.iter().zip(approx).enumerate() {
        let e = (a - y).abs();
        sum_abs += e;
        sum_sq += e * e;
        if e > report.max_abs {
            report.max_abs = e;
            report.argmax = i as f64;
        }
        if y.abs() > 1e-6 {
            report.max_rel = report.max_rel.max(e / y.abs());
        }
    }
    report.mean_abs = sum_abs / reference.len() as f64;
    report.rmse = (sum_sq / reference.len() as f64).sqrt();
    report
}

/// Fraction of positions where `reference` and `approx` pick the same
/// argmax over consecutive windows of `classes` entries — the
/// classification-agreement proxy used for the Table I substitution.
///
/// # Panics
///
/// Panics if `classes == 0` or the slices differ in length.
#[must_use]
pub fn argmax_agreement(reference: &[f64], approx: &[f64], classes: usize) -> f64 {
    assert!(classes > 0, "need at least one class");
    assert_eq!(reference.len(), approx.len(), "length mismatch");
    let windows = reference.len() / classes;
    if windows == 0 {
        return 1.0;
    }
    let mut agree = 0usize;
    for w in 0..windows {
        let lo = w * classes;
        let hi = lo + classes;
        if argmax(&reference[lo..hi]) == argmax(&approx[lo..hi]) {
            agree += 1;
        }
    }
    agree as f64 / windows as f64
}

fn argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_functions_have_zero_error() {
        let r = compare(&|x| x.sin(), &|x| x.sin(), (0.0, 3.0), 100);
        assert_eq!(r.max_abs, 0.0);
        assert_eq!(r.rmse, 0.0);
    }

    #[test]
    fn constant_offset_detected() {
        let r = compare(&|_| 1.0, &|_| 1.5, (0.0, 1.0), 10);
        assert!((r.max_abs - 0.5).abs() < 1e-12);
        assert!((r.mean_abs - 0.5).abs() < 1e-12);
        assert!((r.max_rel - 0.5).abs() < 1e-12);
    }

    #[test]
    fn slice_comparison_finds_argmax() {
        let r = compare_slices(&[0.0, 0.0, 0.0], &[0.0, 0.3, 0.1]);
        assert!((r.max_abs - 0.3).abs() < 1e-12);
        assert_eq!(r.argmax, 1.0);
    }

    #[test]
    fn agreement_counts_windows() {
        // Two windows of 2 classes: first agrees, second flips.
        let reference = [0.9, 0.1, 0.2, 0.8];
        let approx = [0.8, 0.2, 0.6, 0.4];
        assert!((argmax_agreement(&reference, &approx, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn full_agreement_is_one() {
        let reference = [0.9, 0.1, 0.2, 0.8];
        assert_eq!(argmax_agreement(&reference, &reference, 2), 1.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_slices_panic() {
        let _ = compare_slices(&[1.0], &[1.0, 2.0]);
    }
}
