//! Softmax pipelines: exact, online-normalizer, and the hardware PWL
//! pipeline NOVA executes.
//!
//! Softmax is the densest non-linear operator in attention layers
//! (`A·S·S` evaluations per layer). The hardware decomposition is:
//!
//! 1. subtract the row maximum (exact, done by the accelerator's reduction
//!    tree), so every input to `exp` lies in `[-8, 0]`;
//! 2. evaluate `exp` through the PWL approximator (the NOVA NoC / LUT);
//! 3. accumulate the denominator in a wide register;
//! 4. range-reduce the denominator to `m·2^e`, `m ∈ [1, 2)`, and evaluate
//!    `1/m` through a second PWL table;
//! 5. scale each numerator by `recip(m) · 2^{-e}` (shifts, exact).
//!
//! Only steps 2 and 4 are approximate — exactly the two queries the paper
//! counts per softmax element and per softmax row.

use nova_fixed::{Fixed, QFormat, Rounding};

use crate::{fit, Activation, ApproxError, QuantizedPwl};

/// Exact softmax with max-subtraction (the numerical reference).
///
/// # Panics
///
/// Panics on an empty input slice.
#[must_use]
pub fn softmax_exact(xs: &[f64]) -> Vec<f64> {
    assert!(!xs.is_empty(), "softmax of empty slice");
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = xs.iter().map(|&x| (x - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Single-pass online-normalizer softmax (Milakov & Gimelshein 2018), the
/// software baseline the paper's related work cites.
///
/// Numerically identical to [`softmax_exact`] up to floating-point
/// reassociation; it exists so the reproduction can show the alternative
/// the hardware community compares against.
///
/// # Panics
///
/// Panics on an empty input slice.
#[must_use]
pub fn softmax_online(xs: &[f64]) -> Vec<f64> {
    assert!(!xs.is_empty(), "softmax of empty slice");
    let mut max = f64::NEG_INFINITY;
    let mut denom = 0.0;
    for &x in xs {
        if x > max {
            denom = denom * (max - x).exp() + 1.0;
            max = x;
        } else {
            denom += (x - max).exp();
        }
    }
    xs.iter().map(|&x| (x - max).exp() / denom).collect()
}

/// The approximated softmax datapath: PWL `exp` + PWL reciprocal with
/// power-of-two range reduction, all in the 16-bit fixed-point word format.
///
/// # Example
///
/// ```
/// use nova_approx::softmax::{ApproxSoftmax, softmax_exact};
/// use nova_fixed::{Q4_12, Rounding};
///
/// # fn main() -> Result<(), nova_approx::ApproxError> {
/// let unit = ApproxSoftmax::new(16, Q4_12, Rounding::NearestEven)?;
/// let logits = [1.0, 2.0, 3.0, 0.5];
/// let approx = unit.eval(&logits);
/// let exact = softmax_exact(&logits);
/// for (a, e) in approx.iter().zip(&exact) {
///     assert!((a - e).abs() < 0.02);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ApproxSoftmax {
    exp_pwl: QuantizedPwl,
    recip_pwl: QuantizedPwl,
    format: QFormat,
    rounding: Rounding,
}

impl ApproxSoftmax {
    /// Builds the softmax unit with `segments` PWL segments for both the
    /// `exp` and reciprocal tables (the paper uses 16).
    ///
    /// # Errors
    ///
    /// Propagates fitting/quantization failures.
    pub fn new(segments: usize, format: QFormat, rounding: Rounding) -> Result<Self, ApproxError> {
        Self::with_strategy(
            segments,
            format,
            rounding,
            fit::BreakpointStrategy::GreedyRefine,
        )
    }

    /// Like [`ApproxSoftmax::new`] with an explicit breakpoint strategy
    /// (for the fitting ablation).
    ///
    /// # Errors
    ///
    /// Propagates fitting/quantization failures.
    pub fn with_strategy(
        segments: usize,
        format: QFormat,
        rounding: Rounding,
        strategy: fit::BreakpointStrategy,
    ) -> Result<Self, ApproxError> {
        let exp = fit::fit_activation(Activation::Exp, segments, strategy)?;
        let recip = fit::fit_activation(Activation::Recip, segments, strategy)?;
        Ok(Self {
            exp_pwl: QuantizedPwl::from_pwl(&exp, format, rounding)?,
            recip_pwl: QuantizedPwl::from_pwl(&recip, format, rounding)?,
            format,
            rounding,
        })
    }

    /// The quantized `exp` table (what the NoC broadcasts for step 2).
    #[must_use]
    pub fn exp_table(&self) -> &QuantizedPwl {
        &self.exp_pwl
    }

    /// The quantized reciprocal table (step 4).
    #[must_use]
    pub fn recip_table(&self) -> &QuantizedPwl {
        &self.recip_pwl
    }

    /// Number of approximator queries a softmax over `n` elements issues:
    /// `n` exp lookups plus one reciprocal lookup.
    #[must_use]
    pub fn queries(n: usize) -> usize {
        n + 1
    }

    /// Evaluates softmax over `logits` through the fixed-point datapath,
    /// returning `f64` probabilities (decoded output words).
    ///
    /// # Panics
    ///
    /// Panics on an empty input slice.
    #[must_use]
    pub fn eval(&self, logits: &[f64]) -> Vec<f64> {
        assert!(!logits.is_empty(), "softmax of empty slice");
        let r = self.rounding;
        // Step 1: exact max subtraction (integer compare + subtract in HW).
        let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let shifted: Vec<Fixed> = logits
            .iter()
            .map(|&x| Fixed::from_f64(x - max, self.format, r))
            .collect();
        // Step 2: PWL exp per element.
        let exps: Vec<Fixed> = shifted.iter().map(|&x| self.exp_pwl.eval(x)).collect();
        // Step 3: wide accumulation of the denominator (raw domain).
        let sum_raw: i64 = exps.iter().map(|e| e.raw().max(0)).sum();
        if sum_raw == 0 {
            // All numerators quantized to zero: fall back to uniform, the
            // same tie behaviour an RTL divider-by-zero guard would give.
            return vec![1.0 / logits.len() as f64; logits.len()];
        }
        // Step 4: range-reduce sum = m · 2^e with m ∈ [1, 2) in the word
        // format, then PWL reciprocal of m.
        let scale = self.format.scale(); // raw value of 1.0
        let mut e: i32 = 0;
        let mut m_raw = sum_raw;
        while m_raw >= 2 * scale {
            m_raw >>= 1;
            e += 1;
        }
        while m_raw < scale {
            m_raw <<= 1;
            e -= 1;
        }
        let m = Fixed::from_raw_saturating(m_raw, self.format);
        let recip_m = self.recip_pwl.eval(m); // 1/m in [0.5, 1]
                                              // Step 5: prob_i = exp_i · recip(m) · 2^{-e} — the 2^{-e} is an
                                              // exact arithmetic shift of the wide product.
        let frac = self.format.frac_bits() as i32;
        exps.iter()
            .map(|&num| {
                let wide = num.raw().max(0) * recip_m.raw(); // 2·frac bits
                let shift = frac + e;
                let raw = if shift >= 0 {
                    wide >> shift
                } else {
                    wide << (-shift).min(62)
                };
                Fixed::from_raw_saturating(raw, self.format).to_f64()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use nova_fixed::Q4_12;

    #[test]
    fn exact_softmax_properties() {
        let p = softmax_exact(&[1.0, 2.0, 3.0]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn online_matches_exact() {
        let xs = [0.3, -1.2, 4.0, 2.2, -0.7, 3.9];
        let a = softmax_exact(&xs);
        let b = softmax_online(&xs);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn online_handles_descending_max_updates() {
        let xs = [5.0, 4.0, 3.0, 2.0, 1.0];
        let a = softmax_exact(&xs);
        let b = softmax_online(&xs);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn approx_softmax_close_to_exact() {
        let unit = ApproxSoftmax::new(16, Q4_12, Rounding::NearestEven).unwrap();
        let logits = [0.1, 1.5, -2.0, 3.0, 0.0, 2.2, -1.1, 0.7];
        let approx = unit.eval(&logits);
        let exact = softmax_exact(&logits);
        let report = metrics::compare_slices(&exact, &approx);
        assert!(
            report.max_abs < 0.02,
            "approx softmax error too large: {report}"
        );
        // Distribution still sums to ~1 despite fixed-point truncation.
        let sum: f64 = approx.iter().sum();
        assert!((sum - 1.0).abs() < 0.05, "sum = {sum}");
    }

    #[test]
    fn approx_softmax_preserves_argmax() {
        let unit = ApproxSoftmax::new(16, Q4_12, Rounding::NearestEven).unwrap();
        let logits = [-0.5, 2.5, 0.25, 1.75];
        let approx = unit.eval(&logits);
        let best = approx
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(best, 1);
    }

    #[test]
    fn large_negative_logits_fall_back_to_uniform() {
        // After max subtraction one entry is 0 and the rest are ~-40
        // (clamped to -8): still fine. But identical huge negatives where
        // even the max element's exp quantizes to zero cannot happen since
        // exp(0)=1. Construct the zero-sum path via a degenerate table
        // instead: all logits equal exercises the normal path.
        let unit = ApproxSoftmax::new(8, Q4_12, Rounding::NearestEven).unwrap();
        let approx = unit.eval(&[3.0, 3.0, 3.0, 3.0]);
        for a in &approx {
            assert!((a - 0.25).abs() < 0.01);
        }
    }

    #[test]
    fn seeded_sweep_stays_within_paper_error_bound() {
        // The paper's claim, swept instead of spot-checked: over seeded
        // random rows at many widths, the full fixed-point datapath
        // (PWL exp + range-reduced PWL reciprocal, 16 segments, Q4.12)
        // tracks the exact softmax within the error bound and stays
        // normalized.
        use nova_fixed::rng::StdRng;
        let unit = ApproxSoftmax::new(16, Q4_12, Rounding::NearestEven).unwrap();
        let mut rng = StdRng::seed_from_u64(0x50F7);
        for width in [2usize, 3, 5, 8, 16, 33, 64] {
            for round in 0..8 {
                let logits: Vec<f64> = (0..width).map(|_| rng.gen_range(-4.0..4.0)).collect();
                let exact = softmax_exact(&logits);
                let approx = unit.eval(&logits);
                let report = metrics::compare_slices(&exact, &approx);
                assert!(
                    report.max_abs < 0.02,
                    "width {width} round {round}: {report}"
                );
                let sum: f64 = approx.iter().sum();
                assert!((sum - 1.0).abs() < 0.05, "width {width}: sum = {sum}");
            }
        }
    }

    #[test]
    fn online_normalizer_equals_two_pass_exact_on_seeded_sweep() {
        // Milakov–Gimelshein single-pass normalization is the two-pass
        // softmax up to float reassociation: over a seeded sweep of
        // widths and ranges the two never part by more than 1e-12.
        use nova_fixed::rng::StdRng;
        let mut rng = StdRng::seed_from_u64(0x0811);
        for width in [1usize, 2, 7, 31, 128] {
            for _ in 0..16 {
                let xs: Vec<f64> = (0..width).map(|_| rng.gen_range(-30.0..30.0)).collect();
                let two_pass = softmax_exact(&xs);
                let online = softmax_online(&xs);
                for (a, b) in two_pass.iter().zip(&online) {
                    assert!((a - b).abs() < 1e-12, "width {width}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn queries_counts_exp_plus_recip() {
        assert_eq!(ApproxSoftmax::queries(1024), 1025);
    }

    #[test]
    fn eight_segments_worse_than_sixteen() {
        let logits: Vec<f64> = (0..32).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
        let exact = softmax_exact(&logits);
        let err = |segments: usize| {
            let unit = ApproxSoftmax::new(segments, Q4_12, Rounding::NearestEven).unwrap();
            metrics::compare_slices(&exact, &unit.eval(&logits)).max_abs
        };
        assert!(err(16) <= err(4), "more segments must not increase error");
    }
}
