//! Property-based tests for the approximation substrate.

use nova_approx::{fit, metrics, softmax, Activation, PiecewiseLinear, QuantizedPwl};
use nova_fixed::{Fixed, Q4_12, Rounding};
use proptest::prelude::*;

fn activations() -> impl Strategy<Value = Activation> {
    prop_oneof![
        Just(Activation::Relu),
        Just(Activation::Gelu),
        Just(Activation::Sigmoid),
        Just(Activation::Tanh),
        Just(Activation::Exp),
        Just(Activation::Silu),
    ]
}

proptest! {
    /// segment_index is monotone non-decreasing in x.
    #[test]
    fn segment_index_monotone(a in activations(), xs in prop::collection::vec(-10.0f64..10.0, 2..40)) {
        let pwl = fit::fit_activation(a, 16, fit::BreakpointStrategy::Uniform).unwrap();
        let mut sorted = xs;
        sorted.sort_by(f64::total_cmp);
        let mut prev = 0usize;
        for x in sorted {
            let i = pwl.segment_index(x);
            prop_assert!(i >= prev);
            prop_assert!(i < pwl.segments());
            prev = i;
        }
    }

    /// PWL evaluation never exceeds the fitted function's range by more
    /// than the fit's max error on the domain (clamping keeps out-of-domain
    /// inputs at edge values).
    #[test]
    fn eval_bounded_by_fit_error(a in activations(), x in -20.0f64..20.0) {
        let f = move |v: f64| a.eval(v);
        let pwl = fit::fit_activation(a, 16, fit::BreakpointStrategy::GreedyRefine).unwrap();
        let report = metrics::compare(&f, &|v| pwl.eval(v), pwl.domain(), 4000);
        let xc = x.clamp(pwl.domain().0, pwl.domain().1);
        // The scan grid can miss the true maximum by up to slope·step.
        let (lo, hi) = pwl.domain();
        let margin = 2.0 * (hi - lo) / 4000.0;
        prop_assert!((pwl.eval(x) - f(xc)).abs() <= report.max_abs + margin);
    }

    /// Quantized evaluation tracks the float PWL within a few resolution
    /// steps (slope error is amplified by |x| <= 8).
    #[test]
    fn quantized_tracks_float(a in activations(), x in -8.0f64..7.99) {
        let pwl = fit::fit_activation(a, 16, fit::BreakpointStrategy::Uniform).unwrap();
        let q = QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap();
        let err = (q.eval_f64(x) - pwl.eval(x)).abs();
        // half-step on x, slope quantization (×|x|≤8), bias, output rounding
        prop_assert!(err <= 20.0 * Q4_12.resolution(), "err = {err}");
    }

    /// Quantized lookup address equals the float segment index except
    /// within one quantization step of a breakpoint.
    #[test]
    fn addresses_agree_away_from_breakpoints(a in activations(), x in -7.9f64..7.9) {
        let pwl = fit::fit_activation(a, 16, fit::BreakpointStrategy::Uniform).unwrap();
        let q = QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap();
        let (lo, hi) = pwl.domain();
        let xc = x.clamp(lo, hi);
        let near_breakpoint = pwl
            .breakpoints()
            .iter()
            .any(|&d| (xc - d).abs() < 2.0 * Q4_12.resolution());
        prop_assume!(!near_breakpoint);
        prop_assume!(q.segments() == pwl.segments());
        let fx = Fixed::from_f64(xc, Q4_12, Rounding::NearestEven);
        prop_assert_eq!(q.lookup_address(fx), pwl.segment_index(xc));
    }

    /// Approximated softmax stays a near-distribution: entries in [0, 1.01]
    /// and total within 6% of 1 for moderate logits.
    #[test]
    fn approx_softmax_near_distribution(logits in prop::collection::vec(-4.0f64..4.0, 2..64)) {
        let unit = softmax::ApproxSoftmax::new(16, Q4_12, Rounding::NearestEven).unwrap();
        let p = unit.eval(&logits);
        let sum: f64 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 0.06, "sum = {sum}");
        for &v in &p {
            prop_assert!((-1e-9..=1.01).contains(&v));
        }
    }

    /// Softmax approximation error decreases (weakly) as segments grow.
    #[test]
    fn softmax_error_monotone_in_segments(seed in 0u64..500) {
        let logits: Vec<f64> = (0..16)
            .map(|i| (((seed + i) as f64) * 0.618).sin() * 3.5)
            .collect();
        let exact = softmax::softmax_exact(&logits);
        let err = |segments: usize| {
            let unit =
                softmax::ApproxSoftmax::new(segments, Q4_12, Rounding::NearestEven).unwrap();
            metrics::compare_slices(&exact, &unit.eval(&logits)).max_abs
        };
        prop_assert!(err(16) <= err(4) + 5.0 * Q4_12.resolution());
    }

    /// Per-segment least-squares fit through arbitrary valid breakpoints
    /// always produces a valid PWL whose eval is finite.
    #[test]
    fn fit_always_valid(mut bps in prop::collection::vec(-2.9f64..2.9, 0..10), x in -3.0f64..3.0) {
        bps.sort_by(f64::total_cmp);
        bps.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
        let pwl = PiecewiseLinear::fit(&|v| v.tanh(), (-3.0, 3.0), &bps, 16).unwrap();
        prop_assert!(pwl.eval(x).is_finite());
        prop_assert_eq!(pwl.segments(), bps.len() + 1);
    }
}
