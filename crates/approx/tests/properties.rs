//! Property-based tests for the approximation substrate.
//!
//! The dependency policy excludes proptest, so each property is checked
//! over a deterministic pseudo-random stimulus stream drawn from the
//! workspace PRNG (`nova_fixed::rng`): same coverage style, perfectly
//! reproducible failures.

use nova_approx::{fit, metrics, softmax, Activation, PiecewiseLinear, QuantizedPwl};
use nova_fixed::rng::StdRng;
use nova_fixed::{Fixed, Rounding, Q4_12};

const ACTIVATIONS: [Activation; 6] = [
    Activation::Relu,
    Activation::Gelu,
    Activation::Sigmoid,
    Activation::Tanh,
    Activation::Exp,
    Activation::Silu,
];

fn pick_activation(rng: &mut StdRng) -> Activation {
    ACTIVATIONS[rng.gen_range(0..ACTIVATIONS.len())]
}

/// segment_index is monotone non-decreasing in x.
#[test]
fn segment_index_monotone() {
    let mut rng = StdRng::seed_from_u64(0xA001);
    for _ in 0..64 {
        let a = pick_activation(&mut rng);
        let len = rng.gen_range(2..40usize);
        let mut sorted: Vec<f64> = (0..len).map(|_| rng.gen_range(-10.0..10.0)).collect();
        sorted.sort_by(f64::total_cmp);
        let pwl = fit::fit_activation(a, 16, fit::BreakpointStrategy::Uniform).unwrap();
        let mut prev = 0usize;
        for x in sorted {
            let i = pwl.segment_index(x);
            assert!(i >= prev, "{a:?}: index regressed at x={x}");
            assert!(i < pwl.segments());
            prev = i;
        }
    }
}

/// PWL evaluation never exceeds the fitted function's range by more
/// than the fit's max error on the domain (clamping keeps out-of-domain
/// inputs at edge values).
#[test]
fn eval_bounded_by_fit_error() {
    let mut rng = StdRng::seed_from_u64(0xA002);
    for _ in 0..24 {
        let a = pick_activation(&mut rng);
        let x = rng.gen_range(-20.0..20.0);
        let f = move |v: f64| a.eval(v);
        let pwl = fit::fit_activation(a, 16, fit::BreakpointStrategy::GreedyRefine).unwrap();
        let report = metrics::compare(&f, &|v| pwl.eval(v), pwl.domain(), 4000);
        let xc = x.clamp(pwl.domain().0, pwl.domain().1);
        // The scan grid can miss the true maximum by up to slope·step.
        let (lo, hi) = pwl.domain();
        let margin = 2.0 * (hi - lo) / 4000.0;
        assert!(
            (pwl.eval(x) - f(xc)).abs() <= report.max_abs + margin,
            "{a:?} at x={x}"
        );
    }
}

/// Quantized evaluation tracks the float PWL within a few resolution
/// steps (slope error is amplified by |x| <= 8).
#[test]
fn quantized_tracks_float() {
    let mut rng = StdRng::seed_from_u64(0xA003);
    for _ in 0..256 {
        let a = pick_activation(&mut rng);
        let x = rng.gen_range(-8.0..7.99);
        let pwl = fit::fit_activation(a, 16, fit::BreakpointStrategy::Uniform).unwrap();
        let q = QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap();
        let err = (q.eval_f64(x) - pwl.eval(x)).abs();
        // half-step on x, slope quantization (×|x|≤8), bias, output rounding
        assert!(
            err <= 20.0 * Q4_12.resolution(),
            "{a:?} at x={x}: err = {err}"
        );
    }
}

/// Quantized lookup address equals the float segment index except
/// within one quantization step of a breakpoint.
#[test]
fn addresses_agree_away_from_breakpoints() {
    let mut rng = StdRng::seed_from_u64(0xA004);
    for _ in 0..256 {
        let a = pick_activation(&mut rng);
        let x = rng.gen_range(-7.9..7.9);
        let pwl = fit::fit_activation(a, 16, fit::BreakpointStrategy::Uniform).unwrap();
        let q = QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap();
        let (lo, hi) = pwl.domain();
        let xc = x.clamp(lo, hi);
        let near_breakpoint = pwl
            .breakpoints()
            .iter()
            .any(|&d| (xc - d).abs() < 2.0 * Q4_12.resolution());
        if near_breakpoint || q.segments() != pwl.segments() {
            continue;
        }
        let fx = Fixed::from_f64(xc, Q4_12, Rounding::NearestEven);
        assert_eq!(
            q.lookup_address(fx),
            pwl.segment_index(xc),
            "{a:?} at x={x}"
        );
    }
}

/// Approximated softmax stays a near-distribution: entries in [0, 1.01]
/// and total within 6% of 1 for moderate logits.
#[test]
fn approx_softmax_near_distribution() {
    let mut rng = StdRng::seed_from_u64(0xA005);
    for _ in 0..64 {
        let len = rng.gen_range(2..64usize);
        let logits: Vec<f64> = (0..len).map(|_| rng.gen_range(-4.0..4.0)).collect();
        let unit = softmax::ApproxSoftmax::new(16, Q4_12, Rounding::NearestEven).unwrap();
        let p = unit.eval(&logits);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 0.06, "sum = {sum}");
        for &v in &p {
            assert!((-1e-9..=1.01).contains(&v));
        }
    }
}

/// Softmax approximation error decreases (weakly) as segments grow.
#[test]
fn softmax_error_monotone_in_segments() {
    for seed in (0..500).step_by(7) {
        let logits: Vec<f64> = (0..16)
            .map(|i| (((seed + i) as f64) * 0.618).sin() * 3.5)
            .collect();
        let exact = softmax::softmax_exact(&logits);
        let err = |segments: usize| {
            let unit = softmax::ApproxSoftmax::new(segments, Q4_12, Rounding::NearestEven).unwrap();
            metrics::compare_slices(&exact, &unit.eval(&logits)).max_abs
        };
        assert!(err(16) <= err(4) + 5.0 * Q4_12.resolution(), "seed {seed}");
    }
}

/// Per-segment least-squares fit through arbitrary valid breakpoints
/// always produces a valid PWL whose eval is finite.
#[test]
fn fit_always_valid() {
    let mut rng = StdRng::seed_from_u64(0xA006);
    for _ in 0..128 {
        let len = rng.gen_range(0..10usize);
        let mut bps: Vec<f64> = (0..len).map(|_| rng.gen_range(-2.9..2.9)).collect();
        let x = rng.gen_range(-3.0..3.0);
        bps.sort_by(f64::total_cmp);
        bps.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
        let pwl = PiecewiseLinear::fit(&|v| v.tanh(), (-3.0, 3.0), &bps, 16).unwrap();
        assert!(pwl.eval(x).is_finite());
        assert_eq!(pwl.segments(), bps.len() + 1);
    }
}
