//! Property-based tests for the fixed-point substrate.

use nova_fixed::{Fixed, QFormat, Rounding, Word16, Q4_12, Q6_10, Q8_8};
use proptest::prelude::*;

fn formats() -> impl Strategy<Value = QFormat> {
    prop_oneof![Just(Q4_12), Just(Q6_10), Just(Q8_8)]
}

fn raw_in(format: QFormat) -> impl Strategy<Value = i64> {
    format.min_raw()..=format.max_raw()
}

proptest! {
    /// Quantize → to_f64 never moves by more than half a resolution step
    /// (for in-range inputs).
    #[test]
    fn quantization_error_bounded(v in -7.9f64..7.9, ) {
        let f = Fixed::from_f64(v, Q4_12, Rounding::NearestEven);
        prop_assert!((f.to_f64() - v).abs() <= Q4_12.resolution() / 2.0 + 1e-12);
    }

    /// Word16 encode/decode is lossless for any 16-bit format.
    #[test]
    fn word16_roundtrip(fmt in formats(), raw in any::<i16>()) {
        let f = Fixed::from_raw(raw as i64, fmt).unwrap();
        let w = Word16::from_fixed(f).unwrap();
        prop_assert_eq!(w.to_fixed(fmt), f);
    }

    /// Saturating add is commutative and never leaves the word range.
    #[test]
    fn add_commutative_and_in_range(a in raw_in(Q4_12), b in raw_in(Q4_12)) {
        let fa = Fixed::from_raw(a, Q4_12).unwrap();
        let fb = Fixed::from_raw(b, Q4_12).unwrap();
        let s1 = fa.saturating_add(fb).unwrap();
        let s2 = fb.saturating_add(fa).unwrap();
        prop_assert_eq!(s1, s2);
        prop_assert!(Q4_12.contains_raw(s1.raw()));
    }

    /// Multiplication result is within one resolution step of the real
    /// product (when the product is in range).
    #[test]
    fn mul_close_to_real(a in -2.8f64..2.8, b in -2.8f64..2.8) {
        let fa = Fixed::from_f64(a, Q4_12, Rounding::NearestEven);
        let fb = Fixed::from_f64(b, Q4_12, Rounding::NearestEven);
        let p = fa.saturating_mul(fb, Rounding::NearestEven).unwrap();
        let real = fa.to_f64() * fb.to_f64();
        prop_assert!((p.to_f64() - real).abs() <= Q4_12.resolution());
    }

    /// mul_add equals mul-then-add up to one extra rounding step.
    #[test]
    fn mul_add_vs_two_step(a in -2.0f64..2.0, x in -2.0f64..2.0, b in -3.0f64..3.0) {
        let fa = Fixed::from_f64(a, Q4_12, Rounding::NearestEven);
        let fx = Fixed::from_f64(x, Q4_12, Rounding::NearestEven);
        let fb = Fixed::from_f64(b, Q4_12, Rounding::NearestEven);
        let fused = fa.mul_add(fx, fb, Rounding::NearestEven).unwrap();
        let two_step = fa
            .saturating_mul(fx, Rounding::NearestEven).unwrap()
            .saturating_add(fb).unwrap();
        let delta = (fused.to_f64() - two_step.to_f64()).abs();
        prop_assert!(delta <= Q4_12.resolution());
    }

    /// Negation is an involution except at the most negative word.
    #[test]
    fn neg_involution(raw in raw_in(Q4_12)) {
        prop_assume!(raw != Q4_12.min_raw());
        let f = Fixed::from_raw(raw, Q4_12).unwrap();
        prop_assert_eq!(f.saturating_neg().saturating_neg(), f);
    }

    /// Ordering of fixed values matches ordering of their real values.
    #[test]
    fn compare_consistent_with_f64(a in raw_in(Q6_10), b in raw_in(Q6_10)) {
        let fa = Fixed::from_raw(a, Q6_10).unwrap();
        let fb = Fixed::from_raw(b, Q6_10).unwrap();
        let ord = fa.compare(fb).unwrap();
        prop_assert_eq!(ord, fa.to_f64().partial_cmp(&fb.to_f64()).unwrap());
    }

    /// Converting to a wider-range format and back is lossless when the
    /// resolutions allow it (Q4.12 -> Q6.10 loses 2 bits; Q8.8 -> Q6.10 is
    /// exact in value for in-range inputs).
    #[test]
    fn convert_widens_range(raw in raw_in(Q8_8)) {
        let f = Fixed::from_raw(raw, Q8_8).unwrap();
        prop_assume!(f.to_f64() >= Q6_10.min_value() && f.to_f64() <= Q6_10.max_value());
        let g = f.convert(Q6_10, Rounding::NearestEven);
        prop_assert_eq!(g.to_f64(), f.to_f64());
    }
}
