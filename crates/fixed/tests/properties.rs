//! Property-based tests for the fixed-point substrate.
//!
//! Checked over deterministic pseudo-random stimulus from the workspace
//! PRNG (`nova_fixed::rng`) instead of proptest, per the no-external-
//! dependency policy.

use nova_fixed::rng::StdRng;
use nova_fixed::{Fixed, QFormat, Rounding, Word16, Q4_12, Q6_10, Q8_8};

const FORMATS: [QFormat; 3] = [Q4_12, Q6_10, Q8_8];

fn pick_format(rng: &mut StdRng) -> QFormat {
    FORMATS[rng.gen_range(0..FORMATS.len())]
}

fn raw_in(rng: &mut StdRng, format: QFormat) -> i64 {
    rng.gen_range(format.min_raw()..format.max_raw() + 1)
}

/// Quantize → to_f64 never moves by more than half a resolution step
/// (for in-range inputs).
#[test]
fn quantization_error_bounded() {
    let mut rng = StdRng::seed_from_u64(0xF001);
    for _ in 0..512 {
        let v = rng.gen_range(-7.9..7.9);
        let f = Fixed::from_f64(v, Q4_12, Rounding::NearestEven);
        assert!(
            (f.to_f64() - v).abs() <= Q4_12.resolution() / 2.0 + 1e-12,
            "v={v}"
        );
    }
}

/// Word16 encode/decode is lossless for any 16-bit format.
#[test]
fn word16_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xF002);
    for _ in 0..512 {
        let fmt = pick_format(&mut rng);
        let raw = rng.gen_range(i64::from(i16::MIN)..i64::from(i16::MAX) + 1);
        let f = Fixed::from_raw(raw, fmt).unwrap();
        let w = Word16::from_fixed(f).unwrap();
        assert_eq!(w.to_fixed(fmt), f);
    }
}

/// Saturating add is commutative and never leaves the word range.
#[test]
fn add_commutative_and_in_range() {
    let mut rng = StdRng::seed_from_u64(0xF003);
    for _ in 0..512 {
        let a = raw_in(&mut rng, Q4_12);
        let b = raw_in(&mut rng, Q4_12);
        let fa = Fixed::from_raw(a, Q4_12).unwrap();
        let fb = Fixed::from_raw(b, Q4_12).unwrap();
        let s1 = fa.saturating_add(fb).unwrap();
        let s2 = fb.saturating_add(fa).unwrap();
        assert_eq!(s1, s2);
        assert!(Q4_12.contains_raw(s1.raw()));
    }
}

/// Multiplication result is within one resolution step of the real
/// product (when the product is in range).
#[test]
fn mul_close_to_real() {
    let mut rng = StdRng::seed_from_u64(0xF004);
    for _ in 0..512 {
        let a = rng.gen_range(-2.8..2.8);
        let b = rng.gen_range(-2.8..2.8);
        let fa = Fixed::from_f64(a, Q4_12, Rounding::NearestEven);
        let fb = Fixed::from_f64(b, Q4_12, Rounding::NearestEven);
        let p = fa.saturating_mul(fb, Rounding::NearestEven).unwrap();
        let real = fa.to_f64() * fb.to_f64();
        assert!(
            (p.to_f64() - real).abs() <= Q4_12.resolution(),
            "a={a} b={b}"
        );
    }
}

/// mul_add equals mul-then-add up to one extra rounding step.
#[test]
fn mul_add_vs_two_step() {
    let mut rng = StdRng::seed_from_u64(0xF005);
    for _ in 0..512 {
        let a = rng.gen_range(-2.0..2.0);
        let x = rng.gen_range(-2.0..2.0);
        let b = rng.gen_range(-3.0..3.0);
        let fa = Fixed::from_f64(a, Q4_12, Rounding::NearestEven);
        let fx = Fixed::from_f64(x, Q4_12, Rounding::NearestEven);
        let fb = Fixed::from_f64(b, Q4_12, Rounding::NearestEven);
        let fused = fa.mul_add(fx, fb, Rounding::NearestEven).unwrap();
        let two_step = fa
            .saturating_mul(fx, Rounding::NearestEven)
            .unwrap()
            .saturating_add(fb)
            .unwrap();
        let delta = (fused.to_f64() - two_step.to_f64()).abs();
        assert!(delta <= Q4_12.resolution(), "a={a} x={x} b={b}");
    }
}

/// Negation is an involution except at the most negative word.
#[test]
fn neg_involution() {
    let mut rng = StdRng::seed_from_u64(0xF006);
    for _ in 0..512 {
        let raw = raw_in(&mut rng, Q4_12);
        if raw == Q4_12.min_raw() {
            continue;
        }
        let f = Fixed::from_raw(raw, Q4_12).unwrap();
        assert_eq!(f.saturating_neg().saturating_neg(), f);
    }
}

/// Ordering of fixed values matches ordering of their real values.
#[test]
fn compare_consistent_with_f64() {
    let mut rng = StdRng::seed_from_u64(0xF007);
    for _ in 0..512 {
        let a = raw_in(&mut rng, Q6_10);
        let b = raw_in(&mut rng, Q6_10);
        let fa = Fixed::from_raw(a, Q6_10).unwrap();
        let fb = Fixed::from_raw(b, Q6_10).unwrap();
        let ord = fa.compare(fb).unwrap();
        assert_eq!(ord, fa.to_f64().partial_cmp(&fb.to_f64()).unwrap());
    }
}

/// Converting to a wider-range format and back is lossless when the
/// resolutions allow it (Q4.12 -> Q6.10 loses 2 bits; Q8.8 -> Q6.10 is
/// exact in value for in-range inputs).
#[test]
fn convert_widens_range() {
    let mut rng = StdRng::seed_from_u64(0xF008);
    for _ in 0..512 {
        let raw = raw_in(&mut rng, Q8_8);
        let f = Fixed::from_raw(raw, Q8_8).unwrap();
        if f.to_f64() < Q6_10.min_value() || f.to_f64() > Q6_10.max_value() {
            continue;
        }
        let g = f.convert(Q6_10, Rounding::NearestEven);
        assert_eq!(g.to_f64(), f.to_f64());
    }
}
