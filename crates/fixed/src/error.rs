use std::error::Error;
use std::fmt;

/// Errors produced by fixed-point construction and arithmetic.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FixedError {
    /// The requested Q-format is not representable (zero width, too wide,
    /// or more fraction bits than the word holds).
    InvalidFormat {
        /// Total word size in bits that was requested.
        total_bits: u8,
        /// Fraction bits that were requested.
        frac_bits: u8,
    },
    /// Two operands of a binary operation used different Q-formats.
    FormatMismatch {
        /// Format of the left operand.
        lhs: crate::QFormat,
        /// Format of the right operand.
        rhs: crate::QFormat,
    },
    /// A raw integer does not fit in the format's word.
    RawOutOfRange {
        /// The raw value that was supplied.
        raw: i64,
        /// The format it was supposed to fit.
        format: crate::QFormat,
    },
    /// Nested rows of differing widths cannot be flattened into a
    /// contiguous [`crate::FixedBatch`] grid.
    RaggedRows {
        /// Index of the offending row.
        row: usize,
        /// Its width.
        got: usize,
        /// The width of the first row (the grid's neuron count).
        expected: usize,
    },
}

impl fmt::Display for FixedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixedError::InvalidFormat {
                total_bits,
                frac_bits,
            } => write!(
                f,
                "invalid Q-format: {total_bits} total bits with {frac_bits} fraction bits"
            ),
            FixedError::FormatMismatch { lhs, rhs } => {
                write!(f, "format mismatch: {lhs} vs {rhs}")
            }
            FixedError::RawOutOfRange { raw, format } => {
                write!(f, "raw value {raw} does not fit {format}")
            }
            FixedError::RaggedRows { row, got, expected } => {
                write!(
                    f,
                    "row {row} has {got} values where the grid expects {expected}"
                )
            }
        }
    }
}

impl Error for FixedError {}
