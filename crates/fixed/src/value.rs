use std::cmp::Ordering;
use std::fmt;

use crate::{FixedError, QFormat, Rounding};

/// A fixed-point value: a raw two's-complement word interpreted in a
/// [`QFormat`].
///
/// `Fixed` is the *architectural* value type: all datapath simulation in the
/// NOVA reproduction (comparators, MACs, broadcast words) goes through it so
/// that results are bit-exact with what the 16-bit RTL datapath would
/// produce.
///
/// Arithmetic is saturating, mirroring the saturating adders the paper's MAC
/// units use; mixed-format operations are an error rather than an implicit
/// conversion.
///
/// # Example
///
/// ```
/// use nova_fixed::{Fixed, Q4_12, Rounding};
///
/// # fn main() -> Result<(), nova_fixed::FixedError> {
/// let slope = Fixed::from_f64(0.5, Q4_12, Rounding::NearestEven);
/// let x = Fixed::from_f64(3.0, Q4_12, Rounding::NearestEven);
/// let bias = Fixed::from_f64(0.125, Q4_12, Rounding::NearestEven);
/// let y = slope.mul_add(x, bias, Rounding::NearestEven)?;
/// assert!((y.to_f64() - 1.625).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fixed {
    raw: i64,
    format: QFormat,
}

impl Fixed {
    /// Zero in the given format.
    #[must_use]
    pub fn zero(format: QFormat) -> Self {
        Self { raw: 0, format }
    }

    /// One in the given format (saturated if 1.0 is out of range).
    #[must_use]
    pub fn one(format: QFormat) -> Self {
        Self {
            raw: format.saturate_raw(format.scale()),
            format,
        }
    }

    /// Quantizes `value` into `format`, saturating out-of-range inputs.
    #[must_use]
    pub fn from_f64(value: f64, format: QFormat, rounding: Rounding) -> Self {
        Self {
            raw: format.quantize(value, rounding),
            format,
        }
    }

    /// Constructs from a raw word.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::RawOutOfRange`] if `raw` does not fit the
    /// format's word.
    pub fn from_raw(raw: i64, format: QFormat) -> Result<Self, FixedError> {
        if format.contains_raw(raw) {
            Ok(Self { raw, format })
        } else {
            Err(FixedError::RawOutOfRange { raw, format })
        }
    }

    /// Constructs from a raw word, saturating instead of failing.
    #[inline]
    #[must_use]
    pub fn from_raw_saturating(raw: i64, format: QFormat) -> Self {
        Self {
            raw: format.saturate_raw(raw),
            format,
        }
    }

    /// The raw two's-complement word.
    #[inline]
    #[must_use]
    pub fn raw(self) -> i64 {
        self.raw
    }

    /// The value's format.
    #[inline]
    #[must_use]
    pub fn format(self) -> QFormat {
        self.format
    }

    /// Converts to `f64` exactly (every fixed-point word is representable).
    #[must_use]
    pub fn to_f64(self) -> f64 {
        self.raw as f64 * self.format.resolution()
    }

    /// Re-quantizes into another format.
    #[must_use]
    pub fn convert(self, format: QFormat, rounding: Rounding) -> Self {
        if format == self.format {
            return self;
        }
        Fixed::from_f64(self.to_f64(), format, rounding)
    }

    /// Saturating addition.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::FormatMismatch`] if the operands' formats
    /// differ.
    pub fn saturating_add(self, rhs: Self) -> Result<Self, FixedError> {
        self.check_format(rhs)?;
        Ok(Self {
            raw: self.format.saturate_raw(self.raw + rhs.raw),
            format: self.format,
        })
    }

    /// Saturating subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::FormatMismatch`] if the operands' formats
    /// differ.
    pub fn saturating_sub(self, rhs: Self) -> Result<Self, FixedError> {
        self.check_format(rhs)?;
        Ok(Self {
            raw: self.format.saturate_raw(self.raw - rhs.raw),
            format: self.format,
        })
    }

    /// Saturating multiplication with a single rounding step, as a hardware
    /// multiplier with a `2n`-bit product register would produce.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::FormatMismatch`] if the operands' formats
    /// differ.
    pub fn saturating_mul(self, rhs: Self, rounding: Rounding) -> Result<Self, FixedError> {
        self.check_format(rhs)?;
        let wide = self.raw * rhs.raw; // ≤ 64 bits for ≤ 32-bit words
        let raw = shift_round(wide, self.format.frac_bits(), rounding);
        Ok(Self {
            raw: self.format.saturate_raw(raw),
            format: self.format,
        })
    }

    /// Fused multiply-add `self * x + b` with one rounding step at the end,
    /// exactly as the paper's per-neuron MAC computes `a·x + b`.
    ///
    /// The product is kept in a wide accumulator, the bias is aligned to the
    /// accumulator's precision, and a single quantization produces the
    /// output word — so `mul_add` can be more accurate than
    /// `saturating_mul` followed by `saturating_add`.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::FormatMismatch`] if the formats differ.
    pub fn mul_add(self, x: Self, b: Self, rounding: Rounding) -> Result<Self, FixedError> {
        self.check_format(x)?;
        self.check_format(b)?;
        Ok(Self {
            raw: Self::mul_add_raw(self.raw, x.raw, b.raw, self.format, rounding),
            format: self.format,
        })
    }

    /// The raw-word core of [`mul_add`](Self::mul_add): computes the
    /// saturated output word of `slope·x + bias` for words already known
    /// to share `format`. This is the datapath batch loops drive after
    /// hoisting the format check out of the loop — `mul_add` itself
    /// delegates here, so the two are bit-identical by construction.
    ///
    /// `#[inline]` matters: without it (and without LTO) this call would
    /// stay an opaque cross-crate function in the batch kernels' inner
    /// loops, blocking constant-folding of `format`/`rounding` and any
    /// autovectorization downstream.
    #[inline]
    #[must_use]
    pub fn mul_add_raw(
        slope_raw: i64,
        x_raw: i64,
        bias_raw: i64,
        format: QFormat,
        rounding: Rounding,
    ) -> i64 {
        let frac = format.frac_bits();
        let wide = slope_raw * x_raw + (bias_raw << frac);
        format.saturate_raw(shift_round(wide, frac, rounding))
    }

    /// Saturating negation (`-min_raw` saturates to `max_raw`).
    #[must_use]
    pub fn saturating_neg(self) -> Self {
        Self {
            raw: self.format.saturate_raw(-self.raw),
            format: self.format,
        }
    }

    /// Absolute value, saturating for the most-negative word.
    #[must_use]
    pub fn saturating_abs(self) -> Self {
        if self.raw < 0 {
            self.saturating_neg()
        } else {
            self
        }
    }

    /// Compares two values of the same format.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::FormatMismatch`] if the operands' formats
    /// differ.
    pub fn compare(self, rhs: Self) -> Result<Ordering, FixedError> {
        self.check_format(rhs)?;
        Ok(self.raw.cmp(&rhs.raw))
    }

    fn check_format(self, rhs: Self) -> Result<(), FixedError> {
        if self.format == rhs.format {
            Ok(())
        } else {
            Err(FixedError::FormatMismatch {
                lhs: self.format,
                rhs: rhs.format,
            })
        }
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.to_f64(), self.format)
    }
}

/// Arithmetic right shift by `frac` bits with the requested rounding of the
/// dropped fraction. Shared by [`Fixed::mul_add_raw`] and the [`Mac`]
/// accumulator read-out (`crate::mac`), so the fused-MAC batch kernels and
/// the accumulator model cannot drift apart.
///
/// The rounding increment is computed as a boolean rather than selected by
/// nested branches: once a caller's `rounding` is a known constant (every
/// batch kernel hoists it), the whole body reduces to shift/compare/add
/// with no data-dependent branch, which is what lets LLVM vectorize the
/// loops driving it.
///
/// [`Mac`]: crate::Mac
#[inline]
pub(crate) fn shift_round(wide: i64, frac: u8, rounding: Rounding) -> i64 {
    if frac == 0 {
        return wide;
    }
    let floor = wide >> frac;
    // `floor` rounds toward -inf, so `rem` is the dropped fraction in
    // `[0, 2^frac)` regardless of sign.
    let rem = wide - (floor << frac);
    let half = 1i64 << (frac - 1);
    let bump = match rounding {
        Rounding::Floor => false,
        // Ties away from zero: toward +inf for non-negative values (the
        // dropped fraction is measured from floor, so "away" is up), and
        // toward -inf (stay at floor) for negative ones.
        Rounding::NearestAway => rem > half || (rem == half && wide >= 0),
        Rounding::NearestEven => rem > half || (rem == half && floor & 1 == 1),
    };
    floor + i64::from(bump)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Q4_12, Q6_10};

    #[test]
    fn roundtrip_exact_values() {
        for v in [-8.0, -1.5, -0.25, 0.0, 0.5, 1.0, 3.75, 7.5] {
            let f = Fixed::from_f64(v, Q4_12, Rounding::NearestEven);
            assert_eq!(f.to_f64(), v, "value {v} should be exact in Q4.12");
        }
    }

    #[test]
    fn add_saturates_at_bounds() {
        let max = Fixed::from_f64(7.9, Q4_12, Rounding::NearestEven);
        let one = Fixed::one(Q4_12);
        let sum = max.saturating_add(one).unwrap();
        assert_eq!(sum.raw(), Q4_12.max_raw());
        let min = Fixed::from_f64(-8.0, Q4_12, Rounding::NearestEven);
        let diff = min.saturating_sub(one).unwrap();
        assert_eq!(diff.raw(), Q4_12.min_raw());
    }

    #[test]
    fn format_mismatch_is_an_error() {
        let a = Fixed::zero(Q4_12);
        let b = Fixed::zero(Q6_10);
        assert!(matches!(
            a.saturating_add(b),
            Err(FixedError::FormatMismatch { .. })
        ));
    }

    #[test]
    fn mul_matches_float_within_resolution() {
        let a = Fixed::from_f64(1.25, Q4_12, Rounding::NearestEven);
        let b = Fixed::from_f64(-2.5, Q4_12, Rounding::NearestEven);
        let p = a.saturating_mul(b, Rounding::NearestEven).unwrap();
        assert!((p.to_f64() - (-3.125)).abs() <= Q4_12.resolution());
    }

    #[test]
    fn mul_add_single_rounding() {
        // a*x where the product needs rounding: with a wide accumulator the
        // bias add happens before the rounding step.
        let a = Fixed::from_raw(3, Q4_12).unwrap(); // tiny slope
        let x = Fixed::from_raw(3, Q4_12).unwrap();
        let b = Fixed::from_f64(1.0, Q4_12, Rounding::NearestEven);
        let fused = a.mul_add(x, b, Rounding::NearestEven).unwrap();
        // product = 9 >> 12 -> rounds to 0, so fused ≈ 1.0
        assert_eq!(fused.to_f64(), 1.0);
    }

    #[test]
    fn neg_and_abs_saturate_min_word() {
        let min = Fixed::from_raw(Q4_12.min_raw(), Q4_12).unwrap();
        assert_eq!(min.saturating_neg().raw(), Q4_12.max_raw());
        assert_eq!(min.saturating_abs().raw(), Q4_12.max_raw());
        let pos = Fixed::from_f64(2.0, Q4_12, Rounding::NearestEven);
        assert_eq!(pos.saturating_abs(), pos);
    }

    #[test]
    fn convert_changes_format() {
        let a = Fixed::from_f64(1.5, Q4_12, Rounding::NearestEven);
        let b = a.convert(Q6_10, Rounding::NearestEven);
        assert_eq!(b.format(), Q6_10);
        assert_eq!(b.to_f64(), 1.5);
    }

    #[test]
    fn from_raw_rejects_out_of_range() {
        assert!(Fixed::from_raw(40_000, Q4_12).is_err());
        assert!(Fixed::from_raw(32_767, Q4_12).is_ok());
    }

    #[test]
    fn shift_round_modes() {
        assert_eq!(shift_round(5, 1, Rounding::Floor), 2);
        assert_eq!(shift_round(5, 1, Rounding::NearestAway), 3);
        assert_eq!(shift_round(5, 1, Rounding::NearestEven), 2); // 2.5 -> 2
        assert_eq!(shift_round(7, 1, Rounding::NearestEven), 4); // 3.5 -> 4
        assert_eq!(shift_round(-5, 1, Rounding::Floor), -3);
        assert_eq!(shift_round(-5, 1, Rounding::NearestAway), -3); // -2.5 away -> -3... floor(-5/2)=-3, rem=1 == half -> floor => -3
    }
}
