use std::fmt;

use crate::{Fixed, FixedError, QFormat};

/// A raw 16-bit hardware word, as carried on the NOVA NoC wires.
///
/// The 257-bit NOVA link is 16 of these words (8 slope/bias pairs) plus one
/// tag bit; [`Word16`] is the unit the flit packer operates on. A `Word16`
/// is just bits — it only becomes a number when paired with a [`QFormat`]
/// via [`Word16::to_fixed`].
///
/// # Example
///
/// ```
/// use nova_fixed::{Fixed, Q4_12, Rounding, Word16};
///
/// # fn main() -> Result<(), nova_fixed::FixedError> {
/// let v = Fixed::from_f64(-1.5, Q4_12, Rounding::NearestEven);
/// let w = Word16::from_fixed(v)?;
/// assert_eq!(w.to_fixed(Q4_12).to_f64(), -1.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Word16(u16);

impl Word16 {
    /// Wraps raw bits.
    #[must_use]
    pub fn new(bits: u16) -> Self {
        Self(bits)
    }

    /// The raw bit pattern.
    #[must_use]
    pub fn bits(self) -> u16 {
        self.0
    }

    /// Encodes a fixed-point value into a 16-bit word.
    ///
    /// For every format of at most 16 bits the `from_fixed` →
    /// [`to_fixed`](Self::to_fixed) round trip is exact on *every* raw
    /// word: truncation to 16 bits is lossless because the format bounds
    /// the word, and decoding sign-extends the same bits back. This is
    /// the invariant the NoC broadcast fast path rests on — a compiled
    /// schedule's wire-decoded `(slope, bias)` pairs are bit-identical to
    /// the table they were packed from, so evaluating through the table
    /// directly is bit-identical to evaluating through the wire (wider
    /// formats cannot compile a schedule at all; they fail here first).
    /// The exhaustive round-trip test pins this.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::InvalidFormat`] if the value's format is wider
    /// than 16 bits (it would not fit on the wire).
    pub fn from_fixed(value: Fixed) -> Result<Self, FixedError> {
        let fmt = value.format();
        if fmt.total_bits() > 16 {
            return Err(FixedError::InvalidFormat {
                total_bits: fmt.total_bits(),
                frac_bits: fmt.frac_bits(),
            });
        }
        // Two's-complement truncation to 16 bits preserves the word because
        // the format guarantees it fits.
        Ok(Self(value.raw() as i16 as u16))
    }

    /// Decodes the word under a format (sign-extending from bit 15).
    #[must_use]
    pub fn to_fixed(self, format: QFormat) -> Fixed {
        let raw = self.0 as i16 as i64;
        // A 16-bit pattern always fits a format with total_bits == 16; for
        // narrower formats saturate (hardware would never produce these).
        Fixed::from_raw_saturating(raw, format)
    }
}

impl fmt::Display for Word16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:04x}", self.0)
    }
}

impl fmt::LowerHex for Word16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Word16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl From<u16> for Word16 {
    fn from(bits: u16) -> Self {
        Self(bits)
    }
}

impl From<Word16> for u16 {
    fn from(word: Word16) -> Self {
        word.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rounding, Q4_12};

    #[test]
    fn roundtrip_all_sign_cases() {
        for v in [-8.0, -0.125, 0.0, 0.125, 7.5] {
            let f = Fixed::from_f64(v, Q4_12, Rounding::NearestEven);
            let w = Word16::from_fixed(f).unwrap();
            assert_eq!(w.to_fixed(Q4_12), f);
        }
    }

    #[test]
    fn negative_values_encode_twos_complement() {
        let f = Fixed::from_raw(-1, Q4_12).unwrap();
        let w = Word16::from_fixed(f).unwrap();
        assert_eq!(w.bits(), 0xffff);
    }

    #[test]
    fn roundtrip_exact_for_every_raw_word_of_16_bit_formats() {
        // The wire-exactness invariant behind the NoC eval fast path:
        // every raw word of a ≤ 16-bit format survives the wire
        // unchanged, for both a full-width and a narrower format.
        for format in [Q4_12, crate::QFormat::new(12, 8).unwrap()] {
            for raw in format.min_raw()..=format.max_raw() {
                let f = Fixed::from_raw(raw, format).unwrap();
                let w = Word16::from_fixed(f).unwrap();
                assert_eq!(w.to_fixed(format), f, "raw {raw} in {format}");
            }
        }
    }

    #[test]
    fn wide_format_rejected() {
        let wide = crate::QFormat::new(32, 16).unwrap();
        let f = Fixed::from_f64(1.0, wide, Rounding::NearestEven);
        assert!(Word16::from_fixed(f).is_err());
    }

    #[test]
    fn formatting_impls() {
        let w = Word16::new(0x0abc);
        assert_eq!(w.to_string(), "0x0abc");
        assert_eq!(format!("{w:x}"), "abc");
        assert_eq!(format!("{w:b}"), "101010111100");
    }
}
