//! Fixed-point arithmetic substrate for the NOVA reproduction.
//!
//! Every hardware datapath in the paper — the comparators that generate
//! lookup addresses, the broadcast slope/bias words on the 257-bit NoC
//! links, and the per-neuron MAC that computes `a·x + b` — operates on
//! 16-bit signed fixed-point words. This crate provides:
//!
//! - [`QFormat`]: a signed Q-format description (word size + fraction bits),
//! - [`Fixed`]: a checked, saturating fixed-point value in a given format,
//! - [`Word16`]: the raw 16-bit hardware word as it travels on NoC wires,
//! - [`Mac`]: a hardware-like multiply-accumulate with a wide internal
//!   accumulator and a single output quantization step.
//!
//! # Example
//!
//! ```
//! use nova_fixed::{Fixed, QFormat, Rounding};
//!
//! # fn main() -> Result<(), nova_fixed::FixedError> {
//! let q = QFormat::new(16, 12)?; // Q4.12: range [-8, 8), resolution 2^-12
//! let a = Fixed::from_f64(1.5, q, Rounding::NearestEven);
//! let b = Fixed::from_f64(-0.25, q, Rounding::NearestEven);
//! let sum = a.saturating_add(b)?;
//! assert!((sum.to_f64() - 1.25).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod error;
mod format;
mod mac;
pub mod rng;
mod value;
mod word;

pub use batch::FixedBatch;
pub use error::FixedError;
pub use format::{QFormat, Rounding};
pub use mac::Mac;
pub use value::Fixed;
pub use word::Word16;

/// The default Q-format used by the NOVA datapath for activations and
/// slope/bias words: Q4.12 (16-bit word, 12 fraction bits, range `[-8, 8)`).
///
/// NN-LUT-style approximators clamp their inputs to a bounded range before
/// the piecewise-linear lookup, so 4 integer bits cover the useful domain of
/// every activation the paper maps (exp after max-subtraction, GELU, tanh,
/// sigmoid) while 12 fraction bits keep quantization error below the
/// approximation error of 16 breakpoints.
pub const Q4_12: QFormat = QFormat::const_new(16, 12);

/// Wider Q6.10 format (range `[-32, 32)`) used when an operator needs more
/// dynamic range (e.g. pre-normalization softmax logits).
pub const Q6_10: QFormat = QFormat::const_new(16, 10);

/// Q8.8 format (range `[-128, 128)`) used in ablations of the word format.
pub const Q8_8: QFormat = QFormat::const_new(16, 8);
