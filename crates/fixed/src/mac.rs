use crate::value::shift_round;
use crate::{Fixed, FixedError, QFormat, Rounding};

/// A hardware-style multiply-accumulate unit with a wide internal
/// accumulator.
///
/// The paper's approximation datapath ends in a per-neuron MAC that computes
/// `slope · x + bias` in one cycle. `Mac` models the slightly more general
/// unit: a sequence of `accumulate` steps held at full product precision,
/// quantized once when the output register is read. This is also the PE
/// model used by the cycle-accurate systolic array in `nova-accel`.
///
/// # Example
///
/// ```
/// use nova_fixed::{Fixed, Mac, Q4_12, Rounding};
///
/// # fn main() -> Result<(), nova_fixed::FixedError> {
/// let mut mac = Mac::new(Q4_12);
/// let a = Fixed::from_f64(0.5, Q4_12, Rounding::NearestEven);
/// let x = Fixed::from_f64(2.0, Q4_12, Rounding::NearestEven);
/// mac.accumulate(a, x)?;
/// mac.accumulate(a, x)?;
/// let y = mac.read(Rounding::NearestEven);
/// assert_eq!(y.to_f64(), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mac {
    format: QFormat,
    /// Accumulator at `2 × frac_bits` precision.
    acc: i64,
    /// Number of accumulate operations since the last clear (for stats).
    ops: u64,
}

impl Mac {
    /// Creates a cleared MAC operating on words of `format`.
    #[must_use]
    pub fn new(format: QFormat) -> Self {
        Self {
            format,
            acc: 0,
            ops: 0,
        }
    }

    /// The word format of this MAC's operands and output.
    #[must_use]
    pub fn format(&self) -> QFormat {
        self.format
    }

    /// Adds `a · x` to the accumulator at full product precision.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::FormatMismatch`] if either operand is not in
    /// the MAC's format.
    pub fn accumulate(&mut self, a: Fixed, x: Fixed) -> Result<(), FixedError> {
        self.check(a)?;
        self.check(x)?;
        self.acc = self.acc.saturating_add(a.raw() * x.raw());
        self.ops += 1;
        Ok(())
    }

    /// Adds a pre-scaled bias term (aligned to accumulator precision).
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::FormatMismatch`] if `b` is not in the MAC's
    /// format.
    pub fn add_bias(&mut self, b: Fixed) -> Result<(), FixedError> {
        self.check(b)?;
        self.acc = self.acc.saturating_add(b.raw() << self.format.frac_bits());
        Ok(())
    }

    /// Quantizes the accumulator to an output word (saturating) without
    /// clearing it. The rounding step is the same `shift_round` the fused
    /// MAC ([`Fixed::mul_add_raw`]) uses, so reading a one-product
    /// accumulator is bit-identical to the fused path by construction.
    #[must_use]
    pub fn read(&self, rounding: Rounding) -> Fixed {
        let frac = self.format.frac_bits();
        let shifted = shift_round(self.acc, frac, rounding);
        Fixed::from_raw_saturating(shifted, self.format)
    }

    /// Clears the accumulator; returns the number of accumulate operations
    /// performed since the previous clear.
    pub fn clear(&mut self) -> u64 {
        self.acc = 0;
        std::mem::take(&mut self.ops)
    }

    /// Number of accumulate operations since the last clear.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    fn check(&self, v: Fixed) -> Result<(), FixedError> {
        if v.format() == self.format {
            Ok(())
        } else {
            Err(FixedError::FormatMismatch {
                lhs: self.format,
                rhs: v.format(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Q4_12;

    #[test]
    fn dot_product_matches_float() {
        let mut mac = Mac::new(Q4_12);
        let pairs = [(0.5, 1.5), (-0.25, 2.0), (1.0, -0.75)];
        let mut expected = 0.0;
        for (a, x) in pairs {
            let fa = Fixed::from_f64(a, Q4_12, Rounding::NearestEven);
            let fx = Fixed::from_f64(x, Q4_12, Rounding::NearestEven);
            mac.accumulate(fa, fx).unwrap();
            expected += a * x;
        }
        let y = mac.read(Rounding::NearestEven);
        assert!((y.to_f64() - expected).abs() <= 3.0 * Q4_12.resolution());
        assert_eq!(mac.ops(), 3);
    }

    #[test]
    fn bias_is_full_precision() {
        let mut mac = Mac::new(Q4_12);
        let b = Fixed::from_f64(1.25, Q4_12, Rounding::NearestEven);
        mac.add_bias(b).unwrap();
        assert_eq!(mac.read(Rounding::NearestEven).to_f64(), 1.25);
    }

    #[test]
    fn clear_resets_and_reports_ops() {
        let mut mac = Mac::new(Q4_12);
        let one = Fixed::one(Q4_12);
        mac.accumulate(one, one).unwrap();
        assert_eq!(mac.clear(), 1);
        assert_eq!(mac.read(Rounding::NearestEven).to_f64(), 0.0);
        assert_eq!(mac.ops(), 0);
    }

    #[test]
    fn output_saturates() {
        let mut mac = Mac::new(Q4_12);
        let big = Fixed::from_f64(7.9, Q4_12, Rounding::NearestEven);
        for _ in 0..4 {
            mac.accumulate(big, big).unwrap();
        }
        assert_eq!(mac.read(Rounding::NearestEven).raw(), Q4_12.max_raw());
    }

    #[test]
    fn format_mismatch_rejected() {
        let mut mac = Mac::new(Q4_12);
        let wrong = Fixed::zero(crate::Q6_10);
        assert!(mac.accumulate(wrong, wrong).is_err());
        assert!(mac.add_bias(wrong).is_err());
    }
}
