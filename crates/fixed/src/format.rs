use std::fmt;

use crate::FixedError;

/// Rounding mode applied when quantizing a real value (or a wide
/// intermediate result) to a fixed-point word.
///
/// Hardware MACs in the paper's datapath truncate or round-to-nearest at the
/// output register; both are provided so the approximation-error experiments
/// can ablate the choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Rounding {
    /// Round to nearest, ties to even (IEEE-style; hardware "convergent").
    #[default]
    NearestEven,
    /// Round to nearest, ties away from zero.
    NearestAway,
    /// Truncate toward negative infinity (drop fraction bits; cheapest gate
    /// count, used by the most area-frugal MAC variant).
    Floor,
}

/// A signed fixed-point format: `total_bits`-bit two's-complement word with
/// `frac_bits` bits after the binary point (a "Q" format).
///
/// The value of a word with raw integer `r` is `r / 2^frac_bits`.
///
/// # Example
///
/// ```
/// use nova_fixed::QFormat;
///
/// # fn main() -> Result<(), nova_fixed::FixedError> {
/// let q = QFormat::new(16, 12)?;
/// assert_eq!(q.total_bits(), 16);
/// assert_eq!(q.frac_bits(), 12);
/// assert_eq!(q.max_value(), (i16::MAX as f64) / 4096.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QFormat {
    total_bits: u8,
    frac_bits: u8,
}

impl QFormat {
    /// Creates a format with `total_bits` word size and `frac_bits` fraction
    /// bits.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::InvalidFormat`] if `total_bits` is 0 or greater
    /// than 32, or if `frac_bits >= total_bits` (at least the sign bit must
    /// remain).
    pub fn new(total_bits: u8, frac_bits: u8) -> Result<Self, FixedError> {
        if total_bits == 0 || total_bits > 32 || frac_bits >= total_bits {
            return Err(FixedError::InvalidFormat {
                total_bits,
                frac_bits,
            });
        }
        Ok(Self {
            total_bits,
            frac_bits,
        })
    }

    /// `const` constructor for the crate's predefined formats.
    ///
    /// # Panics
    ///
    /// Panics at compile time (const evaluation) on an invalid format.
    pub(crate) const fn const_new(total_bits: u8, frac_bits: u8) -> Self {
        assert!(total_bits > 0 && total_bits <= 32 && frac_bits < total_bits);
        Self {
            total_bits,
            frac_bits,
        }
    }

    /// Word size in bits.
    #[inline]
    #[must_use]
    pub fn total_bits(self) -> u8 {
        self.total_bits
    }

    /// Number of fraction bits.
    #[inline]
    #[must_use]
    pub fn frac_bits(self) -> u8 {
        self.frac_bits
    }

    /// Number of integer bits including the sign bit.
    #[must_use]
    pub fn int_bits(self) -> u8 {
        self.total_bits - self.frac_bits
    }

    /// Smallest representable increment (`2^-frac_bits`).
    #[must_use]
    pub fn resolution(self) -> f64 {
        (self.scale() as f64).recip()
    }

    /// The scaling factor `2^frac_bits`.
    #[inline]
    #[must_use]
    pub fn scale(self) -> i64 {
        1i64 << self.frac_bits
    }

    /// Largest raw word value (`2^(total_bits-1) - 1`).
    #[inline]
    #[must_use]
    pub fn max_raw(self) -> i64 {
        (1i64 << (self.total_bits - 1)) - 1
    }

    /// Smallest (most negative) raw word value (`-2^(total_bits-1)`).
    #[inline]
    #[must_use]
    pub fn min_raw(self) -> i64 {
        -(1i64 << (self.total_bits - 1))
    }

    /// Largest representable real value.
    #[must_use]
    pub fn max_value(self) -> f64 {
        self.max_raw() as f64 * self.resolution()
    }

    /// Smallest (most negative) representable real value.
    #[must_use]
    pub fn min_value(self) -> f64 {
        self.min_raw() as f64 * self.resolution()
    }

    /// Quantizes a real value to a raw word, saturating at the format's
    /// range boundaries.
    #[must_use]
    pub fn quantize(self, value: f64, rounding: Rounding) -> i64 {
        if value.is_nan() {
            return 0;
        }
        let scaled = value * self.scale() as f64;
        let rounded = match rounding {
            Rounding::NearestEven => round_ties_even(scaled),
            Rounding::NearestAway => scaled.round(),
            Rounding::Floor => scaled.floor(),
        };
        if rounded >= self.max_raw() as f64 {
            self.max_raw()
        } else if rounded <= self.min_raw() as f64 {
            self.min_raw()
        } else {
            rounded as i64
        }
    }

    /// Clamps a raw (possibly wide) integer into this format's word range.
    #[inline]
    #[must_use]
    pub fn saturate_raw(self, raw: i64) -> i64 {
        raw.clamp(self.min_raw(), self.max_raw())
    }

    /// True if `raw` fits in the word without saturation.
    #[inline]
    #[must_use]
    pub fn contains_raw(self, raw: i64) -> bool {
        raw >= self.min_raw() && raw <= self.max_raw()
    }
}

impl fmt::Display for QFormat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.int_bits(), self.frac_bits)
    }
}

/// `f64::round_ties_even` replacement to keep MSRV flexibility explicit.
fn round_ties_even(x: f64) -> f64 {
    let r = x.round();
    if (x - x.trunc()).abs() == 0.5 {
        // Tie: pick the even neighbour.
        if r % 2.0 == 0.0 {
            r
        } else {
            r - (r - x).signum()
        }
    } else {
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_invalid_formats() {
        assert!(QFormat::new(0, 0).is_err());
        assert!(QFormat::new(33, 2).is_err());
        assert!(QFormat::new(16, 16).is_err());
        assert!(QFormat::new(16, 17).is_err());
        assert!(QFormat::new(16, 15).is_ok());
    }

    #[test]
    fn q4_12_range() {
        let q = QFormat::new(16, 12).unwrap();
        assert_eq!(q.max_raw(), 32767);
        assert_eq!(q.min_raw(), -32768);
        assert!((q.max_value() - 7.999_755_859_375).abs() < 1e-12);
        assert_eq!(q.min_value(), -8.0);
        assert_eq!(q.int_bits(), 4);
    }

    #[test]
    fn quantize_saturates() {
        let q = QFormat::new(16, 12).unwrap();
        assert_eq!(q.quantize(100.0, Rounding::NearestEven), q.max_raw());
        assert_eq!(q.quantize(-100.0, Rounding::NearestEven), q.min_raw());
        assert_eq!(q.quantize(f64::NAN, Rounding::NearestEven), 0);
    }

    #[test]
    fn quantize_rounding_modes() {
        let q = QFormat::new(16, 0).unwrap();
        assert_eq!(q.quantize(2.5, Rounding::NearestEven), 2);
        assert_eq!(q.quantize(3.5, Rounding::NearestEven), 4);
        assert_eq!(q.quantize(2.5, Rounding::NearestAway), 3);
        assert_eq!(q.quantize(-2.5, Rounding::NearestAway), -3);
        assert_eq!(q.quantize(2.9, Rounding::Floor), 2);
        assert_eq!(q.quantize(-2.1, Rounding::Floor), -3);
    }

    #[test]
    fn display_format() {
        assert_eq!(QFormat::new(16, 12).unwrap().to_string(), "Q4.12");
        assert_eq!(QFormat::new(16, 8).unwrap().to_string(), "Q8.8");
    }

    #[test]
    fn resolution_matches_scale() {
        let q = QFormat::new(16, 10).unwrap();
        assert_eq!(q.scale(), 1024);
        assert!((q.resolution() - 1.0 / 1024.0).abs() < 1e-15);
    }
}
