//! A flat, contiguous `(routers × neurons)` batch of fixed-point words.
//!
//! The serving hot path used to shuttle nested `Vec<Vec<Fixed>>` batches
//! through every layer — one heap allocation per router row per batch,
//! plus pointer-chasing on every access. [`FixedBatch`] replaces that
//! with the layout the hardware model actually has: one contiguous
//! buffer in row-major order, so a batch is a single allocation, rows
//! are slices, and a whole batch can be recycled across serve calls
//! without touching the allocator.

use std::fmt;

use crate::{Fixed, FixedError};

/// A dense row-major batch of [`Fixed`] words on a `(routers × neurons)`
/// grid.
///
/// # Invariants
///
/// - `data.len() == routers * neurons` at all times — there is no
///   partially filled state; [`reset`](Self::reset) re-establishes the
///   invariant in one step when the grid changes.
/// - The word at grid position `(r, n)` lives at flat index
///   `r * neurons + n` (row-major). Row `r` is the contiguous slice
///   `data[r * neurons .. (r + 1) * neurons]`.
/// - Tail padding is ordinary data: a serving layer that packs a partial
///   batch writes its pad word into the trailing slots, and the batch
///   itself does not distinguish pad from payload. Callers that scatter
///   results back are responsible for dropping the padded tail — exactly
///   as with the nested representation.
/// - The buffer's *capacity* is never shrunk by [`reset`](Self::reset),
///   so a recycled batch reaches a steady state where no call allocates.
/// - No format invariant is imposed across slots (validation belongs to
///   the datapath that consumes the batch), but every constructor fills
///   each slot with a real word — a `FixedBatch` never exposes
///   uninitialized memory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FixedBatch {
    data: Vec<Fixed>,
    routers: usize,
    neurons: usize,
}

impl FixedBatch {
    /// A `routers × neurons` batch with every slot set to `fill`.
    #[must_use]
    pub fn new(routers: usize, neurons: usize, fill: Fixed) -> Self {
        Self {
            data: vec![fill; routers * neurons],
            routers,
            neurons,
        }
    }

    /// The empty `0 × 0` batch — the natural seed for an output buffer
    /// that a callee will [`reset`](Self::reset) to its own grid.
    #[must_use]
    pub fn empty() -> Self {
        Self {
            data: Vec::new(),
            routers: 0,
            neurons: 0,
        }
    }

    /// Builds a batch by flattening nested rows (the legacy
    /// representation) into contiguous storage.
    ///
    /// # Errors
    ///
    /// Returns [`FixedError::RaggedRows`] if any row's width differs from
    /// the first row's — a ragged grid has no flat layout.
    pub fn from_rows(rows: &[Vec<Fixed>]) -> Result<Self, FixedError> {
        let neurons = rows.first().map_or(0, Vec::len);
        if let Some((row, r)) = rows.iter().enumerate().find(|(_, r)| r.len() != neurons) {
            return Err(FixedError::RaggedRows {
                row,
                got: r.len(),
                expected: neurons,
            });
        }
        let mut data = Vec::with_capacity(rows.len() * neurons);
        for row in rows {
            data.extend_from_slice(row);
        }
        Ok(Self {
            data,
            routers: rows.len(),
            neurons,
        })
    }

    /// Expands back into nested rows (the legacy representation). Costs
    /// one allocation per row — compatibility only, not a hot path.
    #[must_use]
    pub fn to_rows(&self) -> Vec<Vec<Fixed>> {
        self.rows().map(<[Fixed]>::to_vec).collect()
    }

    /// Grid dimensions as `(routers, neurons)`.
    #[must_use]
    pub fn dims(&self) -> (usize, usize) {
        (self.routers, self.neurons)
    }

    /// Router rows in the grid.
    #[must_use]
    pub fn routers(&self) -> usize {
        self.routers
    }

    /// Neurons (columns) per router row.
    #[must_use]
    pub fn neurons(&self) -> usize {
        self.neurons
    }

    /// Total slots (`routers × neurons`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the batch holds no slots.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Allocated capacity in slots — stable across
    /// [`reset`](Self::reset) calls that fit, which is what the serving
    /// layer's recycling test asserts.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.data.capacity()
    }

    /// Row `r` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= routers`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[Fixed] {
        &self.data[r * self.neurons..(r + 1) * self.neurons]
    }

    /// Row `r` as a mutable contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= routers`.
    pub fn row_mut(&mut self, r: usize) -> &mut [Fixed] {
        &mut self.data[r * self.neurons..(r + 1) * self.neurons]
    }

    /// Iterates the router rows as contiguous slices.
    pub fn rows(&self) -> impl Iterator<Item = &[Fixed]> {
        // `chunks(0)` panics; an empty grid simply yields no rows.
        self.data.chunks(self.neurons.max(1))
    }

    /// The whole grid as one flat row-major slice.
    #[must_use]
    pub fn as_slice(&self) -> &[Fixed] {
        &self.data
    }

    /// The whole grid as one flat mutable row-major slice.
    pub fn as_mut_slice(&mut self) -> &mut [Fixed] {
        &mut self.data
    }

    /// Reshapes to `routers × neurons` with every slot set to `fill`,
    /// reusing the existing allocation. This is the recycling primitive:
    /// once a buffer has served a grid, resetting it to the same (or a
    /// smaller) grid never touches the allocator.
    pub fn reset(&mut self, routers: usize, neurons: usize, fill: Fixed) {
        self.routers = routers;
        self.neurons = neurons;
        self.data.clear();
        self.data.resize(routers * neurons, fill);
    }

    /// Copies another batch's grid and contents into this buffer,
    /// reusing the existing allocation (a `clone_from` that keeps
    /// capacity).
    pub fn copy_from(&mut self, other: &FixedBatch) {
        self.routers = other.routers;
        self.neurons = other.neurons;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }
}

impl fmt::Display for FixedBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FixedBatch({}×{})", self.routers, self.neurons)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Rounding, Q4_12};

    fn w(x: f64) -> Fixed {
        Fixed::from_f64(x, Q4_12, Rounding::NearestEven)
    }

    #[test]
    fn row_major_layout() {
        let mut b = FixedBatch::new(3, 4, w(0.0));
        b.row_mut(1)[2] = w(1.5);
        assert_eq!(b.as_slice()[6], w(1.5), "flat index = r * neurons + n");
        assert_eq!(b.row(1)[2], w(1.5));
        assert_eq!(b.dims(), (3, 4));
        assert_eq!(b.len(), 12);
    }

    #[test]
    fn rows_iterate_in_order() {
        let rows: Vec<Vec<Fixed>> = (0..3)
            .map(|r| (0..2).map(|n| w(r as f64 + n as f64 * 0.25)).collect())
            .collect();
        let b = FixedBatch::from_rows(&rows).unwrap();
        let collected: Vec<&[Fixed]> = b.rows().collect();
        assert_eq!(collected.len(), 3);
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(collected[r], row.as_slice());
        }
        assert_eq!(b.to_rows(), rows);
    }

    #[test]
    fn ragged_rows_rejected() {
        let rows = vec![vec![w(0.0); 4], vec![w(0.0); 3]];
        assert!(matches!(
            FixedBatch::from_rows(&rows),
            Err(FixedError::RaggedRows {
                row: 1,
                got: 3,
                expected: 4
            })
        ));
    }

    #[test]
    fn reset_reuses_capacity() {
        let mut b = FixedBatch::new(4, 8, w(0.5));
        let cap = b.capacity();
        // Same grid: everything refilled, no allocation.
        b.as_mut_slice()[7] = w(1.0);
        b.reset(4, 8, w(-0.25));
        assert!(b.as_slice().iter().all(|&x| x == w(-0.25)));
        assert_eq!(b.capacity(), cap);
        // Smaller grid still fits the allocation.
        b.reset(2, 8, w(0.0));
        assert_eq!(b.dims(), (2, 8));
        assert_eq!(b.capacity(), cap);
    }

    #[test]
    fn empty_batch_behaves() {
        let b = FixedBatch::empty();
        assert!(b.is_empty());
        assert_eq!(b.dims(), (0, 0));
        assert_eq!(b.rows().count(), 0);
        assert!(FixedBatch::from_rows(&[]).unwrap().is_empty());
    }

    #[test]
    fn copy_from_matches_and_keeps_capacity() {
        let src = FixedBatch::new(2, 3, w(1.25));
        let mut dst = FixedBatch::new(5, 5, w(0.0));
        let cap = dst.capacity();
        dst.copy_from(&src);
        assert_eq!(dst, src);
        assert_eq!(dst.capacity(), cap);
    }
}
