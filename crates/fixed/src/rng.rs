//! A tiny deterministic PRNG for seeded weights, synthetic workloads and
//! property tests.
//!
//! The dependency policy keeps the workspace free of external crates, so
//! this module stands in for `rand`: a [`StdRng`] with the same
//! seed-and-sample surface the workspace uses (`seed_from_u64`,
//! `gen_range`, `next_u64`). The generator is splitmix64-seeded
//! xoshiro256**, which passes BigCrush and is more than adequate for
//! reproducible test stimulus — it is *not* a cryptographic RNG.
//!
//! It lives in `nova-fixed` because this is the root crate of the
//! workspace DAG, so every layer (approximators, workloads, benches,
//! examples) can share one generator without a dedicated crate.

use std::ops::Range;

/// Deterministic xoshiro256** generator, seeded via splitmix64.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Builds a generator whose whole stream is determined by `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let x = (self.next_u64() >> 11) as f64;
        x / (1u64 << 53) as f64
    }

    /// Uniform sample from a half-open range, like `rand`'s `gen_range`.
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    pub fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }
}

/// Types that can be drawn uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one uniform sample from `range`.
    fn sample(rng: &mut StdRng, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample(rng: &mut StdRng, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let span = range.end - range.start;
        // `start + u*span` can round up to exactly `end` for u close to
        // 1 on narrow ranges; reject those draws to keep the half-open
        // contract. Terminates: u = 0 always yields `start < end`.
        loop {
            let v = range.start + rng.gen_f64() * span;
            if v < range.end {
                return v;
            }
        }
    }
}

macro_rules! impl_sample_uint {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut StdRng, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end - range.start) as u64;
                // Debiased via rejection sampling on the top of the range.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let x = rng.next_u64();
                    if x < zone {
                        return range.start + (x % span) as $t;
                    }
                }
            }
        }
    )+};
}

impl_sample_uint!(u64, usize, u32);

impl SampleUniform for i64 {
    fn sample(rng: &mut StdRng, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "empty range");
        let span = range.end.wrapping_sub(range.start) as u64;
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let x = rng.next_u64();
            if x < zone {
                #[allow(clippy::cast_possible_wrap)]
                return range.start.wrapping_add((x % span) as i64);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_range_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.5..3.5);
            assert!((-2.5..3.5).contains(&x));
        }
    }

    #[test]
    fn f64_narrow_range_stays_half_open() {
        // On a one-ULP-wide range, rounding would push draws near 1.0
        // to exactly `end` without the rejection step.
        let mut rng = StdRng::seed_from_u64(13);
        let (lo, hi) = (1.0, 1.0 + f64::EPSILON);
        for _ in 0..10_000 {
            let x = rng.gen_range(lo..hi);
            assert!(x >= lo && x < hi, "x = {x:?}");
        }
    }

    #[test]
    fn usize_range_hits_all_buckets() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn mean_is_roughly_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen_f64()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
