//! Mixed-traffic request streams for the serving engine.
//!
//! Production serving mixes tenants: BERT-family attention models, CNN
//! vision models and bursty synthetic tasks arrive interleaved on many
//! concurrent streams. This module generates that traffic
//! deterministically from a seed: each stream carries an ordered list of
//! inference requests drawn from a workload palette, and the global
//! arrival order interleaves the streams with a seeded merge that
//! preserves each stream's FIFO order — the same trace replays
//! bit-identically for a given [`TrafficMix`].
//!
//! Traffic is an **open-loop arrival process**: every request carries an
//! [`arrival_cycle`](TrafficRequest::arrival_cycle) stamped from seeded
//! interarrival gaps (mean [`TrafficMix::mean_interarrival_cycles`]), so
//! a serving bench can sweep *offered load* — queries per cycle pushed
//! at the engine regardless of how fast it drains them — instead of
//! replaying a pre-materialized burst. A mean of 0 degenerates to the
//! closed-loop burst (everything arrives at cycle 0).
//!
//! # Example
//!
//! ```
//! use nova_workloads::traffic::TrafficMix;
//!
//! let trace = TrafficMix::paper_default(8).generate();
//! assert_eq!(trace.len(), 8 * TrafficMix::paper_default(8).requests_per_stream);
//! assert!(trace.iter().all(|r| r.census.approximator_queries() > 0));
//! ```

use nova_approx::Activation;
use nova_fixed::rng::StdRng;
use nova_fixed::{Fixed, QFormat, Rounding};

use crate::bert::{census as bert_census, BertConfig, MatmulDims, OpCensus};
use crate::cnn::{census as cnn_census, CnnConfig};

/// The workload family an inference request belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// BERT-family attention model (softmax/GELU/LayerNorm traffic).
    Bert,
    /// CNN/MLP vision model (ReLU traffic plus one classifier softmax).
    Cnn,
    /// Synthetic burst with a randomized non-linear query volume.
    Synthetic,
}

nova_serde::impl_serde_enum!(TrafficClass {
    Bert,
    Cnn,
    Synthetic
});

impl TrafficClass {
    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Bert => "BERT",
            TrafficClass::Cnn => "CNN",
            TrafficClass::Synthetic => "synthetic",
        }
    }
}

/// The non-linear operation class a tenant's queries request: a plain
/// single-table lookup, or the fused softmax op-graph pipeline
/// (exp → row reduce → reciprocal → scale) a plan-aware serving engine
/// executes end to end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficOp {
    /// A single-table lookup run against one activation.
    Lookup(Activation),
    /// The fused softmax pipeline (served as one op-graph plan).
    FusedSoftmax,
}

impl TrafficOp {
    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TrafficOp::Lookup(a) => a.name(),
            TrafficOp::FusedSoftmax => "fused-softmax",
        }
    }

    /// The activation table the op's *first* lookup stage hits — the
    /// table tag legacy single-table consumers see. The fused pipeline
    /// opens with its softmax-exp lookup.
    #[must_use]
    pub fn table_activation(self) -> Activation {
        match self {
            TrafficOp::Lookup(a) => a,
            TrafficOp::FusedSoftmax => Activation::Exp,
        }
    }
}

/// One inference request on one stream of the generated trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficRequest {
    /// Stream (tenant) the request belongs to.
    pub stream: usize,
    /// Position in the global seeded arrival order.
    pub arrival: usize,
    /// Host-clock cycle the request arrives at — the open-loop arrival
    /// process: cumulative seeded interarrival gaps, nondecreasing in
    /// arrival order. All zero for a closed-loop (burst) mix.
    pub arrival_cycle: u64,
    /// Workload family.
    pub class: TrafficClass,
    /// Model name (for display).
    pub model: String,
    /// The non-linear op class this tenant's queries request — assigned
    /// per stream from [`TrafficMix::ops`], so a plan-aware serving
    /// engine sees a deterministic tenancy mix.
    pub op: TrafficOp,
    /// Which activation table this tenant's queries hit first — derived
    /// from [`op`](Self::op) ([`TrafficOp::table_activation`]), kept for
    /// single-table consumers like `census_slate`.
    pub activation: Activation,
    /// The request's operation census.
    pub census: OpCensus,
}

/// Knobs of the mixed-traffic generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficMix {
    /// Concurrent inference streams (tenants).
    pub streams: usize,
    /// Requests issued per stream.
    pub requests_per_stream: usize,
    /// Sequence length of the BERT-family requests.
    pub bert_seq_len: usize,
    /// Mean gap between consecutive arrivals, in host-clock cycles —
    /// the open-loop offered-load knob (smaller gap = higher load).
    /// 0 means closed-loop: the whole slate arrives at cycle 0.
    pub mean_interarrival_cycles: u64,
    /// Non-linear ops the tenants request, assigned round-robin per
    /// stream (`stream % ops.len()`): a single-entry palette is the
    /// classic one-table mix, `[Lookup(Gelu), Lookup(Exp)]` models GELU
    /// tenants interleaved with softmax-exp tenants, and
    /// [`TrafficOp::FusedSoftmax`] entries emit pipeline tenants whose
    /// attention rows a plan-aware engine serves as fused op-graph
    /// plans. Must be non-empty.
    pub ops: &'static [TrafficOp],
    /// Trace seed: same seed, same trace.
    pub seed: u64,
}

impl TrafficMix {
    /// The default mix used by the serving bench and example: 4 requests
    /// per stream at a short (edge-serving) sequence length, arriving as
    /// a closed-loop burst.
    #[must_use]
    pub fn paper_default(streams: usize) -> Self {
        Self {
            streams,
            requests_per_stream: 4,
            bert_seq_len: 64,
            mean_interarrival_cycles: 0,
            ops: &[TrafficOp::Lookup(Activation::Gelu)],
            seed: 0x5EED,
        }
    }

    /// An open-loop variant of [`paper_default`](Self::paper_default):
    /// the same workload palette, arriving with seeded interarrival gaps
    /// of the given mean — the knob an offered-load sweep turns.
    #[must_use]
    pub fn open_loop(streams: usize, mean_interarrival_cycles: u64) -> Self {
        Self {
            mean_interarrival_cycles,
            ..Self::paper_default(streams)
        }
    }

    /// A 2-activation tenancy mix: even streams hit the GELU table, odd
    /// streams the softmax-exp table — the trace the table-switch bench
    /// serves, where NOVA stays flat and LUT/SDP engines pay bank
    /// rewrites between activation runs.
    #[must_use]
    pub fn mixed_activations(streams: usize) -> Self {
        Self {
            ops: &[
                TrafficOp::Lookup(Activation::Gelu),
                TrafficOp::Lookup(Activation::Exp),
            ],
            ..Self::paper_default(streams)
        }
    }

    /// A fused-attention tenancy mix: even streams are GELU lookup
    /// tenants, odd streams request the fused softmax pipeline — the
    /// trace the op-graph bench serves, where every fused batch
    /// re-programs the unit between the exp and reciprocal tables
    /// (free on NOVA, a bank rewrite on LUT/SDP).
    #[must_use]
    pub fn fused_attention(streams: usize) -> Self {
        Self {
            ops: &[TrafficOp::Lookup(Activation::Gelu), TrafficOp::FusedSoftmax],
            ..Self::paper_default(streams)
        }
    }

    /// The trace's per-request `(activation, census)` pairs alone, in
    /// arrival order — the mixed-activation slate shape
    /// `engine::evaluate_multi_stream` consumes. One generation, one
    /// allocation; callers that only need the analytic view skip
    /// materializing (and then cloning out of) the full
    /// [`TrafficRequest`] records.
    ///
    /// # Panics
    ///
    /// As [`generate`](Self::generate).
    #[must_use]
    pub fn census_slate(&self) -> Vec<(Activation, OpCensus)> {
        self.generate()
            .into_iter()
            .map(|r| (r.activation, r.census))
            .collect()
    }

    /// The trace's fused-softmax row widths, in arrival order: every
    /// [`TrafficOp::FusedSoftmax`] tenant request contributes its
    /// census's softmax rows (each `softmax_elements / softmax_rows`
    /// lanes wide — the attention row an op-graph plan reduces over).
    /// The slate `engine::evaluate_fused_softmax` consumes; empty when
    /// the palette has no fused tenants.
    ///
    /// # Panics
    ///
    /// As [`generate`](Self::generate).
    #[must_use]
    pub fn fused_rows_slate(&self) -> Vec<u64> {
        let mut rows = Vec::new();
        for r in self.generate() {
            if r.op != TrafficOp::FusedSoftmax || r.census.softmax_rows == 0 {
                continue;
            }
            let width = r.census.softmax_elements / r.census.softmax_rows;
            if width == 0 {
                continue;
            }
            rows.extend(std::iter::repeat_n(width, r.census.softmax_rows as usize));
        }
        rows
    }

    /// Generates the trace: `streams × requests_per_stream` requests in a
    /// seeded global arrival order that preserves each stream's FIFO
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `streams == 0`, `requests_per_stream == 0` or
    /// `bert_seq_len == 0`.
    #[must_use]
    pub fn generate(&self) -> Vec<TrafficRequest> {
        assert!(
            self.streams > 0 && self.requests_per_stream > 0,
            "traffic needs at least one stream and one request"
        );
        assert!(self.bert_seq_len > 0, "sequence length must be positive");
        assert!(!self.ops.is_empty(), "traffic needs at least one op class");
        let mut rng = StdRng::seed_from_u64(self.seed);

        // Per-stream FIFO queues of (class, model, census).
        let queues: Vec<Vec<(TrafficClass, String, OpCensus)>> = (0..self.streams)
            .map(|_| {
                (0..self.requests_per_stream)
                    .map(|_| draw_request(&mut rng, self.bert_seq_len))
                    .collect()
            })
            .collect();

        // Seeded merge: each step picks one of the still-pending requests
        // uniformly at random and pops its stream's head, so streams
        // interleave proportionally to their remaining backlog while every
        // stream stays in order.
        let total = self.streams * self.requests_per_stream;
        // Interarrival gaps come from their own seeded generator so the
        // offered-load knob never perturbs the workload draw or the
        // merge order: the same seed serves the same requests in the
        // same order at every load point.
        let mut gap_rng = StdRng::seed_from_u64(self.seed ^ 0xA881_11A1_C0FF_EE00);
        let mut clock = 0u64;
        let mut cursors = vec![0usize; self.streams];
        let mut trace = Vec::with_capacity(total);
        for arrival in 0..total {
            let remaining = total - arrival;
            let mut pick = rng.gen_range(0..remaining);
            let stream = (0..self.streams)
                .find(|&s| {
                    let left = queues[s].len() - cursors[s];
                    if pick < left {
                        true
                    } else {
                        pick -= left;
                        false
                    }
                })
                .expect("pick is within the remaining request count");
            let (class, model, census) = queues[stream][cursors[stream]].clone();
            cursors[stream] += 1;
            // Uniform gaps on [0, 2·mean] have the requested mean; the
            // first request arrives at cycle 0 so every trace starts
            // immediately.
            if arrival > 0 && self.mean_interarrival_cycles > 0 {
                clock += gap_rng.gen_range(0..2 * self.mean_interarrival_cycles + 1);
            }
            // Per-stream assignment: a tenant's queries always request
            // the same op, and the load knob / seed never change who
            // requests what.
            let op = self.ops[stream % self.ops.len()];
            trace.push(TrafficRequest {
                stream,
                arrival,
                arrival_cycle: clock,
                class,
                model,
                op,
                activation: op.table_activation(),
                census,
            });
        }
        trace
    }
}

/// Draws one request from the workload palette.
fn draw_request(rng: &mut StdRng, bert_seq_len: usize) -> (TrafficClass, String, OpCensus) {
    match rng.gen_range(0..3u32) {
        0 => {
            let palette = [
                BertConfig::bert_tiny(),
                BertConfig::bert_mini(),
                BertConfig::mobilebert_tiny(),
            ];
            let cfg = palette[rng.gen_range(0..palette.len())];
            (
                TrafficClass::Bert,
                cfg.name.to_string(),
                bert_census(&cfg, bert_seq_len),
            )
        }
        1 => {
            let palette = [CnnConfig::mlp_mnist(), CnnConfig::cnn_cifar10()];
            let cfg = palette[rng.gen_range(0..palette.len())].clone();
            let census = cnn_census(&cfg);
            (TrafficClass::Cnn, cfg.name.to_string(), census)
        }
        _ => {
            // A bursty micro-tenant: one small matmul feeding a randomized
            // ReLU volume and a classifier softmax — deliberately far
            // smaller than a full vector-unit batch so tail-batch
            // coalescing across streams has something to amortize.
            let classes = rng.gen_range(8..64usize);
            let relu = rng.gen_range(64..4096u64);
            let mut census = OpCensus {
                matmuls: vec![MatmulDims {
                    m: 1,
                    k: 256,
                    n: classes,
                }],
                ..OpCensus::default()
            };
            census.relu_elements = relu;
            census.softmax_elements = classes as u64;
            census.softmax_rows = 1;
            (
                TrafficClass::Synthetic,
                format!("synthetic-{classes}c"),
                census,
            )
        }
    }
}

/// Draws `count` raw non-linear query values uniformly from `[lo, hi)`,
/// deterministically from `seed` — the functional face of a request
/// stream, for driving a serving engine with concrete inputs.
///
/// # Panics
///
/// Panics if `lo >= hi` or either bound is non-finite.
#[must_use]
pub fn query_values(seed: u64, count: usize, lo: f64, hi: f64) -> Vec<f64> {
    assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| rng.gen_range(lo..hi)).collect()
}

/// Draws the same seeded query stream as [`query_values`] but quantizes
/// each draw straight into `format` and writes the words into a
/// caller-recycled buffer — the flat extraction path the serving benches
/// drive. `out` is cleared first; the draws are bit-identical to
/// quantizing [`query_values`]' output (same PRNG sequence), with no
/// intermediate `f64` vector allocated.
///
/// # Panics
///
/// Panics if `lo >= hi` or either bound is non-finite.
pub fn query_words_into(
    seed: u64,
    count: usize,
    lo: f64,
    hi: f64,
    format: QFormat,
    rounding: Rounding,
    out: &mut Vec<Fixed>,
) {
    assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
    let mut rng = StdRng::seed_from_u64(seed);
    out.clear();
    out.reserve(count);
    out.extend((0..count).map(|_| Fixed::from_f64(rng.gen_range(lo..hi), format, rounding)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic_per_seed() {
        let mix = TrafficMix::paper_default(6);
        assert_eq!(mix.generate(), mix.generate());
        let other = TrafficMix { seed: 7, ..mix };
        assert_ne!(mix.generate(), other.generate());
    }

    #[test]
    fn trace_covers_all_streams_and_preserves_fifo() {
        let mix = TrafficMix {
            streams: 8,
            requests_per_stream: 5,
            bert_seq_len: 32,
            mean_interarrival_cycles: 0,
            ops: &[TrafficOp::Lookup(Activation::Gelu)],
            seed: 11,
        };
        let trace = mix.generate();
        assert_eq!(trace.len(), 40);
        // Arrival order is the trace order.
        for (i, r) in trace.iter().enumerate() {
            assert_eq!(r.arrival, i);
        }
        // Every stream contributes exactly requests_per_stream, in order:
        // the k-th request of a stream arrives before its (k+1)-th.
        for s in 0..8 {
            let arrivals: Vec<usize> = trace
                .iter()
                .filter(|r| r.stream == s)
                .map(|r| r.arrival)
                .collect();
            assert_eq!(arrivals.len(), 5, "stream {s}");
            assert!(arrivals.windows(2).all(|w| w[0] < w[1]), "stream {s}");
        }
    }

    #[test]
    fn trace_mixes_workload_classes() {
        let trace = TrafficMix {
            streams: 12,
            requests_per_stream: 6,
            bert_seq_len: 32,
            mean_interarrival_cycles: 0,
            ops: &[TrafficOp::Lookup(Activation::Gelu)],
            seed: 3,
        }
        .generate();
        for class in [
            TrafficClass::Bert,
            TrafficClass::Cnn,
            TrafficClass::Synthetic,
        ] {
            assert!(
                trace.iter().any(|r| r.class == class),
                "missing {}",
                class.label()
            );
        }
        assert!(trace.iter().all(|r| r.census.approximator_queries() > 0));
    }

    #[test]
    fn trace_interleaves_streams() {
        // With many streams the seeded merge must actually interleave:
        // the trace cannot be sorted by stream id.
        let trace = TrafficMix::paper_default(8).generate();
        let streams: Vec<usize> = trace.iter().map(|r| r.stream).collect();
        let mut sorted = streams.clone();
        sorted.sort_unstable();
        assert_ne!(streams, sorted, "arrival order never interleaved");
    }

    #[test]
    fn open_loop_arrivals_are_seeded_monotone_and_load_invariant() {
        let lo = TrafficMix::open_loop(6, 5_000);
        let hi = TrafficMix {
            mean_interarrival_cycles: 50,
            ..lo
        };
        let (a, b) = (lo.generate(), lo.generate());
        assert_eq!(a, b, "open-loop trace must replay bit-identically");
        // Arrival cycles are nondecreasing in arrival order, start at 0,
        // and actually spread out (not all equal).
        assert_eq!(a[0].arrival_cycle, 0);
        assert!(a
            .windows(2)
            .all(|w| w[0].arrival_cycle <= w[1].arrival_cycle));
        assert!(a.last().unwrap().arrival_cycle > 0);
        // The mean gap lands near the knob (uniform on [0, 2·mean]).
        let n = a.len() as u64;
        let mean = a.last().unwrap().arrival_cycle / (n - 1);
        assert!(
            (2_500..=7_500).contains(&mean),
            "observed mean gap {mean} for requested 5000"
        );
        // Turning the load knob rescales time but must not change what
        // is served or in which order.
        let c = hi.generate();
        assert!(c.last().unwrap().arrival_cycle < a.last().unwrap().arrival_cycle);
        for (x, y) in a.iter().zip(&c) {
            assert_eq!(
                (x.stream, x.arrival, &x.census),
                (y.stream, y.arrival, &y.census)
            );
        }
        // Closed-loop (mean 0) pins every arrival to cycle 0.
        let burst = TrafficMix::paper_default(6).generate();
        assert!(burst.iter().all(|r| r.arrival_cycle == 0));
    }

    #[test]
    fn query_values_deterministic_and_in_range() {
        let a = query_values(9, 1000, -8.0, 0.0);
        let b = query_values(9, 1000, -8.0, 0.0);
        assert_eq!(a, b);
        assert!(a.iter().all(|&x| (-8.0..0.0).contains(&x)));
        assert_ne!(a, query_values(10, 1000, -8.0, 0.0));
    }

    #[test]
    fn query_words_into_matches_quantized_query_values_and_recycles() {
        use nova_fixed::Q4_12;
        let expect: Vec<Fixed> = query_values(9, 500, -6.0, 6.0)
            .into_iter()
            .map(|x| Fixed::from_f64(x, Q4_12, Rounding::NearestEven))
            .collect();
        let mut words = Vec::new();
        query_words_into(9, 500, -6.0, 6.0, Q4_12, Rounding::NearestEven, &mut words);
        assert_eq!(words, expect, "same seed, same draws, same words");
        // A second extraction reuses the buffer's allocation.
        let cap = words.capacity();
        query_words_into(10, 100, -6.0, 6.0, Q4_12, Rounding::NearestEven, &mut words);
        assert_eq!(words.len(), 100);
        assert_eq!(words.capacity(), cap, "steady-state extraction reallocated");
    }

    #[test]
    fn census_slate_matches_generated_trace() {
        let mix = TrafficMix::paper_default(5);
        let from_trace: Vec<(Activation, OpCensus)> = mix
            .generate()
            .into_iter()
            .map(|r| (r.activation, r.census))
            .collect();
        assert_eq!(mix.census_slate(), from_trace);
        assert!(
            from_trace.iter().all(|(a, _)| *a == Activation::Gelu),
            "single-entry palette assigns one table everywhere"
        );
    }

    #[test]
    fn activation_assignment_is_per_stream_and_load_invariant() {
        let mix = TrafficMix::mixed_activations(6);
        let trace = mix.generate();
        for r in &trace {
            let expect = if r.stream % 2 == 0 {
                Activation::Gelu
            } else {
                Activation::Exp
            };
            assert_eq!(r.activation, expect, "stream {}", r.stream);
        }
        // Both tables actually appear, and the tenancy palette changes
        // neither the workload draw nor the merge order.
        assert!(trace.iter().any(|r| r.activation == Activation::Exp));
        let plain = TrafficMix::paper_default(6).generate();
        for (a, b) in trace.iter().zip(&plain) {
            assert_eq!(
                (a.stream, a.arrival, &a.census),
                (b.stream, b.arrival, &b.census)
            );
        }
    }

    #[test]
    fn fused_attention_mix_tags_odd_streams_as_pipeline_tenants() {
        let mix = TrafficMix::fused_attention(6);
        let trace = mix.generate();
        for r in &trace {
            let expect = if r.stream % 2 == 0 {
                TrafficOp::Lookup(Activation::Gelu)
            } else {
                TrafficOp::FusedSoftmax
            };
            assert_eq!(r.op, expect, "stream {}", r.stream);
            // The derived table tag points at the fused plan's opening
            // exp lookup for pipeline tenants.
            assert_eq!(r.activation, r.op.table_activation());
        }
        assert!(trace.iter().any(|r| r.op == TrafficOp::FusedSoftmax));
        // The op palette changes neither the workload draw nor the
        // merge order.
        let plain = TrafficMix::paper_default(6).generate();
        for (a, b) in trace.iter().zip(&plain) {
            assert_eq!(
                (a.stream, a.arrival, &a.census),
                (b.stream, b.arrival, &b.census)
            );
        }
    }

    #[test]
    fn fused_rows_slate_matches_fused_tenants_census() {
        let mix = TrafficMix::fused_attention(4);
        let trace = mix.generate();
        let rows = mix.fused_rows_slate();
        let expect_rows: u64 = trace
            .iter()
            .filter(|r| r.op == TrafficOp::FusedSoftmax)
            .map(|r| r.census.softmax_rows)
            .sum();
        assert_eq!(rows.len() as u64, expect_rows);
        assert!(!rows.is_empty(), "fused mix must emit attention rows");
        assert!(rows.iter().all(|&w| w > 0));
        // Deterministic per seed, and empty for lookup-only palettes.
        assert_eq!(rows, mix.fused_rows_slate());
        assert!(TrafficMix::paper_default(4).fused_rows_slate().is_empty());
    }
}
