//! CNN workload models: the Table I vision benchmarks as operation
//! censuses.
//!
//! NVDLA-class hosts (the Jetson row of Table II) run CNNs, where the
//! non-linear traffic is ReLU after every conv/dense layer plus one final
//! softmax. Convolutions are counted as im2col matrix multiplies — the
//! mapping both NVDLA's convolution core and systolic arrays use — so the
//! same `nova-accel` runtime model covers them.

use crate::bert::{MatmulDims, OpCensus};

/// One CNN layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CnnLayer {
    /// Standard convolution with ReLU: `out_c` filters of `k×k×in_c` over
    /// an `h×w` input (stride `s`, same padding).
    Conv {
        /// Input height/width (square feature maps).
        hw: usize,
        /// Input channels.
        in_c: usize,
        /// Output channels.
        out_c: usize,
        /// Kernel size.
        k: usize,
        /// Stride.
        stride: usize,
    },
    /// Depthwise separable convolution (MobileNet): a `k×k` depthwise pass
    /// followed by a 1×1 pointwise conv, both with ReLU.
    DepthwiseSeparable {
        /// Input height/width.
        hw: usize,
        /// Input channels.
        in_c: usize,
        /// Output channels (of the pointwise step).
        out_c: usize,
        /// Depthwise kernel size.
        k: usize,
        /// Stride of the depthwise step.
        stride: usize,
    },
    /// 2×2 max pool (no approximator traffic, halves the feature map).
    Pool,
    /// Fully connected layer with ReLU.
    Dense {
        /// Input features.
        input: usize,
        /// Output features.
        output: usize,
    },
}

// Struct-variant enum: serialized as an externally-tagged map, like
// serde's default enum representation. Serialize-only, matching
// `CnnConfig` (whose `&'static str` name cannot be rebuilt from data).
impl nova_serde::Serialize for CnnLayer {
    fn to_value(&self) -> nova_serde::Value {
        use nova_serde::Value;
        let field = |k: &str, v: usize| (k.to_string(), Value::U64(v as u64));
        match *self {
            CnnLayer::Conv {
                hw,
                in_c,
                out_c,
                k,
                stride,
            } => Value::Map(vec![(
                "Conv".to_string(),
                Value::Map(vec![
                    field("hw", hw),
                    field("in_c", in_c),
                    field("out_c", out_c),
                    field("k", k),
                    field("stride", stride),
                ]),
            )]),
            CnnLayer::DepthwiseSeparable {
                hw,
                in_c,
                out_c,
                k,
                stride,
            } => Value::Map(vec![(
                "DepthwiseSeparable".to_string(),
                Value::Map(vec![
                    field("hw", hw),
                    field("in_c", in_c),
                    field("out_c", out_c),
                    field("k", k),
                    field("stride", stride),
                ]),
            )]),
            CnnLayer::Pool => Value::Str("Pool".to_string()),
            CnnLayer::Dense { input, output } => Value::Map(vec![(
                "Dense".to_string(),
                Value::Map(vec![field("input", input), field("output", output)]),
            )]),
        }
    }
}

/// A CNN/MLP model: a named stack of layers ending in a `classes`-way
/// softmax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnnConfig {
    /// Model name (Table I row).
    pub name: &'static str,
    /// Layer stack.
    pub layers: Vec<CnnLayer>,
    /// Classifier width (softmax classes).
    pub classes: usize,
}

nova_serde::impl_serialize_struct!(CnnConfig {
    name,
    layers,
    classes
});

impl CnnConfig {
    /// The MNIST MLP of Table I: 784–256–128–10.
    #[must_use]
    pub fn mlp_mnist() -> Self {
        Self {
            name: "MLP (MNIST)",
            layers: vec![
                CnnLayer::Dense {
                    input: 784,
                    output: 256,
                },
                CnnLayer::Dense {
                    input: 256,
                    output: 128,
                },
                CnnLayer::Dense {
                    input: 128,
                    output: 10,
                },
            ],
            classes: 10,
        }
    }

    /// A small CIFAR-10 CNN: 2 conv blocks + classifier.
    #[must_use]
    pub fn cnn_cifar10() -> Self {
        Self {
            name: "CNN (CIFAR-10)",
            layers: vec![
                CnnLayer::Conv {
                    hw: 32,
                    in_c: 3,
                    out_c: 32,
                    k: 3,
                    stride: 1,
                },
                CnnLayer::Pool,
                CnnLayer::Conv {
                    hw: 16,
                    in_c: 32,
                    out_c: 64,
                    k: 3,
                    stride: 1,
                },
                CnnLayer::Pool,
                CnnLayer::Dense {
                    input: 8 * 8 * 64,
                    output: 128,
                },
                CnnLayer::Dense {
                    input: 128,
                    output: 10,
                },
            ],
            classes: 10,
        }
    }

    /// MobileNet v1 at CIFAR-10 resolution (32×32 input).
    #[must_use]
    pub fn mobilenet_v1_cifar10() -> Self {
        let mut layers = vec![CnnLayer::Conv {
            hw: 32,
            in_c: 3,
            out_c: 32,
            k: 3,
            stride: 1,
        }];
        // (hw, in_c, out_c, stride) per standard MobileNet-v1 schedule,
        // scaled to the 32×32 input.
        let blocks = [
            (32, 32, 64, 1),
            (32, 64, 128, 2),
            (16, 128, 128, 1),
            (16, 128, 256, 2),
            (8, 256, 256, 1),
            (8, 256, 512, 2),
            (4, 512, 512, 1),
            (4, 512, 512, 1),
            (4, 512, 512, 1),
            (4, 512, 512, 1),
            (4, 512, 512, 1),
            (4, 512, 1024, 2),
            (2, 1024, 1024, 1),
        ];
        for (hw, in_c, out_c, stride) in blocks {
            layers.push(CnnLayer::DepthwiseSeparable {
                hw,
                in_c,
                out_c,
                k: 3,
                stride,
            });
        }
        layers.push(CnnLayer::Dense {
            input: 1024,
            output: 10,
        });
        Self {
            name: "MobileNet v1 (CIFAR-10)",
            layers,
            classes: 10,
        }
    }

    /// VGG-16 at CIFAR-10 resolution.
    #[must_use]
    pub fn vgg16_cifar10() -> Self {
        let mut layers = Vec::new();
        let mut hw = 32;
        let mut in_c = 3;
        // VGG-16 conv schedule: (64,2) (128,2) (256,3) (512,3) (512,3).
        for (out_c, reps) in [(64, 2), (128, 2), (256, 3), (512, 3), (512, 3)] {
            for _ in 0..reps {
                layers.push(CnnLayer::Conv {
                    hw,
                    in_c,
                    out_c,
                    k: 3,
                    stride: 1,
                });
                in_c = out_c;
            }
            layers.push(CnnLayer::Pool);
            hw /= 2;
        }
        layers.push(CnnLayer::Dense {
            input: hw * hw * 512,
            output: 512,
        });
        layers.push(CnnLayer::Dense {
            input: 512,
            output: 512,
        });
        layers.push(CnnLayer::Dense {
            input: 512,
            output: 10,
        });
        Self {
            name: "VGG-16 (CIFAR-10)",
            layers,
            classes: 10,
        }
    }

    /// The four vision rows of Table I.
    #[must_use]
    pub fn table1_models() -> Vec<CnnConfig> {
        vec![
            Self::mlp_mnist(),
            Self::cnn_cifar10(),
            Self::mobilenet_v1_cifar10(),
            Self::vgg16_cifar10(),
        ]
    }
}

/// Expands a CNN into its per-inference operation census (im2col matmuls
/// plus ReLU / final softmax approximator traffic).
#[must_use]
pub fn census(config: &CnnConfig) -> OpCensus {
    let mut ops = OpCensus::default();
    for layer in &config.layers {
        match *layer {
            CnnLayer::Conv {
                hw,
                in_c,
                out_c,
                k,
                stride,
            } => {
                let out_hw = hw.div_ceil(stride);
                ops.matmuls.push(MatmulDims {
                    m: out_hw * out_hw,
                    k: k * k * in_c,
                    n: out_c,
                });
                ops.relu_elements += (out_hw * out_hw * out_c) as u64;
            }
            CnnLayer::DepthwiseSeparable {
                hw,
                in_c,
                out_c,
                k,
                stride,
            } => {
                let out_hw = hw.div_ceil(stride);
                // Depthwise: in_c independent (out_hw² × k²) · (k² × 1)
                // matmuls — merged into one equivalent matmul with the
                // same MAC count for the runtime model.
                ops.matmuls.push(MatmulDims {
                    m: out_hw * out_hw * in_c,
                    k: k * k,
                    n: 1,
                });
                ops.relu_elements += (out_hw * out_hw * in_c) as u64;
                // Pointwise 1×1: (out_hw² × in_c) · (in_c × out_c).
                ops.matmuls.push(MatmulDims {
                    m: out_hw * out_hw,
                    k: in_c,
                    n: out_c,
                });
                ops.relu_elements += (out_hw * out_hw * out_c) as u64;
            }
            CnnLayer::Pool => {}
            CnnLayer::Dense { input, output } => {
                ops.matmuls.push(MatmulDims {
                    m: 1,
                    k: input,
                    n: output,
                });
                ops.relu_elements += output as u64;
            }
        }
    }
    // Final classifier softmax: the last dense's ReLU is really a softmax;
    // swap the accounting.
    ops.relu_elements = ops.relu_elements.saturating_sub(config.classes as u64);
    ops.softmax_elements += config.classes as u64;
    ops.softmax_rows += 1;
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_census_hand_check() {
        let ops = census(&CnnConfig::mlp_mnist());
        assert_eq!(ops.matmuls.len(), 3);
        assert_eq!(ops.matmuls[0].macs(), 784 * 256);
        // ReLU after first two dense layers; classifier is softmax.
        assert_eq!(ops.relu_elements, 256 + 128);
        assert_eq!(ops.softmax_elements, 10);
        assert_eq!(ops.softmax_rows, 1);
    }

    #[test]
    fn vgg_dwarfs_the_small_cnn() {
        let small = census(&CnnConfig::cnn_cifar10()).total_matmul_macs();
        let vgg = census(&CnnConfig::vgg16_cifar10()).total_matmul_macs();
        assert!(vgg > 20 * small, "VGG {vgg} vs CNN {small}");
    }

    #[test]
    fn mobilenet_cheaper_than_vgg() {
        let mobile = census(&CnnConfig::mobilenet_v1_cifar10()).total_matmul_macs();
        let vgg = census(&CnnConfig::vgg16_cifar10()).total_matmul_macs();
        assert!(mobile < vgg / 4, "MobileNet {mobile} vs VGG {vgg}");
    }

    #[test]
    fn conv_dims_follow_im2col() {
        let ops = census(&CnnConfig::cnn_cifar10());
        // First conv: 32×32 out, 3×3×3 patch, 32 filters.
        assert_eq!(
            ops.matmuls[0],
            MatmulDims {
                m: 1024,
                k: 27,
                n: 32
            }
        );
    }

    #[test]
    fn queries_dominated_by_relu() {
        let ops = census(&CnnConfig::vgg16_cifar10());
        assert!(ops.relu_elements > 100_000);
        assert_eq!(ops.softmax_rows, 1);
        assert!(ops.approximator_queries() > ops.relu_elements);
    }

    #[test]
    fn all_table1_models_have_positive_work() {
        for m in CnnConfig::table1_models() {
            let ops = census(&m);
            assert!(ops.total_matmul_macs() > 0, "{}", m.name);
            assert!(ops.approximator_queries() > 0, "{}", m.name);
        }
    }
}
