//! BERT-family model configurations and the per-inference operation
//! census.
//!
//! The census counts exactly what the evaluation needs: the matmul
//! dimensions the systolic array executes (runtime via `nova-accel`) and
//! the non-linear operator volumes that become approximator queries
//! (energy via the vector-unit power models). Encoder structure follows
//! the standard transformer block: QKV projections, per-head attention
//! scores + softmax, context aggregation, output projection, two-layer
//! GELU FFN, two LayerNorms.

/// One matrix multiplication `M×K · K×N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MatmulDims {
    /// Output rows.
    pub m: usize,
    /// Inner (reduction) dimension.
    pub k: usize,
    /// Output columns.
    pub n: usize,
}

nova_serde::impl_serde_struct!(MatmulDims { m, k, n });

impl MatmulDims {
    /// Multiply-accumulate operations in this matmul.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.m as u64 * self.k as u64 * self.n as u64
    }
}

/// An encoder-only transformer configuration (the five Fig 8 benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BertConfig {
    /// Model name as used in the paper's Fig 8.
    pub name: &'static str,
    /// Encoder layers.
    pub layers: usize,
    /// Model (hidden) width `H`.
    pub hidden: usize,
    /// Attention heads `A`.
    pub heads: usize,
    /// Feed-forward intermediate width `F`.
    pub ffn: usize,
}

// `name` is a `&'static str`, so configs are serialize-only: persistable
// next to results, rebuilt from the named constructors.
nova_serde::impl_serialize_struct!(BertConfig {
    name,
    layers,
    hidden,
    heads,
    ffn
});

impl BertConfig {
    /// MobileBERT-base (Sun et al. 2020): 24 bottlenecked layers with
    /// 512-wide blocks and 4 heads; the FFN stacks total ≈512 effective
    /// intermediate width per layer.
    #[must_use]
    pub fn mobilebert_base() -> Self {
        Self {
            name: "MobileBERT-base",
            layers: 24,
            hidden: 512,
            heads: 4,
            ffn: 512,
        }
    }

    /// MobileBERT-tiny: the 128-wide variant.
    #[must_use]
    pub fn mobilebert_tiny() -> Self {
        Self {
            name: "MobileBERT-tiny",
            layers: 24,
            hidden: 128,
            heads: 4,
            ffn: 512,
        }
    }

    /// RoBERTa-base (Liu et al. 2019): the standard 12×768 encoder.
    #[must_use]
    pub fn roberta_base() -> Self {
        Self {
            name: "RoBERTa",
            layers: 12,
            hidden: 768,
            heads: 12,
            ffn: 3072,
        }
    }

    /// BERT-tiny (Devlin et al. variants): 2×128.
    #[must_use]
    pub fn bert_tiny() -> Self {
        Self {
            name: "BERT-tiny",
            layers: 2,
            hidden: 128,
            heads: 2,
            ffn: 512,
        }
    }

    /// BERT-mini: 4×256.
    #[must_use]
    pub fn bert_mini() -> Self {
        Self {
            name: "BERT-mini",
            layers: 4,
            hidden: 256,
            heads: 4,
            ffn: 1024,
        }
    }

    /// The five Fig 8 benchmarks, in the paper's order.
    #[must_use]
    pub fn fig8_benchmarks() -> Vec<BertConfig> {
        vec![
            Self::mobilebert_base(),
            Self::mobilebert_tiny(),
            Self::roberta_base(),
            Self::bert_tiny(),
            Self::bert_mini(),
        ]
    }

    /// Per-head dimension `H / A`.
    ///
    /// # Panics
    ///
    /// Panics if `hidden` is not divisible by `heads` (an invalid config).
    #[must_use]
    pub fn head_dim(&self) -> usize {
        assert_eq!(self.hidden % self.heads, 0, "hidden must divide by heads");
        self.hidden / self.heads
    }
}

/// The per-inference operation census of a config at a sequence length.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OpCensus {
    /// Every matmul executed (all layers), in execution order.
    pub matmuls: Vec<MatmulDims>,
    /// Elements passed through softmax's `exp` (= A·S·S per layer).
    pub softmax_elements: u64,
    /// Softmax rows (= A·S per layer; one reciprocal query each).
    pub softmax_rows: u64,
    /// Elements passed through GELU (= S·F per layer).
    pub gelu_elements: u64,
    /// LayerNorm rows (2 per layer × S; one rsqrt query each).
    pub layernorm_rows: u64,
    /// Elements normalized by LayerNorm (2·S·H per layer).
    pub layernorm_elements: u64,
    /// Elements passed through ReLU (CNN workloads; zero for BERT-family
    /// models, which use GELU).
    pub relu_elements: u64,
}

nova_serde::impl_serde_struct!(OpCensus {
    matmuls,
    softmax_elements,
    softmax_rows,
    gelu_elements,
    layernorm_rows,
    layernorm_elements,
    relu_elements,
});

impl OpCensus {
    /// Total multiply-accumulates across all matmuls.
    #[must_use]
    pub fn total_matmul_macs(&self) -> u64 {
        self.matmuls.iter().map(MatmulDims::macs).sum()
    }

    /// Total approximator queries: one per softmax element (exp), one per
    /// softmax row (reciprocal), one per GELU/ReLU element, one per
    /// LayerNorm row (rsqrt) — the paper's "number of approximation
    /// queries".
    #[must_use]
    pub fn approximator_queries(&self) -> u64 {
        self.softmax_elements
            + self.softmax_rows
            + self.gelu_elements
            + self.layernorm_rows
            + self.relu_elements
    }
}

/// Expands a config into its per-inference census at `seq_len`.
///
/// # Panics
///
/// Panics if `seq_len == 0` or the config's hidden width does not divide
/// by its head count.
#[must_use]
pub fn census(config: &BertConfig, seq_len: usize) -> OpCensus {
    assert!(seq_len > 0, "sequence length must be positive");
    let s = seq_len;
    let h = config.hidden;
    let a = config.heads;
    let d = config.head_dim();
    let f = config.ffn;

    let mut ops = OpCensus::default();
    for _ in 0..config.layers {
        // QKV projections.
        for _ in 0..3 {
            ops.matmuls.push(MatmulDims { m: s, k: h, n: h });
        }
        // Attention scores and context per head.
        for _ in 0..a {
            ops.matmuls.push(MatmulDims { m: s, k: d, n: s }); // Q·Kᵀ
            ops.matmuls.push(MatmulDims { m: s, k: s, n: d }); // P·V
        }
        // Output projection.
        ops.matmuls.push(MatmulDims { m: s, k: h, n: h });
        // FFN.
        ops.matmuls.push(MatmulDims { m: s, k: h, n: f });
        ops.matmuls.push(MatmulDims { m: s, k: f, n: h });

        ops.softmax_elements += (a * s * s) as u64;
        ops.softmax_rows += (a * s) as u64;
        ops.gelu_elements += (s * f) as u64;
        ops.layernorm_rows += (2 * s) as u64;
        ops.layernorm_elements += (2 * s * h) as u64;
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_tiny_census_hand_check() {
        // L=2, H=128, A=2, F=512, S=16.
        let ops = census(&BertConfig::bert_tiny(), 16);
        // Matmuls per layer: 3 QKV + 2·A attention + 1 out + 2 FFN = 10.
        assert_eq!(ops.matmuls.len(), 2 * (3 + 2 * 2 + 1 + 2));
        assert_eq!(ops.softmax_elements, 2 * (2 * 16 * 16) as u64);
        assert_eq!(ops.softmax_rows, 2 * (2 * 16) as u64);
        assert_eq!(ops.gelu_elements, 2 * (16 * 512) as u64);
        assert_eq!(ops.layernorm_rows, 2 * (2 * 16) as u64);
    }

    #[test]
    fn qkv_macs_hand_check() {
        let ops = census(&BertConfig::bert_tiny(), 16);
        // First matmul is a QKV projection: 16×128×128.
        assert_eq!(ops.matmuls[0].macs(), 16 * 128 * 128);
    }

    #[test]
    fn queries_grow_quadratically_with_seq_len() {
        let cfg = BertConfig::bert_mini();
        let q128 = census(&cfg, 128).approximator_queries();
        let q256 = census(&cfg, 256).approximator_queries();
        // Softmax dominates at long sequences → superlinear growth.
        assert!(q256 > 2 * q128);
    }

    #[test]
    fn roberta_is_biggest_benchmark() {
        let s = 1024;
        let macs = |c: &BertConfig| census(c, s).total_matmul_macs();
        let roberta = macs(&BertConfig::roberta_base());
        for cfg in BertConfig::fig8_benchmarks() {
            assert!(macs(&cfg) <= roberta, "{} exceeds RoBERTa", cfg.name);
        }
    }

    #[test]
    fn head_dim_divides() {
        for cfg in BertConfig::fig8_benchmarks() {
            assert_eq!(cfg.head_dim() * cfg.heads, cfg.hidden, "{}", cfg.name);
        }
    }

    #[test]
    #[should_panic(expected = "sequence length")]
    fn zero_seq_len_panics() {
        let _ = census(&BertConfig::bert_tiny(), 0);
    }
}
