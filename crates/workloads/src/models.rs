//! The Table I accuracy benchmarks: model descriptors.
//!
//! Table I reports post-approximation accuracy for six models; the
//! reproduction's synthetic stand-ins (see [`crate::synthetic`]) mirror
//! each model's *output structure* — class count, logit scale and
//! difficulty — because that is what determines whether an approximated
//! softmax flips predictions.

/// Which synthetic task family stands in for the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Image-classifier-like: well-separated classes, moderate logit
    /// spread (MLP/CNN/MobileNet/VGG rows).
    ImageClassification,
    /// NLP-answer-span / sentence-classifier-like: fewer classes, sharper
    /// logits (MobileBERT/RoBERTa rows).
    TextClassification,
}

nova_serde::impl_serde_enum!(TaskKind {
    ImageClassification,
    TextClassification
});

/// One Table I row: a model, its dataset label, and the breakpoint budget
/// the paper used for it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TableOneModel {
    /// Model name as printed in Table I.
    pub name: &'static str,
    /// Dataset label as printed in Table I.
    pub dataset: &'static str,
    /// PWL segments used (paper: 16 everywhere except CIFAR-10 → 8).
    pub breakpoints: usize,
    /// Output classes of the synthetic stand-in.
    pub classes: usize,
    /// Logit scale (spread of the synthetic logits; larger = easier).
    pub logit_scale: f64,
    /// Task family.
    pub kind: TaskKind,
}

// `name`/`dataset` are `&'static str` table labels: serialize-only.
nova_serde::impl_serialize_struct!(TableOneModel {
    name,
    dataset,
    breakpoints,
    classes,
    logit_scale,
    kind
});

impl TableOneModel {
    /// The six Table I rows, in the paper's order.
    #[must_use]
    pub fn all() -> Vec<TableOneModel> {
        vec![
            TableOneModel {
                name: "MLP",
                dataset: "MNIST",
                breakpoints: 16,
                classes: 10,
                logit_scale: 3.78,
                kind: TaskKind::ImageClassification,
            },
            TableOneModel {
                name: "CNN",
                dataset: "CIFAR-10",
                breakpoints: 8,
                classes: 10,
                logit_scale: 1.86,
                kind: TaskKind::ImageClassification,
            },
            TableOneModel {
                name: "MobileNet v1",
                dataset: "CIFAR-10",
                breakpoints: 8,
                classes: 10,
                logit_scale: 2.02,
                kind: TaskKind::ImageClassification,
            },
            TableOneModel {
                name: "VGG-16",
                dataset: "CIFAR-10",
                breakpoints: 8,
                classes: 10,
                logit_scale: 2.83,
                kind: TaskKind::ImageClassification,
            },
            TableOneModel {
                name: "MobileBERT",
                dataset: "SQUAD",
                breakpoints: 16,
                classes: 2,
                logit_scale: 1.76,
                kind: TaskKind::TextClassification,
            },
            TableOneModel {
                name: "RoBERTa",
                dataset: "SST-2",
                breakpoints: 16,
                classes: 2,
                logit_scale: 2.27,
                kind: TaskKind::TextClassification,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_rows_matching_paper() {
        let rows = TableOneModel::all();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0].name, "MLP");
        assert_eq!(rows[5].name, "RoBERTa");
        // CIFAR-10 rows use 8 breakpoints, everything else 16.
        for r in &rows {
            if r.dataset == "CIFAR-10" {
                assert_eq!(r.breakpoints, 8, "{}", r.name);
            } else {
                assert_eq!(r.breakpoints, 16, "{}", r.name);
            }
        }
    }
}
