//! A functional multi-head-attention encoder layer with pluggable
//! non-linearity backends.
//!
//! This is the numerical end-to-end check the hardware evaluation rests
//! on: run the *same* encoder layer once with exact floating-point
//! non-linearities and once with the PWL fixed-point pipeline NOVA
//! executes, and measure how far the outputs drift. Matmuls stay in f64
//! in both runs (the paper approximates only the non-linear operators;
//! tensor ops run on the host's MACs either way).

use nova_approx::normalize::{layernorm_approx, layernorm_exact, ApproxRsqrt};
use nova_approx::softmax::{softmax_exact, ApproxSoftmax};
use nova_approx::{fit, Activation, ApproxError, QuantizedPwl};
use nova_fixed::rng::StdRng;
use nova_fixed::{Fixed, Rounding, Q4_12};

use crate::bert::BertConfig;

/// The non-linear operators an encoder layer needs, as a strategy object.
pub trait NonLinearBackend {
    /// Row-wise softmax.
    fn softmax(&self, row: &[f64]) -> Vec<f64>;
    /// Elementwise GELU.
    fn gelu(&self, x: f64) -> f64;
    /// LayerNorm over a row.
    fn layernorm(&self, row: &[f64]) -> Vec<f64>;
    /// Backend label for reports.
    fn name(&self) -> &'static str;
}

/// Exact double-precision backend (the software gold model).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactBackend;

impl NonLinearBackend for ExactBackend {
    fn softmax(&self, row: &[f64]) -> Vec<f64> {
        softmax_exact(row)
    }
    fn gelu(&self, x: f64) -> f64 {
        Activation::Gelu.eval(x)
    }
    fn layernorm(&self, row: &[f64]) -> Vec<f64> {
        layernorm_exact(row, 1e-5)
    }
    fn name(&self) -> &'static str {
        "exact f64"
    }
}

/// The NOVA/NN-LUT backend: every non-linearity goes through the 16-bit
/// PWL datapath (16 breakpoints by default).
#[derive(Debug, Clone)]
pub struct PwlBackend {
    softmax: ApproxSoftmax,
    gelu: QuantizedPwl,
    rsqrt: ApproxRsqrt,
}

impl PwlBackend {
    /// Builds the backend with `segments` PWL segments per operator.
    ///
    /// # Errors
    ///
    /// Propagates fitting/quantization failures.
    pub fn new(segments: usize) -> Result<Self, ApproxError> {
        let r = Rounding::NearestEven;
        let gelu = fit::fit_activation(
            Activation::Gelu,
            segments,
            fit::BreakpointStrategy::GreedyRefine,
        )?;
        Ok(Self {
            softmax: ApproxSoftmax::new(segments, Q4_12, r)?,
            gelu: QuantizedPwl::from_pwl(&gelu, Q4_12, r)?,
            rsqrt: ApproxRsqrt::new(segments, Q4_12, r)?,
        })
    }
}

impl NonLinearBackend for PwlBackend {
    fn softmax(&self, row: &[f64]) -> Vec<f64> {
        self.softmax.eval(row)
    }
    fn gelu(&self, x: f64) -> f64 {
        self.gelu
            .eval(Fixed::from_f64(x, Q4_12, Rounding::NearestEven))
            .to_f64()
    }
    fn layernorm(&self, row: &[f64]) -> Vec<f64> {
        layernorm_approx(row, 1e-5, &self.rsqrt)
    }
    fn name(&self) -> &'static str {
        "PWL fixed-point (NOVA)"
    }
}

/// A row-softmax evaluator living outside this crate — e.g. a serving
/// engine executing the fused softmax op-graph plan
/// (exp → row reduce → reciprocal → scale) on approximator hardware.
/// This crate cannot depend on the engine (the dependency runs the
/// other way), so the engine plugs in through this object instead.
pub trait SoftmaxOffload {
    /// Evaluates softmax over one attention score row.
    fn softmax_row(&self, row: &[f64]) -> Vec<f64>;
    /// Label for reports.
    fn label(&self) -> &'static str;
}

/// A [`PwlBackend`] whose softmax rows are offloaded to an external
/// evaluator (GELU and LayerNorm stay on the local PWL datapath) — the
/// backend that routes an encoder layer's attention scoring through a
/// serving engine as fused op-graph plans.
pub struct OffloadSoftmaxBackend<'a> {
    inner: PwlBackend,
    offload: &'a dyn SoftmaxOffload,
}

impl PwlBackend {
    /// Routes this backend's softmax through `offload`, keeping the
    /// local PWL GELU and LayerNorm datapaths.
    #[must_use]
    pub fn with_softmax_offload(self, offload: &dyn SoftmaxOffload) -> OffloadSoftmaxBackend<'_> {
        OffloadSoftmaxBackend {
            inner: self,
            offload,
        }
    }
}

impl NonLinearBackend for OffloadSoftmaxBackend<'_> {
    fn softmax(&self, row: &[f64]) -> Vec<f64> {
        self.offload.softmax_row(row)
    }
    fn gelu(&self, x: f64) -> f64 {
        self.inner.gelu(x)
    }
    fn layernorm(&self, row: &[f64]) -> Vec<f64> {
        self.inner.layernorm(row)
    }
    fn name(&self) -> &'static str {
        self.offload.label()
    }
}

/// A small dense matrix, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major data.
    pub data: Vec<f64>,
}

impl Matrix {
    /// Random matrix with entries in `±scale` (deterministic per seed).
    #[must_use]
    pub fn random(rows: usize, cols: usize, scale: f64, rng: &mut StdRng) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        Self { rows, cols, data }
    }

    /// `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    #[must_use]
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = vec![0.0; self.rows * other.cols];
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[i * other.cols + j] += a * other.data[k * other.cols + j];
                }
            }
        }
        Matrix {
            rows: self.rows,
            cols: other.cols,
            data: out,
        }
    }

    /// Borrowed row slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }
}

/// One transformer encoder layer with its weights.
#[derive(Debug, Clone)]
pub struct EncoderLayer {
    config: BertConfig,
    wq: Matrix,
    wk: Matrix,
    wv: Matrix,
    wo: Matrix,
    w1: Matrix,
    w2: Matrix,
}

impl EncoderLayer {
    /// Builds a layer with random (seeded) weights for `config`.
    #[must_use]
    pub fn random(config: BertConfig, seed: u64) -> Self {
        let h = config.hidden;
        let f = config.ffn;
        let mut rng = StdRng::seed_from_u64(seed);
        // Xavier-ish scale keeps activations inside the Q4.12 domain.
        let s = (1.0 / h as f64).sqrt();
        Self {
            config,
            wq: Matrix::random(h, h, s, &mut rng),
            wk: Matrix::random(h, h, s, &mut rng),
            wv: Matrix::random(h, h, s, &mut rng),
            wo: Matrix::random(h, h, s, &mut rng),
            w1: Matrix::random(h, f, s, &mut rng),
            w2: Matrix::random(f, h, (1.0 / f as f64).sqrt(), &mut rng),
        }
    }

    /// The layer's configuration.
    #[must_use]
    pub fn config(&self) -> &BertConfig {
        &self.config
    }

    /// Forward pass over an `S×H` input with the given backend:
    /// LN → multi-head attention → residual → LN → GELU FFN → residual.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not `S×hidden`.
    #[must_use]
    pub fn forward(&self, x: &Matrix, backend: &dyn NonLinearBackend) -> Matrix {
        assert_eq!(x.cols, self.config.hidden, "input width must equal hidden");
        let s = x.rows;
        let h = self.config.hidden;
        let heads = self.config.heads;
        let d = self.config.head_dim();

        // Pre-LN.
        let xn = map_rows(x, |row| backend.layernorm(row));
        let q = xn.matmul(&self.wq);
        let k = xn.matmul(&self.wk);
        let v = xn.matmul(&self.wv);

        // Multi-head attention.
        let scale = 1.0 / (d as f64).sqrt();
        let mut context = Matrix {
            rows: s,
            cols: h,
            data: vec![0.0; s * h],
        };
        for head in 0..heads {
            let off = head * d;
            for i in 0..s {
                // scores_i = q_i · K^T (this head's slice), scaled.
                let mut scores = vec![0.0; s];
                for (j, score) in scores.iter_mut().enumerate() {
                    let mut dot = 0.0;
                    for c in 0..d {
                        dot += q.data[i * h + off + c] * k.data[j * h + off + c];
                    }
                    *score = dot * scale;
                }
                let probs = backend.softmax(&scores);
                for (j, p) in probs.iter().enumerate() {
                    for c in 0..d {
                        context.data[i * h + off + c] += p * v.data[j * h + off + c];
                    }
                }
            }
        }
        let attn = context.matmul(&self.wo);
        // Residual 1.
        let res1 = add(x, &attn);

        // Pre-LN 2 + GELU FFN.
        let res1n = map_rows(&res1, |row| backend.layernorm(row));
        let mut hidden = res1n.matmul(&self.w1);
        for v in &mut hidden.data {
            *v = backend.gelu(*v);
        }
        let ffn = hidden.matmul(&self.w2);
        add(&res1, &ffn)
    }
}

fn map_rows(m: &Matrix, f: impl Fn(&[f64]) -> Vec<f64>) -> Matrix {
    let mut out = Matrix {
        rows: m.rows,
        cols: m.cols,
        data: Vec::with_capacity(m.data.len()),
    };
    for i in 0..m.rows {
        out.data.extend(f(m.row(i)));
    }
    out
}

fn add(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!((a.rows, a.cols), (b.rows, b.cols));
    Matrix {
        rows: a.rows,
        cols: a.cols,
        data: a.data.iter().zip(&b.data).map(|(x, y)| x + y).collect(),
    }
}

/// A stack of encoder layers (a whole BERT-style encoder), for studying
/// how PWL approximation error propagates through depth.
#[derive(Debug, Clone)]
pub struct EncoderStack {
    layers: Vec<EncoderLayer>,
}

impl EncoderStack {
    /// Builds `config.layers` encoder layers with seeded random weights.
    #[must_use]
    pub fn random(config: BertConfig, seed: u64) -> Self {
        let layers = (0..config.layers)
            .map(|i| EncoderLayer::random(config, seed.wrapping_add(i as u64)))
            .collect();
        Self { layers }
    }

    /// Number of layers.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Forward pass through all layers.
    #[must_use]
    pub fn forward(&self, x: &Matrix, backend: &dyn NonLinearBackend) -> Matrix {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.forward(&h, backend);
        }
        h
    }

    /// Runs both backends in lockstep and reports the maximum deviation
    /// *after each layer* — the error-propagation profile.
    #[must_use]
    pub fn deviation_profile(
        &self,
        x: &Matrix,
        exact: &dyn NonLinearBackend,
        approx: &dyn NonLinearBackend,
    ) -> Vec<f64> {
        let mut he = x.clone();
        let mut ha = x.clone();
        let mut profile = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            he = layer.forward(&he, exact);
            ha = layer.forward(&ha, approx);
            profile.push(max_deviation(&he, &ha));
        }
        profile
    }
}

/// Maximum elementwise deviation between two equally-shaped matrices.
///
/// # Panics
///
/// Panics on shape mismatch.
#[must_use]
pub fn max_deviation(a: &Matrix, b: &Matrix) -> f64 {
    assert_eq!((a.rows, a.cols), (b.rows, b.cols), "shape mismatch");
    a.data
        .iter()
        .zip(&b.data)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> BertConfig {
        BertConfig {
            name: "test",
            layers: 1,
            hidden: 32,
            heads: 4,
            ffn: 64,
        }
    }

    fn input(s: usize, h: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::random(s, h, 1.0, &mut rng)
    }

    #[test]
    fn forward_shapes() {
        let layer = EncoderLayer::random(tiny_config(), 3);
        let x = input(8, 32, 5);
        let y = layer.forward(&x, &ExactBackend);
        assert_eq!((y.rows, y.cols), (8, 32));
        assert!(y.data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn pwl_backend_tracks_exact_layer_output() {
        // The paper's Table I claim at layer granularity: the PWL backend
        // must track the exact encoder output closely.
        let layer = EncoderLayer::random(tiny_config(), 7);
        let x = input(12, 32, 11);
        let exact = layer.forward(&x, &ExactBackend);
        let pwl = PwlBackend::new(16).unwrap();
        let approx = layer.forward(&x, &pwl);
        let dev = max_deviation(&exact, &approx);
        // Output magnitudes are O(1); deviation stays small.
        assert!(dev < 0.25, "encoder-layer deviation {dev}");
    }

    #[test]
    fn more_segments_reduce_layer_deviation() {
        let layer = EncoderLayer::random(tiny_config(), 9);
        let x = input(10, 32, 13);
        let exact = layer.forward(&x, &ExactBackend);
        let dev = |segments: usize| {
            let b = PwlBackend::new(segments).unwrap();
            max_deviation(&exact, &layer.forward(&x, &b))
        };
        assert!(dev(16) <= dev(4) + 1e-9);
    }

    #[test]
    fn stack_deviation_stays_bounded() {
        // Error must not blow up exponentially with depth: residual
        // connections and LayerNorm keep it in check. 4 layers, 16 bp.
        let cfg = BertConfig {
            name: "stack",
            layers: 4,
            hidden: 32,
            heads: 4,
            ffn: 64,
        };
        let stack = EncoderStack::random(cfg, 17);
        let x = input(8, 32, 3);
        let pwl = PwlBackend::new(16).unwrap();
        let profile = stack.deviation_profile(&x, &ExactBackend, &pwl);
        assert_eq!(profile.len(), 4);
        assert!(
            profile[3] < 1.0,
            "4-layer deviation {} too large",
            profile[3]
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = EncoderLayer::random(tiny_config(), 21);
        let b = EncoderLayer::random(tiny_config(), 21);
        let x = input(4, 32, 1);
        assert_eq!(
            a.forward(&x, &ExactBackend).data,
            b.forward(&x, &ExactBackend).data
        );
    }

    #[test]
    fn matmul_reference() {
        let a = Matrix {
            rows: 2,
            cols: 3,
            data: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        };
        let b = Matrix {
            rows: 3,
            cols: 2,
            data: vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0],
        };
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_checked() {
        let a = Matrix {
            rows: 1,
            cols: 2,
            data: vec![1.0, 2.0],
        };
        let _ = a.matmul(&a);
    }
}
