//! Workload models for the NOVA evaluation.
//!
//! Two families:
//!
//! - [`bert`]: the five attention benchmarks of Fig 8 (MobileBERT-base,
//!   MobileBERT-tiny, RoBERTa, BERT-tiny, BERT-mini). Each config expands
//!   into a per-layer **operation census**: the matrix-multiply dimensions
//!   the systolic array executes and the non-linear operator counts
//!   (softmax elements/rows, GELU elements, LayerNorm rows) that become
//!   approximator queries.
//! - [`models`] + [`synthetic`]: the Table I accuracy benchmarks. The
//!   paper measures six real models on MNIST/CIFAR-10/SQuAD/SST-2; those
//!   datasets and checkpoints are not reproducible here, so each model is
//!   substituted by a synthetic classification task whose logits flow
//!   through the *identical* exact-vs-approximated softmax code path
//!   (DESIGN.md documents the substitution).
//! - [`traffic`]: seeded mixed-traffic generator — interleaved
//!   BERT/CNN/synthetic request streams for the multi-stream serving
//!   engine.
//!
//! # Example
//!
//! ```
//! use nova_workloads::bert::{BertConfig, census};
//!
//! let cfg = BertConfig::bert_tiny();
//! let ops = census(&cfg, 128);
//! assert!(ops.softmax_elements > 0);
//! assert!(ops.total_matmul_macs() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attention;
pub mod bert;
pub mod cnn;
pub mod models;
pub mod synthetic;
pub mod traffic;
