//! Synthetic classification tasks: the Table I substitution.
//!
//! The paper's Table I claim is *"an approximated softmax does not change
//! model predictions"*. The datasets/checkpoints behind it are not
//! reproducible here, so each model row is replaced by a synthetic logit
//! generator with matched output structure (class count, logit spread,
//! noise). Every sample's logits then flow through both the exact softmax
//! and the full fixed-point PWL softmax pipeline, and we report accuracy
//! under both plus prediction agreement — the strictly-harder version of
//! the paper's claim, exercised through the identical hardware code path.

use nova_approx::softmax::{softmax_exact, ApproxSoftmax};
use nova_fixed::rng::StdRng;
use nova_fixed::{Rounding, Q4_12};

use crate::models::TableOneModel;

/// A synthetic logit generator standing in for one Table I model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticTask {
    /// Number of output classes.
    pub classes: usize,
    /// Logit bump on the true class (task easiness).
    pub logit_scale: f64,
    /// Gaussian noise standard deviation on every logit.
    pub noise: f64,
}

impl SyntheticTask {
    /// Builds the stand-in task for a Table I model.
    #[must_use]
    pub fn from_model(model: &TableOneModel) -> Self {
        Self {
            classes: model.classes,
            logit_scale: model.logit_scale,
            noise: 1.0,
        }
    }

    /// Draws one labeled sample: returns `(logits, true label)`.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`.
    pub fn sample(&self, rng: &mut StdRng) -> (Vec<f64>, usize) {
        assert!(self.classes > 0, "need at least one class");
        let label = rng.gen_range(0..self.classes);
        let logits = (0..self.classes)
            .map(|c| {
                let base = if c == label { self.logit_scale } else { 0.0 };
                base + self.noise * gaussian(rng)
            })
            .collect();
        (logits, label)
    }
}

/// One evaluated Table I row.
#[derive(Debug, Clone, PartialEq)]
pub struct TableOneRow {
    /// Model name.
    pub name: String,
    /// Dataset label.
    pub dataset: String,
    /// Breakpoints used for the approximated softmax.
    pub breakpoints: usize,
    /// Accuracy with exact softmax (%).
    pub accuracy_exact: f64,
    /// Accuracy with the PWL fixed-point softmax (%).
    pub accuracy_approx: f64,
    /// Fraction of samples where both pipelines predicted the same class
    /// (%).
    pub agreement: f64,
}

nova_serde::impl_serde_struct!(TableOneRow {
    name,
    dataset,
    breakpoints,
    accuracy_exact,
    accuracy_approx,
    agreement,
});

/// Evaluates one Table I model over `samples` synthetic inputs.
///
/// # Errors
///
/// Propagates approximator construction failures.
///
/// # Example
///
/// ```
/// use nova_workloads::{models::TableOneModel, synthetic};
///
/// # fn main() -> Result<(), nova_approx::ApproxError> {
/// let row = synthetic::evaluate_model(&TableOneModel::all()[0], 500, 7)?;
/// assert!(row.agreement > 99.0); // approximation must not flip predictions
/// # Ok(())
/// # }
/// ```
pub fn evaluate_model(
    model: &TableOneModel,
    samples: usize,
    seed: u64,
) -> Result<TableOneRow, nova_approx::ApproxError> {
    let task = SyntheticTask::from_model(model);
    let unit = ApproxSoftmax::new(model.breakpoints, Q4_12, Rounding::NearestEven)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut correct_exact = 0usize;
    let mut correct_approx = 0usize;
    let mut agree = 0usize;
    for _ in 0..samples {
        let (logits, label) = task.sample(&mut rng);
        let pe = argmax(&softmax_exact(&logits));
        let pa = argmax(&unit.eval(&logits));
        if pe == label {
            correct_exact += 1;
        }
        if pa == label {
            correct_approx += 1;
        }
        if pe == pa {
            agree += 1;
        }
    }
    let pct = |k: usize| 100.0 * k as f64 / samples as f64;
    Ok(TableOneRow {
        name: model.name.to_string(),
        dataset: model.dataset.to_string(),
        breakpoints: model.breakpoints,
        accuracy_exact: pct(correct_exact),
        accuracy_approx: pct(correct_approx),
        agreement: pct(agree),
    })
}

fn argmax(xs: &[f64]) -> usize {
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Standard normal via Box–Muller (avoids a rand_distr dependency).
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let task = SyntheticTask {
            classes: 10,
            logit_scale: 3.0,
            noise: 1.0,
        };
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        assert_eq!(task.sample(&mut a), task.sample(&mut b));
    }

    #[test]
    fn easier_tasks_score_higher() {
        let hard = TableOneModel {
            logit_scale: 1.0,
            ..TableOneModel::all()[0]
        };
        let easy = TableOneModel {
            logit_scale: 6.0,
            ..TableOneModel::all()[0]
        };
        let rh = evaluate_model(&hard, 800, 3).unwrap();
        let re = evaluate_model(&easy, 800, 3).unwrap();
        assert!(re.accuracy_exact > rh.accuracy_exact);
    }

    #[test]
    fn approximation_does_not_flip_predictions() {
        // The Table I claim, on every row: agreement ≥ 99% and accuracy
        // delta below half a percent.
        for model in TableOneModel::all() {
            let row = evaluate_model(&model, 1000, 42).unwrap();
            assert!(
                row.agreement >= 99.0,
                "{}: agreement {}",
                row.name,
                row.agreement
            );
            assert!(
                (row.accuracy_exact - row.accuracy_approx).abs() <= 0.5,
                "{}: {} vs {}",
                row.name,
                row.accuracy_exact,
                row.accuracy_approx
            );
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| gaussian(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
