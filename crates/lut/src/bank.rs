//! The 64-byte LUT SRAM bank.

use nova_approx::{QuantizedPwl, SlopeBias};

use crate::LutError;

/// One SRAM bank holding the `(slope, bias)` table (paper: 64 B = 16
/// pairs), with a fixed number of read ports and access counting.
#[derive(Debug, Clone, PartialEq)]
pub struct LutBank {
    entries: Vec<SlopeBias>,
    read_ports: usize,
    reads: u64,
}

impl LutBank {
    /// Loads the bank from a quantized table.
    ///
    /// # Panics
    ///
    /// Panics if `read_ports == 0`.
    #[must_use]
    pub fn from_table(table: &QuantizedPwl, read_ports: usize) -> Self {
        assert!(read_ports > 0, "a bank needs at least one read port");
        Self {
            entries: table.pairs().to_vec(),
            read_ports,
            reads: 0,
        }
    }

    /// Rewrites every entry from a new table in place — the SRAM bank
    /// reload a table switch models. Reuses the bank's allocation (no
    /// heap traffic when the new table has no more segments than the
    /// bank's capacity) and preserves the read counter: the bank is the
    /// same hardware, serving a new operator.
    pub fn reprogram(&mut self, table: &QuantizedPwl) {
        self.entries.clear();
        self.entries.extend_from_slice(table.pairs());
    }

    /// Entries stored (= table segments).
    #[must_use]
    pub fn entries(&self) -> usize {
        self.entries.len()
    }

    /// Read ports.
    #[must_use]
    pub fn read_ports(&self) -> usize {
        self.read_ports
    }

    /// Total reads issued so far.
    #[must_use]
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Reads one entry.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::AddressOutOfRange`] for a bad address.
    pub fn read(&mut self, address: usize) -> Result<SlopeBias, LutError> {
        self.reads += 1;
        self.entries
            .get(address)
            .copied()
            .ok_or(LutError::AddressOutOfRange {
                address,
                entries: self.entries.len(),
            })
    }

    /// Accounts for `reads` entry reads served in bulk — the batch fast
    /// path's accounting twin of calling [`read`](Self::read) that many
    /// times. The data itself comes from the table's SoA kernel (which
    /// this bank mirrors bit-for-bit by construction and re-programming),
    /// so only the activity counter needs to move.
    pub fn record_reads(&mut self, reads: u64) {
        self.reads += reads;
    }

    /// Cycles needed to serve `requests` simultaneous reads: reads beyond
    /// the port count serialize (relevant only for hypothetical
    /// under-ported configs; the paper's per-core banks are fully ported).
    #[must_use]
    pub fn cycles_for(&self, requests: usize) -> usize {
        requests.div_ceil(self.read_ports).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_approx::{fit, Activation};
    use nova_fixed::{Rounding, Q4_12};

    fn table() -> QuantizedPwl {
        let pwl =
            fit::fit_activation(Activation::Tanh, 16, fit::BreakpointStrategy::Uniform).unwrap();
        QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
    }

    #[test]
    fn bank_mirrors_table() {
        let t = table();
        let mut b = LutBank::from_table(&t, 1);
        assert_eq!(b.entries(), 16);
        for (i, p) in t.pairs().iter().enumerate() {
            assert_eq!(b.read(i).unwrap(), *p);
        }
        assert_eq!(b.reads(), 16);
    }

    #[test]
    fn out_of_range_read_is_error() {
        let t = table();
        let mut b = LutBank::from_table(&t, 1);
        assert!(matches!(
            b.read(16),
            Err(LutError::AddressOutOfRange {
                address: 16,
                entries: 16
            })
        ));
    }

    #[test]
    fn port_serialization() {
        let t = table();
        let b = LutBank::from_table(&t, 4);
        assert_eq!(b.cycles_for(4), 1);
        assert_eq!(b.cycles_for(5), 2);
        assert_eq!(b.cycles_for(0), 1);
        let fully_ported = LutBank::from_table(&t, 128);
        assert_eq!(fully_ported.cycles_for(128), 1);
    }

    #[test]
    #[should_panic(expected = "at least one read port")]
    fn zero_ports_panics() {
        let _ = LutBank::from_table(&table(), 0);
    }
}
