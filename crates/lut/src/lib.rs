//! Baseline LUT-based vector units (the paper's comparison hardware).
//!
//! NN-LUT-style approximators store the `(slope, bias)` pairs in SRAM
//! banks next to the PEs (Fig 1/Fig 2). The paper models the two extreme
//! sharing variants (§V.B):
//!
//! - **per-neuron LUT** ([`PerNeuronLut`]): every neuron owns a
//!   single-ported 64 B bank holding a full copy of the table — maximal
//!   redundancy, cheap ports;
//! - **per-core LUT** ([`PerCoreLut`]): one bank per core with as many
//!   read ports as neurons — no redundancy, expensive ports.
//!
//! Both take **2 cycles** per lookup: cycle 1 fetches the pair addressed
//! by the comparators, cycle 2 runs the MAC. Functionally they are exactly
//! the quantized PWL table; what differs is the cost model (`nova-synth`)
//! and the access statistics this crate counts.
//!
//! [`SdpUnit`] models the NVDLA Single Data Processor the Jetson rows of
//! Table III compare against.
//!
//! # Example
//!
//! ```
//! use nova_approx::{fit, Activation, QuantizedPwl};
//! use nova_fixed::{Fixed, Q4_12, Rounding};
//! use nova_lut::PerNeuronLut;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let pwl = fit::fit_activation(Activation::Gelu, 16, fit::BreakpointStrategy::Uniform)?;
//! let table = QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven)?;
//! let mut unit = PerNeuronLut::new(&table, 8); // 8 neurons
//! let xs = vec![Fixed::from_f64(1.0, Q4_12, Rounding::NearestEven); 8];
//! let ys = unit.lookup_batch(&xs)?;
//! assert_eq!(ys[0], table.eval(xs[0]));
//! assert_eq!(unit.stats().cycles, 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bank;
mod error;
mod sdp;
mod unit;
pub mod walkthrough;

pub use bank::LutBank;
pub use error::LutError;
pub use sdp::SdpUnit;
pub use unit::{LutStats, PerCoreLut, PerNeuronLut};
