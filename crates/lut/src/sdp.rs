//! NVDLA Single Data Processor (SDP) functional model.
//!
//! The SDP is NVDLA's LUT-based activation engine (nvdla.org primer): a
//! per-core interpolation-table pipeline with bias/scale stages. For the
//! Table III Jetson comparison it behaves functionally like a per-core LUT
//! with a deeper pipeline (3 stages: table read, interpolate, scale), so
//! its latency is one cycle worse than the 2-cycle NN-LUT pipeline while
//! results stay bit-identical to the quantized table. Data-wise it
//! inherits [`PerCoreLut`]'s SoA batch fast path; only the cycle
//! accounting differs.

use nova_approx::QuantizedPwl;
use nova_fixed::Fixed;

use crate::{LutError, LutStats, PerCoreLut};

/// The SDP model: a per-core LUT with a 3-stage pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SdpUnit {
    inner: PerCoreLut,
    extra_cycles: u64,
}

impl SdpUnit {
    /// Pipeline depth of the SDP datapath (read, interpolate, scale).
    pub const PIPELINE_STAGES: u64 = 3;

    /// Builds an SDP serving `neurons` lanes.
    ///
    /// # Panics
    ///
    /// Panics if `neurons == 0`.
    #[must_use]
    pub fn new(table: &QuantizedPwl, neurons: usize) -> Self {
        Self {
            inner: PerCoreLut::new(table, neurons),
            extra_cycles: 0,
        }
    }

    /// Re-programs the SDP's interpolation table in place (allocation
    /// reused, activity counters preserved).
    pub fn reprogram(&mut self, table: &QuantizedPwl) {
        self.inner.reprogram(table);
    }

    /// Lanes served.
    #[must_use]
    pub fn neurons(&self) -> usize {
        self.inner.neurons()
    }

    /// Activity counters (cycles include the deeper pipeline).
    #[must_use]
    pub fn stats(&self) -> LutStats {
        let mut s = self.inner.stats();
        s.cycles += self.extra_cycles;
        s
    }

    /// One batch through the SDP pipeline.
    ///
    /// # Errors
    ///
    /// Propagates the underlying batch validation errors.
    pub fn lookup_batch(&mut self, xs: &[Fixed]) -> Result<Vec<Fixed>, LutError> {
        let out = self.inner.lookup_batch(xs)?;
        // One extra stage vs the 2-cycle NN-LUT pipeline.
        self.extra_cycles += Self::PIPELINE_STAGES - 2;
        Ok(out)
    }

    /// The zero-copy batch path through the SDP pipeline: results land in
    /// `out` in place.
    ///
    /// # Errors
    ///
    /// Propagates the underlying batch validation errors.
    pub fn lookup_into(&mut self, xs: &[Fixed], out: &mut [Fixed]) -> Result<(), LutError> {
        self.inner.lookup_into(xs, out)?;
        // One extra stage vs the 2-cycle NN-LUT pipeline.
        self.extra_cycles += Self::PIPELINE_STAGES - 2;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_approx::{fit, Activation};
    use nova_fixed::{Rounding, Q4_12};

    fn table() -> QuantizedPwl {
        let pwl =
            fit::fit_activation(Activation::Relu, 16, fit::BreakpointStrategy::Uniform).unwrap();
        QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
    }

    #[test]
    fn sdp_matches_table_with_deeper_pipeline() {
        let t = table();
        let mut sdp = SdpUnit::new(&t, 16);
        let xs: Vec<Fixed> = (0..16)
            .map(|i| Fixed::from_f64(i as f64 * 0.5 - 4.0, Q4_12, Rounding::NearestEven))
            .collect();
        let out = sdp.lookup_batch(&xs).unwrap();
        for (o, &x) in out.iter().zip(&xs) {
            assert_eq!(*o, t.eval(x));
        }
        assert_eq!(sdp.stats().cycles, 3);
    }

    #[test]
    fn sdp_neuron_count() {
        let sdp = SdpUnit::new(&table(), 16);
        assert_eq!(sdp.neurons(), 16);
    }
}
