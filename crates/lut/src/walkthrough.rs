//! The paper's Fig 2 walkthrough: an 8-PE spatial accelerator (4×2 grid)
//! where each PE's output lands in a different section of an 8-breakpoint
//! piecewise-linear function.
//!
//! This module reconstructs that narrative as an executable trace: given
//! one output value per PE, it reports the lookup address each PE's
//! comparators generate, the `(slope, bias)` pair fetched in cycle 1, and
//! the MAC result in cycle 2 — the exact story of the figure.

use nova_approx::{QuantizedPwl, SlopeBias};
use nova_fixed::Fixed;

use crate::{LutError, PerNeuronLut};

/// One PE's row of the walkthrough trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRow {
    /// PE grid coordinates `(row, col)` in the 4×2 layout.
    pub pe: (usize, usize),
    /// The PE's output value (the approximator input).
    pub input: Fixed,
    /// The comparator-generated lookup address (1-based in the paper's
    /// prose; stored 0-based here).
    pub address: usize,
    /// The fetched pair (cycle 1).
    pub pair: SlopeBias,
    /// The approximated result (cycle 2).
    pub result: Fixed,
}

/// Runs the Fig 2 walkthrough: 8 PEs in a 4×2 grid, one value each.
///
/// # Errors
///
/// Propagates batch validation errors (wrong count or format).
pub fn fig2_walkthrough(
    table: &QuantizedPwl,
    pe_outputs: &[Fixed; 8],
) -> Result<Vec<TraceRow>, LutError> {
    let mut unit = PerNeuronLut::new(table, 8);
    let results = unit.lookup_batch(pe_outputs)?;
    Ok(pe_outputs
        .iter()
        .zip(&results)
        .enumerate()
        .map(|(i, (&input, &result))| {
            let xc = table.clamp(input);
            let address = table.lookup_address(xc);
            TraceRow {
                // Paper's grid walks (0,0), (0,1), (1,0) … down a 4×2 grid.
                pe: (i / 2, i % 2),
                input,
                address,
                pair: table.pairs()[address],
                result,
            }
        })
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_approx::{fit, Activation};
    use nova_fixed::{Rounding, Q4_12};

    #[test]
    fn walkthrough_covers_all_eight_sections() {
        // Construct inputs that land one per section, like the figure's
        // x1..x8.
        let pwl =
            fit::fit_activation(Activation::Sigmoid, 8, fit::BreakpointStrategy::Uniform).unwrap();
        let table = QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap();
        let edges = pwl.edges();
        let mut inputs = [Fixed::zero(Q4_12); 8];
        for i in 0..8 {
            let mid = (edges[i] + edges[i + 1]) / 2.0;
            inputs[i] = Fixed::from_f64(mid, Q4_12, Rounding::NearestEven);
        }
        let trace = fig2_walkthrough(&table, &inputs).unwrap();
        let addresses: Vec<usize> = trace.iter().map(|r| r.address).collect();
        assert_eq!(
            addresses,
            vec![0, 1, 2, 3, 4, 5, 6, 7],
            "one PE per section"
        );
        // Each result is a_i·x_i + b_i from the addressed pair.
        for row in &trace {
            let expect = row
                .pair
                .slope
                .mul_add(table.clamp(row.input), row.pair.bias, table.rounding())
                .unwrap();
            assert_eq!(row.result, expect);
        }
        // Grid coordinates walk the 4×2 layout.
        assert_eq!(trace[0].pe, (0, 0));
        assert_eq!(trace[7].pe, (3, 1));
    }
}
