//! The two LUT vector-unit variants: per-neuron and per-core sharing.

use nova_approx::QuantizedPwl;
use nova_fixed::Fixed;

use crate::{LutBank, LutError};

/// Activity counters of a LUT vector unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LutStats {
    /// Lookup batches served.
    pub batches: u64,
    /// Individual neuron lookups.
    pub lookups: u64,
    /// SRAM bank reads (per-neuron: = lookups; per-core: = lookups, but
    /// all on one bank's many ports).
    pub bank_reads: u64,
    /// MAC operations.
    pub mac_ops: u64,
    /// Total cycles consumed (2 per batch when fully ported).
    pub cycles: u64,
}

/// Per-neuron LUT unit: every neuron owns a private single-ported bank
/// holding a full copy of the table.
#[derive(Debug, Clone, PartialEq)]
pub struct PerNeuronLut {
    table: QuantizedPwl,
    banks: Vec<LutBank>,
    stats: LutStats,
}

impl PerNeuronLut {
    /// Builds the unit for `neurons` neurons.
    ///
    /// # Panics
    ///
    /// Panics if `neurons == 0`.
    #[must_use]
    pub fn new(table: &QuantizedPwl, neurons: usize) -> Self {
        assert!(neurons > 0, "a vector unit serves at least one neuron");
        Self {
            table: table.clone(),
            banks: (0..neurons)
                .map(|_| LutBank::from_table(table, 1))
                .collect(),
            stats: LutStats::default(),
        }
    }

    /// Re-programs the unit to serve a new table, rewriting every
    /// neuron's private bank in place (allocations reused, activity
    /// counters preserved) — the hot-loop-friendly form of rebuilding
    /// the unit that a serving-time table switch uses.
    pub fn reprogram(&mut self, table: &QuantizedPwl) {
        self.table.copy_from(table);
        for bank in &mut self.banks {
            bank.reprogram(table);
        }
    }

    /// Neurons served.
    #[must_use]
    pub fn neurons(&self) -> usize {
        self.banks.len()
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> LutStats {
        self.stats
    }

    /// One batch lookup: cycle 1 reads each neuron's private bank at the
    /// comparator address, cycle 2 MACs. Results are bit-identical to the
    /// table.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::BatchShape`] / [`LutError::FormatMismatch`] for
    /// malformed batches.
    pub fn lookup_batch(&mut self, xs: &[Fixed]) -> Result<Vec<Fixed>, LutError> {
        let mut out = xs.to_vec();
        self.lookup_into(xs, &mut out)?;
        Ok(out)
    }

    /// The zero-copy batch lookup: writes each neuron's approximated
    /// value into `out` in place. Validation (shape + one format pass) is
    /// hoisted out of the loop; the data itself runs through the table's
    /// SoA batch kernel ([`QuantizedPwl::eval_to_slice_unchecked`]) in
    /// one call — legal because every neuron's private bank mirrors
    /// `self.table` bit-for-bit (they are loaded from it on construction
    /// and rewritten from it on [`reprogram`](Self::reprogram)), so the
    /// kernel's output is exactly what per-bank read + MAC would produce.
    /// Each bank still records its one architectural read per batch.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::BatchShape`] / [`LutError::FormatMismatch`] for
    /// malformed batches (including an `out` of the wrong width).
    pub fn lookup_into(&mut self, xs: &[Fixed], out: &mut [Fixed]) -> Result<(), LutError> {
        validate(&self.table, self.banks.len(), xs)?;
        if out.len() != xs.len() {
            return Err(LutError::BatchShape {
                neurons: xs.len(),
                got: out.len(),
            });
        }
        self.table.eval_to_slice_unchecked(xs, out);
        for bank in &mut self.banks {
            bank.record_reads(1);
        }
        self.stats.batches += 1;
        self.stats.lookups += xs.len() as u64;
        self.stats.bank_reads += xs.len() as u64;
        self.stats.mac_ops += xs.len() as u64;
        self.stats.cycles += 2; // lookup + MAC, fully parallel banks
        Ok(())
    }
}

/// Per-core LUT unit: one bank with `neurons` read ports shared by all
/// neurons (no data redundancy, expensive multiporting).
#[derive(Debug, Clone, PartialEq)]
pub struct PerCoreLut {
    table: QuantizedPwl,
    bank: LutBank,
    neurons: usize,
    stats: LutStats,
}

impl PerCoreLut {
    /// Builds the unit for `neurons` neurons (bank gets `neurons` ports,
    /// as the paper's per-core variant provides).
    ///
    /// # Panics
    ///
    /// Panics if `neurons == 0`.
    #[must_use]
    pub fn new(table: &QuantizedPwl, neurons: usize) -> Self {
        assert!(neurons > 0, "a vector unit serves at least one neuron");
        Self {
            table: table.clone(),
            bank: LutBank::from_table(table, neurons),
            neurons,
            stats: LutStats::default(),
        }
    }

    /// Re-programs the unit to serve a new table, rewriting the shared
    /// bank in place (allocation reused, activity counters preserved).
    pub fn reprogram(&mut self, table: &QuantizedPwl) {
        self.table.copy_from(table);
        self.bank.reprogram(table);
    }

    /// Neurons served.
    #[must_use]
    pub fn neurons(&self) -> usize {
        self.neurons
    }

    /// Activity counters.
    #[must_use]
    pub fn stats(&self) -> LutStats {
        self.stats
    }

    /// The shared bank (for port/read statistics).
    #[must_use]
    pub fn bank(&self) -> &LutBank {
        &self.bank
    }

    /// One batch lookup through the shared multi-ported bank.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::BatchShape`] / [`LutError::FormatMismatch`] for
    /// malformed batches.
    pub fn lookup_batch(&mut self, xs: &[Fixed]) -> Result<Vec<Fixed>, LutError> {
        let mut out = xs.to_vec();
        self.lookup_into(xs, &mut out)?;
        Ok(out)
    }

    /// The zero-copy batch lookup through the shared multi-ported bank:
    /// writes results into `out` in place, with validation hoisted out of
    /// the loop. As with [`PerNeuronLut::lookup_into`], the data runs
    /// through the table's SoA batch kernel — the shared bank mirrors
    /// `self.table` bit-for-bit by construction and re-programming — and
    /// the bank records one read per neuron (all on its many ports), as
    /// the per-element path did.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::BatchShape`] / [`LutError::FormatMismatch`] for
    /// malformed batches (including an `out` of the wrong width).
    pub fn lookup_into(&mut self, xs: &[Fixed], out: &mut [Fixed]) -> Result<(), LutError> {
        validate(&self.table, self.neurons, xs)?;
        if out.len() != xs.len() {
            return Err(LutError::BatchShape {
                neurons: xs.len(),
                got: out.len(),
            });
        }
        let lookup_cycles = self.bank.cycles_for(xs.len());
        self.table.eval_to_slice_unchecked(xs, out);
        self.bank.record_reads(xs.len() as u64);
        self.stats.batches += 1;
        self.stats.lookups += xs.len() as u64;
        self.stats.bank_reads += xs.len() as u64;
        self.stats.mac_ops += xs.len() as u64;
        self.stats.cycles += lookup_cycles as u64 + 1;
        Ok(())
    }
}

fn validate(table: &QuantizedPwl, neurons: usize, xs: &[Fixed]) -> Result<(), LutError> {
    if xs.len() != neurons {
        return Err(LutError::BatchShape {
            neurons,
            got: xs.len(),
        });
    }
    if xs.iter().any(|x| x.format() != table.format()) {
        return Err(LutError::FormatMismatch);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_approx::{fit, Activation};
    use nova_fixed::{Rounding, Q4_12};

    fn table() -> QuantizedPwl {
        let pwl =
            fit::fit_activation(Activation::Sigmoid, 16, fit::BreakpointStrategy::Uniform).unwrap();
        QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
    }

    fn batch(n: usize, seed: f64) -> Vec<Fixed> {
        (0..n)
            .map(|i| {
                Fixed::from_f64(
                    (i as f64 * 0.9 + seed).sin() * 6.0,
                    Q4_12,
                    Rounding::NearestEven,
                )
            })
            .collect()
    }

    #[test]
    fn reprogram_switches_tables_in_place_and_keeps_counters() {
        let sigmoid = table();
        let tanh_pwl =
            fit::fit_activation(Activation::Tanh, 16, fit::BreakpointStrategy::Uniform).unwrap();
        let tanh = QuantizedPwl::from_pwl(&tanh_pwl, Q4_12, Rounding::NearestEven).unwrap();
        let xs = batch(8, 0.7);
        let mut pn = PerNeuronLut::new(&sigmoid, 8);
        let mut pc = PerCoreLut::new(&sigmoid, 8);
        pn.lookup_batch(&xs).unwrap();
        pc.lookup_batch(&xs).unwrap();
        let (pn_stats, pc_stats) = (pn.stats(), pc.stats());
        pn.reprogram(&tanh);
        pc.reprogram(&tanh);
        // Same hardware, new operator: counters survive the rewrite...
        assert_eq!(pn.stats(), pn_stats);
        assert_eq!(pc.stats(), pc_stats);
        // ...and lookups are now bit-identical to the new table.
        let a = pn.lookup_batch(&xs).unwrap();
        let b = pc.lookup_batch(&xs).unwrap();
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(a[i], tanh.eval(x));
            assert_eq!(b[i], tanh.eval(x));
        }
    }

    #[test]
    fn both_variants_match_table() {
        let t = table();
        let xs = batch(16, 0.4);
        let mut pn = PerNeuronLut::new(&t, 16);
        let mut pc = PerCoreLut::new(&t, 16);
        let a = pn.lookup_batch(&xs).unwrap();
        let b = pc.lookup_batch(&xs).unwrap();
        for (i, &x) in xs.iter().enumerate() {
            assert_eq!(a[i], t.eval(x));
            assert_eq!(b[i], t.eval(x));
        }
    }

    #[test]
    fn two_cycle_latency() {
        let t = table();
        let xs = batch(8, 0.0);
        let mut pn = PerNeuronLut::new(&t, 8);
        let mut pc = PerCoreLut::new(&t, 8);
        pn.lookup_batch(&xs).unwrap();
        pc.lookup_batch(&xs).unwrap();
        assert_eq!(pn.stats().cycles, 2);
        assert_eq!(
            pc.stats().cycles,
            2,
            "fully ported bank keeps 2-cycle latency"
        );
    }

    #[test]
    fn per_core_shares_one_bank() {
        let t = table();
        let xs = batch(32, 1.0);
        let mut pc = PerCoreLut::new(&t, 32);
        pc.lookup_batch(&xs).unwrap();
        assert_eq!(pc.bank().reads(), 32);
        assert_eq!(pc.bank().read_ports(), 32);
    }

    #[test]
    fn stats_accumulate_over_batches() {
        let t = table();
        let mut pn = PerNeuronLut::new(&t, 4);
        for k in 0..5 {
            pn.lookup_batch(&batch(4, k as f64)).unwrap();
        }
        let s = pn.stats();
        assert_eq!(s.batches, 5);
        assert_eq!(s.lookups, 20);
        assert_eq!(s.bank_reads, 20);
        assert_eq!(s.cycles, 10);
    }

    #[test]
    fn shape_and_format_validation() {
        let t = table();
        let mut pn = PerNeuronLut::new(&t, 4);
        assert!(matches!(
            pn.lookup_batch(&batch(3, 0.0)),
            Err(LutError::BatchShape { neurons: 4, got: 3 })
        ));
        let wrong = vec![Fixed::zero(nova_fixed::Q6_10); 4];
        assert!(matches!(
            pn.lookup_batch(&wrong),
            Err(LutError::FormatMismatch)
        ));
    }
}
