use std::error::Error;
use std::fmt;

/// Errors produced by the LUT vector-unit models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LutError {
    /// The input batch length does not match the unit's neuron count.
    BatchShape {
        /// Neurons the unit serves.
        neurons: usize,
        /// Inputs supplied.
        got: usize,
    },
    /// An input word used a different Q-format than the table.
    FormatMismatch,
    /// A bank read addressed a missing entry (table smaller than address
    /// space — a wiring bug).
    AddressOutOfRange {
        /// The offending address.
        address: usize,
        /// Entries in the bank.
        entries: usize,
    },
}

impl fmt::Display for LutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LutError::BatchShape { neurons, got } => {
                write!(f, "batch of {got} inputs for a {neurons}-neuron unit")
            }
            LutError::FormatMismatch => write!(f, "input word format does not match the table"),
            LutError::AddressOutOfRange { address, entries } => {
                write!(f, "address {address} out of range for {entries} entries")
            }
        }
    }
}

impl Error for LutError {}
