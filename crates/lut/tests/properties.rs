//! Property tests: every LUT variant is functionally identical to the
//! quantized table, for any table and batch.

use nova_approx::{fit, Activation, QuantizedPwl};
use nova_fixed::{Fixed, Q4_12, Rounding};
use nova_lut::{PerCoreLut, PerNeuronLut, SdpUnit};
use proptest::prelude::*;

fn table(segments: usize, activation: Activation) -> QuantizedPwl {
    let pwl = fit::fit_activation(activation, segments, fit::BreakpointStrategy::Uniform)
        .unwrap();
    QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
}

fn activations() -> impl Strategy<Value = Activation> {
    prop_oneof![
        Just(Activation::Relu),
        Just(Activation::Gelu),
        Just(Activation::Sigmoid),
        Just(Activation::Exp),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Per-neuron, per-core and SDP all equal the table, bit for bit.
    #[test]
    fn all_variants_equal_table(
        segments in 1usize..=16,
        a in activations(),
        raws in prop::collection::vec(any::<i16>(), 1..48),
    ) {
        let t = table(segments, a);
        let xs: Vec<Fixed> = raws
            .iter()
            .map(|&r| Fixed::from_raw(i64::from(r), Q4_12).unwrap())
            .collect();
        let expect: Vec<Fixed> = xs.iter().map(|&x| t.eval(x)).collect();
        let mut pn = PerNeuronLut::new(&t, xs.len());
        let mut pc = PerCoreLut::new(&t, xs.len());
        let mut sdp = SdpUnit::new(&t, xs.len());
        prop_assert_eq!(pn.lookup_batch(&xs).unwrap(), expect.clone());
        prop_assert_eq!(pc.lookup_batch(&xs).unwrap(), expect.clone());
        prop_assert_eq!(sdp.lookup_batch(&xs).unwrap(), expect);
    }

    /// Stats invariants: lookups == bank reads == MAC ops after any batch
    /// sequence; cycles are 2 per batch for fully-ported units.
    #[test]
    fn stats_invariants(batches in 1usize..6, neurons in 1usize..24) {
        let t = table(16, Activation::Tanh);
        let mut pn = PerNeuronLut::new(&t, neurons);
        let mut pc = PerCoreLut::new(&t, neurons);
        let xs: Vec<Fixed> = (0..neurons)
            .map(|i| Fixed::from_f64(i as f64 * 0.2 - 2.0, Q4_12, Rounding::NearestEven))
            .collect();
        for _ in 0..batches {
            pn.lookup_batch(&xs).unwrap();
            pc.lookup_batch(&xs).unwrap();
        }
        for s in [pn.stats(), pc.stats()] {
            prop_assert_eq!(s.batches, batches as u64);
            prop_assert_eq!(s.lookups, (batches * neurons) as u64);
            prop_assert_eq!(s.bank_reads, s.lookups);
            prop_assert_eq!(s.mac_ops, s.lookups);
            prop_assert_eq!(s.cycles, 2 * batches as u64);
        }
    }
}
