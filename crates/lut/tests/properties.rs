//! Property tests: every LUT variant is functionally identical to the
//! quantized table, for any table and batch.
//!
//! Checked over deterministic pseudo-random stimulus from the workspace
//! PRNG (`nova_fixed::rng`) instead of proptest, per the no-external-
//! dependency policy.

use nova_approx::{fit, Activation, QuantizedPwl};
use nova_fixed::rng::StdRng;
use nova_fixed::{Fixed, Rounding, Q4_12};
use nova_lut::{PerCoreLut, PerNeuronLut, SdpUnit};

fn table(segments: usize, activation: Activation) -> QuantizedPwl {
    let pwl = fit::fit_activation(activation, segments, fit::BreakpointStrategy::Uniform).unwrap();
    QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
}

const ACTIVATIONS: [Activation; 4] = [
    Activation::Relu,
    Activation::Gelu,
    Activation::Sigmoid,
    Activation::Exp,
];

/// Per-neuron, per-core and SDP all equal the table, bit for bit.
#[test]
fn all_variants_equal_table() {
    let mut rng = StdRng::seed_from_u64(0x1001);
    for _ in 0..48 {
        let segments = rng.gen_range(1usize..17);
        let a = ACTIVATIONS[rng.gen_range(0..ACTIVATIONS.len())];
        let len = rng.gen_range(1usize..48);
        let t = table(segments, a);
        let xs: Vec<Fixed> = (0..len)
            .map(|_| {
                let raw = rng.gen_range(i64::from(i16::MIN)..i64::from(i16::MAX) + 1);
                Fixed::from_raw(raw, Q4_12).unwrap()
            })
            .collect();
        let expect: Vec<Fixed> = xs.iter().map(|&x| t.eval(x)).collect();
        let mut pn = PerNeuronLut::new(&t, xs.len());
        let mut pc = PerCoreLut::new(&t, xs.len());
        let mut sdp = SdpUnit::new(&t, xs.len());
        assert_eq!(pn.lookup_batch(&xs).unwrap(), expect);
        assert_eq!(pc.lookup_batch(&xs).unwrap(), expect);
        assert_eq!(sdp.lookup_batch(&xs).unwrap(), expect);
    }
}

/// Stats invariants: lookups == bank reads == MAC ops after any batch
/// sequence; cycles are 2 per batch for fully-ported units.
#[test]
fn stats_invariants() {
    let mut rng = StdRng::seed_from_u64(0x1002);
    for _ in 0..48 {
        let batches = rng.gen_range(1usize..6);
        let neurons = rng.gen_range(1usize..24);
        let t = table(16, Activation::Tanh);
        let mut pn = PerNeuronLut::new(&t, neurons);
        let mut pc = PerCoreLut::new(&t, neurons);
        let xs: Vec<Fixed> = (0..neurons)
            .map(|i| Fixed::from_f64(i as f64 * 0.2 - 2.0, Q4_12, Rounding::NearestEven))
            .collect();
        for _ in 0..batches {
            pn.lookup_batch(&xs).unwrap();
            pc.lookup_batch(&xs).unwrap();
        }
        for s in [pn.stats(), pc.stats()] {
            assert_eq!(s.batches, batches as u64);
            assert_eq!(s.lookups, (batches * neurons) as u64);
            assert_eq!(s.bank_reads, s.lookups);
            assert_eq!(s.mac_ops, s.lookups);
            assert_eq!(s.cycles, 2 * batches as u64);
        }
    }
}
