//! Model-checked protocol tests for `nova::spsc` — the real ring, the
//! real orderings, every interleaving the bounded-DFS explorer can
//! reach within budget.
//!
//! These only compile under `--cfg nova_check_model`, which flips the
//! `nova_check::sync` facade inside nova-core from std re-exports to
//! the instrumented shim, so every atomic, slot access, park, and
//! unpark in `spsc.rs` becomes a model-checker choice point:
//!
//! ```text
//! RUSTFLAGS="--cfg nova_check_model" cargo test -p nova-core --test model
//! ```
//!
//! Budget knob: `NOVA_CHECK_BUDGET` caps executions per exploration
//! (default 20 000). Each test here pins one protocol claim made in the
//! `spsc` module docs; lost wakeups surface as model deadlocks, lost or
//! duplicated items as assertion panics, slot misuse as data races.

#![cfg(nova_check_model)]

use std::sync::atomic::{AtomicUsize as StdAtomicUsize, Ordering as StdOrdering};
use std::sync::Arc;

use nova::spsc::{self, PushError};
use nova_check::shim::thread;
use nova_check::{explore, ModelOptions, Report};

fn opts() -> ModelOptions {
    ModelOptions::default()
}

fn assert_clean(report: &Report, what: &str) {
    assert!(
        report.violation.is_none(),
        "{what}: {}",
        report.violation.as_ref().expect("checked some")
    );
    assert!(report.executions > 1, "{what}: only one interleaving ran");
}

/// The serving worker's wait loop in miniature: pop, or close-drain, or
/// park via the raise-then-recheck protocol. Returns `None` only once
/// the ring is closed *and* drained (which the protocol makes final).
fn pop_wait<T>(rx: &spsc::Consumer<T>) -> Option<T> {
    loop {
        if let Some(v) = rx.try_pop() {
            return Some(v);
        }
        if rx.is_closed() {
            return rx.try_pop();
        }
        rx.begin_park();
        match rx.try_pop() {
            Some(v) => {
                rx.end_park();
                return Some(v);
            }
            None => {
                if !rx.is_closed() {
                    thread::park();
                }
                rx.end_park();
            }
        }
    }
}

/// Push with a bounded-by-schedule retry (the producer side has no park
/// protocol; `yield_now` gives the scheduler a choice point).
fn push_spin<T>(tx: &spsc::Producer<T>, value: T) {
    let mut item = value;
    loop {
        match tx.try_push(item) {
            Ok(()) => return,
            Err(PushError::Full(back)) => {
                item = back;
                thread::yield_now();
            }
            Err(PushError::Closed(_)) => panic!("consumer hung up mid-test"),
        }
    }
}

#[test]
fn fifo_no_lost_items() {
    // Two pushes, a parking consumer: every interleaving must deliver
    // both items, in order, exactly once.
    let report = explore(opts(), || {
        let (tx, rx) = spsc::ring::<u32>(2);
        let consumer = thread::spawn(move || {
            let a = pop_wait(&rx).expect("first item");
            let b = pop_wait(&rx).expect("second item");
            (a, b)
        });
        tx.try_push(1).expect("capacity 2 never fills here");
        tx.try_push(2).expect("capacity 2 never fills here");
        assert_eq!(
            consumer.join().unwrap(),
            (1, 2),
            "FIFO order, nothing lost or duplicated"
        );
    });
    assert_clean(&report, "fifo_no_lost_items");
}

#[test]
fn close_then_join_hands_every_item_back() {
    // The quarantine handshake: the engine closes a failed shard's feed
    // from the producer side and joins the worker; every pre-close unit
    // must come back over the done ring, none lost, none duplicated.
    let report = explore(opts(), || {
        let (feed_tx, feed_rx) = spsc::ring::<u32>(2);
        let (done_tx, done_rx) = spsc::ring::<u32>(2);
        feed_tx.try_push(1).expect("pre-close unit");
        feed_tx.try_push(2).expect("pre-close unit");
        let worker = thread::spawn(move || {
            while let Some(unit) = pop_wait(&feed_rx) {
                done_tx
                    .try_push(unit)
                    .expect("done ring sized for every in-flight unit");
            }
        });
        feed_tx.close();
        worker.join().unwrap();
        let drained: Vec<u32> = std::iter::from_fn(|| done_rx.try_pop()).collect();
        assert_eq!(drained, vec![1, 2], "drain-back lost or reordered units");
        assert!(done_rx.is_closed(), "retired worker closes its done end");
    });
    assert_clean(&report, "close_then_join_hands_every_item_back");
}

#[test]
fn parked_consumer_never_misses_wakeup() {
    // The raise-then-recheck park protocol at capacity 1: a missed
    // wakeup would strand the consumer in park with the producer done —
    // the model reports that as a deadlock.
    let report = explore(opts(), || {
        let (tx, rx) = spsc::ring::<u32>(1);
        let consumer = thread::spawn(move || pop_wait(&rx));
        tx.try_push(7).expect("empty ring takes the push");
        assert_eq!(consumer.join().unwrap(), Some(7));
    });
    assert_clean(&report, "parked_consumer_never_misses_wakeup");
}

#[test]
fn doorbell_arm_ring_no_lost_wake() {
    // The collector's arm → re-check (`is_empty`) → park loop against a
    // worker's publish-then-ring: the SeqCst Dekker square must leave
    // no interleaving where the collector parks on work it never saw.
    let report = explore(opts(), || {
        let bell = Arc::new(spsc::Doorbell::new());
        let (tx, rx) = spsc::ring::<u32>(1);
        let worker_bell = Arc::clone(&bell);
        let worker = thread::spawn(move || {
            tx.try_push(9).expect("empty ring takes the push");
            worker_bell.ring();
        });
        loop {
            bell.arm();
            if !rx.is_empty() {
                bell.disarm();
                break;
            }
            thread::park();
            bell.disarm();
        }
        assert_eq!(rx.try_pop(), Some(9));
        worker.join().unwrap();
    });
    assert_clean(&report, "doorbell_arm_ring_no_lost_wake");
}

#[test]
fn drop_exactly_once_inflight() {
    // Slot ownership across pop, close, and teardown: three pushed
    // values, one popped by the consumer, two reclaimed by the ring's
    // Drop — each destructor runs exactly once in every interleaving.
    // (The drop counter is a plain std atomic on purpose: it is test
    // scaffolding, not part of the modeled protocol.)
    let report = explore(opts(), || {
        struct Counted(Arc<StdAtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, StdOrdering::SeqCst);
            }
        }
        let drops = Arc::new(StdAtomicUsize::new(0));
        let (tx, rx) = spsc::ring::<Counted>(4);
        // Spawn first so the pops genuinely race the pushes.
        let consumer = thread::spawn(move || {
            let taken = pop_wait(&rx);
            assert!(taken.is_some(), "three pushed, at least one to pop");
        });
        for _ in 0..3 {
            match tx.try_push(Counted(Arc::clone(&drops))) {
                // Closed is legitimate: the consumer may pop its one
                // item, return, and drop `rx` before we finish pushing.
                // The value rides back in the error and drops here.
                Ok(()) | Err(PushError::Closed(_)) => {}
                Err(PushError::Full(_)) => panic!("capacity 4 cannot fill"),
            }
        }
        consumer.join().unwrap();
        drop(tx);
        assert_eq!(
            drops.load(StdOrdering::SeqCst),
            3,
            "every in-flight value dropped exactly once"
        );
    });
    assert_clean(&report, "drop_exactly_once_inflight");
}

#[test]
fn capacity_one_ring_parks_and_wakes() {
    // The degenerate depth-1 ring under producer pressure: the second
    // push must wait for the pop, the consumer parks between items, and
    // both hand-offs stay intact in every explored interleaving.
    let report = explore(opts(), || {
        let (tx, rx) = spsc::ring::<u32>(1);
        let consumer = thread::spawn(move || {
            let a = pop_wait(&rx).expect("first item");
            let b = pop_wait(&rx).expect("second item");
            (a, b)
        });
        push_spin(&tx, 1);
        push_spin(&tx, 2);
        assert_eq!(consumer.join().unwrap(), (1, 2));
    });
    assert_clean(&report, "capacity_one_ring_parks_and_wakes");
}
