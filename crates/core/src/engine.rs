//! The end-to-end evaluation engine: per-inference runtime and energy
//! (the machinery behind Fig 8).
//!
//! The paper's methodology (§V.F): SCALE-Sim supplies per-inference
//! runtime on the host; the synthesis power numbers of each approximator
//! supply the power; energy is their product over the time the
//! approximator is active. Because NOVA and the LUT baselines have
//! identical lookup latency, their energy ratio equals their power ratio —
//! which is exactly how the paper's 9.4× / 4.14× headline numbers arise.

use nova_accel::config::AcceleratorConfig;
use nova_accel::runtime::{matmul_runtime, MatmulRuntime};
use nova_accel::systolic::Dataflow;
use nova_approx::Activation;
use nova_synth::{units, LutSharing, TechModel};
use nova_workloads::bert::{census, BertConfig, OpCensus};

use crate::timeline::table_switch_cycles;
use crate::NovaError;

// The dispatch axis lives with the unit implementations; re-exported
// here because the engine's cost models are keyed off the same enum.
pub use crate::vector_unit::ApproximatorKind;

/// Full per-inference report for one (host, model, approximator) triple.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceReport {
    /// Host accelerator name.
    pub accelerator: String,
    /// Workload name.
    pub model: String,
    /// Sequence length evaluated.
    pub seq_len: usize,
    /// Approximator used.
    pub approximator: String,
    /// Matmul cycles on the systolic fabric.
    pub matmul_cycles: u64,
    /// Non-linear approximator queries (exp + recip + GELU + rsqrt).
    pub nl_queries: u64,
    /// Vector-unit batches (queries over all neurons in parallel).
    pub nl_batches: u64,
    /// Cycles spent on non-linear lookups (2 per batch: lookup + MAC).
    pub nl_cycles: u64,
    /// Total inference latency (s).
    pub total_seconds: f64,
    /// Approximator power (mW) while active.
    pub approximator_power_mw: f64,
    /// Approximator energy per inference (mJ).
    pub approximator_energy_mj: f64,
    /// Host compute power (mW) while matmuls run.
    pub host_power_mw: f64,
    /// Host compute energy per inference (mJ).
    pub host_energy_mj: f64,
    /// Approximator energy as % of host compute energy (the paper's
    /// "energy overhead").
    pub energy_overhead_pct: f64,
}

nova_serde::impl_serde_struct!(InferenceReport {
    accelerator,
    model,
    seq_len,
    approximator,
    matmul_cycles,
    nl_queries,
    nl_batches,
    nl_cycles,
    total_seconds,
    approximator_power_mw,
    approximator_energy_mj,
    host_power_mw,
    host_energy_mj,
    energy_overhead_pct,
});

/// Power (mW) of `kind` on `config` at the host's clock/activity,
/// from the calibrated 22 nm model.
#[must_use]
pub fn approximator_power_mw(
    tech: &TechModel,
    config: &AcceleratorConfig,
    kind: ApproximatorKind,
) -> f64 {
    let n = config.nova_routers as f64;
    let neurons = config.neurons_per_router;
    let core = config.frequency_ghz();
    let act = config.datapath_activity;
    match kind {
        ApproximatorKind::NovaNoc => {
            let r = units::nova_router(tech, neurons, 16, config.router_pitch_mm);
            r.power_mw(tech, core, core * 2.0, act) * n
        }
        ApproximatorKind::PerNeuronLut => {
            units::lut_unit(tech, neurons, 16, LutSharing::PerNeuron).power_mw(tech, core, act) * n
        }
        ApproximatorKind::PerCoreLut => {
            units::lut_unit(tech, neurons, 16, LutSharing::PerCore).power_mw(tech, core, act) * n
        }
        // The SDP is the host's always-clocked native engine — no demand
        // gating, so activity 1 regardless of the attention duty cycle.
        ApproximatorKind::NvdlaSdp => units::nvdla_sdp(tech, neurons).power_mw(tech, core, 1.0) * n,
    }
}

/// Host compute power (mW): all systolic MACs switching at the core clock.
#[must_use]
pub fn host_power_mw(tech: &TechModel, config: &AcceleratorConfig) -> f64 {
    let pes = (config.systolic.pes_per_array() * config.systolic.arrays) as f64;
    let (_, mac_cap) = nova_synth::components::mac16(tech);
    tech.dynamic_power_mw(pes * mac_cap, config.frequency_ghz(), 1.0)
}

/// Evaluates one inference of `model` at `seq_len` on `config` with
/// `kind` serving the non-linear operators (paper defaults: OS dataflow,
/// cmos22 tech).
///
/// # Errors
///
/// Returns [`NovaError::BatchShape`] for a zero sequence length.
pub fn evaluate(
    config: &AcceleratorConfig,
    model: &BertConfig,
    seq_len: usize,
    kind: ApproximatorKind,
) -> Result<InferenceReport, NovaError> {
    if seq_len == 0 {
        return Err(NovaError::BatchShape(
            "sequence length must be positive".into(),
        ));
    }
    let tech = TechModel::cmos22();
    let ops = census(model, seq_len);
    evaluate_census(&tech, config, model.name, seq_len, &ops, kind)
}

/// Evaluates one inference of a CNN/MLP vision model on `config` (the
/// NVDLA/Jetson path: ReLU traffic plus one classifier softmax).
///
/// # Errors
///
/// Propagates [`evaluate_census`] failures.
pub fn evaluate_cnn(
    config: &AcceleratorConfig,
    model: &nova_workloads::cnn::CnnConfig,
    kind: ApproximatorKind,
) -> Result<InferenceReport, NovaError> {
    let tech = TechModel::cmos22();
    let ops = nova_workloads::cnn::census(model);
    evaluate_census(&tech, config, model.name, 1, &ops, kind)
}

/// Evaluates a pre-computed census (for custom workloads).
///
/// # Errors
///
/// Currently infallible for well-formed censuses; returns [`NovaError`]
/// for future host-specific validation.
pub fn evaluate_census(
    tech: &TechModel,
    config: &AcceleratorConfig,
    model_name: &str,
    seq_len: usize,
    ops: &OpCensus,
    kind: ApproximatorKind,
) -> Result<InferenceReport, NovaError> {
    let mm: MatmulRuntime = matmul_runtime(config, ops, Dataflow::OutputStationary);
    let queries = ops.approximator_queries();
    let neurons = config.total_neurons() as u64;
    let batches = queries.div_ceil(neurons);
    // Per-batch latency of the serving hardware: 2 (lookup + MAC) for
    // NOVA and the NN-LUT baselines, 3 for the SDP's deeper pipeline.
    let nl_cycles = batches * kind.batch_latency_cycles();
    let freq_hz = config.frequency_mhz * 1e6;
    let nl_seconds = nl_cycles as f64 / freq_hz;
    let total_seconds = mm.seconds + nl_seconds;

    let p_approx = approximator_power_mw(tech, config, kind);
    let p_host = host_power_mw(tech, config);
    let e_approx = p_approx * nl_seconds; // mW · s = mJ... (mW×s = mJ)
    let e_host = p_host * mm.seconds;

    Ok(InferenceReport {
        accelerator: config.name.to_string(),
        model: model_name.to_string(),
        seq_len,
        approximator: kind.label().to_string(),
        matmul_cycles: mm.cycles,
        nl_queries: queries,
        nl_batches: batches,
        nl_cycles,
        total_seconds,
        approximator_power_mw: p_approx,
        approximator_energy_mj: e_approx,
        host_power_mw: p_host,
        host_energy_mj: e_host,
        energy_overhead_pct: if e_host > 0.0 {
            100.0 * e_approx / e_host
        } else {
            0.0
        },
    })
}

/// Aggregate serving report for a slate of inference requests arriving
/// on many concurrent streams and sharing one approximator — the
/// analytic counterpart of the functional
/// [`crate::serving::ServingEngine`].
///
/// The key quantity is batch coalescing: a naive engine dispatches each
/// request's non-linear queries alone and pays `ceil(q_i / capacity)`
/// batches per request, while the shared scheduler pays
/// `ceil(Σ q_i / capacity)` — every tail batch but one is filled with
/// another request's queries.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiStreamReport {
    /// Host accelerator name.
    pub accelerator: String,
    /// Approximator used.
    pub approximator: String,
    /// Inference requests in the slate (across all streams).
    pub requests: usize,
    /// Shard workers serving the coalesced batches concurrently.
    pub workers: usize,
    /// Distinct activation tables the slate touches (batches coalesce
    /// only within one table's run).
    pub activations: usize,
    /// Non-linear queries summed over all requests.
    pub total_queries: u64,
    /// Vector-unit batches with cross-request coalescing.
    pub coalesced_batches: u64,
    /// Batches if each request dispatched alone (sum of per-request
    /// ceilings — the naive single-tenant pattern).
    pub naive_batches: u64,
    /// Occupancy of the coalesced batches (%).
    pub batch_occupancy_pct: f64,
    /// Non-linear cycles with coalescing — the *serial* sum over all
    /// batches, independent of the worker count.
    pub nl_cycles: u64,
    /// Per-worker accumulated non-linear cycles under round-robin batch
    /// dispatch — the counters the aggregate view below is gathered
    /// from. One entry per worker.
    pub worker_nl_cycles: Vec<u64>,
    /// Per-worker accumulated table-switch stall cycles under the same
    /// round-robin dispatch: a worker switches whenever consecutive
    /// batches it serves belong to different activation tables. All
    /// zeros for the NOVA NoC.
    pub worker_switch_cycles: Vec<u64>,
    /// Activation-table switches summed over the pool.
    pub table_switches: u64,
    /// Table-switch stall cycles summed over the pool
    /// ([`crate::timeline::table_switch_cycles`] per switch).
    pub switch_cycles: u64,
    /// The worker pool's non-linear makespan: the busiest worker's
    /// accumulated batch *plus switch* cycles. Equals
    /// `nl_cycles + switch_cycles` for one worker and approaches that
    /// sum over `workers` for an evenly loaded pool.
    pub makespan_nl_cycles: u64,
    /// Table switches a naive single-worker dispatcher pays: one at
    /// every activation boundary of the arrival order (no run grouping
    /// to amortize them).
    pub naive_table_switches: u64,
    /// Non-linear cycles under naive per-request dispatch: batch latency
    /// plus the switch stall at every arrival-order activation boundary
    /// — the same stall model as the coalesced path, so the comparison
    /// is symmetric.
    pub naive_nl_cycles: u64,
    /// Matmul time over all requests, serialized on the host fabric (s).
    pub matmul_seconds: f64,
    /// End-to-end time for the whole slate (s).
    pub total_seconds: f64,
    /// Aggregate inference throughput (inferences/s).
    pub inferences_per_second: f64,
    /// Non-linear service rate with coalescing (queries/s).
    pub queries_per_second: f64,
    /// Non-linear service rate under naive dispatch (queries/s).
    pub naive_queries_per_second: f64,
    /// `naive_nl_cycles` over the coalesced single-worker cost
    /// (`nl_cycles` plus one switch stall per run transition) — what
    /// coalescing buys, switch stalls counted on both sides.
    pub nl_speedup: f64,
    /// Approximator energy for the slate with coalescing (mJ).
    pub approximator_energy_mj: f64,
    /// Approximator energy under naive per-stream dispatch (mJ).
    pub naive_approximator_energy_mj: f64,
}

nova_serde::impl_serde_struct!(MultiStreamReport {
    accelerator,
    approximator,
    requests,
    workers,
    activations,
    total_queries,
    coalesced_batches,
    naive_batches,
    batch_occupancy_pct,
    nl_cycles,
    worker_nl_cycles,
    worker_switch_cycles,
    table_switches,
    switch_cycles,
    makespan_nl_cycles,
    naive_table_switches,
    naive_nl_cycles,
    matmul_seconds,
    total_seconds,
    inferences_per_second,
    queries_per_second,
    naive_queries_per_second,
    nl_speedup,
    approximator_energy_mj,
    naive_approximator_energy_mj,
});

/// PWL entries of the paper's activation tables — the analytic model's
/// per-switch rewrite volume (matches `timeline::layer_timeline`).
const PAPER_TABLE_ENTRIES: u64 = 16;

/// Evaluates a mixed-activation slate of inference requests (one
/// `(activation, census)` pair each, from any number of concurrent
/// streams) sharing `kind` on `config`: non-linear queries are coalesced
/// across requests into full `(routers × neurons)` batches *within each
/// activation's run* (runs in first-appearance order, exactly like the
/// functional engine's admission stage), dispatched round-robin over
/// `workers` concurrent shard workers, matmuls serialize on the host
/// fabric, and the report carries aggregate throughput (inferences/s,
/// queries/s) plus batch occupancy — versus naive dispatch, where each
/// request's batches run alone with their own padded tails on a single
/// worker.
///
/// Aggregate numbers are gathered from the per-worker cycle counters:
/// the non-linear wall time is the pool's makespan (the busiest worker,
/// **table-switch stalls included** — a worker switches whenever
/// consecutive batches it serves belong to different activations, at
/// [`crate::timeline::table_switch_cycles`] per switch: free for the
/// NOVA NoC, a real bank rewrite for LUT/SDP hardware), so `workers = 1`
/// with a single activation reproduces the serial accounting exactly.
/// The model has no table registry, so workers are taken as
/// pre-programmed with the *slate's first* activation; a functional
/// engine pre-programs with its first *registered* table instead, so
/// absolute switch counts can differ by up to one switch per worker
/// when a slate opens with a different activation than the engine
/// default.
///
/// This is the *analytic* twin of [`crate::serving::ServingEngine`]: it
/// counts queries and batch slots without materializing values, and its
/// `capacity = routers × neurons` accounting is exactly the flat
/// [`nova_fixed::FixedBatch`] slot layout the functional pipeline packs
/// (slate census totals here = grid slots there). Callers holding a
/// seeded trace get the census slate without cloning request records via
/// `nova_workloads::traffic::TrafficMix::census_slate`.
///
/// # Errors
///
/// Returns [`NovaError::BatchShape`] for an empty request slate or
/// `workers == 0`.
pub fn evaluate_multi_stream(
    tech: &TechModel,
    config: &AcceleratorConfig,
    requests: &[(Activation, OpCensus)],
    kind: ApproximatorKind,
    workers: usize,
) -> Result<MultiStreamReport, NovaError> {
    if requests.is_empty() {
        return Err(NovaError::BatchShape(
            "multi-stream evaluation needs at least one request".into(),
        ));
    }
    if workers == 0 {
        return Err(NovaError::BatchShape(
            "multi-stream evaluation needs at least one worker".into(),
        ));
    }
    let capacity = config.total_neurons() as u64;
    let total_queries: u64 = requests.iter().map(|(_, s)| s.approximator_queries()).sum();
    // Group queries into per-activation runs, in first-appearance order
    // — coalescing never crosses a table boundary, exactly like the
    // functional admission stage.
    let mut run_activations: Vec<Activation> = Vec::new();
    let mut run_queries: Vec<u64> = Vec::new();
    for (activation, census) in requests {
        match run_activations.iter().position(|a| a == activation) {
            Some(i) => run_queries[i] += census.approximator_queries(),
            None => {
                run_activations.push(*activation);
                run_queries.push(census.approximator_queries());
            }
        }
    }
    let coalesced_batches: u64 = run_queries.iter().map(|q| q.div_ceil(capacity)).sum();
    let naive_batches: u64 = requests
        .iter()
        .map(|(_, s)| s.approximator_queries().div_ceil(capacity))
        .sum();
    let latency = kind.batch_latency_cycles();
    let nl_cycles = coalesced_batches * latency;
    // Round-robin the run-ordered batches over the worker pool, exactly
    // as the serving runtime's admission stage does — tracking which
    // activation each worker has loaded (all pre-programmed with the
    // first run's table) — and gather the aggregate from the per-worker
    // counters.
    let switch_stall = table_switch_cycles(kind, PAPER_TABLE_ENTRIES);
    let mut worker_nl_cycles = vec![0u64; workers];
    let mut worker_switch_cycles = vec![0u64; workers];
    let mut worker_current = vec![run_activations[0]; workers];
    let mut table_switches = 0u64;
    let mut seq = 0u64;
    for (run, &activation) in run_activations.iter().enumerate() {
        for _ in 0..run_queries[run].div_ceil(capacity) {
            let w = usize::try_from(seq % workers as u64).expect("workers fit usize");
            if worker_current[w] != activation {
                worker_current[w] = activation;
                worker_switch_cycles[w] += switch_stall;
                table_switches += 1;
            }
            worker_nl_cycles[w] += latency;
            seq += 1;
        }
    }
    let switch_cycles: u64 = worker_switch_cycles.iter().sum();
    let makespan_nl_cycles = worker_nl_cycles
        .iter()
        .zip(&worker_switch_cycles)
        .map(|(&c, &s)| c + s)
        .max()
        .unwrap_or(0);
    // The naive single-worker dispatcher pays the same stall model,
    // symmetric with the coalesced path: pre-programmed with the first
    // request's table, it switches at every activation boundary of the
    // arrival order — run grouping is exactly what it lacks.
    let naive_table_switches = requests.windows(2).filter(|w| w[0].0 != w[1].0).count() as u64;
    let naive_nl_cycles = naive_batches * latency + naive_table_switches * switch_stall;
    // The coalesced path's single-worker equivalent for the speedup
    // ratio: one switch per run transition, however many workers the
    // report models (per-pool switch counts scale with workers, which
    // would skew a serial-vs-serial comparison).
    let coalesced_serial_cycles = nl_cycles + (run_activations.len() as u64 - 1) * switch_stall;
    let freq_hz = config.frequency_mhz * 1e6;
    // Wall time is bounded by the busiest worker; energy is not — every
    // batch burns one unit's power for its latency wherever it runs, so
    // the energy integral follows the *serial* cycle sum.
    let nl_seconds = makespan_nl_cycles as f64 / freq_hz;
    let serial_nl_seconds = nl_cycles as f64 / freq_hz;
    let naive_nl_seconds = naive_nl_cycles as f64 / freq_hz;
    // Energy integrates lookup activity only, on both sides — switch
    // stalls cost wall time, not datapath switching energy here.
    let naive_lookup_seconds = (naive_batches * latency) as f64 / freq_hz;
    let matmul_seconds: f64 = requests
        .iter()
        .map(|(_, s)| matmul_runtime(config, s, Dataflow::OutputStationary).seconds)
        .sum();
    let total_seconds = matmul_seconds + nl_seconds;
    let p_approx = approximator_power_mw(tech, config, kind);
    let rate = |seconds: f64| {
        if seconds > 0.0 {
            total_queries as f64 / seconds
        } else {
            0.0
        }
    };
    Ok(MultiStreamReport {
        accelerator: config.name.to_string(),
        approximator: kind.label().to_string(),
        requests: requests.len(),
        workers,
        activations: run_activations.len(),
        total_queries,
        coalesced_batches,
        naive_batches,
        batch_occupancy_pct: if coalesced_batches == 0 {
            0.0
        } else {
            100.0 * total_queries as f64 / (coalesced_batches * capacity) as f64
        },
        nl_cycles,
        worker_nl_cycles,
        worker_switch_cycles,
        table_switches,
        switch_cycles,
        makespan_nl_cycles,
        naive_table_switches,
        naive_nl_cycles,
        matmul_seconds,
        total_seconds,
        inferences_per_second: if total_seconds > 0.0 {
            requests.len() as f64 / total_seconds
        } else {
            0.0
        },
        queries_per_second: rate(nl_seconds),
        naive_queries_per_second: rate(naive_nl_seconds),
        nl_speedup: if coalesced_serial_cycles > 0 {
            naive_nl_cycles as f64 / coalesced_serial_cycles as f64
        } else {
            1.0
        },
        approximator_energy_mj: p_approx * serial_nl_seconds,
        naive_approximator_energy_mj: p_approx * naive_lookup_seconds,
    })
}

/// The analytic view of a fused-softmax trace served as op-graph plans.
///
/// Mirrors [`evaluate_multi_stream`]'s relationship to the single-table
/// runtime: it counts batches, lookups and switch stalls without
/// materializing values, with the exact packing discipline the
/// functional engine uses for fused plans (row-aligned — an attention
/// row never splits across batches, because the reduce stages span it).
#[derive(Debug, Clone, PartialEq)]
pub struct FusedSoftmaxReport {
    /// Host accelerator name.
    pub accelerator: String,
    /// Approximator kind label.
    pub approximator: String,
    /// Concurrent shard workers modeled.
    pub workers: usize,
    /// Attention rows served (zero-width rows excluded).
    pub rows: u64,
    /// Total softmax lanes (the sum of row widths).
    pub total_queries: u64,
    /// Row-aligned batches packed.
    pub batches: u64,
    /// Slot occupancy of those batches (row alignment pads more than
    /// the single-table packer's ragged tails).
    pub batch_occupancy_pct: f64,
    /// Serial lookup cycles: every batch runs the exp *and* the
    /// reciprocal table (two lookup passes).
    pub nl_cycles: u64,
    /// Table re-programs across the pool: two per batch (exp, recip),
    /// minus the boot batch per worker whose exp table is preloaded.
    pub table_switches: u64,
    /// Stall cycles those switches cost — the op-graph headline: zero
    /// on the NOVA NoC, strictly positive on LUT/SDP hardware.
    pub switch_cycles: u64,
    /// `switch_cycles` as a percentage of `nl_cycles` — the per-layer
    /// switch overhead on the fused trace.
    pub switch_overhead_pct: f64,
    /// Busiest worker's cycles, lookups + switch stalls.
    pub makespan_nl_cycles: u64,
    /// Softmax lanes per second at the host clock, over the makespan.
    pub queries_per_second: f64,
}

nova_serde::impl_serde_struct!(FusedSoftmaxReport {
    accelerator,
    approximator,
    workers,
    rows,
    total_queries,
    batches,
    batch_occupancy_pct,
    nl_cycles,
    table_switches,
    switch_cycles,
    switch_overhead_pct,
    makespan_nl_cycles,
    queries_per_second
});

/// Evaluates a fused-softmax trace — one entry per attention row, the
/// row's lane width — served as op-graph plans of `kind` on `config`:
/// rows pack row-aligned into `(routers × neurons)`-slot batches, every
/// batch runs two lookup passes (softmax-exp, then reciprocal) with a
/// table switch before each pass the worker's loaded table doesn't
/// match, and batches round-robin over `workers` shards exactly like
/// the functional admission stage. Workers boot with the exp table
/// loaded (the plan's first lookup), so the first batch on each worker
/// switches once and every later batch twice.
///
/// This is the analytic twin of serving
/// `nova_workloads::traffic::TrafficMix::fused_rows_slate` through a
/// [`crate::serving::Plan::fused_softmax`]-registered engine.
///
/// # Errors
///
/// Returns [`NovaError::BatchShape`] for an empty row slate (or one
/// with only zero-width rows), `workers == 0`, or a row wider than the
/// batch capacity (the functional engine rejects those up front — the
/// reduce stages cannot span batches).
pub fn evaluate_fused_softmax(
    config: &AcceleratorConfig,
    rows: &[u64],
    kind: ApproximatorKind,
    workers: usize,
) -> Result<FusedSoftmaxReport, NovaError> {
    if workers == 0 {
        return Err(NovaError::BatchShape(
            "fused-softmax evaluation needs at least one worker".into(),
        ));
    }
    let capacity = config.total_neurons() as u64;
    let mut row_count = 0u64;
    let mut total_queries = 0u64;
    let mut batches = 0u64;
    let mut fill = 0u64;
    for &width in rows {
        if width == 0 {
            continue;
        }
        if width > capacity {
            return Err(NovaError::BatchShape(format!(
                "fused-softmax row of {width} lanes exceeds the batch capacity {capacity}: \
                 the in-engine reduction cannot span batches"
            )));
        }
        if fill + width > capacity {
            batches += 1;
            fill = 0;
        }
        fill += width;
        row_count += 1;
        total_queries += width;
    }
    batches += u64::from(fill > 0);
    if batches == 0 {
        return Err(NovaError::BatchShape(
            "fused-softmax evaluation needs at least one non-empty row".into(),
        ));
    }
    let latency = kind.batch_latency_cycles();
    // Two lookup passes per batch: the exp table over the scores, the
    // reciprocal table over the broadcast denominators.
    let nl_cycles = batches * 2 * latency;
    let switch_stall = table_switch_cycles(kind, PAPER_TABLE_ENTRIES);
    let mut worker_cycles = vec![0u64; workers];
    let mut worker_booted = vec![false; workers];
    let mut table_switches = 0u64;
    let mut switch_cycles = 0u64;
    for seq in 0..batches {
        let w = usize::try_from(seq % workers as u64).expect("workers fit usize");
        // Boot batch: exp is preloaded, only the recip switch pays.
        // Every later batch re-programs exp *and* recip.
        let switches = if worker_booted[w] { 2 } else { 1 };
        worker_booted[w] = true;
        table_switches += switches;
        switch_cycles += switches * switch_stall;
        worker_cycles[w] += 2 * latency + switches * switch_stall;
    }
    let makespan_nl_cycles = worker_cycles.iter().copied().max().unwrap_or(0);
    let freq_hz = config.frequency_mhz * 1e6;
    let seconds = makespan_nl_cycles as f64 / freq_hz;
    Ok(FusedSoftmaxReport {
        accelerator: config.name.to_string(),
        approximator: kind.label().to_string(),
        workers,
        rows: row_count,
        total_queries,
        batches,
        batch_occupancy_pct: 100.0 * total_queries as f64 / (batches * capacity) as f64,
        nl_cycles,
        table_switches,
        switch_cycles,
        switch_overhead_pct: 100.0 * switch_cycles as f64 / nl_cycles as f64,
        makespan_nl_cycles,
        queries_per_second: if seconds > 0.0 {
            total_queries as f64 / seconds
        } else {
            0.0
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nova_energy_beats_luts_everywhere() {
        for cfg in [
            AcceleratorConfig::tpu_v3_like(),
            AcceleratorConfig::tpu_v4_like(),
        ] {
            for model in BertConfig::fig8_benchmarks() {
                let nova = evaluate(&cfg, &model, 1024, ApproximatorKind::NovaNoc).unwrap();
                let pn = evaluate(&cfg, &model, 1024, ApproximatorKind::PerNeuronLut).unwrap();
                let pc = evaluate(&cfg, &model, 1024, ApproximatorKind::PerCoreLut).unwrap();
                assert!(
                    nova.approximator_energy_mj < pn.approximator_energy_mj,
                    "{} {}",
                    cfg.name,
                    model.name
                );
                assert!(nova.approximator_energy_mj < pc.approximator_energy_mj);
            }
        }
    }

    #[test]
    fn energy_ratio_tracks_power_ratio() {
        // Same latency ⇒ energy ratio == power ratio (the paper's
        // headline arithmetic).
        let cfg = AcceleratorConfig::tpu_v4_like();
        let m = BertConfig::bert_mini();
        let nova = evaluate(&cfg, &m, 1024, ApproximatorKind::NovaNoc).unwrap();
        let pc = evaluate(&cfg, &m, 1024, ApproximatorKind::PerCoreLut).unwrap();
        let e_ratio = pc.approximator_energy_mj / nova.approximator_energy_mj;
        let p_ratio = pc.approximator_power_mw / nova.approximator_power_mw;
        assert!((e_ratio - p_ratio).abs() < 1e-9);
        // Paper: per-core LUT burns ~9.4× NOVA's energy on TPU-v4.
        assert!(e_ratio > 4.0, "per-core/NOVA energy ratio = {e_ratio}");
    }

    #[test]
    fn nova_overhead_is_small_on_tpu_v4() {
        // Paper: "energy overhead of only 0.5%" for NOVA on TPU-v4.
        let cfg = AcceleratorConfig::tpu_v4_like();
        for model in BertConfig::fig8_benchmarks() {
            let r = evaluate(&cfg, &model, 1024, ApproximatorKind::NovaNoc).unwrap();
            assert!(
                r.energy_overhead_pct < 5.0,
                "{}: overhead {}%",
                model.name,
                r.energy_overhead_pct
            );
        }
    }

    #[test]
    fn queries_and_batches_consistent() {
        let cfg = AcceleratorConfig::react();
        let r = evaluate(
            &cfg,
            &BertConfig::bert_tiny(),
            128,
            ApproximatorKind::NovaNoc,
        )
        .unwrap();
        assert_eq!(r.nl_batches, r.nl_queries.div_ceil(2560));
        assert_eq!(r.nl_cycles, 2 * r.nl_batches);
        assert!(r.total_seconds > 0.0);
    }

    #[test]
    fn sdp_pays_its_deeper_pipeline() {
        // The cost model must agree with the functional SdpVectorUnit:
        // 3 cycles per batch vs 2 for NOVA/LUTs.
        let cfg = AcceleratorConfig::jetson_xavier_nx();
        let m = BertConfig::mobilebert_tiny();
        let nova = evaluate(&cfg, &m, 128, ApproximatorKind::NovaNoc).unwrap();
        let sdp = evaluate(&cfg, &m, 128, ApproximatorKind::NvdlaSdp).unwrap();
        assert_eq!(nova.nl_cycles, 2 * nova.nl_batches);
        assert_eq!(sdp.nl_cycles, 3 * sdp.nl_batches);
        assert_eq!(sdp.nl_batches, nova.nl_batches);
    }

    #[test]
    fn zero_seq_len_rejected() {
        let cfg = AcceleratorConfig::react();
        assert!(evaluate(&cfg, &BertConfig::bert_tiny(), 0, ApproximatorKind::NovaNoc).is_err());
    }

    #[test]
    fn cnn_on_jetson_nova_beats_sdp() {
        let cfg = AcceleratorConfig::jetson_xavier_nx();
        for model in nova_workloads::cnn::CnnConfig::table1_models() {
            let nova = evaluate_cnn(&cfg, &model, ApproximatorKind::NovaNoc).unwrap();
            let sdp = evaluate_cnn(&cfg, &model, ApproximatorKind::NvdlaSdp).unwrap();
            assert!(
                nova.approximator_energy_mj < sdp.approximator_energy_mj,
                "{}",
                model.name
            );
            assert!(nova.nl_queries > 0);
        }
    }

    #[test]
    fn multi_stream_coalescing_beats_naive_dispatch() {
        // The serving acceptance criterion on a TPU-v4-like host: with
        // mixed traffic from 8 concurrent streams (one census per
        // request), coalesced batch occupancy exceeds 90% and aggregate
        // throughput beats the sum of naive per-request dispatch.
        let tech = TechModel::cmos22();
        let cfg = AcceleratorConfig::tpu_v4_like();
        let trace = nova_workloads::traffic::TrafficMix::paper_default(8).generate();
        assert!(trace.iter().map(|r| r.stream).max().unwrap() + 1 >= 8);
        let requests: Vec<(Activation, OpCensus)> = trace
            .into_iter()
            .map(|r| (r.activation, r.census))
            .collect();
        let r =
            evaluate_multi_stream(&tech, &cfg, &requests, ApproximatorKind::NovaNoc, 1).unwrap();
        assert!(r.requests >= 8);
        assert_eq!(r.activations, 1);
        assert_eq!((r.table_switches, r.switch_cycles), (0, 0));
        assert!(
            r.batch_occupancy_pct > 90.0,
            "occupancy {}",
            r.batch_occupancy_pct
        );
        assert!(r.coalesced_batches < r.naive_batches);
        assert!(r.queries_per_second > r.naive_queries_per_second);
        assert!(r.nl_speedup > 1.0);
        assert!(r.approximator_energy_mj < r.naive_approximator_energy_mj);
        assert!(r.inferences_per_second > 0.0);
    }

    #[test]
    fn multi_stream_single_stream_degenerates_to_naive() {
        let tech = TechModel::cmos22();
        let cfg = AcceleratorConfig::tpu_v4_like();
        let ops = census(&BertConfig::bert_tiny(), 128);
        let slate = [(Activation::Gelu, ops.clone())];
        let r = evaluate_multi_stream(&tech, &cfg, &slate, ApproximatorKind::NovaNoc, 1).unwrap();
        assert_eq!(r.coalesced_batches, r.naive_batches);
        assert!((r.nl_speedup - 1.0).abs() < 1e-12);
        // And it agrees with the single-shot engine's accounting.
        let single = evaluate_census(
            &tech,
            &cfg,
            "BERT-tiny",
            128,
            &ops,
            ApproximatorKind::NovaNoc,
        )
        .unwrap();
        assert_eq!(r.coalesced_batches, single.nl_batches);
        assert_eq!(r.nl_cycles, single.nl_cycles);
    }

    #[test]
    fn multi_stream_worker_pool_scales_makespan_not_energy() {
        // The analytic counterpart of the serving runtime's thread pool:
        // aggregate stats come from per-worker counters, the makespan is
        // the busiest worker, wall-clock throughput scales with workers,
        // and the energy integral (serial batch·cycles) does not change.
        let tech = TechModel::cmos22();
        let cfg = AcceleratorConfig::tpu_v4_like();
        let requests = nova_workloads::traffic::TrafficMix::paper_default(16).census_slate();
        let one =
            evaluate_multi_stream(&tech, &cfg, &requests, ApproximatorKind::NovaNoc, 1).unwrap();
        let four =
            evaluate_multi_stream(&tech, &cfg, &requests, ApproximatorKind::NovaNoc, 4).unwrap();
        assert_eq!(one.workers, 1);
        assert_eq!(one.worker_nl_cycles, vec![one.nl_cycles]);
        assert_eq!(one.makespan_nl_cycles, one.nl_cycles);
        assert_eq!(four.workers, 4);
        assert_eq!(four.worker_nl_cycles.len(), 4);
        assert_eq!(
            four.worker_nl_cycles.iter().sum::<u64>(),
            four.nl_cycles,
            "per-worker counters must add up to the serial sum"
        );
        assert_eq!(
            four.makespan_nl_cycles,
            *four.worker_nl_cycles.iter().max().unwrap()
        );
        // Round-robin over plenty of batches: ≥ 1.5× wall-clock scaling
        // at 4 workers (the serving acceptance shape), same energy.
        assert!(four.coalesced_batches >= 4);
        assert!(
            four.queries_per_second >= 1.5 * one.queries_per_second,
            "4 workers {} q/s vs 1 worker {} q/s",
            four.queries_per_second,
            one.queries_per_second
        );
        assert!((four.approximator_energy_mj - one.approximator_energy_mj).abs() < 1e-12);
        assert_eq!(four.nl_cycles, one.nl_cycles);
        assert!(four.total_seconds < one.total_seconds);
    }

    #[test]
    fn multi_stream_empty_slate_rejected() {
        let tech = TechModel::cmos22();
        let cfg = AcceleratorConfig::tpu_v4_like();
        assert!(matches!(
            evaluate_multi_stream(&tech, &cfg, &[], ApproximatorKind::NovaNoc, 1),
            Err(NovaError::BatchShape(_))
        ));
        let slate = [(Activation::Gelu, census(&BertConfig::bert_tiny(), 128))];
        assert!(matches!(
            evaluate_multi_stream(&tech, &cfg, &slate, ApproximatorKind::NovaNoc, 0),
            Err(NovaError::BatchShape(_))
        ));
    }

    #[test]
    fn multi_stream_mixed_activations_charge_switch_stalls() {
        // The analytic table-switch model mirrors the functional engine:
        // a 2-activation slate coalesces per run, every worker that
        // serves both runs switches once, and the makespan grows by the
        // per-kind stall — 0 for NOVA, `entries` per switch for LUT
        // banks, more for the SDP.
        let tech = TechModel::cmos22();
        let cfg = AcceleratorConfig::tpu_v4_like();
        let requests = nova_workloads::traffic::TrafficMix::mixed_activations(16).census_slate();
        assert!(requests.iter().any(|(a, _)| *a == Activation::Exp));
        for workers in [1usize, 4] {
            let nova =
                evaluate_multi_stream(&tech, &cfg, &requests, ApproximatorKind::NovaNoc, workers)
                    .unwrap();
            let lut = evaluate_multi_stream(
                &tech,
                &cfg,
                &requests,
                ApproximatorKind::PerNeuronLut,
                workers,
            )
            .unwrap();
            let sdp =
                evaluate_multi_stream(&tech, &cfg, &requests, ApproximatorKind::NvdlaSdp, workers)
                    .unwrap();
            assert_eq!(nova.activations, 2);
            // Same dispatch pattern → same switch count for every kind.
            assert!(nova.table_switches > 0);
            assert_eq!(nova.table_switches, lut.table_switches);
            assert_eq!(lut.table_switches, sdp.table_switches);
            // NOVA re-programs for free; the baselines stall.
            assert_eq!(nova.switch_cycles, 0, "{workers} workers");
            assert_eq!(
                nova.makespan_nl_cycles,
                nova.coalesced_batches.div_ceil(workers as u64)
                    * ApproximatorKind::NovaNoc.batch_latency_cycles(),
                "NOVA's mixed-tenancy makespan is pure batch latency"
            );
            assert!(lut.switch_cycles > 0);
            assert!(sdp.switch_cycles > lut.switch_cycles, "SDP rewrites more");
            let lut_batch_makespan = lut.worker_nl_cycles.iter().copied().max().unwrap();
            assert!(
                lut.makespan_nl_cycles > lut_batch_makespan,
                "LUT makespan must include switch stalls"
            );
            assert_eq!(
                lut.switch_cycles,
                lut.worker_switch_cycles.iter().sum::<u64>()
            );
            // The naive baseline pays the same stall model — a switch at
            // every arrival-order activation boundary, far more than the
            // run-grouped coalesced path — so the comparison is
            // symmetric and run grouping is what nl_speedup rewards.
            assert!(
                lut.naive_table_switches > lut.activations as u64,
                "interleaved arrivals must out-switch run grouping \
                 ({} naive switches)",
                lut.naive_table_switches
            );
            assert_eq!(nova.naive_table_switches, lut.naive_table_switches);
            assert_eq!(
                lut.naive_nl_cycles,
                lut.naive_batches * ApproximatorKind::PerNeuronLut.batch_latency_cycles()
                    + lut.naive_table_switches
                        * table_switch_cycles(ApproximatorKind::PerNeuronLut, 16),
                "naive cycles include the switch stalls"
            );
            assert_eq!(
                nova.naive_nl_cycles,
                nova.naive_batches * ApproximatorKind::NovaNoc.batch_latency_cycles(),
                "NOVA's naive path pays no stall either"
            );
        }
        // And the run-grouped coalescing still beats naive dispatch.
        let r =
            evaluate_multi_stream(&tech, &cfg, &requests, ApproximatorKind::NovaNoc, 1).unwrap();
        assert!(r.coalesced_batches < r.naive_batches);
    }

    #[test]
    fn sdp_costs_more_than_nova_on_jetson() {
        let cfg = AcceleratorConfig::jetson_xavier_nx();
        let m = BertConfig::mobilebert_tiny();
        let nova = evaluate(&cfg, &m, 128, ApproximatorKind::NovaNoc).unwrap();
        let sdp = evaluate(&cfg, &m, 128, ApproximatorKind::NvdlaSdp).unwrap();
        assert!(sdp.approximator_power_mw > 3.0 * nova.approximator_power_mw);
    }

    #[test]
    fn fused_softmax_model_packs_row_aligned_and_charges_double_switches() {
        let cfg = AcceleratorConfig::tpu_v4_like();
        let capacity = cfg.total_neurons() as u64;
        // Three rows that force a seal (two fit, the third spills) plus
        // a zero-width row that must be skipped.
        let rows = [capacity - 4, 3, capacity, 0];
        let r = evaluate_fused_softmax(&cfg, &rows, ApproximatorKind::NovaNoc, 1).unwrap();
        assert_eq!(r.rows, 3);
        assert_eq!(r.batches, 2, "row-aligned packing: [cap-4, 3], [cap]");
        assert_eq!(r.total_queries, 2 * capacity - 1);
        assert_eq!(
            r.nl_cycles,
            2 * 2 * ApproximatorKind::NovaNoc.batch_latency_cycles(),
            "two lookup passes per batch"
        );
        // Boot batch switches once (exp preloaded), the second twice.
        assert_eq!(r.table_switches, 3);
        assert_eq!(r.switch_cycles, 0);
        assert_eq!(r.switch_overhead_pct, 0.0, "NOVA's fused trace is free");
        // The same trace on LUT/SDP hardware pays strictly positive
        // overhead — the op-graph acceptance criterion.
        let lut = evaluate_fused_softmax(&cfg, &rows, ApproximatorKind::PerCoreLut, 1).unwrap();
        let sdp = evaluate_fused_softmax(&cfg, &rows, ApproximatorKind::NvdlaSdp, 1).unwrap();
        assert_eq!(lut.table_switches, 3, "same dispatch, same switches");
        assert!(lut.switch_overhead_pct > 0.0);
        assert!(sdp.switch_overhead_pct > lut.switch_overhead_pct);
        assert!(
            lut.makespan_nl_cycles > lut.nl_cycles - 1,
            "stalls included"
        );
        // Workers split the makespan but boot one exp table each.
        let two = evaluate_fused_softmax(&cfg, &rows, ApproximatorKind::PerCoreLut, 2).unwrap();
        assert_eq!(two.table_switches, 2, "each worker boots with exp");
        assert!(two.makespan_nl_cycles < lut.makespan_nl_cycles);
    }

    #[test]
    fn fused_softmax_model_rejects_bad_slates() {
        let cfg = AcceleratorConfig::tpu_v4_like();
        let capacity = cfg.total_neurons() as u64;
        for (rows, workers) in [
            (vec![4u64], 0usize),
            (vec![], 1),
            (vec![0], 1),
            (vec![capacity + 1], 1),
        ] {
            assert!(
                matches!(
                    evaluate_fused_softmax(&cfg, &rows, ApproximatorKind::NovaNoc, workers),
                    Err(NovaError::BatchShape(_))
                ),
                "{rows:?} x{workers}"
            );
        }
    }

    #[test]
    fn fused_trace_from_traffic_mix_evaluates() {
        let rows = nova_workloads::traffic::TrafficMix::fused_attention(8).fused_rows_slate();
        assert!(!rows.is_empty());
        let cfg = AcceleratorConfig::tpu_v4_like();
        let r = evaluate_fused_softmax(&cfg, &rows, ApproximatorKind::NovaNoc, 4).unwrap();
        assert_eq!(r.rows, rows.len() as u64);
        assert!(r.batch_occupancy_pct > 0.0 && r.batch_occupancy_pct <= 100.0);
        assert!(r.queries_per_second > 0.0);
    }
}
