//! The multi-stream serving layer: a concurrent worker-pool runtime for
//! batched non-linear query serving across many inference streams.
//!
//! Single-shot evaluation (one caller, one table, one batch at a time)
//! wastes the vector unit twice: every caller refits and requantizes its
//! own table, and partial batches leave `(routers × neurons)` grid slots
//! idle. This module amortizes both — and since PR 3 it does so on a
//! real multi-threaded pipeline instead of a synchronous loop:
//!
//! - [`TableCache`] memoizes fitted+quantized tables behind an
//!   [`Arc`], keyed by everything that determines the bits —
//!   `(activation, breakpoints, format, rounding)`. The cache is an
//!   interior-mutability design (`RwLock` map behind a shared handle):
//!   `get_or_fit` takes `&self`, clones share one store, and two threads
//!   racing to fit the same key converge on a single table allocation
//!   (the loser's fit is discarded and counted in
//!   [`TableCache::lost_races`]).
//! - [`ServingEngine`] is a three-stage concurrent runtime built only on
//!   `std`:
//!   1. an **admission/coalescing** stage that packs the queries of many
//!      concurrent streams, in arrival order, into full
//!      `(routers × neurons)` batches and feeds them to shard workers
//!      over *bounded* `mpsc` channels — a worker that falls behind
//!      exerts backpressure on admission instead of queueing unboundedly;
//!   2. a pool of **shard workers**, each a real [`std::thread`] owning
//!      its own `Box<dyn VectorUnit>` (the trait is `Send`), receiving
//!      sequence-numbered batches round-robin and evaluating them in
//!      parallel;
//!   3. a **reorder/scatter** stage that reassembles completed batches
//!      by sequence number and scatters results back per request, so the
//!      parallel output is bit-identical to the sequential path for any
//!      worker count.
//!
//! Since PR 4 the data plane is **flat and zero-copy**: batches travel as
//! contiguous [`nova_fixed::FixedBatch`] grids evaluated through
//! [`VectorUnit::lookup_batch_into`], jobs carry recyclable
//! input/output buffer pairs, and completions return those pairs to an
//! engine-owned pool — once the pipeline has warmed up, steady-state
//! serving performs zero per-batch heap allocations
//! ([`ServingEngine::buffers_created`] stays constant).
//!
//! Only the tail batch is padded (with an in-domain value whose results
//! are dropped on scatter), so batch occupancy approaches 100 % as
//! offered load grows — which is exactly what the paper's per-batch
//! latency model rewards: the same 2-cycle lookup+MAC now serves
//! `routers × neurons` queries from *different* tenants, on as many
//! shards as the host exposes.
//!
//! Aggregate accounting ([`ServingEngine::stats`]) is gathered from
//! per-worker counters ([`ServingEngine::worker_loads`]): each shard
//! tracks its own batches, queries and accumulated latency, and the
//! pool's makespan is the busiest shard's total.
//!
//! # Error semantics
//!
//! A slate is dispatched batch-by-batch to the pool; every batch that
//! evaluates successfully is counted in the per-worker counters, and on
//! failure `serve` returns the *lowest-sequence* error — deterministic
//! regardless of worker timing. A failed slate counts no requests.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use nova::serving::{ServingEngine, ServingRequest, TableCache, TableKey};
//! use nova::ApproximatorKind;
//! use nova_approx::Activation;
//! use nova_fixed::{Fixed, Rounding, Q4_12};
//! use nova_noc::LineConfig;
//!
//! # fn main() -> Result<(), nova::NovaError> {
//! let cache = TableCache::new();
//! let table = cache.get_or_fit(TableKey::paper(Activation::Gelu))?;
//! // Two shard workers: two OS threads, each owning a NOVA NoC unit.
//! let mut engine = ServingEngine::new(
//!     ApproximatorKind::NovaNoc, LineConfig::paper_default(4, 8), table, 2)?;
//! let x = Fixed::from_f64(0.5, Q4_12, Rounding::NearestEven);
//! let outputs = engine.serve(&[ServingRequest { stream: 0, inputs: vec![x; 3] }])?;
//! assert_eq!(outputs[0].len(), 3);
//! assert_eq!(outputs[0][0], engine.table().eval(x));
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender};
use std::sync::{mpsc, Arc, RwLock};
use std::thread::JoinHandle;

use nova_accel::config::AcceleratorConfig;
use nova_approx::{fit, Activation, QuantizedPwl};
use nova_fixed::{Fixed, FixedBatch, QFormat, Rounding, Q4_12};
use nova_noc::{LineConfig, LinkConfig};
use nova_synth::TechModel;

use crate::vector_unit::{build, line_for_kind, HostGeometry};
use crate::{ApproximatorKind, NovaError};

/// Everything that determines a quantized table's bits — the cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableKey {
    /// The approximated activation.
    pub activation: Activation,
    /// Breakpoint count of the PWL fit.
    pub breakpoints: usize,
    /// Fixed-point word format.
    pub format: QFormat,
    /// Rounding mode for quantization and the MAC output.
    pub rounding: Rounding,
}

impl TableKey {
    /// The paper's defaults: 16 breakpoints in Q4.12 with round-to-
    /// nearest-even.
    #[must_use]
    pub fn paper(activation: Activation) -> Self {
        Self {
            activation,
            breakpoints: 16,
            format: Q4_12,
            rounding: Rounding::NearestEven,
        }
    }
}

/// Shared state behind a [`TableCache`] handle.
#[derive(Debug, Default)]
struct CacheInner {
    tables: RwLock<HashMap<TableKey, Arc<QuantizedPwl>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    lost_races: AtomicU64,
}

/// A keyed, thread-shared cache of fitted+quantized tables.
///
/// Fitting a PWL and quantizing it is the expensive, data-independent
/// prefix of every evaluation; the cache does it once per key and hands
/// out [`Arc`] clones, so a cache hit is a pointer copy and every engine
/// serving the same operator shares one allocation.
///
/// The cache itself is a cheap shared handle: [`Clone`] clones the
/// handle, not the store, so engines and worker threads observe one
/// cache. [`get_or_fit`](Self::get_or_fit) takes `&self` — lookups take
/// a read lock, and a miss fits *outside* any lock before taking the
/// write lock to insert. When two threads race to fit the same key, the
/// insert path detects the lost race, discards the duplicate fit and
/// returns the winner's [`Arc`], so all callers converge on one table
/// allocation.
#[derive(Debug, Clone, Default)]
pub struct TableCache {
    inner: Arc<CacheInner>,
}

impl TableCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached table for `key`, fitting and quantizing it on
    /// first use. Hits return the *same* `Arc` (pointer-equal) — even
    /// when concurrent callers raced to fit the key.
    ///
    /// # Errors
    ///
    /// Propagates PWL fitting / quantization failures.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned (a fitter thread panicked).
    pub fn get_or_fit(&self, key: TableKey) -> Result<Arc<QuantizedPwl>, NovaError> {
        if let Some(table) = self
            .inner
            .tables
            .read()
            .expect("table cache lock poisoned")
            .get(&key)
        {
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(table));
        }
        // Miss: fit outside any lock so concurrent fitters of *different*
        // keys never serialize on the expensive part.
        let pwl = fit::fit_activation(
            key.activation,
            key.breakpoints,
            fit::BreakpointStrategy::Uniform,
        )?;
        let table = Arc::new(QuantizedPwl::from_pwl(&pwl, key.format, key.rounding)?);
        let mut tables = self
            .inner
            .tables
            .write()
            .expect("table cache lock poisoned");
        if let Some(winner) = tables.get(&key) {
            // Lost the race: another thread fitted and inserted the same
            // key while we fitted. Converge on its allocation.
            self.inner.lost_races.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(winner));
        }
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        tables.insert(key, Arc::clone(&table));
        Ok(table)
    }

    /// Cache hits served so far (fast-path read hits).
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (tables fitted and inserted) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Fits discarded after losing an insert race to a concurrent fitter
    /// of the same key. Always 0 under single-threaded use.
    #[must_use]
    pub fn lost_races(&self) -> u64 {
        self.inner.lost_races.load(Ordering::Relaxed)
    }

    /// Distinct tables held.
    ///
    /// # Panics
    ///
    /// Panics if the cache lock was poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .tables
            .read()
            .expect("table cache lock poisoned")
            .len()
    }

    /// Whether the cache holds no tables yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One non-linear query burst from one inference stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingRequest {
    /// Stream (tenant) id — used only for per-stream gather.
    pub stream: usize,
    /// Raw query values in the engine table's fixed format.
    pub inputs: Vec<Fixed>,
}

/// Accounting of a [`ServingEngine`], accumulated across `serve` calls.
///
/// Assembled by [`ServingEngine::stats`] from the per-worker counters
/// ([`ServingEngine::worker_loads`]): `queries`, `batches` and
/// `latency_cycles` are sums over the shard workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServingStats {
    /// Requests served to completion (slates that returned an error
    /// count their dispatched batches/queries below, but no requests).
    pub requests: u64,
    /// Individual queries served (excludes padding).
    pub queries: u64,
    /// Vector-unit batches dispatched.
    pub batches: u64,
    /// Grid slots filled with padding (tail batches only).
    pub padded_slots: u64,
    /// Accumulated per-batch latency over all dispatched batches, in
    /// accelerator cycles — the *serial* sum across the whole pool; see
    /// [`ServingEngine::makespan_cycles`] for the concurrent-shards
    /// view.
    pub latency_cycles: u64,
}

nova_serde::impl_serde_struct!(ServingStats {
    requests,
    queries,
    batches,
    padded_slots,
    latency_cycles,
});

/// Per-shard-worker accounting: what one worker thread served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerLoad {
    /// Batches this worker evaluated successfully.
    pub batches: u64,
    /// Real (non-padded) queries in those batches.
    pub queries: u64,
    /// Accumulated per-batch latency, in accelerator cycles.
    pub cycles: u64,
}

nova_serde::impl_serde_struct!(WorkerLoad {
    batches,
    queries,
    cycles,
});

/// A sequence-numbered batch on its way to a shard worker: one flat
/// input grid plus the recyclable output buffer the worker writes into.
struct BatchJob {
    seq: usize,
    inputs: FixedBatch,
    out: FixedBatch,
}

/// A completed batch on its way back to the reorder stage. Both buffers
/// ride along so the engine can return them to its recycling pool after
/// scatter — on success *and* on failure.
struct BatchDone {
    seq: usize,
    worker: usize,
    latency: u64,
    inputs: FixedBatch,
    out: FixedBatch,
    result: Result<(), NovaError>,
}

/// Bounded depth of each worker's feed channel: admission blocks once a
/// shard is this many batches behind, so a slow worker backpressures the
/// coalescing stage instead of queueing the whole slate.
const WORKER_FEED_DEPTH: usize = 2;

/// The concurrent multi-stream serving engine.
///
/// Owns a pool of shard worker *threads* — one per shard, each holding a
/// functionally identical `Box<dyn VectorUnit>` built from one shared
/// table — plus the admission and reorder stages that feed them (see the
/// [module docs](self) for the pipeline). Because every unit kind is
/// bit-identical to the table and batches are reassembled by sequence
/// number, shard count and threading never change results — only
/// throughput accounting.
pub struct ServingEngine {
    kind: ApproximatorKind,
    table: Arc<QuantizedPwl>,
    routers: usize,
    neurons: usize,
    /// Bounded feed channel per shard worker (round-robin by sequence).
    feeds: Vec<SyncSender<BatchJob>>,
    /// Completion channel shared by all workers.
    done_rx: Receiver<BatchDone>,
    handles: Vec<JoinHandle<()>>,
    /// Per-worker counters; aggregate stats are derived from these.
    loads: Vec<WorkerLoad>,
    /// Round-robin cursor, persistent across `serve` calls so repeated
    /// small slates still spread over every shard.
    next_worker: usize,
    requests_served: u64,
    padded_slots: u64,
    /// Recycling pool of `(inputs, outputs)` batch-buffer pairs. Jobs pop
    /// a pair on admission and completions return it after scatter, so a
    /// steady-state serve loop performs zero per-batch heap allocations.
    spare: Vec<(FixedBatch, FixedBatch)>,
    /// Buffer pairs minted because the pool ran dry — grows while the
    /// pipeline warms up, then stays constant (the allocation-free
    /// steady-state invariant the recycling test asserts).
    buffers_created: u64,
    /// Arrival-queue scratch, reused across `serve` calls.
    queue: Vec<(usize, Fixed)>,
    /// Reorder-stage scratch, reused across `serve` calls.
    reorder: Vec<Option<BatchDone>>,
}

impl std::fmt::Debug for ServingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingEngine")
            .field("kind", &self.kind)
            .field("shards", &self.feeds.len())
            .field("routers", &self.routers)
            .field("neurons", &self.neurons)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl ServingEngine {
    /// Builds an engine with `shards` parallel worker threads of `kind`
    /// on `line`. Every worker owns its own vector unit; all units are
    /// built (and any construction error surfaced) before any thread
    /// spawns.
    ///
    /// # Errors
    ///
    /// Returns [`NovaError::BatchShape`] for `shards == 0`,
    /// [`NovaError::Runtime`] if a worker thread cannot spawn, and
    /// propagates unit construction failures.
    pub fn new(
        kind: ApproximatorKind,
        line: LineConfig,
        table: Arc<QuantizedPwl>,
        shards: usize,
    ) -> Result<Self, NovaError> {
        if shards == 0 {
            return Err(NovaError::BatchShape(
                "serving engine needs at least one worker shard".into(),
            ));
        }
        let units = (0..shards)
            .map(|_| build(kind, line, &table))
            .collect::<Result<Vec<_>, _>>()?;
        let (done_tx, done_rx) = mpsc::channel::<BatchDone>();
        let mut feeds = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for (id, mut unit) in units.into_iter().enumerate() {
            let (feed_tx, feed_rx) = mpsc::sync_channel::<BatchJob>(WORKER_FEED_DEPTH);
            let done = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("nova-serve-{id}"))
                .spawn(move || {
                    // The worker loop: exits when the engine drops its
                    // feed sender (or the reorder stage hung up). The
                    // flat buffers travel with the job and back with the
                    // completion — the worker itself allocates nothing.
                    while let Ok(job) = feed_rx.recv() {
                        let BatchJob {
                            seq,
                            inputs,
                            mut out,
                        } = job;
                        let result = unit.lookup_batch_into(&inputs, &mut out);
                        let latency = unit.latency_cycles();
                        if done
                            .send(BatchDone {
                                seq,
                                worker: id,
                                latency,
                                inputs,
                                out,
                                result,
                            })
                            .is_err()
                        {
                            break;
                        }
                    }
                })
                .map_err(|e| NovaError::Runtime(format!("spawning shard worker {id}: {e}")))?;
            feeds.push(feed_tx);
            handles.push(handle);
        }
        // Workers hold the only completion senders: if every worker dies,
        // the reorder stage sees a disconnect instead of hanging.
        drop(done_tx);
        Ok(Self {
            kind,
            table,
            routers: line.routers,
            neurons: line.neurons_per_router,
            feeds,
            done_rx,
            handles,
            loads: vec![WorkerLoad::default(); shards],
            next_worker: 0,
            requests_served: 0,
            padded_slots: 0,
            spare: Vec::new(),
            buffers_created: 0,
            queue: Vec::new(),
            reorder: Vec::new(),
        })
    }

    /// Builds an engine for a Table II host, pulling the table through
    /// `cache` (so a second engine for the same key shares it) and
    /// deriving the line geometry exactly as the overlay does.
    ///
    /// # Errors
    ///
    /// Propagates table fitting and NoC configuration failures.
    pub fn for_host(
        kind: ApproximatorKind,
        tech: &TechModel,
        config: &AcceleratorConfig,
        cache: &TableCache,
        key: TableKey,
        shards: usize,
    ) -> Result<Self, NovaError> {
        let table = cache.get_or_fit(key)?;
        let line = line_for_kind(
            kind,
            tech,
            &table,
            LinkConfig::paper(),
            HostGeometry::of(config),
        )?;
        Self::new(kind, line, table, shards)
    }

    /// The approximator hardware serving this engine.
    #[must_use]
    pub fn kind(&self) -> ApproximatorKind {
        self.kind
    }

    /// The shared quantized table.
    #[must_use]
    pub fn table(&self) -> &QuantizedPwl {
        &self.table
    }

    /// Worker shards (threads) in the pool.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.feeds.len()
    }

    /// Queries one full batch serves: `routers × neurons_per_router`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.routers * self.neurons
    }

    /// Accumulated accounting, assembled from the per-worker counters.
    #[must_use]
    pub fn stats(&self) -> ServingStats {
        let mut stats = ServingStats {
            requests: self.requests_served,
            padded_slots: self.padded_slots,
            ..ServingStats::default()
        };
        for load in &self.loads {
            stats.batches += load.batches;
            stats.queries += load.queries;
            stats.latency_cycles += load.cycles;
        }
        stats
    }

    /// Per-worker accounting: what each shard thread served so far.
    #[must_use]
    pub fn worker_loads(&self) -> &[WorkerLoad] {
        &self.loads
    }

    /// Batch-buffer pairs minted since construction. Grows while the
    /// recycling pool warms up (first slate, or a deeper slate than any
    /// before), then stays constant: a steady-state serve loop pops every
    /// buffer from the pool and returns it after scatter, performing zero
    /// per-batch heap allocations. The capacity-stability test pins this
    /// invariant.
    #[must_use]
    pub fn buffers_created(&self) -> u64 {
        self.buffers_created
    }

    /// Buffer pairs currently parked in the recycling pool (all of them,
    /// between `serve` calls).
    #[must_use]
    pub fn buffer_pool_len(&self) -> usize {
        self.spare.len()
    }

    /// Batch occupancy so far (%): queries served over grid slots
    /// dispatched. 100 % means every dispatched batch was full; before
    /// the first `serve` call (zero batches) this is 0, not NaN.
    #[must_use]
    pub fn occupancy_pct(&self) -> f64 {
        let stats = self.stats();
        let slots = stats.batches * self.capacity() as u64;
        if slots == 0 {
            0.0
        } else {
            100.0 * stats.queries as f64 / slots as f64
        }
    }

    /// The pool's makespan in accelerator cycles: shards serve their
    /// batches concurrently, so the slowest (busiest) worker's
    /// accumulated latency bounds the wall clock. With one shard this
    /// equals [`ServingStats::latency_cycles`]; with `k` evenly loaded
    /// shards it approaches `latency_cycles / k`. Zero before the first
    /// `serve` call.
    #[must_use]
    pub fn makespan_cycles(&self) -> u64 {
        self.loads.iter().map(|l| l.cycles).max().unwrap_or(0)
    }

    /// Aggregate query throughput so far at a `core_ghz` clock
    /// (queries/s): queries served over the pool's parallel makespan
    /// ([`makespan_cycles`](Self::makespan_cycles)), so adding shards
    /// raises throughput even though per-batch latency is unchanged.
    /// Zero (not NaN) before the first `serve` call.
    #[must_use]
    pub fn queries_per_second(&self, core_ghz: f64) -> f64 {
        let makespan = self.makespan_cycles();
        if makespan == 0 {
            0.0
        } else {
            let seconds = makespan as f64 / (core_ghz * 1e9);
            self.stats().queries as f64 / seconds
        }
    }

    /// Serves a slate of requests from many concurrent streams through
    /// the worker pool.
    ///
    /// The admission stage coalesces queries in arrival order (request
    /// order, then query order within a request) into full
    /// `(routers × neurons)` batches — only the tail batch is padded,
    /// with an in-domain value whose outputs are dropped — and feeds
    /// them round-robin to the shard workers over bounded channels
    /// (backpressure, not unbounded queueing). The reorder stage then
    /// reassembles completed batches by sequence number and scatters
    /// results back per request, aligned with `requests` —
    /// bit-identical to evaluating each query through
    /// [`QuantizedPwl::eval`] alone, for any worker count.
    ///
    /// # Errors
    ///
    /// Propagates worker failures (e.g. format mismatches); the batch
    /// shape itself is constructed here and always valid. The whole
    /// slate is dispatched before results are judged, so on failure the
    /// per-worker counters reflect exactly the batches that evaluated
    /// successfully (their queries included) — never the failed ones —
    /// and the error returned is the lowest-sequence failure, making
    /// the outcome deterministic for any worker count. A failed slate
    /// counts no requests.
    ///
    /// # Panics
    ///
    /// Panics if a shard worker thread died (a unit panic — a bug, not
    /// a data condition; malformed inputs surface as `Err` instead).
    pub fn serve(&mut self, requests: &[ServingRequest]) -> Result<Vec<Vec<Fixed>>, NovaError> {
        let capacity = self.capacity();
        let shards = self.feeds.len();
        let total: usize = requests.iter().map(|r| r.inputs.len()).sum();
        let mut outputs: Vec<Vec<Fixed>> = requests
            .iter()
            .map(|r| Vec::with_capacity(r.inputs.len()))
            .collect();
        if total == 0 {
            self.requests_served += requests.len() as u64;
            return Ok(outputs);
        }

        // Arrival-ordered flat queue of (request index, query value) —
        // engine-owned scratch whose allocation persists across calls.
        let mut queue = std::mem::take(&mut self.queue);
        queue.clear();
        queue.reserve(total);
        for (ri, request) in requests.iter().enumerate() {
            queue.extend(request.inputs.iter().map(|&x| (ri, x)));
        }

        // ---- Admission: pack and feed sequence-numbered batches. ----
        // The pad value is in-domain by construction (the lower clamp
        // bound), so padded lanes can never fault; their outputs are
        // simply never scattered anywhere. Batch buffers come from the
        // recycling pool: once the pipeline has warmed up, admission
        // performs zero per-batch heap allocations.
        let pad = self.table.clamp_bounds().0;
        let batches = total.div_ceil(capacity);
        let mut done = std::mem::take(&mut self.reorder);
        done.clear();
        done.resize_with(batches, || None);
        let mut received = 0usize;
        for (seq, chunk) in queue.chunks(capacity).enumerate() {
            let (mut inputs, out) = match self.spare.pop() {
                Some(pair) => pair,
                None => {
                    self.buffers_created += 1;
                    (
                        FixedBatch::new(self.routers, self.neurons, pad),
                        FixedBatch::new(self.routers, self.neurons, pad),
                    )
                }
            };
            // Pool-recycled buffers already carry the engine grid; only a
            // freshly minted (or foreign) buffer needs reshaping.
            if inputs.dims() != (self.routers, self.neurons) {
                inputs.reset(self.routers, self.neurons, pad);
            }
            // Row-major copy into the flat grid: payload into the prefix,
            // pad only the tail slots (none, for a full batch).
            let slots = inputs.as_mut_slice();
            slots[..chunk.len()]
                .iter_mut()
                .zip(chunk)
                .for_each(|(slot, &(_, x))| *slot = x);
            slots[chunk.len()..].fill(pad);
            // Drain finished batches opportunistically so the completion
            // channel stays small while admission is still feeding.
            while let Ok(d) = self.done_rx.try_recv() {
                let seq = d.seq;
                done[seq] = Some(d);
                received += 1;
            }
            // Round-robin dispatch from the persistent cursor; blocks
            // (backpressure) once the target worker is
            // `WORKER_FEED_DEPTH` batches behind.
            self.feeds[(self.next_worker + seq) % shards]
                .send(BatchJob { seq, inputs, out })
                .expect("shard worker thread died mid-slate");
        }
        self.next_worker = (self.next_worker + batches) % shards;
        while received < batches {
            let d = self
                .done_rx
                .recv()
                .expect("shard worker thread died mid-slate");
            let seq = d.seq;
            done[seq] = Some(d);
            received += 1;
        }

        // ---- Reorder/scatter: walk completions in sequence order. ----
        let mut failure: Option<NovaError> = None;
        for (seq, chunk) in queue.chunks(capacity).enumerate() {
            let d = done[seq].take().expect("every dispatched batch completed");
            let BatchDone {
                worker,
                latency,
                inputs,
                out,
                result,
                ..
            } = d;
            match result {
                Ok(()) => {
                    let load = &mut self.loads[worker];
                    load.batches += 1;
                    load.queries += chunk.len() as u64;
                    load.cycles += latency;
                    self.padded_slots += (capacity - chunk.len()) as u64;
                    if failure.is_none() {
                        // Flat scatter: slot k of the grid is query k of
                        // the chunk — no row arithmetic, one indexed copy.
                        let flat = out.as_slice();
                        for (&(ri, _), &y) in chunk.iter().zip(flat) {
                            outputs[ri].push(y);
                        }
                    }
                }
                Err(e) => {
                    if failure.is_none() {
                        failure = Some(e);
                    }
                }
            }
            // Success or failure, the buffers return to the pool.
            self.spare.push((inputs, out));
        }
        queue.clear();
        self.queue = queue;
        self.reorder = done;
        if let Some(e) = failure {
            return Err(e);
        }
        // Only a fully served slate counts its requests: on an error the
        // batch/query counters above reflect the work that evaluated,
        // but no request was answered in full.
        self.requests_served += requests.len() as u64;
        Ok(outputs)
    }

    /// The sequential reference path: evaluates `requests` through the
    /// shared table alone, batch by batch, reusing two scratch buffers
    /// across batches (via [`QuantizedPwl::eval_into`]) instead of
    /// allocating per batch. [`serve`](Self::serve) must be
    /// bit-identical to this for any worker count — the determinism
    /// tests and the CI checksum smoke assert exactly that.
    ///
    /// Does not touch the worker pool or any counter.
    ///
    /// # Panics
    ///
    /// Panics if an input word is not in the table's format (the same
    /// wiring-bug condition as [`QuantizedPwl::eval`]).
    #[must_use]
    pub fn serve_reference(&self, requests: &[ServingRequest]) -> Vec<Vec<Fixed>> {
        let capacity = self.capacity();
        let mut outputs: Vec<Vec<Fixed>> = requests
            .iter()
            .map(|r| Vec::with_capacity(r.inputs.len()))
            .collect();
        let mut queue: Vec<(usize, Fixed)> = Vec::new();
        for (ri, request) in requests.iter().enumerate() {
            queue.extend(request.inputs.iter().map(|&x| (ri, x)));
        }
        // Steady-state batches reuse these two buffers — no per-batch
        // allocation in the hot loop.
        let mut values: Vec<Fixed> = Vec::with_capacity(capacity);
        let mut results: Vec<Fixed> = Vec::with_capacity(capacity);
        for chunk in queue.chunks(capacity) {
            values.clear();
            values.extend(chunk.iter().map(|&(_, x)| x));
            self.table.eval_into(&values, &mut results);
            for (&(ri, _), &y) in chunk.iter().zip(&results) {
                outputs[ri].push(y);
            }
        }
        outputs
    }
}

impl Drop for ServingEngine {
    fn drop(&mut self) {
        // Hang up the feed channels so worker loops exit, then reap the
        // threads. Completions still in flight are dropped with done_rx.
        self.feeds.clear();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Gathers per-request outputs into per-stream result vectors,
/// concatenated in arrival order — the "scatter back per stream" view of
/// a [`ServingEngine::serve`] result.
///
/// # Panics
///
/// Panics if `outputs` is not aligned with `requests` (wrong length).
#[must_use]
pub fn gather_by_stream(
    requests: &[ServingRequest],
    outputs: &[Vec<Fixed>],
) -> HashMap<usize, Vec<Fixed>> {
    assert_eq!(
        requests.len(),
        outputs.len(),
        "outputs must align with requests"
    );
    let mut streams: HashMap<usize, Vec<Fixed>> = HashMap::new();
    for (request, out) in requests.iter().zip(outputs) {
        streams.entry(request.stream).or_default().extend(out);
    }
    streams
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_fixed::rng::StdRng;

    fn fixed(x: f64) -> Fixed {
        Fixed::from_f64(x, Q4_12, Rounding::NearestEven)
    }

    /// Odd-sized per-stream bursts so batches never align with request
    /// boundaries.
    fn requests(streams: usize, queries_per_stream: usize, seed: u64) -> Vec<ServingRequest> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..streams)
            .map(|stream| ServingRequest {
                stream,
                inputs: (0..queries_per_stream)
                    .map(|_| fixed(rng.gen_range(-6.0..6.0)))
                    .collect(),
            })
            .collect()
    }

    fn engine(kind: ApproximatorKind, routers: usize, neurons: usize) -> ServingEngine {
        engine_with_workers(kind, routers, neurons, 1)
    }

    fn engine_with_workers(
        kind: ApproximatorKind,
        routers: usize,
        neurons: usize,
        workers: usize,
    ) -> ServingEngine {
        let cache = TableCache::new();
        let table = cache.get_or_fit(TableKey::paper(Activation::Gelu)).unwrap();
        ServingEngine::new(
            kind,
            LineConfig::paper_default(routers, neurons),
            table,
            workers,
        )
        .unwrap()
    }

    #[test]
    fn cache_hits_return_the_same_arc() {
        let cache = TableCache::new();
        let key = TableKey::paper(Activation::Gelu);
        let a = cache.get_or_fit(key).unwrap();
        let b = cache.get_or_fit(key).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must share the allocation");
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));

        // A different key is a different table.
        let c = cache.get_or_fit(TableKey::paper(Activation::Exp)).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 2, 2));

        // Any key component change misses: same activation, other format.
        let other = TableKey {
            rounding: Rounding::Floor,
            ..key
        };
        let d = cache.get_or_fit(other).unwrap();
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.lost_races(), 0, "no concurrency, no races");
    }

    #[test]
    fn cache_clones_share_one_store_across_threads() {
        // The interior-mutability contract: clones are handles onto one
        // store, `get_or_fit` needs only `&self`, and concurrent fitters
        // of the same key converge on a single Arc. With threads racing,
        // every fit beyond the winner's is either a read hit or a lost
        // race — never a second inserted table.
        let cache = TableCache::new();
        let key = TableKey::paper(Activation::Gelu);
        let fitters = 4;
        let tables: Vec<Arc<QuantizedPwl>> = std::thread::scope(|scope| {
            let threads: Vec<_> = (0..fitters)
                .map(|_| {
                    let cache = cache.clone();
                    scope.spawn(move || cache.get_or_fit(key).unwrap())
                })
                .collect();
            threads.into_iter().map(|t| t.join().unwrap()).collect()
        });
        for table in &tables {
            assert!(
                Arc::ptr_eq(&tables[0], table),
                "all threads must share one allocation"
            );
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1, "exactly one fit won the insert");
        assert_eq!(
            cache.hits() + cache.misses() + cache.lost_races(),
            fitters as u64,
            "every call accounted exactly once"
        );
    }

    #[test]
    fn multi_stream_results_bit_identical_to_table_eval() {
        // The acceptance criterion: scatter/gather through coalesced
        // multi-tenant batches must equal a dedicated per-query eval.
        for kind in ApproximatorKind::all() {
            let mut eng = engine(kind, 4, 8);
            let reqs = requests(8, 37, 1);
            let outputs = eng.serve(&reqs).unwrap();
            for (request, out) in reqs.iter().zip(&outputs) {
                assert_eq!(out.len(), request.inputs.len());
                for (&x, &y) in request.inputs.iter().zip(out) {
                    assert_eq!(y, eng.table().eval(x), "{kind:?} stream {}", request.stream);
                }
            }
        }
    }

    #[test]
    fn multi_stream_matches_single_stream_serving() {
        // Serving all streams together must be bit-identical to serving
        // each stream through its own engine.
        let reqs = requests(6, 53, 2);
        let mut shared = engine(ApproximatorKind::NovaNoc, 4, 8);
        let together = shared.serve(&reqs).unwrap();
        for (i, request) in reqs.iter().enumerate() {
            let mut solo = engine(ApproximatorKind::NovaNoc, 4, 8);
            let alone = solo.serve(std::slice::from_ref(request)).unwrap();
            assert_eq!(together[i], alone[0], "stream {}", request.stream);
        }
    }

    #[test]
    fn parallel_serve_bit_identical_across_worker_counts() {
        // The tentpole determinism property, seeded and property-style:
        // for every approximator kind, worker count, shard geometry and
        // ragged tail shape, the threaded pool's output must be
        // bit-identical to the sequential reference (and therefore to
        // every other worker count). Ragged tails are guaranteed by
        // query counts that are coprime to the batch capacities.
        for (seed, (routers, neurons)) in [(11u64, (4usize, 8usize)), (12, (3, 5))] {
            for kind in ApproximatorKind::all() {
                for queries_per_stream in [1usize, 7, 61] {
                    let reqs = requests(5, queries_per_stream, seed);
                    let reference = engine(kind, routers, neurons).serve_reference(&reqs);
                    for workers in [1usize, 2, 4] {
                        let mut eng = engine_with_workers(kind, routers, neurons, workers);
                        let outputs = eng.serve(&reqs).unwrap();
                        assert_eq!(
                            outputs, reference,
                            "{kind:?} diverged: {workers} workers, \
                             {routers}x{neurons} grid, {queries_per_stream} q/stream"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tail_padding_never_leaks_into_outputs() {
        let mut eng = engine(ApproximatorKind::PerCoreLut, 4, 8);
        let capacity = eng.capacity();
        // 3 streams × 11 queries = 33 queries over 32-slot batches:
        // 2 batches, 31 padded slots.
        let reqs = requests(3, 11, 3);
        let outputs = eng.serve(&reqs).unwrap();
        let produced: usize = outputs.iter().map(Vec::len).sum();
        assert_eq!(produced, 33, "every query answered, nothing extra");
        let stats = eng.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.queries, 33);
        assert_eq!(stats.padded_slots, 2 * capacity as u64 - 33);
        // And the per-stream gather sees exactly each stream's volume.
        let by_stream = gather_by_stream(&reqs, &outputs);
        assert_eq!(by_stream.len(), 3);
        assert!(by_stream.values().all(|v| v.len() == 11));
    }

    #[test]
    fn coalescing_amortizes_vs_per_request_dispatch() {
        // 8 streams of small bursts: coalesced dispatch must beat one
        // batch per request (the naive single-tenant pattern) on both
        // occupancy and aggregate throughput.
        let reqs = requests(8, 10, 4);
        let mut coalesced = engine(ApproximatorKind::NovaNoc, 5, 8);
        coalesced.serve(&reqs).unwrap();
        let mut naive = engine(ApproximatorKind::NovaNoc, 5, 8);
        for request in &reqs {
            naive.serve(std::slice::from_ref(request)).unwrap();
        }
        assert_eq!(coalesced.stats().queries, naive.stats().queries);
        assert!(coalesced.stats().batches < naive.stats().batches);
        assert!(
            coalesced.occupancy_pct() > 90.0,
            "{}",
            coalesced.occupancy_pct()
        );
        assert!(coalesced.queries_per_second(1.0) > naive.queries_per_second(1.0));
    }

    #[test]
    fn sharded_pool_is_functionally_invisible() {
        let cache = TableCache::new();
        let table = cache.get_or_fit(TableKey::paper(Activation::Exp)).unwrap();
        let line = LineConfig::paper_default(4, 8);
        let reqs = requests(5, 29, 5);
        let mut one =
            ServingEngine::new(ApproximatorKind::PerNeuronLut, line, Arc::clone(&table), 1)
                .unwrap();
        let mut four = ServingEngine::new(ApproximatorKind::PerNeuronLut, line, table, 4).unwrap();
        assert_eq!(four.shards(), 4);
        assert_eq!(one.serve(&reqs).unwrap(), four.serve(&reqs).unwrap());
        // ...but throughput-visible: 5×29 = 145 queries over 32-slot
        // batches is 5 batches, spread 2/1/1/1 over 4 round-robin
        // shards, so the pool's makespan is 2 batches vs 5 serially.
        assert_eq!(one.stats().batches, 5);
        assert_eq!(one.makespan_cycles(), one.stats().latency_cycles);
        assert_eq!(four.makespan_cycles(), 2 * one.makespan_cycles() / 5);
        assert!(four.queries_per_second(1.0) > 2.0 * one.queries_per_second(1.0));
    }

    #[test]
    fn worker_loads_aggregate_to_engine_stats() {
        // Aggregate stats are *derived from* per-worker counters, and
        // round-robin admission spreads batches across every shard.
        let mut eng = engine_with_workers(ApproximatorKind::PerCoreLut, 4, 8, 3);
        // 7 batches over 3 workers: 3/2/2.
        let reqs = requests(7, 32, 8);
        eng.serve(&reqs).unwrap();
        let loads = eng.worker_loads().to_vec();
        assert_eq!(loads.len(), 3);
        assert!(loads.iter().all(|l| l.batches > 0), "{loads:?}");
        let stats = eng.stats();
        assert_eq!(stats.batches, loads.iter().map(|l| l.batches).sum::<u64>());
        assert_eq!(stats.queries, loads.iter().map(|l| l.queries).sum::<u64>());
        assert_eq!(
            stats.latency_cycles,
            loads.iter().map(|l| l.cycles).sum::<u64>()
        );
        assert_eq!(
            eng.makespan_cycles(),
            loads.iter().map(|l| l.cycles).max().unwrap()
        );
    }

    #[test]
    fn round_robin_cursor_persists_across_serve_calls() {
        // Regression: the low-load steady state — repeated slates that
        // each fit in one batch — must still spread over every shard,
        // not land on worker 0 forever.
        let mut eng = engine_with_workers(ApproximatorKind::PerCoreLut, 2, 4, 3);
        for _ in 0..6 {
            eng.serve(&requests(1, 5, 10)).unwrap(); // 5 queries = 1 batch
        }
        let loads = eng.worker_loads();
        assert!(
            loads.iter().all(|l| l.batches == 2),
            "6 single-batch slates over 3 shards must spread 2/2/2: {loads:?}"
        );
    }

    #[test]
    fn backpressure_survives_slates_far_deeper_than_the_feed_channels() {
        // A slate hundreds of batches deep forces admission to block on
        // the bounded feeds many times over; everything must still come
        // back in order and bit-identical.
        let mut eng = engine_with_workers(ApproximatorKind::PerCoreLut, 2, 4, 2);
        let reqs = requests(4, 1000, 9); // 4000 queries / 8-slot batches = 500 batches
        let outputs = eng.serve(&reqs).unwrap();
        assert_eq!(outputs, eng.serve_reference(&reqs));
        assert_eq!(eng.stats().batches, 500);
    }

    #[test]
    fn mid_slate_error_leaves_stats_consistent() {
        // A format-mismatched request fails in the worker; the counters
        // must reflect exactly the batches that evaluated successfully —
        // queries included — so occupancy/throughput accounting never
        // skews, and the same error must surface for any worker count.
        use nova_fixed::Q8_8;
        for workers in [1usize, 3] {
            let mut eng = engine_with_workers(ApproximatorKind::PerCoreLut, 4, 8, workers);
            let capacity = eng.capacity() as u64;
            let good = requests(2, 40, 6); // 80 queries = 2.5 batches
            let mut bad = good.clone();
            bad.push(ServingRequest {
                stream: 9,
                inputs: vec![Fixed::from_f64(0.5, Q8_8, Rounding::NearestEven)],
            });
            assert!(eng.serve(&bad).is_err());
            let stats = eng.stats();
            // The first two full batches evaluated; the tail batch
            // holding the mismatched word failed and is not counted
            // anywhere, and no request of the failed slate counts as
            // served.
            assert_eq!(stats.requests, 0, "{workers} workers");
            assert_eq!(stats.batches, 2);
            assert_eq!(stats.queries, 2 * capacity);
            assert_eq!(stats.padded_slots, 0);
            assert!((eng.occupancy_pct() - 100.0).abs() < 1e-12);
            // And the engine keeps serving correctly afterwards.
            let outputs = eng.serve(&good).unwrap();
            assert_eq!(outputs.iter().map(Vec::len).sum::<usize>(), 80);
            assert_eq!(eng.stats().requests, 2);
        }
    }

    #[test]
    fn steady_state_serving_is_allocation_free() {
        // The tentpole acceptance criterion, asserted as a capacity-
        // stability test: after the first slate warms the recycling pool,
        // repeated slates of the same depth mint no new buffer pairs and
        // never grow a recycled buffer's capacity — i.e. the per-batch
        // hot path touches the allocator zero times.
        let mut eng = engine_with_workers(ApproximatorKind::PerCoreLut, 4, 8, 2);
        let reqs = requests(6, 37, 21); // 222 queries / 32-slot grid = 7 batches
        let reference = eng.serve_reference(&reqs);
        assert_eq!(eng.serve(&reqs).unwrap(), reference);
        let minted = eng.buffers_created();
        let pool = eng.buffer_pool_len();
        assert_eq!(minted, pool as u64, "every minted pair returns to the pool");
        assert!(minted >= 1);
        for _ in 0..5 {
            assert_eq!(eng.serve(&reqs).unwrap(), reference);
            assert_eq!(
                eng.buffers_created(),
                minted,
                "steady state must not mint buffers"
            );
            assert_eq!(eng.buffer_pool_len(), pool);
        }
        // A shallower slate reuses the same pool; a failed slate returns
        // its buffers too.
        assert_eq!(eng.serve(&requests(1, 5, 22)).unwrap().len(), 1);
        assert_eq!(eng.buffers_created(), minted);
        use nova_fixed::Q8_8;
        let mut bad = requests(1, 5, 23);
        bad[0].inputs[0] = Fixed::from_f64(0.5, Q8_8, Rounding::NearestEven);
        assert!(eng.serve(&bad).is_err());
        assert_eq!(
            eng.buffers_created(),
            minted,
            "errors must not leak buffers"
        );
        assert_eq!(eng.buffer_pool_len(), pool);
    }

    #[test]
    fn zero_shards_rejected_and_empty_slates_are_free() {
        let cache = TableCache::new();
        let table = cache.get_or_fit(TableKey::paper(Activation::Gelu)).unwrap();
        let line = LineConfig::paper_default(2, 4);
        assert!(matches!(
            ServingEngine::new(ApproximatorKind::NovaNoc, line, Arc::clone(&table), 0),
            Err(NovaError::BatchShape(_))
        ));
        let mut eng = ServingEngine::new(ApproximatorKind::NovaNoc, line, table, 1).unwrap();
        let outputs = eng.serve(&[]).unwrap();
        assert!(outputs.is_empty());
        assert_eq!(eng.stats().batches, 0);
    }

    #[test]
    fn zero_batch_state_reports_zeros_not_nan() {
        // Regression (satellite): before the first `serve` call every
        // rate/occupancy accessor must return a plain 0 — never NaN,
        // infinity or garbage from a 0/0.
        let eng = engine_with_workers(ApproximatorKind::NovaNoc, 2, 4, 2);
        assert_eq!(eng.stats(), ServingStats::default());
        assert_eq!(eng.occupancy_pct(), 0.0);
        assert_eq!(eng.makespan_cycles(), 0);
        assert_eq!(eng.queries_per_second(1.0), 0.0);
        assert!(eng.occupancy_pct().is_finite());
        assert!(eng.queries_per_second(1.0).is_finite());
        // An empty slate must not disturb that.
        let mut eng = eng;
        eng.serve(&[]).unwrap();
        assert_eq!(eng.occupancy_pct(), 0.0);
        assert_eq!(eng.queries_per_second(1.0), 0.0);
    }

    #[test]
    fn for_host_shares_cached_tables_across_engines() {
        let tech = TechModel::cmos22();
        let host = AcceleratorConfig::tpu_v4_like();
        let cache = TableCache::new();
        let key = TableKey::paper(Activation::Gelu);
        let a = ServingEngine::for_host(ApproximatorKind::NovaNoc, &tech, &host, &cache, key, 1)
            .unwrap();
        let b = ServingEngine::for_host(ApproximatorKind::PerCoreLut, &tech, &host, &cache, key, 1)
            .unwrap();
        assert_eq!(cache.misses(), 1, "second engine reuses the fit");
        assert_eq!(cache.hits(), 1);
        assert_eq!(a.capacity(), host.total_neurons());
        assert_eq!(b.capacity(), host.total_neurons());
    }
}
