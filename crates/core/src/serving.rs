//! The multi-stream serving layer: batched non-linear query serving for
//! many concurrent inference streams.
//!
//! Single-shot evaluation (one caller, one table, one batch at a time)
//! wastes the vector unit twice: every caller refits and requantizes its
//! own table, and partial batches leave `(routers × neurons)` grid slots
//! idle. This module amortizes both:
//!
//! - [`TableCache`] memoizes fitted+quantized tables behind an
//!   [`Arc`], keyed by everything that determines the bits —
//!   `(activation, breakpoints, format, rounding)` — so repeated
//!   requests for the same operator never refit and engines can share
//!   one table allocation.
//! - [`ServingEngine`] owns a pool of [`VectorUnit`] workers (shards)
//!   and a scheduler that coalesces the queries of many concurrent
//!   streams, in arrival order, into full `(routers × neurons)` batches
//!   before dispatch. Only the tail batch is padded (with an in-domain
//!   value whose results are dropped on scatter), so batch occupancy
//!   approaches 100 % as offered load grows — which is exactly what the
//!   paper's per-batch latency model rewards: the same 2-cycle
//!   lookup+MAC now serves `routers × neurons` queries from *different*
//!   tenants.
//!
//! Results are scattered back per request bit-identically to a dedicated
//! single-stream evaluation — batching is functionally invisible.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use nova::serving::{ServingEngine, ServingRequest, TableCache, TableKey};
//! use nova::ApproximatorKind;
//! use nova_approx::Activation;
//! use nova_fixed::{Fixed, Rounding, Q4_12};
//! use nova_noc::LineConfig;
//!
//! # fn main() -> Result<(), nova::NovaError> {
//! let mut cache = TableCache::new();
//! let table = cache.get_or_fit(TableKey::paper(Activation::Gelu))?;
//! let mut engine = ServingEngine::new(
//!     ApproximatorKind::NovaNoc, LineConfig::paper_default(4, 8), table, 1)?;
//! let x = Fixed::from_f64(0.5, Q4_12, Rounding::NearestEven);
//! let outputs = engine.serve(&[ServingRequest { stream: 0, inputs: vec![x; 3] }])?;
//! assert_eq!(outputs[0].len(), 3);
//! assert_eq!(outputs[0][0], engine.table().eval(x));
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use nova_accel::config::AcceleratorConfig;
use nova_approx::{fit, Activation, QuantizedPwl};
use nova_fixed::{Fixed, QFormat, Rounding, Q4_12};
use nova_noc::{LineConfig, LinkConfig};
use nova_synth::TechModel;

use crate::vector_unit::{build, line_for_kind, HostGeometry, VectorUnit};
use crate::{ApproximatorKind, NovaError};

/// Everything that determines a quantized table's bits — the cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableKey {
    /// The approximated activation.
    pub activation: Activation,
    /// Breakpoint count of the PWL fit.
    pub breakpoints: usize,
    /// Fixed-point word format.
    pub format: QFormat,
    /// Rounding mode for quantization and the MAC output.
    pub rounding: Rounding,
}

impl TableKey {
    /// The paper's defaults: 16 breakpoints in Q4.12 with round-to-
    /// nearest-even.
    #[must_use]
    pub fn paper(activation: Activation) -> Self {
        Self {
            activation,
            breakpoints: 16,
            format: Q4_12,
            rounding: Rounding::NearestEven,
        }
    }
}

/// A keyed cache of fitted+quantized tables.
///
/// Fitting a PWL and quantizing it is the expensive, data-independent
/// prefix of every evaluation; the cache does it once per key and hands
/// out [`Arc`] clones, so a cache hit is a pointer copy and every engine
/// serving the same operator shares one allocation.
#[derive(Debug, Clone, Default)]
pub struct TableCache {
    tables: HashMap<TableKey, Arc<QuantizedPwl>>,
    hits: u64,
    misses: u64,
}

impl TableCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached table for `key`, fitting and quantizing it on
    /// first use. Hits return the *same* `Arc` (pointer-equal).
    ///
    /// # Errors
    ///
    /// Propagates PWL fitting / quantization failures.
    pub fn get_or_fit(&mut self, key: TableKey) -> Result<Arc<QuantizedPwl>, NovaError> {
        if let Some(table) = self.tables.get(&key) {
            self.hits += 1;
            return Ok(Arc::clone(table));
        }
        let pwl = fit::fit_activation(
            key.activation,
            key.breakpoints,
            fit::BreakpointStrategy::Uniform,
        )?;
        let table = Arc::new(QuantizedPwl::from_pwl(&pwl, key.format, key.rounding)?);
        self.misses += 1;
        self.tables.insert(key, Arc::clone(&table));
        Ok(table)
    }

    /// Cache hits served so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (tables fitted) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Distinct tables held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the cache holds no tables yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

/// One non-linear query burst from one inference stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingRequest {
    /// Stream (tenant) id — used only for per-stream gather.
    pub stream: usize,
    /// Raw query values in the engine table's fixed format.
    pub inputs: Vec<Fixed>,
}

/// Accounting of a [`ServingEngine`], accumulated across `serve` calls.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServingStats {
    /// Requests served to completion (slates that returned an error
    /// count their dispatched batches/queries below, but no requests).
    pub requests: u64,
    /// Individual queries served (excludes padding).
    pub queries: u64,
    /// Vector-unit batches dispatched.
    pub batches: u64,
    /// Grid slots filled with padding (tail batches only).
    pub padded_slots: u64,
    /// Accumulated per-batch latency over all dispatched batches, in
    /// accelerator cycles — the *serial* sum across the whole pool; see
    /// [`ServingEngine::makespan_cycles`] for the concurrent-shards
    /// view.
    pub latency_cycles: u64,
}

nova_serde::impl_serde_struct!(ServingStats {
    requests,
    queries,
    batches,
    padded_slots,
    latency_cycles,
});

/// The batched multi-stream serving engine.
///
/// Owns a pool of functionally identical [`VectorUnit`] workers (one per
/// shard) built from one shared table, and dispatches coalesced batches
/// round-robin across them. Because every unit kind is bit-identical to
/// the table, shard count and batching never change results — only
/// throughput accounting.
pub struct ServingEngine {
    kind: ApproximatorKind,
    table: Arc<QuantizedPwl>,
    workers: Vec<Box<dyn VectorUnit>>,
    /// Accumulated batch latency per worker — shards run concurrently,
    /// so the pool's makespan is the busiest worker's total.
    worker_cycles: Vec<u64>,
    routers: usize,
    neurons: usize,
    next_worker: usize,
    stats: ServingStats,
}

impl std::fmt::Debug for ServingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingEngine")
            .field("kind", &self.kind)
            .field("shards", &self.workers.len())
            .field("routers", &self.routers)
            .field("neurons", &self.neurons)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl ServingEngine {
    /// Builds an engine with `shards` parallel workers of `kind` on
    /// `line`.
    ///
    /// # Errors
    ///
    /// Returns [`NovaError::BatchShape`] for `shards == 0` and
    /// propagates unit construction failures.
    pub fn new(
        kind: ApproximatorKind,
        line: LineConfig,
        table: Arc<QuantizedPwl>,
        shards: usize,
    ) -> Result<Self, NovaError> {
        if shards == 0 {
            return Err(NovaError::BatchShape(
                "serving engine needs at least one worker shard".into(),
            ));
        }
        let workers = (0..shards)
            .map(|_| build(kind, line, &table))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            kind,
            table,
            workers,
            worker_cycles: vec![0; shards],
            routers: line.routers,
            neurons: line.neurons_per_router,
            next_worker: 0,
            stats: ServingStats::default(),
        })
    }

    /// Builds an engine for a Table II host, pulling the table through
    /// `cache` (so a second engine for the same key shares it) and
    /// deriving the line geometry exactly as the overlay does.
    ///
    /// # Errors
    ///
    /// Propagates table fitting and NoC configuration failures.
    pub fn for_host(
        kind: ApproximatorKind,
        tech: &TechModel,
        config: &AcceleratorConfig,
        cache: &mut TableCache,
        key: TableKey,
        shards: usize,
    ) -> Result<Self, NovaError> {
        let table = cache.get_or_fit(key)?;
        let line = line_for_kind(
            kind,
            tech,
            &table,
            LinkConfig::paper(),
            HostGeometry::of(config),
        )?;
        Self::new(kind, line, table, shards)
    }

    /// The approximator hardware serving this engine.
    #[must_use]
    pub fn kind(&self) -> ApproximatorKind {
        self.kind
    }

    /// The shared quantized table.
    #[must_use]
    pub fn table(&self) -> &QuantizedPwl {
        &self.table
    }

    /// Worker shards in the pool.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.workers.len()
    }

    /// Queries one full batch serves: `routers × neurons_per_router`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.routers * self.neurons
    }

    /// Accumulated accounting.
    #[must_use]
    pub fn stats(&self) -> ServingStats {
        self.stats
    }

    /// Batch occupancy so far (%): queries served over grid slots
    /// dispatched. 100 % means every dispatched batch was full.
    #[must_use]
    pub fn occupancy_pct(&self) -> f64 {
        let slots = self.stats.batches * self.capacity() as u64;
        if slots == 0 {
            0.0
        } else {
            100.0 * self.stats.queries as f64 / slots as f64
        }
    }

    /// The pool's makespan in accelerator cycles: shards serve their
    /// batches concurrently, so the slowest (busiest) worker's
    /// accumulated latency bounds the wall clock. With one shard this
    /// equals [`ServingStats::latency_cycles`]; with `k` evenly loaded
    /// shards it approaches `latency_cycles / k`.
    #[must_use]
    pub fn makespan_cycles(&self) -> u64 {
        self.worker_cycles.iter().copied().max().unwrap_or(0)
    }

    /// Aggregate query throughput so far at a `core_ghz` clock
    /// (queries/s): queries served over the pool's parallel makespan
    /// ([`makespan_cycles`](Self::makespan_cycles)), so adding shards
    /// raises throughput even though per-batch latency is unchanged.
    #[must_use]
    pub fn queries_per_second(&self, core_ghz: f64) -> f64 {
        let makespan = self.makespan_cycles();
        if makespan == 0 {
            0.0
        } else {
            let seconds = makespan as f64 / (core_ghz * 1e9);
            self.stats.queries as f64 / seconds
        }
    }

    /// Serves a slate of requests from many concurrent streams.
    ///
    /// Queries are coalesced in arrival order (request order, then query
    /// order within a request) into full `(routers × neurons)` batches;
    /// the tail batch is padded with an in-domain value whose outputs
    /// are dropped. Results come back as one output vector per request,
    /// aligned with `requests` — bit-identical to evaluating each query
    /// through [`QuantizedPwl::eval`] alone.
    ///
    /// # Errors
    ///
    /// Propagates worker failures (e.g. format mismatches); the batch
    /// shape itself is constructed here and always valid. On an error
    /// mid-slate, stats reflect exactly the batches that did dispatch
    /// (their queries included), never the failed remainder — occupancy
    /// and throughput stay consistent.
    pub fn serve(&mut self, requests: &[ServingRequest]) -> Result<Vec<Vec<Fixed>>, NovaError> {
        let capacity = self.capacity();
        let total: usize = requests.iter().map(|r| r.inputs.len()).sum();
        let mut outputs: Vec<Vec<Fixed>> = requests
            .iter()
            .map(|r| Vec::with_capacity(r.inputs.len()))
            .collect();
        if total == 0 {
            self.stats.requests += requests.len() as u64;
            return Ok(outputs);
        }

        // Arrival-ordered flat queue of (request index, query value).
        let mut queue: Vec<(usize, Fixed)> = Vec::with_capacity(total);
        for (ri, request) in requests.iter().enumerate() {
            queue.extend(request.inputs.iter().map(|&x| (ri, x)));
        }

        // The pad value is in-domain by construction (the lower clamp
        // bound), so padded lanes can never fault; their outputs are
        // simply never scattered anywhere.
        let pad = self.table.clamp_bounds().0;
        for chunk in queue.chunks(capacity) {
            let mut batch = vec![vec![pad; self.neurons]; self.routers];
            for (slot, &(_, x)) in chunk.iter().enumerate() {
                batch[slot / self.neurons][slot % self.neurons] = x;
            }
            let worker = self.next_worker;
            self.next_worker = (self.next_worker + 1) % self.workers.len();
            let out = self.workers[worker].lookup_batch(&batch)?;
            let latency = self.workers[worker].latency_cycles();
            self.stats.batches += 1;
            self.stats.queries += chunk.len() as u64;
            self.stats.latency_cycles += latency;
            self.worker_cycles[worker] += latency;
            self.stats.padded_slots += (capacity - chunk.len()) as u64;
            // Scatter real slots back to their requests; padded slots
            // (slot >= chunk.len()) never leave this loop.
            for (slot, &(ri, _)) in chunk.iter().enumerate() {
                outputs[ri].push(out[slot / self.neurons][slot % self.neurons]);
            }
        }
        // Only a fully served slate counts its requests: on a mid-slate
        // error the batch/query counters above reflect dispatched work,
        // but no request was answered in full.
        self.stats.requests += requests.len() as u64;
        Ok(outputs)
    }
}

/// Gathers per-request outputs into per-stream result vectors,
/// concatenated in arrival order — the "scatter back per stream" view of
/// a [`ServingEngine::serve`] result.
///
/// # Panics
///
/// Panics if `outputs` is not aligned with `requests` (wrong length).
#[must_use]
pub fn gather_by_stream(
    requests: &[ServingRequest],
    outputs: &[Vec<Fixed>],
) -> HashMap<usize, Vec<Fixed>> {
    assert_eq!(
        requests.len(),
        outputs.len(),
        "outputs must align with requests"
    );
    let mut streams: HashMap<usize, Vec<Fixed>> = HashMap::new();
    for (request, out) in requests.iter().zip(outputs) {
        streams.entry(request.stream).or_default().extend(out);
    }
    streams
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_fixed::rng::StdRng;

    fn fixed(x: f64) -> Fixed {
        Fixed::from_f64(x, Q4_12, Rounding::NearestEven)
    }

    /// Odd-sized per-stream bursts so batches never align with request
    /// boundaries.
    fn requests(streams: usize, queries_per_stream: usize, seed: u64) -> Vec<ServingRequest> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..streams)
            .map(|stream| ServingRequest {
                stream,
                inputs: (0..queries_per_stream)
                    .map(|_| fixed(rng.gen_range(-6.0..6.0)))
                    .collect(),
            })
            .collect()
    }

    fn engine(kind: ApproximatorKind, routers: usize, neurons: usize) -> ServingEngine {
        let mut cache = TableCache::new();
        let table = cache.get_or_fit(TableKey::paper(Activation::Gelu)).unwrap();
        ServingEngine::new(kind, LineConfig::paper_default(routers, neurons), table, 1).unwrap()
    }

    #[test]
    fn cache_hits_return_the_same_arc() {
        let mut cache = TableCache::new();
        let key = TableKey::paper(Activation::Gelu);
        let a = cache.get_or_fit(key).unwrap();
        let b = cache.get_or_fit(key).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must share the allocation");
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));

        // A different key is a different table.
        let c = cache.get_or_fit(TableKey::paper(Activation::Exp)).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 2, 2));

        // Any key component change misses: same activation, other format.
        let other = TableKey {
            rounding: Rounding::Floor,
            ..key
        };
        let d = cache.get_or_fit(other).unwrap();
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(cache.misses(), 3);
    }

    #[test]
    fn multi_stream_results_bit_identical_to_table_eval() {
        // The acceptance criterion: scatter/gather through coalesced
        // multi-tenant batches must equal a dedicated per-query eval.
        for kind in ApproximatorKind::all() {
            let mut eng = engine(kind, 4, 8);
            let reqs = requests(8, 37, 1);
            let outputs = eng.serve(&reqs).unwrap();
            for (request, out) in reqs.iter().zip(&outputs) {
                assert_eq!(out.len(), request.inputs.len());
                for (&x, &y) in request.inputs.iter().zip(out) {
                    assert_eq!(y, eng.table().eval(x), "{kind:?} stream {}", request.stream);
                }
            }
        }
    }

    #[test]
    fn multi_stream_matches_single_stream_serving() {
        // Serving all streams together must be bit-identical to serving
        // each stream through its own engine.
        let reqs = requests(6, 53, 2);
        let mut shared = engine(ApproximatorKind::NovaNoc, 4, 8);
        let together = shared.serve(&reqs).unwrap();
        for (i, request) in reqs.iter().enumerate() {
            let mut solo = engine(ApproximatorKind::NovaNoc, 4, 8);
            let alone = solo.serve(std::slice::from_ref(request)).unwrap();
            assert_eq!(together[i], alone[0], "stream {}", request.stream);
        }
    }

    #[test]
    fn tail_padding_never_leaks_into_outputs() {
        let mut eng = engine(ApproximatorKind::PerCoreLut, 4, 8);
        let capacity = eng.capacity();
        // 3 streams × 11 queries = 33 queries over 32-slot batches:
        // 2 batches, 31 padded slots.
        let reqs = requests(3, 11, 3);
        let outputs = eng.serve(&reqs).unwrap();
        let produced: usize = outputs.iter().map(Vec::len).sum();
        assert_eq!(produced, 33, "every query answered, nothing extra");
        let stats = eng.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.queries, 33);
        assert_eq!(stats.padded_slots, 2 * capacity as u64 - 33);
        // And the per-stream gather sees exactly each stream's volume.
        let by_stream = gather_by_stream(&reqs, &outputs);
        assert_eq!(by_stream.len(), 3);
        assert!(by_stream.values().all(|v| v.len() == 11));
    }

    #[test]
    fn coalescing_amortizes_vs_per_request_dispatch() {
        // 8 streams of small bursts: coalesced dispatch must beat one
        // batch per request (the naive single-tenant pattern) on both
        // occupancy and aggregate throughput.
        let reqs = requests(8, 10, 4);
        let mut coalesced = engine(ApproximatorKind::NovaNoc, 5, 8);
        coalesced.serve(&reqs).unwrap();
        let mut naive = engine(ApproximatorKind::NovaNoc, 5, 8);
        for request in &reqs {
            naive.serve(std::slice::from_ref(request)).unwrap();
        }
        assert_eq!(coalesced.stats().queries, naive.stats().queries);
        assert!(coalesced.stats().batches < naive.stats().batches);
        assert!(
            coalesced.occupancy_pct() > 90.0,
            "{}",
            coalesced.occupancy_pct()
        );
        assert!(coalesced.queries_per_second(1.0) > naive.queries_per_second(1.0));
    }

    #[test]
    fn sharded_pool_is_functionally_invisible() {
        let mut cache = TableCache::new();
        let table = cache.get_or_fit(TableKey::paper(Activation::Exp)).unwrap();
        let line = LineConfig::paper_default(4, 8);
        let reqs = requests(5, 29, 5);
        let mut one =
            ServingEngine::new(ApproximatorKind::PerNeuronLut, line, Arc::clone(&table), 1)
                .unwrap();
        let mut four = ServingEngine::new(ApproximatorKind::PerNeuronLut, line, table, 4).unwrap();
        assert_eq!(four.shards(), 4);
        assert_eq!(one.serve(&reqs).unwrap(), four.serve(&reqs).unwrap());
        // ...but throughput-visible: 5×29 = 145 queries over 32-slot
        // batches is 5 batches, spread 2/1/1/1 over 4 round-robin
        // shards, so the pool's makespan is 2 batches vs 5 serially.
        assert_eq!(one.stats().batches, 5);
        assert_eq!(one.makespan_cycles(), one.stats().latency_cycles);
        assert_eq!(four.makespan_cycles(), 2 * one.makespan_cycles() / 5);
        assert!(four.queries_per_second(1.0) > 2.0 * one.queries_per_second(1.0));
    }

    #[test]
    fn mid_slate_error_leaves_stats_consistent() {
        // A format-mismatched request fails in the worker; stats must
        // reflect exactly the batches that dispatched — queries included
        // — so occupancy/throughput accounting never skews.
        use nova_fixed::Q8_8;
        let mut eng = engine(ApproximatorKind::PerCoreLut, 4, 8);
        let capacity = eng.capacity() as u64;
        let good = requests(2, 40, 6); // 80 queries = 2.5 batches
        let mut bad = good.clone();
        bad.push(ServingRequest {
            stream: 9,
            inputs: vec![Fixed::from_f64(0.5, Q8_8, Rounding::NearestEven)],
        });
        assert!(eng.serve(&bad).is_err());
        let stats = eng.stats();
        // The first two full batches dispatched; the tail batch holding
        // the mismatched word failed and is not counted anywhere, and no
        // request of the failed slate counts as served.
        assert_eq!(stats.requests, 0);
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.queries, 2 * capacity);
        assert_eq!(stats.padded_slots, 0);
        assert!((eng.occupancy_pct() - 100.0).abs() < 1e-12);
        // And the engine keeps serving correctly afterwards.
        let outputs = eng.serve(&good).unwrap();
        assert_eq!(outputs.iter().map(Vec::len).sum::<usize>(), 80);
        assert_eq!(eng.stats().requests, 2);
    }

    #[test]
    fn zero_shards_rejected_and_empty_slates_are_free() {
        let mut cache = TableCache::new();
        let table = cache.get_or_fit(TableKey::paper(Activation::Gelu)).unwrap();
        let line = LineConfig::paper_default(2, 4);
        assert!(matches!(
            ServingEngine::new(ApproximatorKind::NovaNoc, line, Arc::clone(&table), 0),
            Err(NovaError::BatchShape(_))
        ));
        let mut eng = ServingEngine::new(ApproximatorKind::NovaNoc, line, table, 1).unwrap();
        let outputs = eng.serve(&[]).unwrap();
        assert!(outputs.is_empty());
        assert_eq!(eng.stats().batches, 0);
        assert_eq!(eng.occupancy_pct(), 0.0);
    }

    #[test]
    fn for_host_shares_cached_tables_across_engines() {
        let tech = TechModel::cmos22();
        let host = AcceleratorConfig::tpu_v4_like();
        let mut cache = TableCache::new();
        let key = TableKey::paper(Activation::Gelu);
        let a =
            ServingEngine::for_host(ApproximatorKind::NovaNoc, &tech, &host, &mut cache, key, 1)
                .unwrap();
        let b = ServingEngine::for_host(
            ApproximatorKind::PerCoreLut,
            &tech,
            &host,
            &mut cache,
            key,
            1,
        )
        .unwrap();
        assert_eq!(cache.misses(), 1, "second engine reuses the fit");
        assert_eq!(cache.hits(), 1);
        assert_eq!(a.capacity(), host.total_neurons());
        assert_eq!(b.capacity(), host.total_neurons());
    }
}
