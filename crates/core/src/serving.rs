//! The multi-tenant serving layer: a builder-configured concurrent
//! worker-pool runtime for batched non-linear query serving across many
//! inference streams and many activation tables.
//!
//! Single-shot evaluation (one caller, one table, one batch at a time)
//! wastes the vector unit twice: every caller refits and requantizes its
//! own table, and partial batches leave `(routers × neurons)` grid slots
//! idle. This module amortizes both — and since PR 3 it does so on a
//! real multi-threaded pipeline instead of a synchronous loop:
//!
//! - [`TableCache`] memoizes fitted+quantized tables behind an
//!   [`Arc`], keyed by everything that determines the bits —
//!   `(activation, breakpoints, format, rounding)`. The cache is an
//!   interior-mutability design (`RwLock` map behind a shared handle):
//!   `get_or_fit` takes `&self`, clones share one store, and two threads
//!   racing to fit the same key converge on a single table allocation
//!   (the loser's fit is discarded and counted in
//!   [`TableCache::lost_races`]).
//! - [`ServingEngine`] is a three-stage concurrent runtime built only on
//!   `std` (since PR 6, on lock-free [`crate::spsc`] rings instead of
//!   `mpsc` channels):
//!   1. an **admission/coalescing** stage that packs the queries of many
//!      concurrent streams, in arrival order *per activation table*,
//!      into full `(routers × neurons)` batches, gathers runs of up to
//!      `K` same-activation batches into one *fat work unit* (`K`
//!      adapts to the run depth: deep slates amortize the hop over many
//!      batches, a one-batch slate still dispatches immediately), and
//!      feeds units to shard workers over fixed-capacity SPSC rings —
//!      a worker that falls behind exerts backpressure on admission
//!      instead of queueing unboundedly;
//!   2. a pool of **shard workers**, each a real [`std::thread`] owning
//!      its own `Box<dyn VectorUnit>` (the trait is `Send`), receiving
//!      sequence-numbered work units round-robin, re-programming the
//!      unit via [`VectorUnit::switch_table`] whenever a unit carries a
//!      different activation than the one currently loaded (free on
//!      NOVA, a real bank-rewrite stall on LUT/SDP hardware — see
//!      [`crate::timeline::table_switch_cycles`]), evaluating in
//!      parallel, and **scattering results directly** into the
//!      submitting ticket's pre-sized output rows;
//!   3. a **watermark completion** stage on the engine thread that
//!      counts each ticket's finished units off a per-shard completion
//!      ring and rolls the counters — it never re-touches a result row,
//!      because the workers already wrote every output word in place,
//!      yet the output is bit-identical to the sequential path for any
//!      worker count and any activation interleaving.
//!
//! # Parking, not spinning
//!
//! Every blocking edge parks its thread instead of burning a core: an
//! idle worker parks on its feed ring's Dekker flag and is unparked by
//! the engine's next push; a blocked [`wait`](ServingEngine::wait) arms
//! a shared [`crate::spsc::Doorbell`], re-checks the rings, and parks
//! until some worker's completion push rings it. Completion pushes can
//! never block: admission caps each shard's in-flight units at its
//! completion ring's capacity, so a worker always finds a free slot —
//! which is also what makes engine shutdown (close feeds, join
//! workers) deadlock-free by construction.
//!
//! # Multi-tenant configuration and op-graph plans
//!
//! Engines are configured through a typed [`ServingConfig`] assembled by
//! [`EngineBuilder`] ([`ServingEngine::builder`]): geometry via
//! [`line`](EngineBuilder::line) or [`host`](EngineBuilder::host), any
//! number of resident activation tables via
//! [`table`](EngineBuilder::table) / [`tables`](EngineBuilder::tables) /
//! [`plan`](EngineBuilder::plan) (fitted through a shared
//! [`cache`](EngineBuilder::cache)), and the worker count via
//! [`shards`](EngineBuilder::shards). Every [`ServingRequest`] carries a
//! [`Plan`] — an ordered op graph of [`PlanStage`]s, each either a table
//! lookup ([`TableKey`]) or an in-engine elementwise/reduce step (row
//! max-subtract, denominator sum + range reduction, reciprocal scale).
//! A plain activation burst is the trivial one-stage lookup plan
//! (`TableKey` converts `Into<Plan>`), so single-table callers migrate
//! mechanically; [`Plan::fused_softmax`] chains the paper's
//! exp → reduce → reciprocal-scale softmax datapath through two
//! resident tables with zero host round-trips between stages.
//! [`ServingStats`] / [`WorkerLoad`] account the resulting table
//! switches, so makespan and queries/s honestly include the switch
//! stalls the paper's broadcast NoC avoids — and a fused plan's
//! per-batch exp → recip switch pattern is exactly where NOVA's
//! zero-cost switch pays off.
//!
//! # Sessions
//!
//! Beyond blocking [`serve`](ServingEngine::serve), the engine exposes a
//! non-blocking session surface: [`submit`](ServingEngine::submit)
//! enqueues a slate and returns a [`Ticket`],
//! [`try_poll`](ServingEngine::try_poll) collects a finished ticket
//! without blocking, [`wait`](ServingEngine::wait) parks until one
//! specific ticket is done (no spinning), and
//! [`drain`](ServingEngine::drain) blocks until every in-flight ticket
//! is done. `serve` itself is a thin submit-then-wait wrapper, so both
//! surfaces share one data plane (and one bit-identity guarantee
//! against [`serve_reference`](ServingEngine::serve_reference)).
//!
//! The data plane is **flat and zero-copy** (PR 4): batches travel as
//! contiguous [`nova_fixed::FixedBatch`] grids evaluated through
//! [`VectorUnit::lookup_batch_into`], work units carry recyclable input
//! buffers (each worker owns one long-lived output scratch), and
//! completions return the inputs to an engine-owned pool — once the
//! pipeline has warmed up, steady-state serving performs zero per-batch
//! heap allocations ([`ServingEngine::buffers_created`] stays
//! constant). Wall-clock stage attribution (admission, per-worker busy
//! time, finalize) is exposed via [`ServingEngine::stage_times`] so the
//! scaling bench can attribute regressions to a stage instead of
//! guessing.
//!
//! Only each activation run's tail batch is padded (with an in-domain
//! value whose results are dropped on scatter), so batch occupancy
//! approaches 100 % as offered load grows — which is exactly what the
//! paper's per-batch latency model rewards: the same 2-cycle lookup+MAC
//! now serves `routers × neurons` queries from *different* tenants, on
//! as many shards as the host exposes.
//!
//! # Error semantics
//!
//! A slate whose requests name a non-resident activation, carry a
//! malformed plan (see [`Plan::validate`]), or reduce over a row wider
//! than the engine's batch capacity is rejected up front (nothing
//! dispatches). Otherwise the slate is dispatched
//! batch-by-batch to the pool; every batch that evaluates successfully
//! is counted in the per-worker counters, and on failure the slate's
//! result is the *lowest-sequence* error — deterministic regardless of
//! worker timing. A failed slate counts no requests. A worker that
//! panics mid-batch is caught in the worker loop and surfaces as
//! [`NovaError::Runtime`] instead of hanging the reorder stage —
//! unless the engine was armed with a [`FaultPolicy`], in which case a
//! panic is treated as a *shard* fault (quarantine + requeue, below)
//! rather than a slate failure. Deterministic data errors (a format
//! mismatch, a malformed batch) stay slate failures either way:
//! re-running them on another shard would fail identically.
//!
//! # Fault tolerance & warm start
//!
//! The paper's NoC-broadcast engine is modeled down to its failure
//! modes ([`nova_noc::fault`] injects bit flips on broadcast links);
//! this layer decides what the *runtime* does when such a fault lands
//! mid-traffic. Arming detection is one builder knob —
//! [`fault_check`](EngineBuilder::fault_check) with a [`FaultPolicy`] —
//! and the lifecycle is:
//!
//! 1. **detect** — after every lookup-stage evaluation, the armed
//!    worker re-evaluates a small *canary* slice of the batch through
//!    the scalar architectural path ([`QuantizedPwl::eval`]) and
//!    compares words; a mismatch, an injected [`InjectedFault`], or a
//!    caught panic is a shard-fault verdict (the whole work unit is
//!    condemned — a faulty shard's half-written scatter output is
//!    untrusted);
//! 2. **quarantine** — the engine closes the shard's feed ring, joins
//!    the retired worker (deadlock-free: the completion ring holds the
//!    full outstanding cap), and removes the shard from the healthy
//!    routing set; the worker meanwhile hands every in-flight unit
//!    back *whole* (batches and plan intact, zero counters) over its
//!    completion ring;
//! 3. **requeue** — each handed-back unit is re-admitted to the
//!    healthy shards. Scatter is idempotent (workers write result
//!    words through per-slot pointers), so the healthy re-run lands
//!    bit-identically and the slate completes equal to
//!    [`serve_reference`](ServingEngine::serve_reference) as long as
//!    one healthy shard remains; only when the last shard is
//!    quarantined does the engine poison. The ledger counts requeued
//!    units once (the healthy run) and attributes the quarantine cost
//!    to [`StageTimes::requeue_ns`];
//!    [`ServingStats::quarantined_shards`] / `requeued_units` /
//!    `degraded_capacity_pct` report the degradation.
//!
//! Orthogonally, [`TableCache::snapshot`] serializes every fitted
//! table to a [`nova_serde::Value`] (raw slope/bias/breakpoint words —
//! no refit, no float round-trip) and
//! [`TableCache::restore`] rebuilds them raw-word-identically, so a
//! restarted daemon warm-starts instead of refitting every tenant's
//! table. The `nova-table-cache/v1` layout is pinned by a golden file.
//!
//! # Example
//!
//! ```
//! use nova::serving::{Plan, ServingEngine, ServingRequest, TableCache, TableKey};
//! use nova::ApproximatorKind;
//! use nova_approx::Activation;
//! use nova_fixed::{Fixed, Rounding, Q4_12};
//! use nova_noc::LineConfig;
//!
//! # fn main() -> Result<(), nova::NovaError> {
//! let cache = TableCache::new();
//! let gelu = TableKey::paper(Activation::Gelu);
//! let exp = TableKey::paper(Activation::Exp);
//! // Two shard workers (two OS threads), two resident activation tables.
//! let mut engine = ServingEngine::builder(ApproximatorKind::NovaNoc)
//!     .line(LineConfig::paper_default(4, 8))
//!     .cache(&cache)
//!     .tables([gelu, exp])
//!     .shards(2)
//!     .build()?;
//! let x = Fixed::from_f64(0.5, Q4_12, Rounding::NearestEven);
//! // Blocking: one mixed-activation slate.
//! let outputs = engine.serve(&[
//!     ServingRequest::new(0, gelu, vec![x; 3]),
//!     ServingRequest::new(1, exp, vec![x; 2]),
//! ])?;
//! assert_eq!(outputs[0][0], engine.table().eval(x));
//! // Non-blocking session: submit now, poll or drain later.
//! let ticket = engine.submit(&[ServingRequest::new(0, exp, vec![x; 5])])?;
//! let results = engine.drain();
//! assert_eq!(results[0].0, ticket);
//! assert_eq!(results[0].1.as_ref().unwrap()[0].len(), 5);
//! // Fused op-graph plan: the paper's softmax datapath as one request —
//! // max-subtract, PWL exp, denominator range-reduce, PWL reciprocal,
//! // exact shift-scale — executed stage-by-stage inside the workers.
//! let softmax = Plan::fused_softmax(Q4_12, Rounding::NearestEven);
//! let mut fused = ServingEngine::builder(ApproximatorKind::NovaNoc)
//!     .line(LineConfig::paper_default(4, 8))
//!     .cache(&cache)
//!     .plan(&softmax)
//!     .build()?;
//! let probs = fused.serve(&[ServingRequest::new(0, softmax, vec![x; 4])])?;
//! assert_eq!(probs[0].len(), 4);
//! # Ok(())
//! # }
//! ```
//!
//! # Migrating from tagged requests to plans
//!
//! PR 7 replaced the single `activation: TableKey` tag on
//! [`ServingRequest`] with an op-graph [`Plan`] and removed the PR 5
//! v1 positional constructors ("kept for one release"). The mapping is
//! mechanical:
//!
//! | tagged surface (≤ PR 6) | op-graph surface |
//! |---|---|
//! | `ServingRequest::new(s, key, xs)` | unchanged — `TableKey` converts `Into<Plan>` |
//! | `ServingRequest { activation: key, .. }` | `ServingRequest { plan: key.into(), .. }` |
//! | hand-rolled softmax around single lookups | `ServingRequest::new(s, Plan::fused_softmax(fmt, rnd), xs)` |
//! | `ServingEngine::new(kind, line, table, shards)` | `builder(kind).line(line).cache(&c).table(key).shards(n).build()` |
//! | `ServingEngine::for_host(kind, tech, cfg, &c, key, n)` | `builder(kind).host(tech, cfg).cache(&c).table(key).shards(n).build()` |

use std::collections::{HashMap, VecDeque};
// Atomics come through the nova-check facade (std in normal builds,
// instrumented under `--cfg nova_check_model`); nova-lint keeps raw
// `std::sync::atomic` imports out of this crate.
use nova_check::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

use nova_accel::config::AcceleratorConfig;
use nova_approx::{fit, Activation, QuantizedPwl};
use nova_fixed::{Fixed, FixedBatch, QFormat, Rounding, Q4_12};
use nova_noc::{LineConfig, LinkConfig};
use nova_serde::Value;
use nova_synth::TechModel;

pub use nova_noc::fault::{FaultInjector, InjectedFault};

use crate::spsc::{self, Doorbell, PushError};
use crate::vector_unit::{build, line_for_kind, HostGeometry, VectorUnit};
use crate::{ApproximatorKind, NovaError};

/// Everything that determines a quantized table's bits — the cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TableKey {
    /// The approximated activation.
    pub activation: Activation,
    /// Breakpoint count of the PWL fit.
    pub breakpoints: usize,
    /// Fixed-point word format.
    pub format: QFormat,
    /// Rounding mode for quantization and the MAC output.
    pub rounding: Rounding,
}

impl TableKey {
    /// The paper's defaults: 16 breakpoints in Q4.12 with round-to-
    /// nearest-even.
    #[must_use]
    pub fn paper(activation: Activation) -> Self {
        Self {
            activation,
            breakpoints: 16,
            format: Q4_12,
            rounding: Rounding::NearestEven,
        }
    }
}

/// One stage of an op-graph [`Plan`]: a resident-table lookup or an
/// in-engine elementwise/reduce step executed between lookups.
///
/// The row ops implement the paper's softmax decomposition (see
/// [`nova_approx::softmax`]): every step other than the two PWL lookups
/// is exact integer arithmetic over the request's row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanStage {
    /// Evaluate every lane through the resident table for this key
    /// (re-programming the worker's unit if a different table is
    /// loaded).
    Lookup(TableKey),
    /// Exact row max-subtract in the raw domain: each lane becomes
    /// `x - max(row)` (saturating), so a following `exp` lookup sees
    /// the softmax-normalized domain `[-8, 0]`.
    MaxSubtract,
    /// Reduce the row to its denominator `Σ max(lane, 0)`, range-reduce
    /// it to `m · 2^e` with `m ∈ [1, 2)`, latch the pre-reduce lanes as
    /// numerators, and broadcast `m` into every lane (feeding a
    /// reciprocal lookup). An all-zero row latches the uniform
    /// fallback for the matching [`RangeScale`](Self::RangeScale).
    SumRangeReduce,
    /// Scale each latched numerator by the looked-up `1/m` and the
    /// exact shift `2^{-e}` from the preceding
    /// [`SumRangeReduce`](Self::SumRangeReduce) — the final softmax
    /// probabilities in the word format.
    RangeScale,
}

/// An ordered op-graph plan: what one [`ServingRequest`] asks the
/// engine to execute over its inputs.
///
/// The trivial plan is a single [`PlanStage::Lookup`] — exactly the old
/// tagged-request behavior, and what `TableKey: Into<Plan>` builds.
/// Multi-stage ("fused") plans run entirely inside the shard workers,
/// ping-ponging between scratch batches; their reduce stages operate on
/// each request's row, so a fused request's inputs must fit one
/// `(routers × neurons)` batch.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Plan {
    stages: Vec<PlanStage>,
}

impl Plan {
    /// A plan from explicit stages. Validated at admission (or eagerly
    /// via [`validate`](Self::validate)).
    #[must_use]
    pub fn new(stages: impl IntoIterator<Item = PlanStage>) -> Self {
        Self {
            stages: stages.into_iter().collect(),
        }
    }

    /// The trivial one-stage plan: a single table lookup.
    #[must_use]
    pub fn lookup(key: TableKey) -> Self {
        Self {
            stages: vec![PlanStage::Lookup(key)],
        }
    }

    /// The paper's fused softmax datapath as one plan: row max-subtract,
    /// PWL `exp` lookup, denominator sum + range reduction, PWL
    /// reciprocal lookup, exact reciprocal-scale. Both tables use the
    /// paper's 16 breakpoints in the given word format; register them
    /// via [`EngineBuilder::plan`].
    ///
    /// Numerically this is [`nova_approx::softmax::ApproxSoftmax`]'s
    /// datapath with the max subtraction performed on the already
    /// quantized words (the engine receives `Fixed` inputs, not `f64`
    /// logits).
    #[must_use]
    pub fn fused_softmax(format: QFormat, rounding: Rounding) -> Self {
        let table = |activation| TableKey {
            activation,
            breakpoints: 16,
            format,
            rounding,
        };
        Self::new([
            PlanStage::MaxSubtract,
            PlanStage::Lookup(table(Activation::Exp)),
            PlanStage::SumRangeReduce,
            PlanStage::Lookup(table(Activation::Recip)),
            PlanStage::RangeScale,
        ])
    }

    /// The stages, in execution order.
    #[must_use]
    pub fn stages(&self) -> &[PlanStage] {
        &self.stages
    }

    /// `Some(key)` when this is the trivial one-lookup plan.
    #[must_use]
    pub fn single_lookup(&self) -> Option<TableKey> {
        match self.stages[..] {
            [PlanStage::Lookup(key)] => Some(key),
            _ => None,
        }
    }

    /// True for multi-stage (fused) plans.
    #[must_use]
    pub fn is_fused(&self) -> bool {
        self.stages.len() > 1
    }

    /// Every table key the plan looks up, in stage order.
    pub fn table_keys(&self) -> impl Iterator<Item = TableKey> + '_ {
        self.stages.iter().filter_map(|stage| match stage {
            PlanStage::Lookup(key) => Some(*key),
            _ => None,
        })
    }

    /// The word format and rounding the plan's row ops run in — the
    /// first lookup's. `None` for a (malformed) plan with no lookup.
    #[must_use]
    pub fn word_format(&self) -> Option<(QFormat, Rounding)> {
        self.table_keys()
            .next()
            .map(|key| (key.format, key.rounding))
    }

    /// Checks the structural invariants the engine relies on: at least
    /// one stage, at least one lookup, all lookups in one word format,
    /// and every [`PlanStage::RangeScale`] preceded by a
    /// [`PlanStage::SumRangeReduce`] that latched its numerators.
    ///
    /// # Errors
    ///
    /// Returns [`NovaError::BatchShape`] describing the violated
    /// invariant.
    pub fn validate(&self) -> Result<(), NovaError> {
        if self.stages.is_empty() {
            return Err(NovaError::BatchShape(
                "an op-graph plan needs at least one stage".into(),
            ));
        }
        let Some((format, rounding)) = self.word_format() else {
            return Err(NovaError::BatchShape(
                "an op-graph plan needs at least one table lookup stage".into(),
            ));
        };
        for key in self.table_keys() {
            if key.format != format || key.rounding != rounding {
                return Err(NovaError::BatchShape(format!(
                    "op-graph plan mixes word formats: {:?}/{:?} vs {:?}/{:?} — all \
                     lookups in one plan must share format and rounding",
                    format, rounding, key.format, key.rounding
                )));
            }
        }
        let mut reduced = false;
        for stage in &self.stages {
            match stage {
                PlanStage::SumRangeReduce => reduced = true,
                PlanStage::RangeScale if !reduced => {
                    return Err(NovaError::BatchShape(
                        "op-graph plan scales before any SumRangeReduce latched \
                         numerators"
                            .into(),
                    ));
                }
                _ => {}
            }
        }
        Ok(())
    }
}

impl From<TableKey> for Plan {
    /// A tagged request is the trivial one-stage lookup plan.
    fn from(key: TableKey) -> Self {
        Self::lookup(key)
    }
}

impl From<&Plan> for Plan {
    fn from(plan: &Plan) -> Self {
        plan.clone()
    }
}

/// Shared state behind a [`TableCache`] handle.
#[derive(Debug, Default)]
struct CacheInner {
    tables: RwLock<HashMap<TableKey, Arc<QuantizedPwl>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    lost_races: AtomicU64,
}

/// A keyed, thread-shared cache of fitted+quantized tables.
///
/// Fitting a PWL and quantizing it is the expensive, data-independent
/// prefix of every evaluation; the cache does it once per key and hands
/// out [`Arc`] clones, so a cache hit is a pointer copy and every engine
/// serving the same operator shares one allocation.
///
/// The cache itself is a cheap shared handle: [`Clone`] clones the
/// handle, not the store, so engines and worker threads observe one
/// cache. [`get_or_fit`](Self::get_or_fit) takes `&self` — lookups take
/// a read lock, and a miss fits *outside* any lock before taking the
/// write lock to insert. When two threads race to fit the same key, the
/// insert path detects the lost race, discards the duplicate fit and
/// returns the winner's [`Arc`], so all callers converge on one table
/// allocation.
#[derive(Debug, Clone, Default)]
pub struct TableCache {
    inner: Arc<CacheInner>,
}

impl TableCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached table for `key`, fitting and quantizing it on
    /// first use. Hits return the *same* `Arc` (pointer-equal) — even
    /// when concurrent callers raced to fit the key.
    ///
    /// A panicked fitter thread cannot take the cache down with it: the
    /// map is only ever mutated under the write lock *after* a fit
    /// completed, so a poisoned lock still guards a valid map — both
    /// lock sites recover the guard instead of propagating the poison,
    /// and every other engine sharing the cache keeps serving.
    ///
    /// # Errors
    ///
    /// Propagates PWL fitting / quantization failures.
    pub fn get_or_fit(&self, key: TableKey) -> Result<Arc<QuantizedPwl>, NovaError> {
        if let Some(table) = self
            .inner
            .tables
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            // ordering: Relaxed — monotonic stats counter, no payload.
            self.inner.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(table));
        }
        // Miss: fit outside any lock so concurrent fitters of *different*
        // keys never serialize on the expensive part.
        let pwl = fit::fit_activation(
            key.activation,
            key.breakpoints,
            fit::BreakpointStrategy::Uniform,
        )?;
        let table = Arc::new(QuantizedPwl::from_pwl(&pwl, key.format, key.rounding)?);
        let mut tables = self
            .inner
            .tables
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(winner) = tables.get(&key) {
            // Lost the race: another thread fitted and inserted the same
            // key while we fitted. Converge on its allocation.
            // ordering: Relaxed — monotonic stats counter, no payload.
            self.inner.lost_races.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(winner));
        }
        // ordering: Relaxed — monotonic stats counter, no payload.
        self.inner.misses.fetch_add(1, Ordering::Relaxed);
        tables.insert(key, Arc::clone(&table));
        Ok(table)
    }

    /// Cache hits served so far (fast-path read hits).
    #[must_use]
    pub fn hits(&self) -> u64 {
        // ordering: Relaxed — stats snapshot; no synchronization carried.
        self.inner.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (tables fitted and inserted) so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        // ordering: Relaxed — stats snapshot; no synchronization carried.
        self.inner.misses.load(Ordering::Relaxed)
    }

    /// Fits discarded after losing an insert race to a concurrent fitter
    /// of the same key. Always 0 under single-threaded use.
    #[must_use]
    pub fn lost_races(&self) -> u64 {
        // ordering: Relaxed — stats snapshot; no synchronization carried.
        self.inner.lost_races.load(Ordering::Relaxed)
    }

    /// Distinct tables held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .tables
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Whether the cache holds no tables yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes every resident table into a warm-start snapshot: a
    /// [`Value`] tree (render it with [`Value::to_json`]) holding each
    /// table's [`TableKey`] plus its exact raw words — clamp bounds,
    /// quantized breakpoints, and the `slopes_raw`/`biases_raw` SoA
    /// mirrors. [`restore`](Self::restore) rebuilds every derived
    /// structure from these words, so a daemon restart skips refitting
    /// and still serves bit-identical results.
    ///
    /// The layout is **stable** (`"nova-table-cache/v1"`, entries sorted
    /// by key, pinned by a golden file in the repo tests): snapshots
    /// taken today stay restorable by later releases.
    #[must_use]
    pub fn snapshot(&self) -> Value {
        let tables = self
            .inner
            .tables
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut entries: Vec<(TableKey, Arc<QuantizedPwl>)> =
            tables.iter().map(|(k, t)| (*k, Arc::clone(t))).collect();
        drop(tables);
        // HashMap iteration order is arbitrary: sort on the key so equal
        // caches serialize byte-identically (the golden-file contract).
        entries.sort_by_key(|(k, _)| {
            (
                activation_name(k.activation),
                k.breakpoints,
                k.format.total_bits(),
                k.format.frac_bits(),
                rounding_name(k.rounding),
            )
        });
        let tables = entries
            .into_iter()
            .map(|(key, table)| {
                let (lo, hi) = table.clamp_bounds();
                let raw_seq =
                    |raws: &[i64]| Value::Seq(raws.iter().map(|&r| Value::I64(r)).collect());
                let bp_raw: Vec<i64> = table.breakpoints().iter().map(|b| b.raw()).collect();
                Value::Map(vec![
                    (
                        "activation".into(),
                        Value::Str(activation_name(key.activation).into()),
                    ),
                    ("breakpoints".into(), Value::U64(key.breakpoints as u64)),
                    (
                        "total_bits".into(),
                        Value::U64(u64::from(key.format.total_bits())),
                    ),
                    (
                        "frac_bits".into(),
                        Value::U64(u64::from(key.format.frac_bits())),
                    ),
                    (
                        "rounding".into(),
                        Value::Str(rounding_name(key.rounding).into()),
                    ),
                    ("lo_raw".into(), Value::I64(lo.raw())),
                    ("hi_raw".into(), Value::I64(hi.raw())),
                    ("breakpoints_raw".into(), raw_seq(&bp_raw)),
                    ("slopes_raw".into(), raw_seq(table.slopes_raw())),
                    ("biases_raw".into(), raw_seq(table.biases_raw())),
                ])
            })
            .collect();
        Value::Map(vec![
            ("format".into(), Value::Str(SNAPSHOT_FORMAT.into())),
            ("tables".into(), Value::Seq(tables)),
        ])
    }

    /// Rebuilds tables from a [`snapshot`](Self::snapshot) and inserts
    /// them, returning how many were inserted. Keys already resident are
    /// left untouched (their live `Arc`s win), and the hit/miss/lost-race
    /// counters don't move — a warm start is not a cache miss.
    ///
    /// # Errors
    ///
    /// Returns [`NovaError::Runtime`] for an unrecognized snapshot format
    /// tag or a structurally malformed tree, and propagates raw-word
    /// validation failures from [`QuantizedPwl::from_raw_parts`] —
    /// nothing is inserted unless the whole snapshot decodes.
    pub fn restore(&self, snapshot: &Value) -> Result<usize, NovaError> {
        let bad = |what: &str| NovaError::Runtime(format!("table cache snapshot: {what}"));
        let format_tag = snapshot
            .get("format")
            .and_then(Value::as_str)
            .map_err(|e| bad(&format!("missing format tag: {e}")))?;
        if format_tag != SNAPSHOT_FORMAT {
            return Err(bad(&format!(
                "unrecognized format {format_tag:?} (expected {SNAPSHOT_FORMAT:?})"
            )));
        }
        let entries = snapshot
            .get("tables")
            .and_then(Value::as_seq)
            .map_err(|e| bad(&format!("missing tables sequence: {e}")))?;
        let mut decoded: Vec<(TableKey, QuantizedPwl)> = Vec::with_capacity(entries.len());
        for entry in entries {
            let str_field = |name: &str| {
                entry
                    .get(name)
                    .and_then(Value::as_str)
                    .map_err(|e| bad(&format!("table entry field {name}: {e}")))
            };
            let u64_field = |name: &str| {
                entry
                    .get(name)
                    .and_then(Value::as_u64)
                    .map_err(|e| bad(&format!("table entry field {name}: {e}")))
            };
            let i64_field = |name: &str| {
                entry
                    .get(name)
                    .and_then(Value::as_i64)
                    .map_err(|e| bad(&format!("table entry field {name}: {e}")))
            };
            let raw_field = |name: &str| -> Result<Vec<i64>, NovaError> {
                entry
                    .get(name)
                    .and_then(Value::as_seq)
                    .map_err(|e| bad(&format!("table entry field {name}: {e}")))?
                    .iter()
                    .map(|v| {
                        v.as_i64()
                            .map_err(|e| bad(&format!("non-integer word in {name}: {e}")))
                    })
                    .collect()
            };
            let activation_str = str_field("activation")?;
            let activation = activation_from_name(activation_str)
                .ok_or_else(|| bad(&format!("unknown activation {activation_str:?}")))?;
            let rounding_str = str_field("rounding")?;
            let rounding = rounding_from_name(rounding_str)
                .ok_or_else(|| bad(&format!("unknown rounding {rounding_str:?}")))?;
            let total_bits = u8::try_from(u64_field("total_bits")?)
                .map_err(|_| bad("total_bits out of range"))?;
            let frac_bits =
                u8::try_from(u64_field("frac_bits")?).map_err(|_| bad("frac_bits out of range"))?;
            let format = QFormat::new(total_bits, frac_bits)
                .map_err(|e| bad(&format!("bad word format: {e}")))?;
            let key = TableKey {
                activation,
                breakpoints: usize::try_from(u64_field("breakpoints")?)
                    .map_err(|_| bad("breakpoint count out of range"))?,
                format,
                rounding,
            };
            let table = QuantizedPwl::from_raw_parts(
                format,
                rounding,
                i64_field("lo_raw")?,
                i64_field("hi_raw")?,
                &raw_field("breakpoints_raw")?,
                &raw_field("slopes_raw")?,
                &raw_field("biases_raw")?,
            )
            .map_err(|e| bad(&format!("table {activation_str}: {e}")))?;
            decoded.push((key, table));
        }
        let mut tables = self
            .inner
            .tables
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut inserted = 0usize;
        for (key, table) in decoded {
            if let std::collections::hash_map::Entry::Vacant(slot) = tables.entry(key) {
                slot.insert(Arc::new(table));
                inserted += 1;
            }
        }
        Ok(inserted)
    }
}

/// Version tag of the [`TableCache::snapshot`] wire layout. Bump only
/// with a migration path: the golden-file test pins the `v1` bytes.
const SNAPSHOT_FORMAT: &str = "nova-table-cache/v1";

/// Stable serialized name of an [`Activation`]. The golden-file test
/// pins every current name, so a variant rename (which would change its
/// snapshot encoding) fails CI instead of silently orphaning old
/// snapshots.
fn activation_name(a: Activation) -> &'static str {
    match a {
        Activation::Relu => "relu",
        Activation::Gelu => "gelu",
        Activation::Sigmoid => "sigmoid",
        Activation::Tanh => "tanh",
        Activation::Exp => "exp",
        Activation::Erf => "erf",
        Activation::Silu => "silu",
        Activation::Softplus => "softplus",
        Activation::Recip => "recip",
        Activation::Rsqrt => "rsqrt",
        Activation::Sqrt => "sqrt",
        // `Activation` is non-exhaustive: a variant added without a
        // snapshot name serializes as "unknown", which `restore`
        // rejects — loud at load time rather than corrupt on disk.
        _ => "unknown",
    }
}

fn activation_from_name(name: &str) -> Option<Activation> {
    if name == "unknown" {
        return None;
    }
    Activation::all()
        .iter()
        .copied()
        .find(|&a| activation_name(a) == name)
}

/// Stable serialized name of a [`Rounding`] mode (see
/// [`activation_name`]).
fn rounding_name(r: Rounding) -> &'static str {
    match r {
        Rounding::NearestEven => "nearest-even",
        Rounding::NearestAway => "nearest-away",
        Rounding::Floor => "floor",
    }
}

fn rounding_from_name(name: &str) -> Option<Rounding> {
    [
        Rounding::NearestEven,
        Rounding::NearestAway,
        Rounding::Floor,
    ]
    .into_iter()
    .find(|&r| rounding_name(r) == name)
}

/// One non-linear query burst from one inference stream.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingRequest {
    /// Stream (tenant) id — used only for per-stream gather.
    pub stream: usize,
    /// The op graph serving this burst: a one-stage lookup plan for
    /// plain activation serving, or a fused multi-stage pipeline (e.g.
    /// [`Plan::fused_softmax`]).
    pub plan: Plan,
    /// Raw query values in the plan's word format. A fused plan treats
    /// them as one row (its reduce stages span the whole burst), so
    /// they must fit one `(routers × neurons)` batch.
    pub inputs: Vec<Fixed>,
}

impl ServingRequest {
    /// A request: `stream`'s burst of `inputs` through `plan` — pass a
    /// bare [`TableKey`] for the trivial single-lookup plan.
    #[must_use]
    pub fn new(stream: usize, plan: impl Into<Plan>, inputs: Vec<Fixed>) -> Self {
        Self {
            stream,
            plan: plan.into(),
            inputs,
        }
    }
}

/// The typed configuration an engine is built from — what the
/// [`EngineBuilder`] assembles and [`ServingEngine::config`] reports.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// The approximator hardware every shard worker instantiates.
    pub kind: ApproximatorKind,
    /// Line geometry: `(routers × neurons_per_router)` is the batch
    /// capacity, and the NOVA arm derives its SMART reach from it.
    pub line: LineConfig,
    /// Worker shards (OS threads) in the pool.
    pub shards: usize,
    /// Resident activation tables, in registration order; the first is
    /// the default every worker is pre-programmed with.
    pub tables: Vec<TableKey>,
}

impl ServingConfig {
    /// Checks the structural invariants every engine needs.
    ///
    /// # Errors
    ///
    /// Returns [`NovaError::BatchShape`] for `shards == 0` or an empty
    /// table set.
    pub fn validate(&self) -> Result<(), NovaError> {
        if self.shards == 0 {
            return Err(NovaError::BatchShape(
                "serving engine needs at least one worker shard".into(),
            ));
        }
        if self.tables.is_empty() {
            return Err(NovaError::BatchShape(
                "serving engine needs at least one resident activation table".into(),
            ));
        }
        Ok(())
    }
}

/// Arms per-shard fault detection on a [`ServingEngine`] — the
/// [`EngineBuilder::fault_check`] knob.
///
/// With a policy armed, every shard worker re-evaluates a small *canary
/// slice* of each lookup batch through the architectural scalar path
/// ([`QuantizedPwl::eval`]) and compares it against the SoA batch
/// kernel's words. A mismatch — or any panic caught inside the worker's
/// unwind boundary — is treated as **shard failure**: the shard is
/// quarantined (feed ring closed, worker retired) and its in-flight
/// work units are requeued to the surviving shards, so the slate still
/// completes bit-identical to
/// [`serve_reference`](ServingEngine::serve_reference). Only when the
/// last healthy shard fails does the engine poison.
///
/// Deterministic chaos is driven through [`inject`](Self::inject): a
/// [`FaultInjector`] rides on a chosen shard and corrupts one output
/// word (or panics) after a configured number of lookup evaluations.
///
/// Detection coverage follows the canary width: an injected bit flip
/// lands in lane 0, which every canary width ≥ 1 covers; real upsets
/// outside the canary lanes are the same residual risk a sampled
/// checker has in hardware.
#[derive(Debug, Clone, Default)]
pub struct FaultPolicy {
    canary_slots: usize,
    injectors: Vec<(usize, FaultInjector)>,
}

impl FaultPolicy {
    /// A policy with the default canary width (2 lanes per lookup
    /// batch) and no injected faults — pure detection arming.
    #[must_use]
    pub fn new() -> Self {
        Self {
            canary_slots: 2,
            injectors: Vec::new(),
        }
    }

    /// Sets how many leading lanes of each lookup batch the workers
    /// re-check through the scalar path. Clamped to at least 1 when the
    /// policy is armed; wider canaries catch more corruption at more
    /// re-evaluation cost.
    #[must_use]
    pub fn canary_slots(mut self, lanes: usize) -> Self {
        self.canary_slots = lanes;
        self
    }

    /// Arms a deterministic fault on shard `shard` (ignored if the
    /// engine has fewer shards). The injector ticks once per lookup
    /// evaluation on that shard and fires exactly once.
    #[must_use]
    pub fn inject(mut self, shard: usize, injector: FaultInjector) -> Self {
        self.injectors.push((shard, injector));
        self
    }

    /// The injector armed for `shard`, if any (first match wins).
    fn injector_for(&self, shard: usize) -> Option<FaultInjector> {
        self.injectors
            .iter()
            .find(|(s, _)| *s == shard)
            .map(|(_, inj)| inj.clone())
    }
}

/// Builds a [`ServingEngine`] from named parts instead of positional
/// arguments: geometry ([`line`](Self::line) or [`host`](Self::host)),
/// resident activation tables ([`table`](Self::table) /
/// [`tables`](Self::tables), fitted through an optional shared
/// [`cache`](Self::cache)), the worker count
/// ([`shards`](Self::shards), default 1) and optional fault detection
/// ([`fault_check`](Self::fault_check)).
#[derive(Debug)]
pub struct EngineBuilder<'a> {
    kind: ApproximatorKind,
    line: Option<LineConfig>,
    host: Option<(&'a TechModel, &'a AcceleratorConfig)>,
    shards: usize,
    tables: Vec<TableKey>,
    cache: Option<&'a TableCache>,
    unit_cap: usize,
    fault_policy: Option<FaultPolicy>,
}

impl<'a> EngineBuilder<'a> {
    fn new(kind: ApproximatorKind) -> Self {
        Self {
            kind,
            line: None,
            host: None,
            shards: 1,
            tables: Vec::new(),
            cache: None,
            unit_cap: MAX_UNIT_BATCHES,
            fault_policy: None,
        }
    }

    /// Arms per-shard fault detection (and optional deterministic fault
    /// injection) — see [`FaultPolicy`]. Without this the engine runs
    /// exactly as before: panics fail the slate, nothing quarantines.
    #[must_use]
    pub fn fault_check(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = Some(policy);
        self
    }

    /// Explicit line geometry (`routers × neurons` grid plus link/reach).
    /// Overrides [`host`](Self::host) if both are given.
    #[must_use]
    pub fn line(mut self, line: LineConfig) -> Self {
        self.line = Some(line);
        self
    }

    /// Derives the line geometry from a Table II host at build time,
    /// exactly as the overlay does (the NOVA arm compiles the first
    /// table's broadcast schedule to program the NoC clock and reach).
    #[must_use]
    pub fn host(mut self, tech: &'a TechModel, host: &'a AcceleratorConfig) -> Self {
        self.host = Some((tech, host));
        self
    }

    /// Worker shards (OS threads) in the pool. Defaults to 1.
    #[must_use]
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Caps the adaptive run length `K`: how many coalesced
    /// same-activation batches admission may pack into one work unit.
    /// Deep slates fatten units toward this cap (amortizing ring hops
    /// and sequence bookkeeping); shallow slates always thin out to one
    /// batch per unit regardless. Clamped to at least 1; defaults to 8.
    #[must_use]
    pub fn max_batches_per_unit(mut self, k: usize) -> Self {
        self.unit_cap = k.max(1);
        self
    }

    /// Registers one resident activation table.
    #[must_use]
    pub fn table(mut self, key: TableKey) -> Self {
        self.tables.push(key);
        self
    }

    /// Registers several resident activation tables at once.
    #[must_use]
    pub fn tables(mut self, keys: impl IntoIterator<Item = TableKey>) -> Self {
        self.tables.extend(keys);
        self
    }

    /// Registers every table a plan looks up, so requests carrying it
    /// (or any plan over the same keys) admit without a resident-table
    /// miss. Row-op stages need no registration.
    #[must_use]
    pub fn plan(mut self, plan: &Plan) -> Self {
        self.tables.extend(plan.table_keys());
        self
    }

    /// Fits the registered tables through a shared cache, so a second
    /// engine for the same keys reuses the same `Arc`'d tables. Without
    /// this the builder fits into a private cache.
    #[must_use]
    pub fn cache(mut self, cache: &'a TableCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Fits the tables, resolves the geometry and spawns the worker
    /// pool.
    ///
    /// # Errors
    ///
    /// Returns [`NovaError::BatchShape`] when no table or no geometry
    /// was configured (or `shards == 0`), and propagates table fitting /
    /// unit construction / thread spawn failures.
    pub fn build(self) -> Result<ServingEngine, NovaError> {
        if self.tables.is_empty() {
            return Err(NovaError::BatchShape(
                "engine builder needs at least one activation table: call .table(key) or .tables([..])"
                    .into(),
            ));
        }
        // Duplicate keys collapse onto one resident table.
        let mut keys: Vec<TableKey> = Vec::with_capacity(self.tables.len());
        for key in self.tables {
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
        let local_cache;
        let cache = match self.cache {
            Some(cache) => cache,
            None => {
                local_cache = TableCache::new();
                &local_cache
            }
        };
        let tables = keys
            .iter()
            .map(|&key| Ok((key, cache.get_or_fit(key)?)))
            .collect::<Result<Vec<_>, NovaError>>()?;
        let line = match (self.line, self.host) {
            (Some(line), _) => line,
            (None, Some((tech, host))) => line_for_kind(
                self.kind,
                tech,
                &tables[0].1,
                LinkConfig::paper(),
                HostGeometry::of(host),
            )?,
            (None, None) => return Err(NovaError::BatchShape(
                "engine builder needs a geometry: call .line(config) or .host(tech, accelerator)"
                    .into(),
            )),
        };
        let config = ServingConfig {
            kind: self.kind,
            line,
            shards: self.shards,
            tables: keys,
        };
        ServingEngine::from_config_parts(config, tables, self.unit_cap, self.fault_policy)
    }
}

/// Accounting of a [`ServingEngine`], accumulated across `serve` calls.
///
/// Assembled by [`ServingEngine::stats`] from the per-worker counters
/// ([`ServingEngine::worker_loads`]): `queries`, `batches`,
/// `latency_cycles` and the table-switch counters are sums over the
/// shard workers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ServingStats {
    /// Requests served to completion (slates that returned an error
    /// count their dispatched batches/queries below, but no requests).
    pub requests: u64,
    /// Individual queries served (excludes padding).
    pub queries: u64,
    /// Vector-unit batches dispatched.
    pub batches: u64,
    /// Work units dispatched to the pool — each packs a run of up to
    /// `K` same-activation batches, so `jobs <= batches` and the gap is
    /// the channel traffic the fat-unit admission saved.
    pub jobs: u64,
    /// Grid slots filled with padding (tail batches only).
    pub padded_slots: u64,
    /// Accumulated per-batch latency over all dispatched batches, in
    /// accelerator cycles — the *serial* sum across the whole pool; see
    /// [`ServingEngine::makespan_cycles`] for the concurrent-shards
    /// view.
    pub latency_cycles: u64,
    /// Activation-table re-programs performed by the workers (a batch
    /// whose activation differs from the one its worker had loaded).
    pub table_switches: u64,
    /// Accumulated stall cycles those switches cost — 0 on the NOVA NoC
    /// (the table lives on the wire), `entries` per switch on LUT banks,
    /// more on the SDP ([`crate::timeline::table_switch_cycles`]).
    pub switch_cycles: u64,
    /// Shards quarantined after a detected fault (see [`FaultPolicy`]):
    /// their feed rings are closed and their workers retired, but the
    /// engine keeps serving on the survivors.
    pub quarantined_shards: u64,
    /// In-flight work units re-admitted to healthy shards after their
    /// original shard was quarantined. Requeued units contribute nothing
    /// to any other counter — only the healthy re-run is accounted.
    pub requeued_units: u64,
    /// Capacity lost to quarantine, in percent of the configured shard
    /// count (`100 × quarantined / shards`; 0.0 while every shard is
    /// healthy).
    pub degraded_capacity_pct: f64,
}

nova_serde::impl_serde_struct!(ServingStats {
    requests,
    queries,
    batches,
    jobs,
    padded_slots,
    latency_cycles,
    table_switches,
    switch_cycles,
    quarantined_shards,
    requeued_units,
    degraded_capacity_pct,
});

/// Per-shard-worker accounting: what one worker thread served.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerLoad {
    /// Work units this worker completed (runs of coalesced batches).
    pub jobs: u64,
    /// Batches this worker evaluated successfully.
    pub batches: u64,
    /// Real (non-padded) queries in those batches.
    pub queries: u64,
    /// Accumulated per-batch latency, in accelerator cycles.
    pub cycles: u64,
    /// Activation-table re-programs this worker performed.
    pub table_switches: u64,
    /// Stall cycles those re-programs cost this worker.
    pub switch_cycles: u64,
    /// Wall-clock nanoseconds spent processing work units (switch +
    /// eval + scatter), for the bench's per-stage breakdown.
    pub busy_ns: u64,
}

nova_serde::impl_serde_struct!(WorkerLoad {
    jobs,
    batches,
    queries,
    cycles,
    table_switches,
    switch_cycles,
    busy_ns,
});

/// Wall-clock pipeline-stage attribution, accumulated since
/// construction — see [`ServingEngine::stage_times`].
///
/// `admit_ns` and `finalize_ns` are spent on the *caller's* thread;
/// worker busy time runs concurrently on the pool, so the stage sums do
/// not add up to elapsed wall time — they attribute it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StageTimes {
    /// Nanoseconds the caller thread spent in admission: resolving
    /// tags, packing batches, building work units.
    pub admit_ns: u64,
    /// Sum over all workers of nanoseconds spent processing work units.
    pub worker_busy_ns: u64,
    /// The busiest single worker's processing nanoseconds — the pool's
    /// wall-clock critical path.
    pub worker_busy_max_ns: u64,
    /// Nanoseconds the caller thread spent finalizing finished tickets
    /// (watermark bookkeeping; results were already scattered in
    /// place by the workers).
    pub finalize_ns: u64,
    /// Nanoseconds the caller thread spent quarantining faulted shards
    /// and re-admitting their in-flight units to healthy shards (ring
    /// close + worker join + unit re-wrap); 0 while no fault fired.
    pub requeue_ns: u64,
}

nova_serde::impl_serde_struct!(StageTimes {
    admit_ns,
    worker_busy_ns,
    worker_busy_max_ns,
    finalize_ns,
    requeue_ns,
});

/// Where one query's output word lands: a raw pointer into the
/// submitting ticket's pre-sized per-request output row.
///
/// The pointee is a slot of a `Vec<Fixed>` inside
/// `TicketState::outputs`. Admission sizes every row to its final
/// length *before* taking these pointers and never resizes a row while
/// its ticket is in flight, and moving `TicketState` (or the `inflight`
/// vector it lives in) moves only `Vec` headers — the heap rows the
/// pointers target stay put. The sequence ledger guarantees exclusive
/// access: each slot belongs to exactly one packed batch, and the
/// engine only reads the rows after every unit of the ticket has
/// completed (a `SeqCst` completion-ring crossing orders the worker's
/// writes before the engine's reads).
#[derive(Clone, Copy)]
struct OutSlot(*mut Fixed);

// SAFETY: an `OutSlot` is a plain address; the exclusivity and
// lifetime argument above is what makes sending it to a worker sound.
#[allow(unsafe_code)]
unsafe impl Send for OutSlot {}

/// One stage of a [`CompiledPlan`]: a [`PlanStage`] with its lookup
/// resolved to the resident table's `Arc`, so workers never touch the
/// engine's table list.
enum StageOp {
    Lookup {
        key: TableKey,
        table: Arc<QuantizedPwl>,
    },
    MaxSubtract,
    SumRangeReduce,
    RangeScale,
}

/// A validated, table-resolved plan — what admission memoizes per
/// [`Plan`] and work units carry to the workers.
struct CompiledPlan {
    stages: Vec<StageOp>,
    /// The word format/rounding of the plan's row ops (the first
    /// lookup's).
    format: QFormat,
    rounding: Rounding,
    /// In-domain pad value for tail slots: the first lookup table's
    /// lower clamp bound (padded lanes can never fault; their outputs
    /// are never scattered).
    pad: Fixed,
    /// Lookup stages per batch — each costs one
    /// [`VectorUnit::latency_cycles`] charge on success.
    lookups: u64,
}

impl CompiledPlan {
    /// The single-stage fast path: the trivial lookup plan's key+table.
    fn single_lookup(&self) -> Option<(&TableKey, &Arc<QuantizedPwl>)> {
        match &self.stages[..] {
            [StageOp::Lookup { key, table }] => Some((key, table)),
            _ => None,
        }
    }
}

/// Exact row max-subtract in the raw domain — [`PlanStage::MaxSubtract`]
/// as executed by both the workers and the sequential reference.
fn row_max_subtract(row: &mut [Fixed], format: QFormat) {
    let Some(max) = row.iter().map(|x| x.raw()).max() else {
        return;
    };
    for x in row {
        *x = Fixed::from_raw_saturating(x.raw() - max, format);
    }
}

/// The denominator reduce of [`PlanStage::SumRangeReduce`]:
/// `Σ max(lane, 0)` split into `m · 2^e` with `m ∈ [scale, 2·scale)`
/// raw — i.e. `m ∈ [1, 2)`. `None` for an all-zero row (the uniform
/// fallback). Bit-exact to `ApproxSoftmax::eval`'s steps 3–4.
fn row_sum_range_reduce(row: &[Fixed], format: QFormat) -> Option<(i64, i32)> {
    let sum: i64 = row.iter().map(|x| x.raw().max(0)).sum();
    if sum == 0 {
        return None;
    }
    let scale = format.scale();
    let mut e: i32 = 0;
    let mut m_raw = sum;
    while m_raw >= 2 * scale {
        m_raw >>= 1;
        e += 1;
    }
    while m_raw < scale {
        m_raw <<= 1;
        e -= 1;
    }
    Some((m_raw, e))
}

/// One lane of [`PlanStage::RangeScale`]: latched numerator times the
/// looked-up `1/m`, shifted by the exact `2^{-(frac + e)}` — bit-exact
/// to `ApproxSoftmax::eval`'s step 5.
fn range_scale_lane(num_raw: i64, recip_m: Fixed, e: i32, format: QFormat) -> Fixed {
    let wide = num_raw.max(0) * recip_m.raw();
    let shift = i32::from(format.frac_bits()) + e;
    let raw = if shift >= 0 {
        wide >> shift
    } else {
        wide << (-shift).min(62)
    };
    Fixed::from_raw_saturating(raw, format)
}

/// One coalesced batch inside a work unit: a full (possibly
/// tail-padded) input grid plus the scatter map for its `len` real
/// queries.
struct PackedBatch {
    /// Recyclable flat input grid (pool-owned between flights).
    inputs: FixedBatch,
    /// Real (non-padded) queries in the grid's leading slots.
    len: usize,
    /// Fused plans only: each packed request's `(start, len)` row
    /// within the grid — reduce stages operate per row. Empty (and
    /// allocation-free) for single-lookup plans, whose stages are
    /// row-agnostic.
    rows: Vec<(usize, usize)>,
    /// `len` output slots, one per real query, in grid-slot order. The
    /// pointees live in the ticket's `scatter` vector, which admission
    /// reserves to its exact final length before taking this pointer
    /// (no mid-submit reallocation) and which outlives every flight of
    /// the ticket's units.
    dst: *const OutSlot,
}

// SAFETY: `dst` is only dereferenced by the worker a unit is routed
// to, while the owning ticket is in flight — see `OutSlot`.
#[allow(unsafe_code)]
unsafe impl Send for PackedBatch {}

/// A fat work unit: a sequence-numbered run of up to
/// [`MAX_UNIT_BATCHES`] same-plan batches. One ring hop, one (at most)
/// table switch per lookup stage, and one completion serve the whole
/// run — that amortization is what makes the pool a wall-clock win for
/// batches that cost ~2 model cycles each.
struct WorkUnit {
    seq: u64,
    plan: Arc<CompiledPlan>,
    batches: Vec<PackedBatch>,
}

/// Completion of one work unit: pre-aggregated counters (the results
/// themselves were scattered in place by the worker) plus the batch
/// shells riding back for recycling.
struct UnitDone {
    seq: u64,
    worker: usize,
    /// Batches (and their real queries) that evaluated successfully —
    /// within a unit, later batches still run after one fails, exactly
    /// like the per-batch pipeline did.
    batches_ok: u64,
    queries_ok: u64,
    /// Summed per-batch latency of the successful batches, in cycles.
    latency: u64,
    /// Padded tail slots of the successful batches.
    padded: u64,
    table_switches: u64,
    switch_cycles: u64,
    /// Wall nanoseconds this unit kept the worker busy.
    busy_ns: u64,
    /// The unit's batches (input buffers inside), back for the pool.
    recycled: Vec<PackedBatch>,
    /// `Ok`, or the unit's first (lowest-batch) failure.
    result: Result<(), NovaError>,
    /// A shard-fault verdict (canary mismatch or armed-policy panic):
    /// the unit was *not* served — `recycled` still carries its intact
    /// batches, `plan` rides back below, and the engine must quarantine
    /// this worker and requeue the unit to a healthy shard. `None` for
    /// every normal completion.
    fault: Option<String>,
    /// The unit's plan, returned only with a fault verdict so the
    /// engine can re-wrap `recycled` into a dispatchable [`WorkUnit`].
    plan: Option<Arc<CompiledPlan>>,
}

/// One slate's results: per-request output vectors, aligned with the
/// submitted `requests`.
pub type SlateOutputs = Vec<Vec<Fixed>>;

/// A drained ticket paired with its slate's outcome — what
/// [`ServingEngine::drain`] yields per in-flight submission.
pub type DrainedTicket = (Ticket, Result<SlateOutputs, NovaError>);

/// A handle to one submitted slate, returned by
/// [`ServingEngine::submit`] and redeemed through
/// [`try_poll`](ServingEngine::try_poll) /
/// [`drain`](ServingEngine::drain).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

impl Ticket {
    /// The ticket's engine-unique id (monotonically increasing per
    /// submit).
    #[must_use]
    pub fn id(self) -> u64 {
        self.0
    }
}

/// Book-keeping of one in-flight submitted slate.
struct TicketState {
    id: u64,
    /// Global sequence number of the slate's first work unit.
    base_seq: u64,
    /// Work units dispatched for this slate.
    jobs: usize,
    /// Units completed so far; the ticket finishes at `jobs` (the
    /// watermark — no per-row reorder work happens here).
    received: usize,
    /// The scatter surface: one [`OutSlot`] per dispatched query, in
    /// dispatch order. In-flight `PackedBatch::dst` pointers alias into
    /// this vector, so it must stay untouched (not even pushed to)
    /// until every unit has completed.
    scatter: Vec<OutSlot>,
    /// Per-request output rows, pre-sized to their final lengths at
    /// admission; workers write the result words in place.
    outputs: Vec<Vec<Fixed>>,
    request_count: usize,
    /// Lowest-sequence unit failure, if any — deterministic for any
    /// worker timing because sequence order is submission order.
    failure: Option<(u64, NovaError)>,
}

/// Depth of each worker's feed ring, in work units: admission stalls a
/// shard that is this many units behind, so a slow worker
/// backpressures the coalescing stage instead of queueing the whole
/// slate.
const WORKER_FEED_DEPTH: usize = 2;

/// Depth of each worker's completion ring — and, by the same number,
/// the per-shard in-flight cap admission enforces. Because at most
/// this many units are ever sent-but-uncollected per shard, a worker's
/// completion push always finds a free slot: completion is
/// *non-blocking by invariant*, which is what lets shutdown close the
/// feeds and join workers without first draining completions.
const WORKER_DONE_DEPTH: usize = 4;

/// Hard cap on batches per work unit. Admission adapts the run length
/// `K` between 1 and this (see the builder's
/// [`max_batches_per_unit`](EngineBuilder::max_batches_per_unit)): fat
/// units amortize ring hops and sequence bookkeeping under deep
/// slates, while a shallow slate still dispatches one batch per unit
/// so tail latency and shard spread are unhurt at low load.
const MAX_UNIT_BATCHES: usize = 8;

/// One shard's engine-side plumbing: the two SPSC rings to/from its
/// worker thread, the in-flight unit count that caps completion-ring
/// occupancy, and the join handle.
struct ShardLink {
    feed: spsc::Producer<WorkUnit>,
    done: spsc::Consumer<UnitDone>,
    /// Units pushed to `feed` whose completions have not been popped
    /// from `done` yet. Admission keeps this `< WORKER_DONE_DEPTH`.
    outstanding: usize,
    handle: Option<JoinHandle<()>>,
    /// Set once a fault verdict retired this shard: its feed is closed,
    /// its worker joined, and its (soon-closed) completion ring is
    /// exempt from the worker-died poison check. Never cleared.
    quarantined: bool,
}

/// The concurrent multi-tenant serving engine.
///
/// Owns a pool of shard worker *threads* — one per shard, each holding a
/// functionally identical `Box<dyn VectorUnit>` pre-programmed with the
/// first resident table — plus the admission and reorder stages that
/// feed them (see the [module docs](self) for the pipeline). Because
/// every unit kind is bit-identical to its table and batches are
/// reassembled by sequence number, shard count and threading never
/// change results — only throughput accounting.
///
/// Built via [`ServingEngine::builder`].
pub struct ServingEngine {
    config: ServingConfig,
    /// Resident tables in registration order; index 0 is the default
    /// every worker starts programmed with.
    tables: Vec<(TableKey, Arc<QuantizedPwl>)>,
    /// Memoized compiled plans: one table-resolved `Arc` per distinct
    /// [`Plan`] ever admitted, so re-submitting a plan never re-walks
    /// the table list and admission can group requests by pointer
    /// identity.
    programs: HashMap<Plan, Arc<CompiledPlan>>,
    routers: usize,
    neurons: usize,
    /// Per-shard ring plumbing (round-robin by unit sequence).
    shards: Vec<ShardLink>,
    /// The engine thread's wakeup latch: workers ring it after every
    /// completion push, blocking waits arm → re-check → park on it.
    doorbell: Arc<Doorbell>,
    /// Per-worker counters; aggregate stats are derived from these.
    loads: Vec<WorkerLoad>,
    requests_served: u64,
    padded_slots: u64,
    /// Recycling pool of flat input batch buffers. Admission pops one
    /// per packed batch and completions return them, so a steady-state
    /// serve loop performs zero per-batch heap allocations. (Output
    /// scratch lives with each worker; results scatter straight into
    /// ticket rows.)
    spare_inputs: Vec<FixedBatch>,
    /// Recycled `WorkUnit::batches` shells (capacity-keeping).
    spare_units: Vec<Vec<PackedBatch>>,
    /// Recycled `PackedBatch::rows` maps (capacity-keeping; fused
    /// plans only — single-lookup batches carry an empty map).
    spare_rows: Vec<Vec<(usize, usize)>>,
    /// Recycled ticket scatter surfaces (capacity-keeping).
    spare_scatter: Vec<Vec<OutSlot>>,
    /// Input buffers minted because the pool ran dry — grows while the
    /// pipeline warms up, then stays constant (the allocation-free
    /// steady-state invariant the recycling test asserts).
    buffers_created: u64,
    /// Global work-unit sequence counter; also drives round-robin
    /// worker assignment (`seq % shards`), so repeated small slates
    /// still spread over every shard.
    next_seq: u64,
    next_ticket: u64,
    /// Units admitted but not yet handed to a worker (the non-blocking
    /// surface keeps them here while the feed rings are full).
    pending: VecDeque<WorkUnit>,
    /// In-flight tickets, ordered by `base_seq` (= submit order).
    inflight: Vec<TicketState>,
    /// Caps adaptive `K` (batches per work unit); builder-configurable.
    unit_cap: usize,
    /// Caller-thread nanoseconds spent in admission, cumulative.
    admit_ns: u64,
    /// Caller-thread nanoseconds spent finalizing tickets, cumulative.
    finalize_ns: u64,
    /// Caller-thread nanoseconds spent quarantining shards and
    /// requeueing their in-flight units, cumulative.
    requeue_ns: u64,
    /// Shard indices still accepting work, in index order. Starts as
    /// `0..shards`; quarantine removes entries. Dispatch maps
    /// `seq % healthy.len()` over this list, so the round-robin spread
    /// adapts to the surviving pool.
    healthy: Vec<usize>,
    /// Work units re-admitted after a quarantine, cumulative.
    requeued_units: u64,
    /// Latched fatal runtime failure (a dead worker pool): every later
    /// call fails fast instead of deadlocking. Latching also tears the
    /// pool down, so no worker can still hold scatter pointers into
    /// ticket state the caller may drop.
    poisoned: Option<String>,
}

impl std::fmt::Debug for ServingEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServingEngine")
            .field("kind", &self.config.kind)
            .field("shards", &self.shards.len())
            .field("routers", &self.routers)
            .field("neurons", &self.neurons)
            .field("tables", &self.config.tables)
            .field("in_flight", &self.inflight.len())
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

/// Renders a caught panic payload for the `NovaError::Runtime` message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("<non-string panic payload>")
}

/// Pushes a completion onto the done ring, yielding on the (invariantly
/// unreachable) full case and dropping it silently once the engine is
/// gone.
fn push_done(done_tx: &spsc::Producer<UnitDone>, mut done: UnitDone) {
    loop {
        match done_tx.try_push(done) {
            Ok(()) => return,
            Err(PushError::Full(back)) => {
                // Unreachable by the outstanding-cap invariant (admission
                // never has more than the ring's capacity in flight per
                // shard); yield rather than wedge if it is ever violated.
                debug_assert!(false, "completion ring full despite the outstanding cap");
                done = back;
                std::thread::yield_now();
            }
            // The engine is gone; nobody will read.
            Err(PushError::Closed(_)) => return,
        }
    }
}

/// The armed worker's per-lookup fault hook: applies this shard's
/// injected fault (if its trigger tick has come up), then re-evaluates a
/// canary slice of the batch through the scalar architectural path and
/// reports the first mismatching lane.
///
/// Returns `None` when the policy is disarmed (`canary` is `None`) or
/// when every canary lane agrees; `Some(lane)` is a shard-fault verdict.
fn lookup_fault_hook(
    table: &QuantizedPwl,
    xs: &[Fixed],
    ys: &mut [Fixed],
    injector: &mut Option<FaultInjector>,
    canary: Option<usize>,
) -> Option<usize> {
    let lanes = canary?;
    if let Some(fault) = injector.as_mut().and_then(FaultInjector::tick) {
        match fault {
            InjectedFault::BitFlip { bit } => {
                if let Some(y) = ys.first_mut() {
                    // Flip below the sign bit so the corrupted word is
                    // always representable and never saturates back to
                    // the original value.
                    let fmt = table.format();
                    let width = u32::from(fmt.total_bits()).saturating_sub(1).max(1);
                    *y = Fixed::from_raw_saturating(y.raw() ^ (1i64 << (bit % width)), fmt);
                }
            }
            InjectedFault::Panic => panic!("injected shard fault"),
        }
    }
    xs.iter()
        .zip(ys.iter())
        .take(lanes)
        .position(|(&x, &y)| table.eval(x) != y)
}

impl ServingEngine {
    /// Starts configuring an engine for `kind` — see [`EngineBuilder`].
    #[must_use]
    pub fn builder<'a>(kind: ApproximatorKind) -> EngineBuilder<'a> {
        EngineBuilder::new(kind)
    }

    /// Builds the per-shard units from the default table and spawns the
    /// pool.
    fn from_config_parts(
        config: ServingConfig,
        tables: Vec<(TableKey, Arc<QuantizedPwl>)>,
        unit_cap: usize,
        fault_policy: Option<FaultPolicy>,
    ) -> Result<Self, NovaError> {
        config.validate()?;
        let units = (0..config.shards)
            .map(|_| build(config.kind, config.line, &tables[0].1))
            .collect::<Result<Vec<_>, _>>()?;
        // Every resident table must actually be servable by this kind on
        // this line — switch a throwaway probe unit through all of them
        // so an unswitchable table (e.g. one whose broadcast schedule
        // the NoC link cannot address) fails construction, not a slate
        // mid-serve. This keeps the "non-resident tags are rejected
        // before anything dispatches" contract honest: a table the
        // builder accepted can always be switched to. Only the NOVA NoC
        // has a fallible switch (schedule compilation); LUT/SDP bank
        // rewrites cannot fail, so those kinds skip the probe unit.
        if tables.len() > 1 && config.kind == ApproximatorKind::NovaNoc {
            let mut probe = build(config.kind, config.line, &tables[0].1)?;
            for (key, table) in &tables[1..] {
                probe.switch_table(table).map_err(|e| {
                    NovaError::Runtime(format!(
                        "activation table {:?}/{} breakpoints cannot be served by this \
                         engine's {:?} hardware: {e}",
                        key.activation, key.breakpoints, config.kind
                    ))
                })?;
            }
        }
        Self::from_units(config, tables, unit_cap, fault_policy, units)
    }

    /// Spawns the worker pool around pre-built units (also the test seam
    /// for injecting misbehaving units).
    fn from_units(
        config: ServingConfig,
        tables: Vec<(TableKey, Arc<QuantizedPwl>)>,
        unit_cap: usize,
        fault_policy: Option<FaultPolicy>,
        units: Vec<Box<dyn VectorUnit>>,
    ) -> Result<Self, NovaError> {
        let shards = units.len();
        let initial_key = tables[0].0;
        let doorbell = Arc::new(Doorbell::new());
        let mut links = Vec::with_capacity(shards);
        for (id, mut unit) in units.into_iter().enumerate() {
            // Fault arming is resolved per shard before spawn: the
            // canary width (None = disarmed) and this shard's injected
            // fault, if the policy carries one.
            let canary = fault_policy.as_ref().map(|p| p.canary_slots.max(1));
            let mut injector = fault_policy.as_ref().and_then(|p| p.injector_for(id));
            let (feed_tx, feed_rx) = spsc::ring::<WorkUnit>(WORKER_FEED_DEPTH);
            let (done_tx, done_rx) = spsc::ring::<UnitDone>(WORKER_DONE_DEPTH);
            let bell = Arc::clone(&doorbell);
            let handle = std::thread::Builder::new()
                .name(format!("nova-serve-{id}"))
                .spawn(move || {
                    // The worker loop: parks (not spins) on an empty
                    // feed ring and exits once the engine closes it and
                    // the ring has drained. Each work unit carries a run
                    // of same-plan batches: at most one table switch per
                    // lookup stage, then per-batch stage execution +
                    // scatter, then a single pre-aggregated completion —
                    // so the ring traffic is amortized over the whole
                    // run. A panicking unit is caught and surfaced as a
                    // Runtime error instead of killing the thread.
                    let mut current = Some(initial_key);
                    // Worker-owned scratch: `scratch` always holds the
                    // newest stage output (results are scattered from it
                    // straight to ticket slots, so no output buffer ever
                    // rides the rings); `pong` is the ping-pong partner
                    // for chained lookups; `latch`/`row_exps` carry the
                    // numerators and per-row exponents between a
                    // SumRangeReduce and its RangeScale.
                    let mut scratch = FixedBatch::empty();
                    let mut pong = FixedBatch::empty();
                    let mut latch: Vec<i64> = Vec::new();
                    let mut row_exps: Vec<Option<i32>> = Vec::new();
                    // Latched fault verdict: once set, this shard serves
                    // nothing further — it drains its feed ring back to
                    // the engine (see below) until the feed closes.
                    let mut retired: Option<String> = None;
                    'serve: loop {
                        let work = loop {
                            if let Some(u) = feed_rx.try_pop() {
                                break u;
                            }
                            if feed_rx.is_closed() {
                                // Re-pop after observing the close: the
                                // engine's pushes happen before it, so a
                                // miss now means dry forever.
                                match feed_rx.try_pop() {
                                    Some(u) => break u,
                                    None => break 'serve,
                                }
                            }
                            feed_rx.begin_park();
                            if let Some(u) = feed_rx.try_pop() {
                                feed_rx.end_park();
                                break u;
                            }
                            if feed_rx.is_closed() {
                                feed_rx.end_park();
                                match feed_rx.try_pop() {
                                    Some(u) => break u,
                                    None => break 'serve,
                                }
                            }
                            std::thread::park();
                            feed_rx.end_park();
                        };
                        let WorkUnit { seq, plan, batches } = work;
                        if let Some(why) = &retired {
                            // Quarantine drain-back: this shard already
                            // reported a fault, so nothing it evaluates
                            // can be trusted. Hand every remaining unit
                            // back whole (batches intact, plan riding
                            // along) for the engine to requeue; the
                            // engine's feed close ends the loop.
                            let done = UnitDone {
                                seq,
                                worker: id,
                                batches_ok: 0,
                                queries_ok: 0,
                                latency: 0,
                                padded: 0,
                                table_switches: 0,
                                switch_cycles: 0,
                                busy_ns: 0,
                                recycled: batches,
                                result: Ok(()),
                                fault: Some(why.clone()),
                                plan: Some(plan),
                            };
                            push_done(&done_tx, done);
                            bell.ring();
                            continue 'serve;
                        }
                        let started = Instant::now();
                        let mut batches_ok = 0u64;
                        let mut queries_ok = 0u64;
                        let mut latency = 0u64;
                        let mut padded = 0u64;
                        let mut table_switches = 0u64;
                        let mut switch_cycles = 0u64;
                        let mut result: Result<(), NovaError> = Ok(());
                        let mut unit_fault: Option<String> = None;
                        for pb in &batches {
                            if unit_fault.is_some() {
                                // The shard is condemned: stop serving
                                // mid-unit. The whole unit re-runs on a
                                // healthy shard (scatter is idempotent,
                                // so already-written batches rewrite the
                                // same words).
                                break;
                            }
                            let outcome =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    if let Some((key, table)) = plan.single_lookup() {
                                        // Trivial one-lookup plan: the
                                        // pre-plan fast path, byte for
                                        // byte.
                                        if current != Some(*key) {
                                            switch_cycles += unit.switch_table(table)?;
                                            table_switches += 1;
                                            current = Some(*key);
                                        }
                                        unit.lookup_batch_into(&pb.inputs, &mut scratch)?;
                                        if let Some(lane) = lookup_fault_hook(
                                            table,
                                            pb.inputs.as_slice(),
                                            scratch.as_mut_slice(),
                                            &mut injector,
                                            canary,
                                        ) {
                                            unit_fault = Some(format!(
                                                "shard worker {id} canary mismatch at lane \
                                                 {lane} of work unit {seq}"
                                            ));
                                            return Err(NovaError::Runtime(
                                                "canary mismatch".into(),
                                            ));
                                        }
                                        return Ok(());
                                    }
                                    // Fused plan: run the stage sequence,
                                    // ping-ponging lookups through the
                                    // two scratch grids and mutating row
                                    // ops in place. `first` marks that
                                    // the next stage still reads the
                                    // packed inputs.
                                    let mut first = true;
                                    for op in &plan.stages {
                                        match op {
                                            StageOp::Lookup { key, table } => {
                                                if current != Some(*key) {
                                                    switch_cycles += unit.switch_table(table)?;
                                                    table_switches += 1;
                                                    current = Some(*key);
                                                }
                                                let mismatch = if first {
                                                    unit.lookup_batch_into(
                                                        &pb.inputs,
                                                        &mut scratch,
                                                    )?;
                                                    first = false;
                                                    lookup_fault_hook(
                                                        table,
                                                        pb.inputs.as_slice(),
                                                        scratch.as_mut_slice(),
                                                        &mut injector,
                                                        canary,
                                                    )
                                                } else {
                                                    unit.lookup_batch_into(&scratch, &mut pong)?;
                                                    // Canary-check the fresh
                                                    // words against their
                                                    // stage inputs before the
                                                    // ping-pong swap.
                                                    let m = lookup_fault_hook(
                                                        table,
                                                        scratch.as_slice(),
                                                        pong.as_mut_slice(),
                                                        &mut injector,
                                                        canary,
                                                    );
                                                    std::mem::swap(&mut scratch, &mut pong);
                                                    m
                                                };
                                                if let Some(lane) = mismatch {
                                                    unit_fault = Some(format!(
                                                        "shard worker {id} canary mismatch \
                                                         at lane {lane} of work unit {seq}"
                                                    ));
                                                    return Err(NovaError::Runtime(
                                                        "canary mismatch".into(),
                                                    ));
                                                }
                                            }
                                            StageOp::MaxSubtract => {
                                                if first {
                                                    scratch.copy_from(&pb.inputs);
                                                    first = false;
                                                }
                                                let lanes = scratch.as_mut_slice();
                                                for &(start, len) in &pb.rows {
                                                    row_max_subtract(
                                                        &mut lanes[start..start + len],
                                                        plan.format,
                                                    );
                                                }
                                            }
                                            StageOp::SumRangeReduce => {
                                                if first {
                                                    scratch.copy_from(&pb.inputs);
                                                    first = false;
                                                }
                                                latch.clear();
                                                latch.extend(
                                                    scratch.as_slice().iter().map(|x| x.raw()),
                                                );
                                                row_exps.clear();
                                                let lanes = scratch.as_mut_slice();
                                                for &(start, len) in &pb.rows {
                                                    let red = row_sum_range_reduce(
                                                        &lanes[start..start + len],
                                                        plan.format,
                                                    );
                                                    // Zero-sum rows broadcast an
                                                    // in-domain placeholder; their
                                                    // RangeScale overwrites every
                                                    // lane with the uniform
                                                    // fallback.
                                                    let m_raw =
                                                        red.map_or(plan.format.scale(), |(m, _)| m);
                                                    let m = Fixed::from_raw_saturating(
                                                        m_raw,
                                                        plan.format,
                                                    );
                                                    lanes[start..start + len].fill(m);
                                                    row_exps.push(red.map(|(_, e)| e));
                                                }
                                            }
                                            StageOp::RangeScale => {
                                                if first {
                                                    scratch.copy_from(&pb.inputs);
                                                    first = false;
                                                }
                                                let lanes = scratch.as_mut_slice();
                                                for (ri, &(start, len)) in
                                                    pb.rows.iter().enumerate()
                                                {
                                                    match row_exps.get(ri).copied().flatten() {
                                                        Some(e) => {
                                                            for k in start..start + len {
                                                                lanes[k] = range_scale_lane(
                                                                    latch[k],
                                                                    lanes[k],
                                                                    e,
                                                                    plan.format,
                                                                );
                                                            }
                                                        }
                                                        None => {
                                                            // All numerators quantized
                                                            // to zero: uniform, the same
                                                            // divider-by-zero guard as
                                                            // `ApproxSoftmax::eval`.
                                                            let uniform = Fixed::from_f64(
                                                                1.0 / len as f64,
                                                                plan.format,
                                                                plan.rounding,
                                                            );
                                                            lanes[start..start + len].fill(uniform);
                                                        }
                                                    }
                                                }
                                            }
                                        }
                                    }
                                    Ok(())
                                }));
                            match outcome {
                                Ok(Ok(())) => {
                                    latency += plan.lookups * unit.latency_cycles();
                                    batches_ok += 1;
                                    queries_ok += pb.len as u64;
                                    padded += (pb.inputs.capacity() - pb.len) as u64;
                                    // SAFETY: `pb.dst` points at `pb.len`
                                    // `OutSlot`s inside the owning
                                    // ticket's scatter vector, each
                                    // naming a distinct slot of a
                                    // pre-sized output row; both outlive
                                    // this flight (the engine joins the
                                    // pool before dropping in-flight
                                    // tickets) and nothing else touches
                                    // these slots until the completion
                                    // below is routed — see `OutSlot`.
                                    #[allow(unsafe_code)]
                                    unsafe {
                                        let words = scratch.as_slice();
                                        for (k, &y) in words[..pb.len].iter().enumerate() {
                                            *(*pb.dst.add(k)).0 = y;
                                        }
                                    }
                                }
                                Ok(Err(e)) => {
                                    // A canary mismatch latched a fault
                                    // verdict and aborted the batch with
                                    // a sentinel error; everything else
                                    // keeps the run's first
                                    // (lowest-batch) failure — later
                                    // batches still run, exactly like
                                    // the per-batch pipeline did.
                                    if unit_fault.is_none() && result.is_ok() {
                                        result = Err(e);
                                    }
                                }
                                Err(payload) => {
                                    // The panic may have left the unit
                                    // half-mutated (AssertUnwindSafe
                                    // waives the compiler's protection):
                                    // forget the programmed table so the
                                    // next batch re-programs
                                    // unconditionally instead of trusting
                                    // corrupted banks.
                                    current = None;
                                    let msg = format!(
                                        "shard worker {id} panicked serving work unit {seq}: {}",
                                        panic_message(payload.as_ref())
                                    );
                                    if canary.is_some() {
                                        // Armed policy: a panic is a
                                        // shard fault, not a slate
                                        // failure — quarantine and
                                        // requeue instead of erroring.
                                        unit_fault = Some(msg);
                                    } else if result.is_ok() {
                                        result = Err(NovaError::Runtime(msg));
                                    }
                                }
                            }
                        }
                        let busy_ns =
                            u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                        let done = if let Some(why) = unit_fault {
                            // Shard fault: the unit reports zero work (the
                            // healthy re-run is the one the ledger counts —
                            // anything this shard touched is untrusted) and
                            // carries its batches and plan back for requeue.
                            // This shard serves nothing further.
                            retired = Some(why.clone());
                            UnitDone {
                                seq,
                                worker: id,
                                batches_ok: 0,
                                queries_ok: 0,
                                latency: 0,
                                padded: 0,
                                table_switches: 0,
                                switch_cycles: 0,
                                busy_ns: 0,
                                recycled: batches,
                                result: Ok(()),
                                fault: Some(why),
                                plan: Some(plan),
                            }
                        } else {
                            UnitDone {
                                seq,
                                worker: id,
                                batches_ok,
                                queries_ok,
                                latency,
                                padded,
                                table_switches,
                                switch_cycles,
                                busy_ns,
                                recycled: batches,
                                result,
                                fault: None,
                                plan: None,
                            }
                        };
                        push_done(&done_tx, done);
                        bell.ring();
                    }
                })
                .map_err(|e| NovaError::Runtime(format!("spawning shard worker {id}: {e}")))?;
            links.push(ShardLink {
                feed: feed_tx,
                done: done_rx,
                outstanding: 0,
                handle: Some(handle),
                quarantined: false,
            });
        }
        let routers = config.line.routers;
        let neurons = config.line.neurons_per_router;
        Ok(Self {
            config,
            tables,
            programs: HashMap::new(),
            routers,
            neurons,
            shards: links,
            doorbell,
            loads: vec![WorkerLoad::default(); shards],
            requests_served: 0,
            padded_slots: 0,
            spare_inputs: Vec::new(),
            spare_units: Vec::new(),
            spare_rows: Vec::new(),
            spare_scatter: Vec::new(),
            buffers_created: 0,
            next_seq: 0,
            next_ticket: 0,
            pending: VecDeque::new(),
            inflight: Vec::new(),
            unit_cap: unit_cap.max(1),
            admit_ns: 0,
            finalize_ns: 0,
            requeue_ns: 0,
            healthy: (0..shards).collect(),
            requeued_units: 0,
            poisoned: None,
        })
    }

    /// The typed configuration this engine was built from.
    #[must_use]
    pub fn config(&self) -> &ServingConfig {
        &self.config
    }

    /// The approximator hardware serving this engine.
    #[must_use]
    pub fn kind(&self) -> ApproximatorKind {
        self.config.kind
    }

    /// The default (first-registered) quantized table — the one every
    /// worker is pre-programmed with.
    #[must_use]
    pub fn table(&self) -> &QuantizedPwl {
        &self.tables[0].1
    }

    /// The resident activation tables, in registration order.
    #[must_use]
    pub fn tables(&self) -> &[(TableKey, Arc<QuantizedPwl>)] {
        &self.tables
    }

    /// The resident table for `key`; `None` when the engine does not
    /// serve that activation.
    #[must_use]
    pub fn table_for(&self, key: TableKey) -> Option<&Arc<QuantizedPwl>> {
        self.resolve(key).ok().map(|i| &self.tables[i].1)
    }

    /// Worker shards (threads) in the pool.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Queries one full batch serves: `routers × neurons_per_router`.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.routers * self.neurons
    }

    /// Tickets submitted but not yet collected.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// Accumulated accounting, assembled from the per-worker counters.
    #[must_use]
    pub fn stats(&self) -> ServingStats {
        let mut stats = ServingStats {
            requests: self.requests_served,
            padded_slots: self.padded_slots,
            ..ServingStats::default()
        };
        for load in &self.loads {
            stats.jobs += load.jobs;
            stats.batches += load.batches;
            stats.queries += load.queries;
            stats.latency_cycles += load.cycles;
            stats.table_switches += load.table_switches;
            stats.switch_cycles += load.switch_cycles;
        }
        let quarantined = self.shards.iter().filter(|l| l.quarantined).count() as u64;
        stats.quarantined_shards = quarantined;
        stats.requeued_units = self.requeued_units;
        stats.degraded_capacity_pct = if self.shards.is_empty() {
            0.0
        } else {
            100.0 * quarantined as f64 / self.shards.len() as f64
        };
        stats
    }

    /// Shards still accepting work (total minus quarantined). Equals
    /// [`Self::shards`] until a fault verdict quarantines one.
    #[must_use]
    pub fn healthy_shards(&self) -> usize {
        self.healthy.len()
    }

    /// Per-worker accounting: what each shard thread served so far.
    #[must_use]
    pub fn worker_loads(&self) -> &[WorkerLoad] {
        &self.loads
    }

    /// Input batch buffers minted since construction. Grows while the
    /// recycling pool warms up (first slate, or a deeper slate than any
    /// before), then stays constant: a steady-state serve loop pops every
    /// buffer from the pool and the completions return it, performing
    /// zero per-batch heap allocations. The capacity-stability test pins
    /// this invariant.
    #[must_use]
    pub fn buffers_created(&self) -> u64 {
        self.buffers_created
    }

    /// Input buffers currently parked in the recycling pool (all of
    /// them, between `serve` calls).
    #[must_use]
    pub fn buffer_pool_len(&self) -> usize {
        self.spare_inputs.len()
    }

    /// Wall-clock attribution of where serving time has gone since
    /// construction: caller-thread admission and finalization, plus the
    /// pool's summed and busiest-single-worker processing time. The
    /// worker time runs concurrently with the caller, so the stages do
    /// not sum to elapsed wall time — `worker_busy_max_ns` is the pool's
    /// critical path.
    #[must_use]
    pub fn stage_times(&self) -> StageTimes {
        let mut times = StageTimes {
            admit_ns: self.admit_ns,
            finalize_ns: self.finalize_ns,
            requeue_ns: self.requeue_ns,
            ..StageTimes::default()
        };
        for load in &self.loads {
            times.worker_busy_ns += load.busy_ns;
            times.worker_busy_max_ns = times.worker_busy_max_ns.max(load.busy_ns);
        }
        times
    }

    /// Batch occupancy so far (%): queries served over grid slots
    /// dispatched. 100 % means every dispatched batch was full; before
    /// the first `serve` call (zero batches) this is 0, not NaN.
    #[must_use]
    pub fn occupancy_pct(&self) -> f64 {
        let stats = self.stats();
        let slots = stats.batches * self.capacity() as u64;
        if slots == 0 {
            0.0
        } else {
            100.0 * stats.queries as f64 / slots as f64
        }
    }

    /// The pool's makespan in accelerator cycles: shards serve their
    /// batches concurrently, so the slowest (busiest) worker's
    /// accumulated latency — batch latency *plus table-switch stalls* —
    /// bounds the wall clock. With one shard and no switches this equals
    /// [`ServingStats::latency_cycles`]; with `k` evenly loaded shards
    /// it approaches `latency_cycles / k`. Zero before the first `serve`
    /// call.
    #[must_use]
    pub fn makespan_cycles(&self) -> u64 {
        self.loads
            .iter()
            .map(|l| l.cycles + l.switch_cycles)
            .max()
            .unwrap_or(0)
    }

    /// Aggregate query throughput so far at a `core_ghz` clock
    /// (queries/s): queries served over the pool's parallel makespan
    /// ([`makespan_cycles`](Self::makespan_cycles), switch stalls
    /// included), so adding shards raises throughput even though
    /// per-batch latency is unchanged — and a LUT engine that keeps
    /// re-programming banks honestly reports less throughput than the
    /// switch-free NOVA NoC. Zero (not NaN) before the first `serve`
    /// call.
    #[must_use]
    pub fn queries_per_second(&self, core_ghz: f64) -> f64 {
        let makespan = self.makespan_cycles();
        if makespan == 0 {
            0.0
        } else {
            let seconds = makespan as f64 / (core_ghz * 1e9);
            self.stats().queries as f64 / seconds
        }
    }

    /// Resolves an activation tag to a resident-table index.
    fn resolve(&self, key: TableKey) -> Result<usize, NovaError> {
        if let Some(i) = self.tables.iter().position(|(k, _)| *k == key) {
            return Ok(i);
        }
        Err(NovaError::Runtime(format!(
            "activation table {:?}/{} breakpoints is not resident in this engine \
             (resident: {:?}); register it via EngineBuilder::table/tables/plan",
            key.activation, key.breakpoints, self.config.tables
        )))
    }

    /// Validates `plan` and resolves its lookups against the resident
    /// tables, memoizing the result so admission groups repeat plans by
    /// pointer identity.
    fn compile_plan(&mut self, plan: &Plan) -> Result<Arc<CompiledPlan>, NovaError> {
        if let Some(compiled) = self.programs.get(plan) {
            return Ok(Arc::clone(compiled));
        }
        plan.validate()?;
        let (format, rounding) = plan
            .word_format()
            .expect("validated plans have a lookup stage");
        let mut stages = Vec::with_capacity(plan.stages().len());
        let mut pad = None;
        let mut lookups = 0u64;
        for stage in plan.stages() {
            stages.push(match *stage {
                PlanStage::Lookup(key) => {
                    let table = Arc::clone(&self.tables[self.resolve(key)?].1);
                    if pad.is_none() {
                        pad = Some(table.clamp_bounds().0);
                    }
                    lookups += 1;
                    StageOp::Lookup { key, table }
                }
                PlanStage::MaxSubtract => StageOp::MaxSubtract,
                PlanStage::SumRangeReduce => StageOp::SumRangeReduce,
                PlanStage::RangeScale => StageOp::RangeScale,
            });
        }
        let compiled = Arc::new(CompiledPlan {
            stages,
            format,
            rounding,
            pad: pad.expect("validated plans have a lookup stage"),
            lookups,
        });
        self.programs.insert(plan.clone(), Arc::clone(&compiled));
        Ok(compiled)
    }

    fn check_poisoned(&self) -> Result<(), NovaError> {
        match &self.poisoned {
            Some(msg) => Err(NovaError::Runtime(msg.clone())),
            None => Ok(()),
        }
    }

    /// Latches a fatal pool failure and returns it as an error.
    ///
    /// Poisoning also tears the pool down (close feeds, join workers):
    /// in-flight work units hold raw scatter pointers into ticket state
    /// the caller may drop once it sees the error, so no worker may
    /// outlive the latch.
    fn poison(&mut self, what: &str) -> NovaError {
        let msg = format!("serving engine poisoned: {what}");
        self.poisoned = Some(msg.clone());
        self.shutdown_pool();
        NovaError::Runtime(msg)
    }

    /// Closes every feed ring and reaps the worker threads. Workers
    /// drain (and serve) what was already in their feed before exiting;
    /// their completion pushes always fit by the outstanding-cap
    /// invariant, so this never deadlocks. Units still queued in
    /// `pending` are simply dropped — their scatter pointers are never
    /// dereferenced.
    fn shutdown_pool(&mut self) {
        for link in &self.shards {
            link.feed.close();
        }
        for link in &mut self.shards {
            if let Some(handle) = link.handle.take() {
                let _ = handle.join();
            }
        }
    }

    /// Serves a slate of requests from many concurrent streams through
    /// the worker pool, blocking until every batch is back.
    ///
    /// The admission stage coalesces queries in arrival order *per
    /// activation table* (activation runs in first-appearance order;
    /// request order, then query order, within each run) into full
    /// `(routers × neurons)` batches — only each run's tail batch is
    /// padded, with an in-domain value whose outputs are dropped —
    /// packs runs of up to `K` same-activation batches into fat work
    /// units, and feeds those round-robin to the shard workers over
    /// fixed-depth SPSC rings (backpressure, not unbounded queueing).
    /// Workers re-program their unit between runs of different
    /// activations, charging the per-kind switch stall to
    /// [`WorkerLoad::switch_cycles`], and scatter each result word
    /// straight into its request's output row; completion is then just
    /// a watermark advance, and the assembled outputs align with
    /// `requests` — bit-identical to evaluating each query through its
    /// table's [`QuantizedPwl::eval`] alone, for any worker count, any
    /// run length and any activation interleaving.
    ///
    /// Equivalent to [`submit`](Self::submit) followed by blocking
    /// collection of the returned ticket.
    ///
    /// # Errors
    ///
    /// Rejects slates naming a non-resident activation up front (nothing
    /// dispatches). Otherwise propagates worker failures (e.g. format
    /// mismatches); the whole slate is dispatched before results are
    /// judged, so on failure the per-worker counters reflect exactly the
    /// batches that evaluated successfully (their queries included) —
    /// never the failed ones — and the error returned is the
    /// lowest-sequence failure, making the outcome deterministic for any
    /// worker count. A failed slate counts no requests.
    pub fn serve(&mut self, requests: &[ServingRequest]) -> Result<Vec<Vec<Fixed>>, NovaError> {
        let ticket = self.submit(requests)?;
        self.wait_ticket(ticket.0)
    }

    /// Admits a slate without blocking: packs it into sequence-numbered
    /// work units (runs of coalesced same-activation batches), queues
    /// them toward the worker pool, and returns a [`Ticket`] to collect
    /// later via [`try_poll`](Self::try_poll) or
    /// [`drain`](Self::drain). Already-submitted work keeps flowing to
    /// the workers while the caller does other things between calls.
    ///
    /// # Errors
    ///
    /// Returns [`NovaError::Runtime`] when a request names an activation
    /// with no resident table (nothing is dispatched), or when the
    /// engine was poisoned by a dead worker pool.
    pub fn submit(&mut self, requests: &[ServingRequest]) -> Result<Ticket, NovaError> {
        self.check_poisoned()?;
        let started = Instant::now();
        let capacity = self.capacity();
        let nshards = self.shards.len();
        // Compile every plan up front: a slate naming a non-resident
        // activation, carrying a malformed plan, or reducing over a row
        // wider than one batch is rejected before any buffer or counter
        // moves. (Plan compilation mutates only the memo cache, which
        // is invisible to accounting.)
        let mut plan_of: Vec<Arc<CompiledPlan>> = Vec::with_capacity(requests.len());
        for request in requests {
            let compiled = self.compile_plan(&request.plan)?;
            if compiled.single_lookup().is_none() && request.inputs.len() > capacity {
                return Err(NovaError::BatchShape(format!(
                    "fused-plan request of {} queries exceeds the engine's batch \
                     capacity {capacity} (routers × neurons): reduce stages span a \
                     request's whole row, so it must fit one batch",
                    request.inputs.len(),
                )));
            }
            plan_of.push(compiled);
        }
        // Group requests into per-plan runs, in first-appearance order.
        // Plan memoization makes equal plans pointer-equal, so the
        // grouping (and therefore the packing, sequence numbering and
        // checksums) of single-lookup slates is exactly the per-table
        // grouping of the tagged-request surface.
        let mut group_of: Vec<usize> = Vec::with_capacity(requests.len());
        let mut group_plans: Vec<Arc<CompiledPlan>> = Vec::new();
        let mut group_sizes: Vec<usize> = Vec::new();
        for (ri, request) in requests.iter().enumerate() {
            let g = match group_plans
                .iter()
                .position(|p| Arc::ptr_eq(p, &plan_of[ri]))
            {
                Some(g) => g,
                None => {
                    group_plans.push(Arc::clone(&plan_of[ri]));
                    group_sizes.push(0);
                    group_plans.len() - 1
                }
            };
            group_sizes[g] += request.inputs.len();
            group_of.push(g);
        }
        let total: usize = group_sizes.iter().sum();
        // Pre-size every output row to its final length (the fill value
        // is the plan's pad, overwritten wherever evaluation succeeds):
        // workers scatter result words straight into these rows, so a
        // row must never grow — or move its heap — while the ticket is
        // in flight.
        let mut outputs: Vec<Vec<Fixed>> = requests
            .iter()
            .enumerate()
            .map(|(ri, r)| vec![group_plans[group_of[ri]].pad; r.inputs.len()])
            .collect();
        // The scatter surface: reserved to its exact final length up
        // front, so the base pointer below stays valid for every
        // in-flight `PackedBatch::dst` derived from it.
        let mut scatter = self.spare_scatter.pop().unwrap_or_default();
        scatter.clear();
        scatter.reserve(total);
        let scatter_base: *const OutSlot = scatter.as_ptr();
        let base_seq = self.next_seq;
        let mut jobs = 0usize;
        // Pack each run into batches and seal runs of up to K batches
        // into work units. The pad value is in-domain for the plan's
        // first lookup table by construction (the lower clamp bound),
        // so padded lanes can never fault; their outputs are simply
        // never scattered anywhere. Single-lookup runs pack
        // query-continuously (requests split across batches freely);
        // fused runs pack row-aligned — a request's row never splits,
        // because the reduce stages span it. Input buffers, row maps
        // and unit shells come from the recycling pools: once the
        // pipeline has warmed up, admission performs no per-batch heap
        // allocation.
        for g in 0..group_plans.len() {
            let plan = Arc::clone(&group_plans[g]);
            let run_queries = group_sizes[g];
            if run_queries == 0 {
                continue;
            }
            let fused = plan.single_lookup().is_none();
            let pad = plan.pad;
            let run_batches = if fused {
                // Row-aligned dry run: count the batches the packing
                // below will produce, for the adaptive K only.
                let mut batches = 0usize;
                let mut fill = 0usize;
                for (ri, request) in requests.iter().enumerate() {
                    if group_of[ri] != g || request.inputs.is_empty() {
                        continue;
                    }
                    if fill + request.inputs.len() > capacity {
                        batches += 1;
                        fill = 0;
                    }
                    fill += request.inputs.len();
                }
                batches + usize::from(fill > 0)
            } else {
                run_queries.div_ceil(capacity)
            };
            // Adaptive K: a run deep enough to keep every shard at least
            // two units busy fattens its units (amortizing ring hops and
            // bookkeeping), a shallow one stays at one batch per unit so
            // tail latency and shard spread are unhurt at low load.
            let k = run_batches
                .div_ceil(2 * nshards.max(1))
                .clamp(1, self.unit_cap);
            let mut unit_batches = self.spare_units.pop().unwrap_or_default();
            let mut inputs = self.checkout_inputs(pad);
            let mut rows = if fused {
                self.checkout_rows()
            } else {
                Vec::new()
            };
            let mut batch_len = 0usize;
            let mut batch_start = scatter.len();
            let mut packed = 0usize;
            for (ri, request) in requests.iter().enumerate() {
                if group_of[ri] != g {
                    continue;
                }
                if fused {
                    if request.inputs.is_empty() {
                        continue;
                    }
                    if batch_len + request.inputs.len() > capacity {
                        // Seal the row-aligned batch: pad its tail
                        // in-domain. (A follow-up row is guaranteed, so
                        // the fresh checkouts below are always used.)
                        inputs.as_mut_slice()[batch_len..].fill(pad);
                        unit_batches.push(PackedBatch {
                            inputs: std::mem::replace(&mut inputs, FixedBatch::empty()),
                            len: batch_len,
                            rows: std::mem::take(&mut rows),
                            dst: scatter_base.wrapping_add(batch_start),
                        });
                        packed += 1;
                        batch_len = 0;
                        batch_start = scatter.len();
                        if unit_batches.len() == k {
                            self.pending.push_back(WorkUnit {
                                seq: self.next_seq,
                                plan: Arc::clone(&plan),
                                batches: std::mem::take(&mut unit_batches),
                            });
                            self.next_seq += 1;
                            jobs += 1;
                            unit_batches = self.spare_units.pop().unwrap_or_default();
                        }
                        inputs = self.checkout_inputs(pad);
                        rows = self.checkout_rows();
                    }
                    let row = &mut outputs[ri];
                    rows.push((batch_len, request.inputs.len()));
                    for (qi, &x) in request.inputs.iter().enumerate() {
                        inputs.as_mut_slice()[batch_len] = x;
                        scatter.push(OutSlot(&mut row[qi]));
                        batch_len += 1;
                    }
                    continue;
                }
                let row = &mut outputs[ri];
                for (qi, &x) in request.inputs.iter().enumerate() {
                    inputs.as_mut_slice()[batch_len] = x;
                    scatter.push(OutSlot(&mut row[qi]));
                    batch_len += 1;
                    if batch_len == capacity {
                        unit_batches.push(PackedBatch {
                            inputs: std::mem::replace(&mut inputs, FixedBatch::empty()),
                            len: batch_len,
                            rows: Vec::new(),
                            dst: scatter_base.wrapping_add(batch_start),
                        });
                        packed += 1;
                        batch_len = 0;
                        batch_start = scatter.len();
                        if unit_batches.len() == k {
                            self.pending.push_back(WorkUnit {
                                seq: self.next_seq,
                                plan: Arc::clone(&plan),
                                batches: std::mem::take(&mut unit_batches),
                            });
                            self.next_seq += 1;
                            jobs += 1;
                            if packed < run_batches {
                                unit_batches = self.spare_units.pop().unwrap_or_default();
                            }
                        }
                        if packed < run_batches {
                            inputs = self.checkout_inputs(pad);
                        }
                    }
                }
            }
            if batch_len > 0 {
                // The run's ragged tail: pad the unused slots in-domain.
                inputs.as_mut_slice()[batch_len..].fill(pad);
                unit_batches.push(PackedBatch {
                    inputs,
                    len: batch_len,
                    rows,
                    dst: scatter_base.wrapping_add(batch_start),
                });
            }
            if unit_batches.is_empty() {
                if unit_batches.capacity() > 0 {
                    self.spare_units.push(unit_batches);
                }
            } else {
                self.pending.push_back(WorkUnit {
                    seq: self.next_seq,
                    plan,
                    batches: unit_batches,
                });
                self.next_seq += 1;
                jobs += 1;
            }
        }
        let id = self.next_ticket;
        self.next_ticket += 1;
        self.inflight.push(TicketState {
            id,
            base_seq,
            jobs,
            received: 0,
            scatter,
            outputs,
            request_count: requests.len(),
            failure: None,
        });
        self.admit_ns += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Err(e) = self.pump() {
            // The pool died mid-admission (and was torn down by the
            // poison latch, so no worker holds this slate's scatter
            // pointers): the caller gets the error, never the ticket —
            // unregister the orphaned state (it was pushed last) so
            // `drain`/`in_flight` don't report a submission the caller
            // has no handle to.
            self.inflight.pop();
            return Err(e);
        }
        Ok(Ticket(id))
    }

    /// Pops a recycled input buffer (minting one if the pool is dry) and
    /// guarantees it carries the engine grid.
    fn checkout_inputs(&mut self, pad: Fixed) -> FixedBatch {
        let mut inputs = match self.spare_inputs.pop() {
            Some(buf) => buf,
            None => {
                self.buffers_created += 1;
                FixedBatch::new(self.routers, self.neurons, pad)
            }
        };
        // Pool-recycled buffers already carry the engine grid; only a
        // freshly minted (or foreign) buffer reshapes.
        if inputs.dims() != (self.routers, self.neurons) {
            inputs.reset(self.routers, self.neurons, pad);
        }
        inputs
    }

    /// Pops a recycled row map for a fused batch (minting one if the
    /// pool is dry). Row maps are tiny, but recycling them keeps the
    /// fused steady state allocation-free like the single-lookup path.
    fn checkout_rows(&mut self) -> Vec<(usize, usize)> {
        self.spare_rows.pop().unwrap_or_default()
    }

    /// Blocks until `ticket` finishes and returns its result — the
    /// single-ticket blocking collector ([`serve`](Self::serve) is
    /// submit + wait). Unlike spinning on
    /// [`try_poll`](Self::try_poll), this parks on worker completions,
    /// so waiting burns no CPU. Other in-flight tickets keep making
    /// progress while this one is waited on.
    ///
    /// # Errors
    ///
    /// As [`try_poll`](Self::try_poll): the ticket's lowest-sequence
    /// batch failure, an unknown/already-collected ticket, or the
    /// latched poison error.
    pub fn wait(&mut self, ticket: Ticket) -> Result<Vec<Vec<Fixed>>, NovaError> {
        self.wait_ticket(ticket.0)
    }

    /// Collects `ticket` if it has finished, without blocking. `Ok(None)`
    /// means its batches are still in flight (the call still pumps the
    /// pipeline, so repeated polling makes progress).
    ///
    /// # Errors
    ///
    /// Returns the ticket's lowest-sequence batch failure once it
    /// finishes (the ticket is consumed), [`NovaError::Runtime`] for an
    /// unknown or already-collected ticket, and the latched poison error
    /// if the worker pool died.
    pub fn try_poll(&mut self, ticket: Ticket) -> Result<Option<Vec<Vec<Fixed>>>, NovaError> {
        self.check_poisoned()?;
        self.pump()?;
        let idx = self
            .inflight
            .iter()
            .position(|t| t.id == ticket.0)
            .ok_or_else(|| {
                NovaError::Runtime(format!("unknown or already-collected ticket #{}", ticket.0))
            })?;
        if self.inflight[idx].received < self.inflight[idx].jobs {
            return Ok(None);
        }
        let state = self.inflight.remove(idx);
        self.finalize(state).map(Some)
    }

    /// Blocks until every in-flight ticket has finished and returns
    /// their results in submit order. The engine is fully idle
    /// afterwards ([`in_flight`](Self::in_flight) is 0).
    pub fn drain(&mut self) -> Vec<DrainedTicket> {
        let mut results = Vec::with_capacity(self.inflight.len());
        while let Some(id) = self.inflight.first().map(|t| t.id) {
            let result = self.wait_ticket(id);
            results.push((Ticket(id), result));
            if let Some(msg) = self.poisoned.clone() {
                // The pool is gone: the remaining tickets can never
                // complete — fail them deterministically. The ticket
                // whose wait hit the poison is still in `inflight`
                // (poison-path errors don't consume it) and was already
                // reported above, so it is skipped here: one result per
                // submission.
                for state in self.inflight.drain(..) {
                    if state.id == id {
                        continue;
                    }
                    results.push((Ticket(state.id), Err(NovaError::Runtime(msg.clone()))));
                }
                break;
            }
        }
        results
    }

    /// Drains completions and feeds pending work units without ever
    /// blocking: the non-blocking half of the pipeline shared by
    /// `submit`, `try_poll` and the blocking wait loop.
    fn pump(&mut self) -> Result<(), NovaError> {
        for s in 0..self.shards.len() {
            while let Some(done) = self.shards[s].done.try_pop() {
                if done.fault.is_some() {
                    self.handle_fault(s, done)?;
                } else {
                    self.route(done);
                }
            }
            // A closed (and now drained) completion ring means its
            // worker thread died outside the catch — unit panics are
            // caught and reported, so this is a wiring failure. A
            // quarantined shard's ring is closed *by design* (its
            // worker was retired and joined), so it is exempt.
            if self.shards[s].done.is_closed() && !self.shards[s].quarantined {
                return Err(self.poison(&format!("shard worker {s} died")));
            }
        }
        while let Some(unit) = self.pending.pop_front() {
            // Units go out strictly in sequence order (stopping at the
            // first saturated shard), so each worker's table-switch
            // pattern is deterministic for a given worker count *and
            // quarantine set*. The outstanding cap keeps every shard's
            // completion ring from ever filling — that is what makes
            // worker completion pushes non-blocking by invariant.
            let Some(worker) = self.route_shard(unit.seq) else {
                // No healthy shard left: the fault that emptied the set
                // already latched the poison — park the unit and let the
                // caller's check_poisoned surface it.
                self.pending.push_front(unit);
                break;
            };
            let link = &mut self.shards[worker];
            if link.outstanding >= WORKER_DONE_DEPTH || link.feed.is_full() {
                self.pending.push_front(unit);
                break;
            }
            match link.feed.try_push(unit) {
                Ok(()) => link.outstanding += 1,
                Err(PushError::Full(unit)) => {
                    self.pending.push_front(unit);
                    break;
                }
                Err(PushError::Closed(unit)) => {
                    // The shard failed between the routing decision and
                    // the push (its fault completion is in flight): park
                    // the unit — the next pump quarantines the shard and
                    // re-routes over the shrunken healthy set.
                    self.pending.push_front(unit);
                    break;
                }
            }
        }
        Ok(())
    }

    /// The healthy shard `seq` routes to, or `None` once every shard is
    /// quarantined. Round-robin over the *healthy* list, so routing
    /// stays deterministic for a given quarantine set.
    fn route_shard(&self, seq: u64) -> Option<usize> {
        if self.healthy.is_empty() {
            return None;
        }
        let slot = usize::try_from(seq % self.healthy.len() as u64).expect("shards fit usize");
        Some(self.healthy[slot])
    }

    /// Retires shard `s` after a fault verdict: closes its feed ring
    /// (the retired worker drains the ring back as fault completions and
    /// exits), joins the thread, and removes the shard from the healthy
    /// routing set. Idempotent — the drain-back completions re-enter
    /// here once per parked unit.
    fn quarantine(&mut self, s: usize) {
        if self.shards[s].quarantined {
            return;
        }
        self.shards[s].quarantined = true;
        self.shards[s].feed.close();
        if let Some(handle) = self.shards[s].handle.take() {
            // Cannot deadlock: the done ring's depth equals the
            // outstanding cap, so every drain-back push fits without the
            // engine popping.
            let _ = handle.join();
        }
        self.healthy.retain(|&h| h != s);
    }

    /// One fault completion from shard `s`: quarantines the shard (first
    /// verdict only) and re-admits the returned unit — batches intact,
    /// plan riding along — to the healthy routing set. Scatter is
    /// idempotent (workers write result words through per-slot pointers),
    /// so the healthy re-run lands bit-identically even if the faulty
    /// shard partially scattered before its canary tripped.
    ///
    /// # Errors
    ///
    /// Poisons the engine when the quarantine empties the healthy set:
    /// with no shard left to re-run on, the slate can never complete.
    fn handle_fault(&mut self, s: usize, done: UnitDone) -> Result<(), NovaError> {
        let started = Instant::now();
        let UnitDone {
            seq,
            recycled,
            fault,
            plan,
            ..
        } = done;
        let why = fault.unwrap_or_else(|| "unreported shard fault".into());
        self.shards[s].outstanding -= 1;
        self.quarantine(s);
        let outcome = match plan {
            _ if self.healthy.is_empty() => Err(self.poison(&format!(
                "all shard workers quarantined; last verdict: {why}"
            ))),
            Some(plan) => {
                self.requeued_units += 1;
                self.pending.push_back(WorkUnit {
                    seq,
                    plan,
                    batches: recycled,
                });
                Ok(())
            }
            None => Err(self.poison(&format!(
                "shard worker {s} reported a fault without returning its plan: {why}"
            ))),
        };
        self.requeue_ns += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        outcome
    }

    /// Files one completion with its in-flight ticket: rolls the
    /// pre-aggregated counters into the worker's load, recycles the
    /// unit's buffers and advances the ticket's watermark. (The result
    /// words were already scattered in place by the worker.)
    fn route(&mut self, done: UnitDone) {
        let UnitDone {
            seq,
            worker,
            batches_ok,
            queries_ok,
            latency,
            padded,
            table_switches,
            switch_cycles,
            busy_ns,
            recycled,
            result,
            fault: _,
            plan: _,
        } = done;
        self.shards[worker].outstanding -= 1;
        // A switch the worker performed really re-programmed the unit —
        // later runs of that activation won't switch again — so the
        // ledger counts it even when the run's lookups then failed (only
        // the batch/query counters are conditional on success).
        {
            let load = &mut self.loads[worker];
            load.jobs += 1;
            load.batches += batches_ok;
            load.queries += queries_ok;
            load.cycles += latency;
            load.table_switches += table_switches;
            load.switch_cycles += switch_cycles;
            load.busy_ns += busy_ns;
        }
        self.padded_slots += padded;
        // Success or failure, the buffers return to the pools.
        let mut shell = recycled;
        for pb in shell.drain(..) {
            self.spare_inputs.push(pb.inputs);
            let mut rows = pb.rows;
            if rows.capacity() > 0 {
                rows.clear();
                self.spare_rows.push(rows);
            }
        }
        self.spare_units.push(shell);
        let idx = self
            .inflight
            .partition_point(|t| t.base_seq + t.jobs as u64 <= seq);
        let ticket = &mut self.inflight[idx];
        if let Err(e) = result {
            // Keep the lowest-sequence failure: sequence order is
            // submission order, so the reported error is deterministic
            // for any worker count and timing.
            match &ticket.failure {
                Some((first, _)) if *first <= seq => {}
                _ => ticket.failure = Some((seq, e)),
            }
        }
        ticket.received += 1;
    }

    /// True when `pump` could make progress right now: a completion is
    /// waiting (or a worker died), or the head pending unit's shard can
    /// accept it. The blocking wait only parks when this is false —
    /// progress then requires a worker to push a completion, and every
    /// such push rings the doorbell.
    fn progress_ready(&self) -> bool {
        if self.shards.iter().any(|link| {
            // A quarantined shard's rings are closed by design and its
            // buffered fault completions were all drained during the
            // quarantine pump — treating its permanently-closed done
            // ring as "ready" would busy-spin the wait loop.
            !link.done.is_empty() || (link.done.is_closed() && !link.quarantined)
        }) {
            return true;
        }
        match self.pending.front() {
            Some(unit) => match self.route_shard(unit.seq) {
                Some(worker) => {
                    let link = &self.shards[worker];
                    link.feed.is_closed()
                        || (link.outstanding < WORKER_DONE_DEPTH && !link.feed.is_full())
                }
                // Healthy set empty: the engine is poisoned and the wait
                // loop's check_poisoned fires before it can park.
                None => true,
            },
            None => false,
        }
    }

    /// Blocks until ticket `id` finishes, then finalizes it. Parks on
    /// the doorbell while the pool works — the arm → re-check → park
    /// protocol (see [`Doorbell`]) closes the missed-wakeup race.
    fn wait_ticket(&mut self, id: u64) -> Result<Vec<Vec<Fixed>>, NovaError> {
        loop {
            self.check_poisoned()?;
            self.pump()?;
            let idx = self
                .inflight
                .iter()
                .position(|t| t.id == id)
                .ok_or_else(|| {
                    NovaError::Runtime(format!("unknown or already-collected ticket #{id}"))
                })?;
            if self.inflight[idx].received == self.inflight[idx].jobs {
                let state = self.inflight.remove(idx);
                return self.finalize(state);
            }
            // An unfinished ticket either has units in flight (their
            // completions ring the doorbell) or units pending behind a
            // saturated shard (that shard has completions coming, which
            // also ring) — so parking here can always be woken.
            self.doorbell.arm();
            if self.progress_ready() {
                self.doorbell.disarm();
                continue;
            }
            std::thread::park();
            self.doorbell.disarm();
        }
    }

    /// Completion bookkeeping for one finished ticket — a watermark
    /// advance, not a reorder: the workers already scattered every
    /// result word into the pre-sized output rows, so all that is left
    /// is recycling the scatter surface and judging the slate.
    fn finalize(&mut self, state: TicketState) -> Result<Vec<Vec<Fixed>>, NovaError> {
        let started = Instant::now();
        let TicketState {
            mut scatter,
            outputs,
            request_count,
            failure,
            ..
        } = state;
        // Every unit has completed: no live `PackedBatch::dst` aliases
        // the scatter surface any more, so it can be recycled.
        scatter.clear();
        self.spare_scatter.push(scatter);
        let verdict = match failure {
            Some((_, e)) => Err(e),
            None => {
                // Only a fully served slate counts its requests: on an
                // error the batch/query counters reflect the work that
                // evaluated, but no request was answered in full.
                self.requests_served += request_count as u64;
                Ok(outputs)
            }
        };
        self.finalize_ns += u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        verdict
    }

    /// The sequential reference path: a plain op-graph interpreter that
    /// walks each request's [`Plan`] stage by stage — table lookups via
    /// the resident [`QuantizedPwl`] tables (the buffer-reusing
    /// [`QuantizedPwl::eval_into`]), reduce stages via the exact same
    /// raw-domain helpers the workers run — with no batching, threading
    /// or switch accounting. [`serve`](Self::serve) must be
    /// bit-identical to this for any worker count, any activation
    /// interleaving and any plan shape — the determinism tests and the
    /// CI checksum smokes (flat and fused) assert exactly that.
    ///
    /// Does not touch the worker pool or any counter.
    ///
    /// # Panics
    ///
    /// Panics if a request carries a malformed plan, names a
    /// non-resident activation, or an input word is not in its table's
    /// format (the same wiring-bug conditions `serve` reports as
    /// errors).
    #[must_use]
    pub fn serve_reference(&self, requests: &[ServingRequest]) -> Vec<Vec<Fixed>> {
        requests
            .iter()
            .map(|request| {
                request.plan.validate().expect("plan well-formed");
                let (format, rounding) =
                    request.plan.word_format().expect("validated plans look up");
                let mut cur = request.inputs.clone();
                let mut scratch = Vec::with_capacity(cur.len());
                // Reduce-stage carry: per-lane numerators latched at the
                // denominator reduction, and the range exponent (`None`
                // marks the all-zero row that falls back to uniform).
                let mut latch: Vec<i64> = Vec::new();
                let mut row_exp: Option<i32> = None;
                for stage in request.plan.stages() {
                    match stage {
                        PlanStage::Lookup(key) => {
                            let ti = self.resolve(*key).expect("plan table resident");
                            self.tables[ti].1.eval_into(&cur, &mut scratch);
                            std::mem::swap(&mut cur, &mut scratch);
                        }
                        PlanStage::MaxSubtract => row_max_subtract(&mut cur, format),
                        PlanStage::SumRangeReduce => {
                            latch.clear();
                            latch.extend(cur.iter().map(|x| x.raw()));
                            let red = row_sum_range_reduce(&cur, format);
                            let m_raw = red.map_or(format.scale(), |(m, _)| m);
                            let m = Fixed::from_raw_saturating(m_raw, format);
                            cur.iter_mut().for_each(|x| *x = m);
                            row_exp = red.map(|(_, e)| e);
                        }
                        PlanStage::RangeScale => match row_exp {
                            Some(e) => {
                                for (k, x) in cur.iter_mut().enumerate() {
                                    *x = range_scale_lane(latch[k], *x, e, format);
                                }
                            }
                            None if cur.is_empty() => {}
                            None => {
                                let n = cur.len();
                                let uniform = Fixed::from_f64(1.0 / n as f64, format, rounding);
                                cur.iter_mut().for_each(|x| *x = uniform);
                            }
                        },
                    }
                }
                cur
            })
            .collect()
    }
}

impl Drop for ServingEngine {
    fn drop(&mut self) {
        // Close the feed rings so worker loops exit (they first drain —
        // and serve — any queued units; the completion pushes fit by the
        // outstanding-cap invariant), then reap the threads *before* the
        // in-flight ticket states drop: live workers hold raw scatter
        // pointers into them. Units still pending in the engine are
        // simply dropped.
        self.shutdown_pool();
    }
}

/// Gathers per-request outputs into per-stream result vectors,
/// concatenated in arrival order — the "scatter back per stream" view of
/// a [`ServingEngine::serve`] result.
///
/// # Panics
///
/// Panics if `outputs` is not aligned with `requests` (wrong length).
#[must_use]
pub fn gather_by_stream(
    requests: &[ServingRequest],
    outputs: &[Vec<Fixed>],
) -> HashMap<usize, Vec<Fixed>> {
    assert_eq!(
        requests.len(),
        outputs.len(),
        "outputs must align with requests"
    );
    let mut streams: HashMap<usize, Vec<Fixed>> = HashMap::new();
    for (request, out) in requests.iter().zip(outputs) {
        streams.entry(request.stream).or_default().extend(out);
    }
    streams
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_fixed::rng::StdRng;

    fn fixed(x: f64) -> Fixed {
        Fixed::from_f64(x, Q4_12, Rounding::NearestEven)
    }

    fn gelu_key() -> TableKey {
        TableKey::paper(Activation::Gelu)
    }

    fn exp_key() -> TableKey {
        TableKey::paper(Activation::Exp)
    }

    /// Odd-sized per-stream bursts so batches never align with request
    /// boundaries. All tagged with the paper GELU table.
    fn requests(streams: usize, queries_per_stream: usize, seed: u64) -> Vec<ServingRequest> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..streams)
            .map(|stream| ServingRequest {
                stream,
                plan: gelu_key().into(),
                inputs: (0..queries_per_stream)
                    .map(|_| fixed(rng.gen_range(-6.0..6.0)))
                    .collect(),
            })
            .collect()
    }

    /// Mixed-tenancy slate: even streams hit GELU, odd streams hit the
    /// softmax-exp table, interleaved in arrival order.
    fn mixed_requests(streams: usize, queries_per_stream: usize, seed: u64) -> Vec<ServingRequest> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..streams)
            .map(|stream| ServingRequest {
                stream,
                plan: if stream % 2 == 0 {
                    gelu_key().into()
                } else {
                    exp_key().into()
                },
                inputs: (0..queries_per_stream)
                    .map(|_| fixed(rng.gen_range(-6.0..6.0)))
                    .collect(),
            })
            .collect()
    }

    fn engine(kind: ApproximatorKind, routers: usize, neurons: usize) -> ServingEngine {
        engine_with_workers(kind, routers, neurons, 1)
    }

    fn engine_with_workers(
        kind: ApproximatorKind,
        routers: usize,
        neurons: usize,
        workers: usize,
    ) -> ServingEngine {
        ServingEngine::builder(kind)
            .line(LineConfig::paper_default(routers, neurons))
            .table(gelu_key())
            .shards(workers)
            .build()
            .unwrap()
    }

    fn mixed_engine(
        kind: ApproximatorKind,
        routers: usize,
        neurons: usize,
        workers: usize,
        cache: &TableCache,
    ) -> ServingEngine {
        ServingEngine::builder(kind)
            .line(LineConfig::paper_default(routers, neurons))
            .cache(cache)
            .tables([gelu_key(), exp_key()])
            .shards(workers)
            .build()
            .unwrap()
    }

    #[test]
    fn cache_hits_return_the_same_arc() {
        let cache = TableCache::new();
        let key = gelu_key();
        let a = cache.get_or_fit(key).unwrap();
        let b = cache.get_or_fit(key).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "hit must share the allocation");
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 1, 1));

        // A different key is a different table.
        let c = cache.get_or_fit(exp_key()).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 2, 2));

        // Any key component change misses: same activation, other format.
        let other = TableKey {
            rounding: Rounding::Floor,
            ..key
        };
        let d = cache.get_or_fit(other).unwrap();
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.lost_races(), 0, "no concurrency, no races");
    }

    #[test]
    fn cache_clones_share_one_store_across_threads() {
        // The interior-mutability contract: clones are handles onto one
        // store, `get_or_fit` needs only `&self`, and concurrent fitters
        // of the same key converge on a single Arc. With threads racing,
        // every fit beyond the winner's is either a read hit or a lost
        // race — never a second inserted table.
        let cache = TableCache::new();
        let key = gelu_key();
        let fitters = 4;
        let tables: Vec<Arc<QuantizedPwl>> = std::thread::scope(|scope| {
            let threads: Vec<_> = (0..fitters)
                .map(|_| {
                    let cache = cache.clone();
                    scope.spawn(move || cache.get_or_fit(key).unwrap())
                })
                .collect();
            threads.into_iter().map(|t| t.join().unwrap()).collect()
        });
        for table in &tables {
            assert!(
                Arc::ptr_eq(&tables[0], table),
                "all threads must share one allocation"
            );
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.misses(), 1, "exactly one fit won the insert");
        assert_eq!(
            cache.hits() + cache.misses() + cache.lost_races(),
            fitters as u64,
            "every call accounted exactly once"
        );
    }

    #[test]
    fn cache_default_and_engine_debug_render() {
        // Satellite: `TableCache` is `Default`-constructible and
        // `ServingEngine` renders a useful `Debug` for error messages.
        let cache = TableCache::default();
        assert!(cache.is_empty());
        let eng = engine(ApproximatorKind::NovaNoc, 2, 4);
        let dbg = format!("{eng:?}");
        assert!(
            dbg.contains("ServingEngine")
                && dbg.contains("NovaNoc")
                && dbg.contains("tables")
                && dbg.contains("in_flight"),
            "{dbg}"
        );
    }

    #[test]
    fn builder_validates_tables_geometry_and_shards() {
        assert!(matches!(
            ServingEngine::builder(ApproximatorKind::NovaNoc)
                .line(LineConfig::paper_default(2, 4))
                .build(),
            Err(NovaError::BatchShape(_))
        ));
        assert!(matches!(
            ServingEngine::builder(ApproximatorKind::NovaNoc)
                .table(gelu_key())
                .build(),
            Err(NovaError::BatchShape(_))
        ));
        assert!(matches!(
            ServingEngine::builder(ApproximatorKind::NovaNoc)
                .line(LineConfig::paper_default(2, 4))
                .table(gelu_key())
                .shards(0)
                .build(),
            Err(NovaError::BatchShape(_))
        ));
        // Duplicate keys collapse onto one resident table.
        let eng = ServingEngine::builder(ApproximatorKind::PerCoreLut)
            .line(LineConfig::paper_default(2, 4))
            .tables([gelu_key(), gelu_key(), exp_key()])
            .build()
            .unwrap();
        assert_eq!(eng.tables().len(), 2);
        assert_eq!(eng.config().tables, vec![gelu_key(), exp_key()]);
        assert_eq!(eng.config().shards, 1);
    }

    #[test]
    fn builder_rejects_tables_the_hardware_cannot_switch_to() {
        // A 32-segment table needs more flits than the paper link's tag
        // space addresses: registering it on a NOVA engine must fail at
        // build time (the up-front-rejection contract), not poison a
        // slate mid-serve. LUT hardware has no broadcast line and must
        // keep accepting the same pair of tables.
        let cache = TableCache::new();
        let big = TableKey {
            breakpoints: 32,
            ..gelu_key()
        };
        let build = |kind| {
            ServingEngine::builder(kind)
                .line(LineConfig::paper_default(2, 4))
                .cache(&cache)
                .tables([gelu_key(), big])
                .build()
        };
        let err = build(ApproximatorKind::NovaNoc).unwrap_err();
        assert!(
            matches!(&err, NovaError::Runtime(msg) if msg.contains("cannot be served")),
            "{err:?}"
        );
        assert!(build(ApproximatorKind::PerCoreLut).is_ok());
    }

    #[test]
    fn builder_shares_cached_tables_across_engines() {
        let tech = TechModel::cmos22();
        let host = AcceleratorConfig::tpu_v4_like();
        let cache = TableCache::new();
        let a = ServingEngine::builder(ApproximatorKind::NovaNoc)
            .host(&tech, &host)
            .cache(&cache)
            .table(gelu_key())
            .build()
            .unwrap();
        let b = ServingEngine::builder(ApproximatorKind::PerCoreLut)
            .host(&tech, &host)
            .cache(&cache)
            .table(gelu_key())
            .build()
            .unwrap();
        assert_eq!(cache.misses(), 1, "second engine reuses the fit");
        assert_eq!(cache.hits(), 1);
        assert_eq!(a.capacity(), host.total_neurons());
        assert_eq!(b.capacity(), host.total_neurons());
        assert!(Arc::ptr_eq(&a.tables()[0].1, &b.tables()[0].1));
    }

    #[test]
    fn tagged_requests_migrate_to_one_stage_plans() {
        // The migration contract: a bare `TableKey` converts into the
        // trivial one-stage plan, so PR-5-era tagged callers move
        // mechanically (`key` → `key.into()`) and serve bit-identically
        // to an explicit `Plan::lookup`.
        let cache = TableCache::new();
        let table = cache.get_or_fit(gelu_key()).unwrap();
        let mut eng = ServingEngine::builder(ApproximatorKind::PerCoreLut)
            .line(LineConfig::paper_default(2, 4))
            .cache(&cache)
            .table(gelu_key())
            .build()
            .unwrap();
        let x = fixed(0.5);
        let tagged = vec![ServingRequest::new(0, gelu_key(), vec![x; 3])];
        let explicit = vec![ServingRequest::new(0, Plan::lookup(gelu_key()), vec![x; 3])];
        assert_eq!(tagged[0].plan, explicit[0].plan);
        assert_eq!(tagged[0].plan.single_lookup(), Some(gelu_key()));
        let outputs = eng.serve(&tagged).unwrap();
        assert_eq!(outputs, eng.serve(&explicit).unwrap());
        assert_eq!(outputs[0][0], table.eval(x));
        assert_eq!(eng.stats().table_switches, 0, "one table, no switches");
    }

    #[test]
    fn multi_stream_results_bit_identical_to_table_eval() {
        // The acceptance criterion: scatter/gather through coalesced
        // multi-tenant batches must equal a dedicated per-query eval.
        for kind in ApproximatorKind::all() {
            let mut eng = engine(kind, 4, 8);
            let reqs = requests(8, 37, 1);
            let outputs = eng.serve(&reqs).unwrap();
            for (request, out) in reqs.iter().zip(&outputs) {
                assert_eq!(out.len(), request.inputs.len());
                for (&x, &y) in request.inputs.iter().zip(out) {
                    assert_eq!(y, eng.table().eval(x), "{kind:?} stream {}", request.stream);
                }
            }
        }
    }

    #[test]
    fn multi_stream_matches_single_stream_serving() {
        // Serving all streams together must be bit-identical to serving
        // each stream through its own engine.
        let reqs = requests(6, 53, 2);
        let mut shared = engine(ApproximatorKind::NovaNoc, 4, 8);
        let together = shared.serve(&reqs).unwrap();
        for (i, request) in reqs.iter().enumerate() {
            let mut solo = engine(ApproximatorKind::NovaNoc, 4, 8);
            let alone = solo.serve(std::slice::from_ref(request)).unwrap();
            assert_eq!(together[i], alone[0], "stream {}", request.stream);
        }
    }

    #[test]
    fn parallel_serve_bit_identical_across_worker_counts() {
        // The tentpole determinism property, seeded and property-style:
        // for every approximator kind, worker count, shard geometry and
        // ragged tail shape, the threaded pool's output must be
        // bit-identical to the sequential reference (and therefore to
        // every other worker count). Ragged tails are guaranteed by
        // query counts that are coprime to the batch capacities.
        for (seed, (routers, neurons)) in [(11u64, (4usize, 8usize)), (12, (3, 5))] {
            for kind in ApproximatorKind::all() {
                for queries_per_stream in [1usize, 7, 61] {
                    let reqs = requests(5, queries_per_stream, seed);
                    let reference = engine(kind, routers, neurons).serve_reference(&reqs);
                    for workers in [1usize, 2, 4] {
                        let mut eng = engine_with_workers(kind, routers, neurons, workers);
                        let outputs = eng.serve(&reqs).unwrap();
                        assert_eq!(
                            outputs, reference,
                            "{kind:?} diverged: {workers} workers, \
                             {routers}x{neurons} grid, {queries_per_stream} q/stream"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mixed_activation_serving_bit_identical_and_charges_switch_stalls() {
        // The PR 5 acceptance criterion: mixed GELU+exp tenancy is
        // bit-identical to the multi-table reference across worker
        // counts {1,2,4} × all four kinds, and the reported makespan
        // grows by the table-switch stalls for LUT/SDP hardware while
        // staying unchanged (switches are free) for the NOVA NoC.
        let cache = TableCache::new();
        for kind in ApproximatorKind::all() {
            // 4 streams × 21 queries on a 2×4 grid: 6 GELU + 6 exp
            // batches, so every worker serves both activations.
            let reqs = mixed_requests(4, 21, 7);
            let reference = mixed_engine(kind, 2, 4, 1, &cache).serve_reference(&reqs);
            for workers in [1usize, 2, 4] {
                let mut eng = mixed_engine(kind, 2, 4, workers, &cache);
                let outputs = eng.serve(&reqs).unwrap();
                assert_eq!(outputs, reference, "{kind:?} diverged at {workers} workers");
                let stats = eng.stats();
                assert!(stats.table_switches > 0, "{kind:?}: no switch happened");
                let busiest_batch_cycles =
                    eng.worker_loads().iter().map(|l| l.cycles).max().unwrap();
                if kind == ApproximatorKind::NovaNoc {
                    assert_eq!(stats.switch_cycles, 0, "NOVA re-programs for free");
                    assert_eq!(
                        eng.makespan_cycles(),
                        busiest_batch_cycles,
                        "NOVA makespan must not grow under mixed tenancy"
                    );
                } else {
                    assert!(stats.switch_cycles > 0, "{kind:?} must pay bank rewrites");
                    assert!(
                        eng.makespan_cycles() > busiest_batch_cycles,
                        "{kind:?} makespan must include switch stalls"
                    );
                }
                // The switch ledger is consistent between views.
                assert_eq!(
                    stats.table_switches,
                    eng.worker_loads()
                        .iter()
                        .map(|l| l.table_switches)
                        .sum::<u64>()
                );
                assert_eq!(
                    stats.switch_cycles,
                    eng.worker_loads()
                        .iter()
                        .map(|l| l.switch_cycles)
                        .sum::<u64>()
                );
            }
        }
    }

    #[test]
    fn per_activation_runs_minimize_switches() {
        // Admission coalesces per-activation runs: a 1-worker engine
        // serving an interleaved GELU/exp slate must switch at most
        // (activations per serve call) times, not once per request.
        let cache = TableCache::new();
        let mut eng = mixed_engine(ApproximatorKind::PerCoreLut, 2, 4, 1, &cache);
        let reqs = mixed_requests(8, 9, 13); // interleaved tags in arrival order
        eng.serve(&reqs).unwrap();
        // GELU run first (worker pre-programmed with it), then one
        // switch into the exp run.
        assert_eq!(eng.stats().table_switches, 1);
        // Serving again switches back to GELU and into exp once more.
        eng.serve(&reqs).unwrap();
        assert_eq!(eng.stats().table_switches, 3);
    }

    #[test]
    fn non_resident_activation_is_rejected_before_dispatch() {
        let mut eng = engine(ApproximatorKind::PerCoreLut, 2, 4);
        let bad = vec![
            ServingRequest::new(0, gelu_key(), vec![fixed(0.1); 3]),
            ServingRequest::new(1, TableKey::paper(Activation::Tanh), vec![fixed(0.2); 3]),
        ];
        assert!(matches!(eng.serve(&bad), Err(NovaError::Runtime(_))));
        assert_eq!(eng.stats(), ServingStats::default(), "nothing dispatched");
        assert_eq!(eng.buffer_pool_len(), 0, "no buffer moved");
        assert_eq!(eng.in_flight(), 0, "no ticket admitted");
        assert!(eng.table_for(TableKey::paper(Activation::Tanh)).is_none());
        // The engine still serves well-tagged slates afterwards.
        assert_eq!(eng.serve(&bad[..1]).unwrap()[0].len(), 3);
    }

    #[test]
    fn session_tickets_overlap_and_match_the_reference() {
        let cache = TableCache::new();
        let mut eng = mixed_engine(ApproximatorKind::PerCoreLut, 2, 4, 2, &cache);
        let slate_a = mixed_requests(3, 17, 41);
        let slate_b = requests(2, 23, 42);
        let ref_a = eng.serve_reference(&slate_a);
        let ref_b = eng.serve_reference(&slate_b);
        let ticket_a = eng.submit(&slate_a).unwrap();
        let ticket_b = eng.submit(&slate_b).unwrap();
        assert_ne!(ticket_a, ticket_b);
        assert_eq!(eng.in_flight(), 2);
        // Collect out of submit order: poll B first.
        let out_b = loop {
            if let Some(out) = eng.try_poll(ticket_b).unwrap() {
                break out;
            }
        };
        assert_eq!(out_b, ref_b);
        // Drain what's left — exactly ticket A, in submit order.
        let drained = eng.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].0, ticket_a);
        assert_eq!(drained[0].1.as_ref().unwrap(), &ref_a);
        assert_eq!(eng.in_flight(), 0);
        // A collected ticket cannot be redeemed twice.
        assert!(eng.try_poll(ticket_b).is_err());
        // Single-ticket blocking wait: parks on completions (no
        // spinning) and is consumed exactly once.
        let ticket_c = eng.submit(&slate_b).unwrap();
        assert_eq!(eng.wait(ticket_c).unwrap(), ref_b);
        assert!(eng.wait(ticket_c).is_err(), "already collected");
        // The blocking wrapper shares the same plane and counters.
        assert_eq!(eng.serve(&slate_a).unwrap(), ref_a);
        assert_eq!(
            eng.stats().requests,
            (slate_a.len() * 2 + slate_b.len() * 2) as u64
        );
    }

    #[test]
    fn empty_submissions_complete_immediately() {
        let mut eng = engine(ApproximatorKind::NovaNoc, 2, 4);
        let ticket = eng.submit(&[]).unwrap();
        assert_eq!(eng.try_poll(ticket).unwrap(), Some(Vec::new()));
        // A zero-query (but non-empty) slate also completes at once and
        // aligns its outputs with the requests.
        let hollow = vec![ServingRequest::new(3, gelu_key(), Vec::new())];
        let ticket = eng.submit(&hollow).unwrap();
        assert_eq!(eng.try_poll(ticket).unwrap(), Some(vec![Vec::new()]));
        assert_eq!(eng.stats().batches, 0);
        assert_eq!(eng.stats().requests, 1);
    }

    #[test]
    fn tail_padding_never_leaks_into_outputs() {
        let mut eng = engine(ApproximatorKind::PerCoreLut, 4, 8);
        let capacity = eng.capacity();
        // 3 streams × 11 queries = 33 queries over 32-slot batches:
        // 2 batches, 31 padded slots.
        let reqs = requests(3, 11, 3);
        let outputs = eng.serve(&reqs).unwrap();
        let produced: usize = outputs.iter().map(Vec::len).sum();
        assert_eq!(produced, 33, "every query answered, nothing extra");
        let stats = eng.stats();
        assert_eq!(stats.batches, 2);
        assert_eq!(stats.queries, 33);
        assert_eq!(stats.padded_slots, 2 * capacity as u64 - 33);
        // And the per-stream gather sees exactly each stream's volume.
        let by_stream = gather_by_stream(&reqs, &outputs);
        assert_eq!(by_stream.len(), 3);
        assert!(by_stream.values().all(|v| v.len() == 11));
    }

    #[test]
    fn coalescing_amortizes_vs_per_request_dispatch() {
        // 8 streams of small bursts: coalesced dispatch must beat one
        // batch per request (the naive single-tenant pattern) on both
        // occupancy and aggregate throughput.
        let reqs = requests(8, 10, 4);
        let mut coalesced = engine(ApproximatorKind::NovaNoc, 5, 8);
        coalesced.serve(&reqs).unwrap();
        let mut naive = engine(ApproximatorKind::NovaNoc, 5, 8);
        for request in &reqs {
            naive.serve(std::slice::from_ref(request)).unwrap();
        }
        assert_eq!(coalesced.stats().queries, naive.stats().queries);
        assert!(coalesced.stats().batches < naive.stats().batches);
        assert!(
            coalesced.occupancy_pct() > 90.0,
            "{}",
            coalesced.occupancy_pct()
        );
        assert!(coalesced.queries_per_second(1.0) > naive.queries_per_second(1.0));
    }

    #[test]
    fn sharded_pool_is_functionally_invisible() {
        let cache = TableCache::new();
        let reqs = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..5)
                .map(|stream| ServingRequest {
                    stream,
                    plan: exp_key().into(),
                    inputs: (0..29).map(|_| fixed(rng.gen_range(-6.0..6.0))).collect(),
                })
                .collect::<Vec<_>>()
        };
        let build = |workers| {
            ServingEngine::builder(ApproximatorKind::PerNeuronLut)
                .line(LineConfig::paper_default(4, 8))
                .cache(&cache)
                .table(exp_key())
                .shards(workers)
                .build()
                .unwrap()
        };
        let mut one = build(1);
        let mut four = build(4);
        assert_eq!(four.shards(), 4);
        assert_eq!(one.serve(&reqs).unwrap(), four.serve(&reqs).unwrap());
        // ...but throughput-visible: 5×29 = 145 queries over 32-slot
        // batches is 5 batches, spread 2/1/1/1 over 4 round-robin
        // shards, so the pool's makespan is 2 batches vs 5 serially.
        assert_eq!(one.stats().batches, 5);
        assert_eq!(one.makespan_cycles(), one.stats().latency_cycles);
        assert_eq!(four.makespan_cycles(), 2 * one.makespan_cycles() / 5);
        assert!(four.queries_per_second(1.0) > 2.0 * one.queries_per_second(1.0));
    }

    #[test]
    fn worker_loads_aggregate_to_engine_stats() {
        // Aggregate stats are *derived from* per-worker counters, and
        // round-robin admission spreads batches across every shard.
        let mut eng = engine_with_workers(ApproximatorKind::PerCoreLut, 4, 8, 3);
        // 7 batches over 3 workers: 3/2/2.
        let reqs = requests(7, 32, 8);
        eng.serve(&reqs).unwrap();
        let loads = eng.worker_loads().to_vec();
        assert_eq!(loads.len(), 3);
        assert!(loads.iter().all(|l| l.batches > 0), "{loads:?}");
        let stats = eng.stats();
        assert_eq!(stats.batches, loads.iter().map(|l| l.batches).sum::<u64>());
        assert_eq!(stats.queries, loads.iter().map(|l| l.queries).sum::<u64>());
        assert_eq!(
            stats.latency_cycles,
            loads.iter().map(|l| l.cycles).sum::<u64>()
        );
        assert_eq!(
            eng.makespan_cycles(),
            loads
                .iter()
                .map(|l| l.cycles + l.switch_cycles)
                .max()
                .unwrap()
        );
    }

    #[test]
    fn round_robin_cursor_persists_across_serve_calls() {
        // Regression: the low-load steady state — repeated slates that
        // each fit in one batch — must still spread over every shard,
        // not land on worker 0 forever.
        let mut eng = engine_with_workers(ApproximatorKind::PerCoreLut, 2, 4, 3);
        for _ in 0..6 {
            eng.serve(&requests(1, 5, 10)).unwrap(); // 5 queries = 1 batch
        }
        let loads = eng.worker_loads();
        assert!(
            loads.iter().all(|l| l.batches == 2),
            "6 single-batch slates over 3 shards must spread 2/2/2: {loads:?}"
        );
    }

    #[test]
    fn backpressure_survives_slates_far_deeper_than_the_feed_channels() {
        // A slate hundreds of batches deep forces admission to block on
        // the bounded feeds many times over; everything must still come
        // back in order and bit-identical.
        let mut eng = engine_with_workers(ApproximatorKind::PerCoreLut, 2, 4, 2);
        let reqs = requests(4, 1000, 9); // 4000 queries / 8-slot batches = 500 batches
        let outputs = eng.serve(&reqs).unwrap();
        assert_eq!(outputs, eng.serve_reference(&reqs));
        assert_eq!(eng.stats().batches, 500);
    }

    #[test]
    fn mid_slate_error_leaves_stats_consistent() {
        // A format-mismatched request fails in the worker; the counters
        // must reflect exactly the batches that evaluated successfully —
        // queries included — so occupancy/throughput accounting never
        // skews, and the same error must surface for any worker count.
        use nova_fixed::Q8_8;
        for workers in [1usize, 3] {
            let mut eng = engine_with_workers(ApproximatorKind::PerCoreLut, 4, 8, workers);
            let capacity = eng.capacity() as u64;
            let good = requests(2, 40, 6); // 80 queries = 2.5 batches
            let mut bad = good.clone();
            bad.push(ServingRequest {
                stream: 9,
                plan: gelu_key().into(),
                inputs: vec![Fixed::from_f64(0.5, Q8_8, Rounding::NearestEven)],
            });
            assert!(eng.serve(&bad).is_err());
            let stats = eng.stats();
            // The first two full batches evaluated; the tail batch
            // holding the mismatched word failed and is not counted
            // anywhere, and no request of the failed slate counts as
            // served.
            assert_eq!(stats.requests, 0, "{workers} workers");
            assert_eq!(stats.batches, 2);
            assert_eq!(stats.queries, 2 * capacity);
            assert_eq!(stats.padded_slots, 0);
            assert!((eng.occupancy_pct() - 100.0).abs() < 1e-12);
            // And the engine keeps serving correctly afterwards.
            let outputs = eng.serve(&good).unwrap();
            assert_eq!(outputs.iter().map(Vec::len).sum::<usize>(), 80);
            assert_eq!(eng.stats().requests, 2);
        }
    }

    #[test]
    fn steady_state_serving_is_allocation_free() {
        // The PR 4 acceptance criterion, asserted as a capacity-
        // stability test: after the first slate warms the recycling pool,
        // repeated slates of the same depth mint no new buffer pairs and
        // never grow a recycled buffer's capacity — i.e. the per-batch
        // hot path touches the allocator zero times. Still true through
        // the session-based submit/wait plane.
        let mut eng = engine_with_workers(ApproximatorKind::PerCoreLut, 4, 8, 2);
        let reqs = requests(6, 37, 21); // 222 queries / 32-slot grid = 7 batches
        let reference = eng.serve_reference(&reqs);
        assert_eq!(eng.serve(&reqs).unwrap(), reference);
        let minted = eng.buffers_created();
        let pool = eng.buffer_pool_len();
        assert_eq!(minted, pool as u64, "every minted pair returns to the pool");
        assert!(minted >= 1);
        for _ in 0..5 {
            assert_eq!(eng.serve(&reqs).unwrap(), reference);
            assert_eq!(
                eng.buffers_created(),
                minted,
                "steady state must not mint buffers"
            );
            assert_eq!(eng.buffer_pool_len(), pool);
        }
        // A shallower slate reuses the same pool; a failed slate returns
        // its buffers too.
        assert_eq!(eng.serve(&requests(1, 5, 22)).unwrap().len(), 1);
        assert_eq!(eng.buffers_created(), minted);
        use nova_fixed::Q8_8;
        let mut bad = requests(1, 5, 23);
        bad[0].inputs[0] = Fixed::from_f64(0.5, Q8_8, Rounding::NearestEven);
        assert!(eng.serve(&bad).is_err());
        assert_eq!(
            eng.buffers_created(),
            minted,
            "errors must not leak buffers"
        );
        assert_eq!(eng.buffer_pool_len(), pool);
    }

    #[test]
    fn zero_batch_state_reports_zeros_not_nan() {
        // Regression: before the first `serve` call every rate/occupancy
        // accessor must return a plain 0 — never NaN, infinity or
        // garbage from a 0/0.
        let eng = engine_with_workers(ApproximatorKind::NovaNoc, 2, 4, 2);
        assert_eq!(eng.stats(), ServingStats::default());
        assert_eq!(eng.occupancy_pct(), 0.0);
        assert_eq!(eng.makespan_cycles(), 0);
        assert_eq!(eng.queries_per_second(1.0), 0.0);
        assert!(eng.occupancy_pct().is_finite());
        assert!(eng.queries_per_second(1.0).is_finite());
        // An empty slate must not disturb that.
        let mut eng = eng;
        eng.serve(&[]).unwrap();
        assert_eq!(eng.occupancy_pct(), 0.0);
        assert_eq!(eng.queries_per_second(1.0), 0.0);
    }

    #[test]
    fn dropping_an_engine_with_jobs_in_flight_joins_cleanly() {
        // Satellite: shutdown with work still queued (in the bounded
        // feeds *and* in the engine-side pending queue) must hang up the
        // feeds, let the workers drain and exit, and join them — no
        // deadlock, no panic.
        let mut eng = engine_with_workers(ApproximatorKind::PerCoreLut, 2, 4, 2);
        let reqs = requests(4, 500, 17); // 250 batches, mostly still pending
        let ticket = eng.submit(&reqs).unwrap();
        assert!(eng.in_flight() > 0);
        let _ = ticket;
        drop(eng);
    }

    /// A deliberately broken unit for the worker-panic test.
    struct PanickingUnit;

    impl VectorUnit for PanickingUnit {
        fn name(&self) -> &str {
            "panicking"
        }

        fn lookup_batch_into(
            &mut self,
            _inputs: &FixedBatch,
            _out: &mut FixedBatch,
        ) -> Result<(), NovaError> {
            panic!("injected unit failure")
        }

        fn switch_table(&mut self, _table: &QuantizedPwl) -> Result<u64, NovaError> {
            Ok(0)
        }

        fn latency_cycles(&self) -> u64 {
            0
        }

        fn lookups(&self) -> u64 {
            0
        }
    }

    #[test]
    fn worker_panic_surfaces_as_runtime_error_not_a_hang() {
        // Satellite: a panicking unit must not kill the worker thread or
        // hang the reorder stage — the panic is caught in the worker
        // loop and comes back as `NovaError::Runtime`.
        let cache = TableCache::new();
        let key = gelu_key();
        let table = cache.get_or_fit(key).unwrap();
        let config = ServingConfig {
            kind: ApproximatorKind::PerCoreLut,
            line: LineConfig::paper_default(2, 4),
            shards: 2,
            tables: vec![key],
        };
        let units: Vec<Box<dyn VectorUnit>> =
            vec![Box::new(PanickingUnit), Box::new(PanickingUnit)];
        let mut eng =
            ServingEngine::from_units(config, vec![(key, table)], MAX_UNIT_BATCHES, None, units)
                .unwrap();
        let err = eng.serve(&requests(2, 10, 30)).unwrap_err();
        assert!(
            matches!(&err, NovaError::Runtime(msg) if msg.contains("panicked")),
            "{err:?}"
        );
        assert_eq!(eng.stats().batches, 0, "panicked batches count nothing");
        // The pool survived the panic: the engine still answers (with
        // the same per-batch error), it does not hang or poison.
        assert!(eng.serve(&requests(1, 3, 31)).is_err());
        assert!(eng.in_flight() == 0);
    }

    #[test]
    fn zero_shards_rejected_and_empty_slates_are_free() {
        let line = LineConfig::paper_default(2, 4);
        assert!(matches!(
            ServingEngine::builder(ApproximatorKind::NovaNoc)
                .line(line)
                .table(gelu_key())
                .shards(0)
                .build(),
            Err(NovaError::BatchShape(_))
        ));
        let mut eng = ServingEngine::builder(ApproximatorKind::NovaNoc)
            .line(line)
            .table(gelu_key())
            .build()
            .unwrap();
        let outputs = eng.serve(&[]).unwrap();
        assert!(outputs.is_empty());
        assert_eq!(eng.stats().batches, 0);
    }

    fn softmax_plan() -> Plan {
        Plan::fused_softmax(Q4_12, Rounding::NearestEven)
    }

    /// Ragged attention-style slate: one fused-softmax row per request,
    /// each with its own width.
    fn fused_requests(widths: &[usize], seed: u64) -> Vec<ServingRequest> {
        let mut rng = StdRng::seed_from_u64(seed);
        widths
            .iter()
            .enumerate()
            .map(|(stream, &w)| {
                ServingRequest::new(
                    stream,
                    softmax_plan(),
                    (0..w).map(|_| fixed(rng.gen_range(-4.0..4.0))).collect(),
                )
            })
            .collect()
    }

    #[test]
    fn fused_softmax_bit_identical_across_kinds_and_workers() {
        // The tentpole acceptance gate in miniature: a fused
        // exp → reduce → recip → scale plan served through the pool is
        // bit-identical to the sequential op-graph interpreter for every
        // approximator kind × worker count, rows stay whole across
        // batches, empty rows ride along, and the fused steady state
        // mints no buffers.
        let cache = TableCache::new();
        let plan = softmax_plan();
        // Capacity is 8 (2×4): widths share batches, fill one exactly,
        // and include an empty row.
        let widths = [7usize, 3, 8, 1, 0, 5, 8, 2, 6, 4];
        let reqs = fused_requests(&widths, 0xF05);
        for kind in ApproximatorKind::all() {
            for workers in [1usize, 2, 4] {
                let mut eng = ServingEngine::builder(kind)
                    .line(LineConfig::paper_default(2, 4))
                    .cache(&cache)
                    .plan(&plan)
                    .shards(workers)
                    .build()
                    .unwrap();
                let label = format!("{} w={workers}", kind.label());
                let reference = eng.serve_reference(&reqs);
                assert_eq!(eng.serve(&reqs).unwrap(), reference, "{label}");
                let minted = eng.buffers_created();
                assert_eq!(eng.serve(&reqs).unwrap(), reference, "{label}");
                assert_eq!(
                    eng.buffers_created(),
                    minted,
                    "fused steady state minted buffers: {label}"
                );
                // Sanity beyond bit-identity: every non-empty row is a
                // probability vector (within PWL + fixed-point noise).
                for (out, &w) in reference.iter().zip(&widths) {
                    assert_eq!(out.len(), w, "{label}");
                    if w == 0 {
                        continue;
                    }
                    let sum: f64 = out.iter().map(|x| x.to_f64()).sum();
                    assert!(
                        (sum - 1.0).abs() < 0.1,
                        "{label}: width-{w} row sums to {sum}"
                    );
                    assert!(out.iter().all(|x| x.to_f64() >= 0.0), "{label}");
                }
            }
        }
    }

    #[test]
    fn mixed_single_and_fused_slates_serve_together() {
        // Plans group independently in arrival order: a slate mixing
        // plain GELU lookups with fused softmax rows serves
        // bit-identically to the reference, on one worker and several.
        let cache = TableCache::new();
        let plan = softmax_plan();
        let mut rng = StdRng::seed_from_u64(0x50F7);
        let mut reqs = Vec::new();
        for stream in 0..6 {
            if stream % 2 == 0 {
                reqs.push(ServingRequest::new(
                    stream,
                    gelu_key(),
                    (0..13).map(|_| fixed(rng.gen_range(-6.0..6.0))).collect(),
                ));
            } else {
                reqs.push(ServingRequest::new(
                    stream,
                    plan.clone(),
                    (0..5).map(|_| fixed(rng.gen_range(-4.0..4.0))).collect(),
                ));
            }
        }
        for workers in [1usize, 3] {
            let mut eng = ServingEngine::builder(ApproximatorKind::NovaNoc)
                .line(LineConfig::paper_default(2, 4))
                .cache(&cache)
                .table(gelu_key())
                .plan(&plan)
                .shards(workers)
                .build()
                .unwrap();
            let reference = eng.serve_reference(&reqs);
            assert_eq!(eng.serve(&reqs).unwrap(), reference, "{workers} workers");
        }
    }

    #[test]
    fn fused_plan_switch_ledger_nova_free_baselines_paying() {
        // The headline economics: every fused batch re-programs the unit
        // twice (exp, then recip) except the boot batch whose exp table
        // is already loaded — free on the NOVA NoC, strictly positive
        // stall cycles on the LUT banks and the SDP.
        let cache = TableCache::new();
        let plan = softmax_plan();
        let reqs = fused_requests(&[7, 5, 8, 3, 6, 2], 0xAB);
        let mut stalls = Vec::new();
        for kind in ApproximatorKind::all() {
            let mut eng = ServingEngine::builder(kind)
                .line(LineConfig::paper_default(2, 4))
                .cache(&cache)
                .plan(&plan)
                .build()
                .unwrap();
            eng.serve(&reqs).unwrap();
            let stats = eng.stats();
            assert!(stats.batches > 1, "{}", kind.label());
            assert_eq!(
                stats.table_switches,
                2 * stats.batches - 1,
                "{}: two lookups per batch, boot table preloaded",
                kind.label()
            );
            stalls.push((kind, stats.switch_cycles));
        }
        for (kind, cycles) in stalls {
            if kind == ApproximatorKind::NovaNoc {
                assert_eq!(cycles, 0, "NOVA switches are free");
            } else {
                assert!(cycles > 0, "{} switches must stall", kind.label());
            }
        }
    }

    #[test]
    fn malformed_plans_and_oversized_fused_rows_rejected_up_front() {
        use nova_fixed::Q8_8;
        let cache = TableCache::new();
        let plan = softmax_plan();
        let mut eng = ServingEngine::builder(ApproximatorKind::NovaNoc)
            .line(LineConfig::paper_default(2, 4))
            .cache(&cache)
            .plan(&plan)
            .build()
            .unwrap();
        // A fused row wider than the batch capacity cannot reduce
        // in-engine: rejected before anything is dispatched.
        let wide = vec![ServingRequest::new(
            0,
            plan.clone(),
            vec![fixed(0.1); eng.capacity() + 1],
        )];
        assert!(matches!(eng.serve(&wide), Err(NovaError::BatchShape(_))));
        // Malformed plans fail validation and admission alike: empty,
        // lookup-free, scale before any reduction, mixed word formats.
        let mismatched = TableKey {
            format: Q8_8,
            ..gelu_key()
        };
        for bad in [
            Plan::new([]),
            Plan::new([PlanStage::MaxSubtract]),
            Plan::new([PlanStage::RangeScale, PlanStage::Lookup(gelu_key())]),
            Plan::new([PlanStage::Lookup(gelu_key()), PlanStage::Lookup(mismatched)]),
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
            let reqs = vec![ServingRequest::new(0, bad.clone(), vec![fixed(0.0)])];
            assert!(
                matches!(eng.serve(&reqs), Err(NovaError::BatchShape(_))),
                "{bad:?}"
            );
        }
        // The engine still serves after every rejection.
        assert!(eng.serve(&fused_requests(&[3], 1)).is_ok());
        assert_eq!(eng.in_flight(), 0);
    }

    #[test]
    fn zero_denominator_rows_fall_back_to_uniform() {
        // A custom plan whose numerators can all quantize to zero (GELU
        // of strongly negative inputs) exercises the uniform fallback —
        // identically on the pool and the reference interpreter.
        let cache = TableCache::new();
        let recip = TableKey {
            activation: Activation::Recip,
            ..gelu_key()
        };
        let plan = Plan::new([
            PlanStage::Lookup(gelu_key()),
            PlanStage::SumRangeReduce,
            PlanStage::Lookup(recip),
            PlanStage::RangeScale,
        ]);
        assert!(plan.validate().is_ok());
        let mut eng = ServingEngine::builder(ApproximatorKind::NovaNoc)
            .line(LineConfig::paper_default(2, 4))
            .cache(&cache)
            .plan(&plan)
            .build()
            .unwrap();
        // Precondition: the compiled GELU table maps -6.0 to a
        // non-positive word, so the denominator really is zero.
        let gelu_table = eng.table_for(gelu_key()).expect("resident");
        assert!(gelu_table.eval(fixed(-6.0)).raw() <= 0, "precondition");
        let reqs = vec![
            ServingRequest::new(0, plan.clone(), vec![fixed(-6.0); 4]),
            ServingRequest::new(1, plan.clone(), vec![fixed(1.0); 3]),
        ];
        let reference = eng.serve_reference(&reqs);
        let outputs = eng.serve(&reqs).unwrap();
        assert_eq!(outputs, reference);
        let quarter = Fixed::from_f64(0.25, Q4_12, Rounding::NearestEven);
        assert!(
            outputs[0].iter().all(|&x| x == quarter),
            "zero-sum row must be uniform: {:?}",
            outputs[0]
        );
    }

    // ----- fault quarantine, requeue, and warm-start snapshots -----

    #[test]
    fn injected_fault_quarantines_the_shard_and_the_slate_completes() {
        // The tentpole in one engine: a bit-flip fault fires on shard 0
        // mid-traffic, the canary catches it, the shard is quarantined,
        // its in-flight units re-run on the survivor — and the slate is
        // still bit-identical to the sequential reference.
        let mut eng = ServingEngine::builder(ApproximatorKind::PerCoreLut)
            .line(LineConfig::paper_default(2, 4))
            .table(gelu_key())
            .shards(2)
            .fault_check(FaultPolicy::new().inject(0, FaultInjector::bit_flip(1, 7)))
            .build()
            .unwrap();
        let reqs = requests(8, 40, 0xFA01);
        let reference = eng.serve_reference(&reqs);
        assert_eq!(eng.serve(&reqs).unwrap(), reference);
        let stats = eng.stats();
        assert_eq!(stats.quarantined_shards, 1, "{stats:?}");
        assert!(stats.requeued_units >= 1, "{stats:?}");
        assert!(
            (stats.degraded_capacity_pct - 50.0).abs() < 1e-9,
            "{stats:?}"
        );
        assert_eq!(eng.healthy_shards(), 1);
        assert!(
            eng.stage_times().requeue_ns > 0,
            "requeue cost must be attributed"
        );
        // Degraded steady state: the survivor keeps serving correctly.
        assert_eq!(eng.serve(&reqs).unwrap(), reference);
        assert_eq!(eng.stats().quarantined_shards, 1, "no double quarantine");
    }

    #[test]
    fn last_healthy_shard_fault_poisons_the_engine() {
        let mut eng = ServingEngine::builder(ApproximatorKind::PerCoreLut)
            .line(LineConfig::paper_default(2, 4))
            .table(gelu_key())
            .fault_check(FaultPolicy::new().inject(0, FaultInjector::panic_after(0)))
            .build()
            .unwrap();
        let err = eng.serve(&requests(2, 10, 0xFA02)).unwrap_err();
        assert!(
            matches!(&err, NovaError::Runtime(msg) if msg.contains("all shard workers quarantined")),
            "{err:?}"
        );
        // The poison is latched: the engine stays dead deterministically.
        assert!(eng.serve(&requests(1, 3, 0xFA03)).is_err());
        assert_eq!(eng.healthy_shards(), 0);
        assert!((eng.stats().degraded_capacity_pct - 100.0).abs() < 1e-9);
    }

    #[test]
    fn armed_but_fault_free_policy_serves_identically() {
        // Detection arming without any injected fault must be purely
        // observational: same outputs, nothing quarantined or requeued.
        let reqs = requests(6, 30, 0xFA04);
        let mut plain = engine_with_workers(ApproximatorKind::NovaNoc, 2, 4, 2);
        let reference = plain.serve(&reqs).unwrap();
        let mut armed = ServingEngine::builder(ApproximatorKind::NovaNoc)
            .line(LineConfig::paper_default(2, 4))
            .table(gelu_key())
            .shards(2)
            .fault_check(FaultPolicy::new())
            .build()
            .unwrap();
        assert_eq!(armed.serve(&reqs).unwrap(), reference);
        let stats = armed.stats();
        assert_eq!(stats.quarantined_shards, 0);
        assert_eq!(stats.requeued_units, 0);
        assert!(stats.degraded_capacity_pct.abs() < 1e-9);
        assert_eq!(armed.stage_times().requeue_ns, 0);
    }

    #[test]
    fn seeded_chaos_sweep_stays_bit_identical_while_any_shard_survives() {
        // Satellite: random BitFaults + panics injected mid-traffic
        // across workers {1, 2, 4} × every approximator kind. Whenever
        // k < workers shards are hit, the slate must complete
        // bit-identical to `serve_reference` and the ledger must match
        // the injection log; when the only shard is hit, the engine
        // must poison (not hang, not corrupt).
        let mut rng = StdRng::seed_from_u64(0xC7A05);
        let reqs = mixed_requests(8, 40, 0xFA05);
        let cache = TableCache::new();
        for kind in ApproximatorKind::all() {
            for workers in [1usize, 2, 4] {
                // Injection log: hit `workers - 1` shards (so one always
                // survives), except the 1-worker row which hits its only
                // shard to exercise the poison path.
                let hit = if workers == 1 { 1 } else { workers - 1 };
                let mut policy = FaultPolicy::new();
                for shard in 0..hit {
                    let after = rng.gen_range(0u64..3);
                    policy = if rng.gen_range(0u32..2) == 0 {
                        let bit = rng.gen_range(0u32..32);
                        policy.inject(shard, FaultInjector::bit_flip(after, bit))
                    } else {
                        policy.inject(shard, FaultInjector::panic_after(after))
                    };
                }
                let mut eng = ServingEngine::builder(kind)
                    .line(LineConfig::paper_default(2, 4))
                    .cache(&cache)
                    .tables([gelu_key(), exp_key()])
                    .shards(workers)
                    .fault_check(policy)
                    .build()
                    .unwrap();
                let label = format!("{} w={workers}", kind.label());
                let reference = eng.serve_reference(&reqs);
                if workers == 1 {
                    let err = eng.serve(&reqs).unwrap_err();
                    assert!(
                        matches!(&err, NovaError::Runtime(msg)
                            if msg.contains("all shard workers quarantined")),
                        "{label}: {err:?}"
                    );
                    continue;
                }
                assert_eq!(eng.serve(&reqs).unwrap(), reference, "{label}");
                let stats = eng.stats();
                assert_eq!(stats.quarantined_shards, hit as u64, "{label}: {stats:?}");
                assert!(
                    stats.requeued_units >= hit as u64,
                    "{label}: every hit shard bounces at least its triggering unit: {stats:?}"
                );
                let expected_pct = 100.0 * hit as f64 / workers as f64;
                assert!(
                    (stats.degraded_capacity_pct - expected_pct).abs() < 1e-9,
                    "{label}: {stats:?}"
                );
                assert_eq!(eng.healthy_shards(), workers - hit, "{label}");
                // Degraded but alive: the survivors still serve the
                // whole slate bit-identically.
                assert_eq!(eng.serve(&reqs).unwrap(), reference, "{label}");
            }
        }
    }

    #[test]
    fn poisoning_fitter_thread_does_not_take_down_the_cache() {
        // Satellite: a thread that panics while holding the cache's
        // write lock poisons the `RwLock`; recovery must hand later
        // callers the (valid) map instead of cascading the panic into
        // every serving engine sharing the cache.
        let cache = TableCache::new();
        cache.get_or_fit(gelu_key()).unwrap();
        let poisoner = cache.clone();
        let result = std::thread::spawn(move || {
            let _guard = poisoner.inner.tables.write().unwrap();
            panic!("deliberate poison");
        })
        .join();
        assert!(result.is_err(), "the fitter thread must have panicked");
        assert_eq!(cache.len(), 1, "reads recover the poisoned lock");
        let a = cache.get_or_fit(gelu_key()).unwrap();
        let b = cache.get_or_fit(exp_key()).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2, "writes recover the poisoned lock");
        let snapshot = cache.snapshot();
        let fresh = TableCache::new();
        assert_eq!(fresh.restore(&snapshot).unwrap(), 2);
    }

    #[test]
    fn snapshot_restore_round_trips_every_resident_table_raw_identical() {
        // Warm-start contract: every fitted table survives
        // snapshot → restore with raw slope/bias/breakpoint words
        // bit-identical, across activations, formats, and roundings.
        let cache = TableCache::new();
        let mut keys = vec![gelu_key(), exp_key()];
        keys.push(TableKey {
            rounding: Rounding::Floor,
            ..gelu_key()
        });
        keys.push(TableKey {
            activation: Activation::Tanh,
            breakpoints: 9,
            ..gelu_key()
        });
        for &key in &keys {
            cache.get_or_fit(key).unwrap();
        }
        let snapshot = cache.snapshot();
        let warm = TableCache::new();
        assert_eq!(warm.restore(&snapshot).unwrap(), keys.len());
        assert_eq!(warm.len(), keys.len());
        for &key in &keys {
            let orig = cache.get_or_fit(key).unwrap();
            let misses = warm.misses();
            let restored = warm.get_or_fit(key).unwrap();
            assert_eq!(warm.misses(), misses, "warm start must not refit {key:?}");
            assert_eq!(orig.slopes_raw(), restored.slopes_raw(), "{key:?}");
            assert_eq!(orig.biases_raw(), restored.biases_raw(), "{key:?}");
            assert_eq!(orig.breakpoints(), restored.breakpoints(), "{key:?}");
            assert_eq!(orig.format(), restored.format(), "{key:?}");
            assert_eq!(orig.rounding(), restored.rounding(), "{key:?}");
        }
        // Restore is additive and idempotent: resident keys are skipped.
        assert_eq!(warm.restore(&snapshot).unwrap(), 0);
        // And the snapshot survives a JSON round-trip (the daemon's
        // on-disk form).
        let json = snapshot.to_json();
        let reloaded = Value::from_json(&json).unwrap();
        let warm2 = TableCache::new();
        assert_eq!(warm2.restore(&reloaded).unwrap(), keys.len());
        assert_eq!(warm2.snapshot().to_json(), warm.snapshot().to_json());
    }

    #[test]
    fn restore_rejects_malformed_snapshots() {
        let cache = TableCache::new();
        let err = cache
            .restore(&Value::from_json("{\"format\":\"bogus/v9\",\"tables\":[]}").unwrap())
            .unwrap_err();
        assert!(
            matches!(&err, NovaError::Runtime(msg) if msg.contains("unrecognized format")),
            "{err:?}"
        );
        // A malformed entry rejects the whole snapshot atomically:
        // nothing is inserted from the valid half.
        let donor = TableCache::new();
        donor.get_or_fit(gelu_key()).unwrap();
        let mut json = donor.snapshot().to_json();
        json = json.replacen("\"gelu\"", "\"unknown\"", 1);
        let err = cache
            .restore(&Value::from_json(&json).unwrap())
            .unwrap_err();
        assert!(
            matches!(&err, NovaError::Runtime(msg) if msg.contains("activation")),
            "{err:?}"
        );
        assert_eq!(cache.len(), 0, "rejected snapshots insert nothing");
    }
}
