//! The Fig 5(a) integration, end to end: REACT's Weighted-Sum NoC
//! computes the neuron pre-activations, the widened 6×2 crossbar forwards
//! them to the NOVA comparators, and the NOVA NoC returns the
//! approximated activations through the 2×6 output crossbar.
//!
//! This is a *functional* composition of two cycle-accurate substrates —
//! a full dense-layer forward pass (weights → weighted sums → non-linear
//! activation) running entirely on the 16-bit hardware datapath.

use nova_accel::react::ReactCore;
use nova_approx::QuantizedPwl;
use nova_fixed::Fixed;
use nova_noc::{sim::BroadcastSim, LineConfig};

use crate::NovaError;

/// Combined per-layer statistics of the REACT + NOVA pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PipelineStats {
    /// WS-line cycles spent producing weighted sums.
    pub ws_cycles: u64,
    /// NOVA NoC cycles spent on the activation broadcast.
    pub noc_cycles: u64,
    /// Total effective core cycles for the layer.
    pub total_cycles: u64,
}

/// One REACT core with a NOVA router attached (Fig 5a).
#[derive(Debug, Clone)]
pub struct ReactNovaPipeline {
    core: ReactCore,
    nova: BroadcastSim,
    table: QuantizedPwl,
}

impl ReactNovaPipeline {
    /// Builds the pipeline: a REACT core computing `weights` and a
    /// single-router NOVA line serving its output neurons with `table`.
    ///
    /// # Errors
    ///
    /// Propagates NoC construction errors.
    ///
    /// # Panics
    ///
    /// Panics if the weight matrix is malformed (see [`ReactCore::new`]).
    pub fn new(weights: Vec<Vec<Fixed>>, table: &QuantizedPwl) -> Result<Self, NovaError> {
        let core = ReactCore::new(weights, table.rounding());
        let config = LineConfig::paper_default(1, core.neurons());
        Ok(Self {
            core,
            nova: BroadcastSim::new(config, table)?,
            table: table.clone(),
        })
    }

    /// Output neurons of the layer.
    #[must_use]
    pub fn neurons(&self) -> usize {
        self.core.neurons()
    }

    /// Runs one dense layer: `activation(W · x)` on the hardware
    /// datapath. Returns the activations and the cycle breakdown.
    ///
    /// # Errors
    ///
    /// Propagates NoC batch errors.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the core's PE count.
    pub fn forward(&mut self, inputs: &[Fixed]) -> Result<(Vec<Fixed>, PipelineStats), NovaError> {
        let ws_before = self.core.stats().cycles;
        let sums = self.core.weighted_sums(inputs);
        let ws_cycles = self.core.stats().cycles - ws_before;
        let outcome = self.nova.run(&[sums])?;
        let stats = PipelineStats {
            ws_cycles,
            noc_cycles: outcome.stats.noc_cycles,
            total_cycles: ws_cycles + outcome.stats.core_cycle_latency,
        };
        Ok((
            outcome.outputs.into_iter().next().expect("one router"),
            stats,
        ))
    }

    /// The activation table in use.
    #[must_use]
    pub fn table(&self) -> &QuantizedPwl {
        &self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_approx::{fit, Activation};
    use nova_fixed::{Rounding, Q4_12};

    fn table(a: Activation) -> QuantizedPwl {
        let pwl = fit::fit_activation(a, 16, fit::BreakpointStrategy::GreedyRefine).unwrap();
        QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
    }

    fn fx(v: f64) -> Fixed {
        Fixed::from_f64(v, Q4_12, Rounding::NearestEven)
    }

    #[test]
    fn dense_layer_with_sigmoid_matches_reference() {
        let weights = vec![
            vec![fx(0.5), fx(-0.5), fx(0.25), fx(0.1)],
            vec![fx(-0.2), fx(0.4), fx(0.3), fx(-0.1)],
            vec![fx(1.0), fx(0.0), fx(-1.0), fx(0.5)],
        ];
        let t = table(Activation::Sigmoid);
        let mut pipe = ReactNovaPipeline::new(weights.clone(), &t).unwrap();
        let inputs = [fx(1.0), fx(-2.0), fx(0.5), fx(3.0)];
        let (out, stats) = pipe.forward(&inputs).unwrap();
        assert_eq!(out.len(), 3);
        for (n, row) in weights.iter().enumerate() {
            let pre: f64 = row
                .iter()
                .zip(&inputs)
                .map(|(w, x)| w.to_f64() * x.to_f64())
                .sum();
            let expect = Activation::Sigmoid.eval(pre);
            assert!(
                (out[n].to_f64() - expect).abs() < 0.02,
                "neuron {n}: {} vs {expect}",
                out[n].to_f64()
            );
        }
        assert!(stats.ws_cycles > 0 && stats.noc_cycles > 0);
        assert_eq!(stats.total_cycles, stats.ws_cycles + 2);
    }

    #[test]
    fn nova_output_is_exact_table_eval_of_ws_sum() {
        // Bit-level contract across the crossbar: the activation equals
        // table.eval(weighted sum) exactly.
        let weights = vec![vec![fx(0.75), fx(0.25)]; 2];
        let t = table(Activation::Gelu);
        let mut pipe = ReactNovaPipeline::new(weights, &t).unwrap();
        let inputs = [fx(2.0), fx(-1.0)];
        let (out, _) = pipe.forward(&inputs).unwrap();
        let pre = fx(0.75 * 2.0 + -0.25);
        assert_eq!(out[0], t.eval(pre));
        assert_eq!(out[1], t.eval(pre));
    }

    #[test]
    fn reusable_across_layers() {
        let t = table(Activation::Relu);
        let mut pipe = ReactNovaPipeline::new(vec![vec![fx(1.0); 2]; 2], &t).unwrap();
        let (a, _) = pipe.forward(&[fx(1.0), fx(1.0)]).unwrap();
        let (b, _) = pipe.forward(&[fx(-3.0), fx(1.0)]).unwrap();
        assert!(a[0].to_f64() > 1.9);
        assert!(b[0].to_f64().abs() < 0.1);
    }
}
