//! Overlaying NOVA onto a Table II accelerator (Fig 5).

use nova_accel::{config::AcceleratorConfig, integrate};
use nova_approx::QuantizedPwl;
use nova_noc::{LineConfig, LinkConfig};
use nova_synth::{timing, units, AreaPower, LutSharing, TechModel};

use crate::vector_unit::{self, ApproximatorKind};
use crate::{NovaError, NovaVectorUnit, VectorUnit};

/// A NOVA NoC attached to a host accelerator: geometry from the Fig 5
/// adapter, cost from the 22 nm model, function from the NoC simulator.
#[derive(Debug, Clone)]
pub struct NovaOverlay {
    config: AcceleratorConfig,
    attachment: integrate::Attachment,
    breakpoints: usize,
}

impl NovaOverlay {
    /// Attaches NOVA to `config` with the paper's 16 breakpoints.
    #[must_use]
    pub fn new(config: &AcceleratorConfig) -> Self {
        Self::with_breakpoints(config, 16)
    }

    /// Attaches with an explicit breakpoint budget.
    #[must_use]
    pub fn with_breakpoints(config: &AcceleratorConfig, breakpoints: usize) -> Self {
        Self {
            attachment: integrate::attachment(config),
            config: config.clone(),
            breakpoints,
        }
    }

    /// The host configuration.
    #[must_use]
    pub fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// The Fig 5 attachment description.
    #[must_use]
    pub fn attachment(&self) -> &integrate::Attachment {
        &self.attachment
    }

    /// The NoC line geometry for this host, with the SMART reach computed
    /// from the tech model at the NoC clock (`multiplier ×` core clock).
    #[must_use]
    pub fn line_config(&self, tech: &TechModel, noc_multiplier: usize) -> LineConfig {
        let noc_ghz = self.config.frequency_ghz() * noc_multiplier as f64;
        let reach = timing::max_hops_per_cycle(tech, noc_ghz, self.attachment.pitch_mm).max(1);
        LineConfig {
            routers: self.attachment.routers,
            neurons_per_router: self.attachment.neurons_per_router,
            link: LinkConfig::paper(),
            max_hops_per_cycle: reach,
        }
    }

    /// Builds the functional NOVA vector unit for `table` (typed; the
    /// NoC is what the overlay attaches).
    ///
    /// # Errors
    ///
    /// Propagates NoC construction errors.
    pub fn vector_unit(
        &self,
        tech: &TechModel,
        table: &QuantizedPwl,
    ) -> Result<NovaVectorUnit, NovaError> {
        let schedule = nova_noc::BroadcastSchedule::compile(table, LinkConfig::paper())?;
        NovaVectorUnit::new(
            self.line_config(tech, schedule.noc_clock_multiplier()),
            table,
        )
    }

    /// Builds the functional unit for *any* approximator kind on this
    /// host's line geometry, through the unified
    /// [`vector_unit::build`] dispatch. (The Fig 5 attachment mirrors
    /// the config's geometry, so this is exactly
    /// [`vector_unit::build_for_host`] on the wrapped config.)
    ///
    /// # Errors
    ///
    /// Propagates NoC construction errors.
    pub fn unit(
        &self,
        tech: &TechModel,
        table: &QuantizedPwl,
        kind: ApproximatorKind,
    ) -> Result<Box<dyn VectorUnit>, NovaError> {
        vector_unit::build_for_host(kind, tech, &self.config, table)
    }

    /// Total NOVA NoC area/power on this host (all routers), at the
    /// host's clocks and activity.
    #[must_use]
    pub fn area_power(&self, tech: &TechModel) -> AreaPower {
        let router = units::nova_router(
            tech,
            self.attachment.neurons_per_router,
            self.breakpoints,
            self.attachment.pitch_mm,
        );
        let core_ghz = self.config.frequency_ghz();
        // 16 breakpoints on the 8-pair link → 2× NoC clock (paper §IV).
        let noc_ghz = core_ghz * self.breakpoints.div_ceil(8).max(1) as f64;
        let n = self.attachment.routers as f64;
        AreaPower {
            area_mm2: router.area_um2 * n * 1e-6,
            power_mw: router.power_mw(tech, core_ghz, noc_ghz, self.config.datapath_activity) * n,
        }
    }

    /// Area/power of a LUT baseline on the same host (Table III rows).
    #[must_use]
    pub fn lut_area_power(&self, tech: &TechModel, sharing: LutSharing) -> AreaPower {
        let unit = units::lut_unit(
            tech,
            self.attachment.neurons_per_router,
            self.breakpoints,
            sharing,
        );
        let n = self.attachment.routers as f64;
        AreaPower {
            area_mm2: unit.area_um2 * n * 1e-6,
            power_mw: unit.power_mw(
                tech,
                self.config.frequency_ghz(),
                self.config.datapath_activity,
            ) * n,
        }
    }

    /// Area overhead as a percentage of the host die, when the paper
    /// reports one (§V.C's 9.11% for REACT).
    #[must_use]
    pub fn area_overhead_pct(&self, tech: &TechModel) -> Option<f64> {
        self.config
            .die_area_mm2
            .map(|die| 100.0 * self.area_power(tech).area_mm2 / die)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_approx::{fit, Activation};
    use nova_fixed::{Fixed, Rounding, Q4_12};

    fn tech() -> TechModel {
        TechModel::cmos22()
    }

    fn table() -> QuantizedPwl {
        let pwl =
            fit::fit_activation(Activation::Exp, 16, fit::BreakpointStrategy::Uniform).unwrap();
        QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
    }

    #[test]
    fn react_overhead_near_paper_9pct() {
        let overlay = NovaOverlay::new(&AcceleratorConfig::react());
        let pct = overlay.area_overhead_pct(&tech()).unwrap();
        assert!(
            (5.0..15.0).contains(&pct),
            "REACT overhead {pct}% (paper: 9.11%)"
        );
    }

    #[test]
    fn nova_beats_both_luts_on_every_host() {
        let t = tech();
        for cfg in AcceleratorConfig::table2() {
            let overlay = NovaOverlay::new(&cfg);
            let nova = overlay.area_power(&t);
            let pn = overlay.lut_area_power(&t, LutSharing::PerNeuron);
            let pc = overlay.lut_area_power(&t, LutSharing::PerCore);
            assert!(
                nova.area_mm2 < pn.area_mm2,
                "{}: area vs per-neuron",
                cfg.name
            );
            assert!(
                nova.area_mm2 < pc.area_mm2,
                "{}: area vs per-core",
                cfg.name
            );
            assert!(
                nova.power_mw < pn.power_mw,
                "{}: power vs per-neuron",
                cfg.name
            );
            assert!(
                nova.power_mw < pc.power_mw,
                "{}: power vs per-core",
                cfg.name
            );
        }
    }

    #[test]
    fn functional_unit_from_overlay() {
        let overlay = NovaOverlay::new(&AcceleratorConfig::jetson_xavier_nx());
        let t = table();
        let mut unit = overlay.vector_unit(&tech(), &t).unwrap();
        let inputs: Vec<Vec<Fixed>> = (0..2)
            .map(|r| {
                (0..16)
                    .map(|n| {
                        Fixed::from_f64(-(r as f64) - n as f64 * 0.3, Q4_12, Rounding::NearestEven)
                    })
                    .collect()
            })
            .collect();
        use crate::VectorUnit;
        let out = unit.lookup_batch(&inputs).unwrap();
        assert_eq!(out[1][5], t.eval(inputs[1][5]));
    }

    #[test]
    fn tpu_v4_doubles_v3() {
        let t = tech();
        let v3 = NovaOverlay::new(&AcceleratorConfig::tpu_v3_like()).area_power(&t);
        let v4 = NovaOverlay::new(&AcceleratorConfig::tpu_v4_like()).area_power(&t);
        assert!((v4.area_mm2 / v3.area_mm2 - 2.0).abs() < 0.01);
    }
}
