use std::error::Error;
use std::fmt;

/// Top-level error type: wraps the substrate errors plus overlay-specific
/// conditions.
#[derive(Debug)]
#[non_exhaustive]
pub enum NovaError {
    /// Approximation/fitting failure.
    Approx(nova_approx::ApproxError),
    /// NoC configuration/simulation failure.
    Noc(nova_noc::NocError),
    /// LUT unit failure.
    Lut(nova_lut::LutError),
    /// The mapper found the broadcast infeasible (too many routers for
    /// single-cycle reach at the required NoC clock).
    MappingInfeasible {
        /// Routers requested.
        routers: usize,
        /// Single-cycle reach at the planned NoC clock.
        reach: usize,
    },
    /// Batch shape did not match the overlay geometry.
    BatchShape(String),
    /// Serving runtime failure (e.g. a worker thread could not spawn).
    Runtime(String),
}

impl fmt::Display for NovaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NovaError::Approx(e) => write!(f, "approximation error: {e}"),
            NovaError::Noc(e) => write!(f, "noc error: {e}"),
            NovaError::Lut(e) => write!(f, "lut error: {e}"),
            NovaError::MappingInfeasible { routers, reach } => write!(
                f,
                "mapping infeasible: {routers} routers exceed single-cycle reach {reach}"
            ),
            NovaError::BatchShape(msg) => write!(f, "batch shape error: {msg}"),
            NovaError::Runtime(msg) => write!(f, "serving runtime error: {msg}"),
        }
    }
}

impl Error for NovaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NovaError::Approx(e) => Some(e),
            NovaError::Noc(e) => Some(e),
            NovaError::Lut(e) => Some(e),
            _ => None,
        }
    }
}

impl From<nova_approx::ApproxError> for NovaError {
    fn from(e: nova_approx::ApproxError) -> Self {
        NovaError::Approx(e)
    }
}

impl From<nova_noc::NocError> for NovaError {
    fn from(e: nova_noc::NocError) -> Self {
        NovaError::Noc(e)
    }
}

impl From<nova_lut::LutError> for NovaError {
    fn from(e: nova_lut::LutError) -> Self {
        NovaError::Lut(e)
    }
}
