//! Per-layer execution timeline: where the cycles of one encoder layer
//! go, including the table-switch cost difference between NOVA and the
//! LUT baselines.
//!
//! An encoder layer alternates matmul phases (systolic) with non-linear
//! phases (vector unit), and consecutive non-linear phases use *different*
//! tables (softmax-exp → softmax-recip → GELU → LayerNorm-rsqrt). A LUT
//! unit must rewrite its banks at every table switch — `entries /
//! write_ports` cycles per bank set — while NOVA stores nothing: the next
//! broadcast simply carries the next table's pairs. This module makes that
//! asymmetry measurable.

use nova_accel::config::AcceleratorConfig;
use nova_accel::systolic::{analytic_cycles, Dataflow};
use nova_workloads::bert::{BertConfig, MatmulDims};

use crate::ApproximatorKind;

/// What a phase does.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhaseKind {
    /// A matrix multiplication on the systolic fabric.
    Matmul(MatmulDims),
    /// A batch of non-linear lookups on the vector unit.
    NonLinear {
        /// Approximator queries in this phase.
        queries: u64,
    },
    /// Reloading the approximator table (LUT baselines only).
    TableSwitch,
}

/// One phase of the layer timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerPhase {
    /// Human-readable label (e.g. `"QKV projection"`, `"softmax exp"`).
    pub label: String,
    /// Cycles this phase occupies.
    pub cycles: u64,
    /// What it does.
    pub kind: PhaseKind,
}

/// Cycles a vector unit needs to switch its active table.
///
/// NOVA: 0 — the table lives on the wire, the next broadcast just carries
/// different pairs. LUT variants: every bank must be rewritten; with one
/// write port per bank, that is one cycle per entry (16 for the paper's
/// tables). The SDP's larger interpolation table takes proportionally
/// longer.
#[must_use]
pub fn table_switch_cycles(kind: ApproximatorKind, table_entries: u64) -> u64 {
    match kind {
        ApproximatorKind::NovaNoc => 0,
        ApproximatorKind::PerNeuronLut | ApproximatorKind::PerCoreLut => table_entries,
        ApproximatorKind::NvdlaSdp => table_entries * 16, // 257-entry interpolation tables
    }
}

/// Builds the cycle timeline of **one** encoder layer of `model` at
/// `seq_len` on `config`, with `kind` serving the non-linear phases.
///
/// # Panics
///
/// Panics if `seq_len == 0` or the model's head geometry is invalid.
#[must_use]
pub fn layer_timeline(
    config: &AcceleratorConfig,
    model: &BertConfig,
    seq_len: usize,
    kind: ApproximatorKind,
) -> Vec<LayerPhase> {
    assert!(seq_len > 0, "sequence length must be positive");
    let s = seq_len;
    let h = model.hidden;
    let a = model.heads;
    let d = model.head_dim();
    let f = model.ffn;
    let neurons = config.total_neurons() as u64;

    let mm = |label: &str, dims: MatmulDims| LayerPhase {
        label: label.to_string(),
        cycles: analytic_cycles(&config.systolic, dims, Dataflow::OutputStationary),
        kind: PhaseKind::Matmul(dims),
    };
    let nl = |label: &str, queries: u64| LayerPhase {
        label: label.to_string(),
        cycles: queries.div_ceil(neurons) * kind.batch_latency_cycles(),
        kind: PhaseKind::NonLinear { queries },
    };
    let switch = |label: &str| LayerPhase {
        label: label.to_string(),
        cycles: table_switch_cycles(kind, 16),
        kind: PhaseKind::TableSwitch,
    };

    let mut phases = vec![switch("load rsqrt table")];
    phases.push(nl("LayerNorm 1 (rsqrt)", s as u64));
    phases.push(mm("Q projection", MatmulDims { m: s, k: h, n: h }));
    phases.push(mm("K projection", MatmulDims { m: s, k: h, n: h }));
    phases.push(mm("V projection", MatmulDims { m: s, k: h, n: h }));
    for head in 0..a {
        phases.push(mm(
            &format!("scores head {head}"),
            MatmulDims { m: s, k: d, n: s },
        ));
    }
    phases.push(switch("load exp table"));
    phases.push(nl("softmax exp", (a * s * s) as u64));
    phases.push(switch("load recip table"));
    phases.push(nl("softmax normalize (recip)", (a * s) as u64));
    for head in 0..a {
        phases.push(mm(
            &format!("context head {head}"),
            MatmulDims { m: s, k: s, n: d },
        ));
    }
    phases.push(mm("output projection", MatmulDims { m: s, k: h, n: h }));
    phases.push(switch("load rsqrt table"));
    phases.push(nl("LayerNorm 2 (rsqrt)", s as u64));
    phases.push(mm("FFN up", MatmulDims { m: s, k: h, n: f }));
    phases.push(switch("load GELU table"));
    phases.push(nl("GELU", (s * f) as u64));
    phases.push(mm("FFN down", MatmulDims { m: s, k: f, n: h }));
    phases
}

/// Total cycles of a timeline under serial execution (every phase waits
/// for the previous one).
#[must_use]
pub fn serial_cycles(phases: &[LayerPhase]) -> u64 {
    phases.iter().map(|p| p.cycles).sum()
}

/// Total cycles under double-buffered overlap: a non-linear phase (and
/// its table switch) can run concurrently with the *next* matmul phase,
/// because the vector unit and the systolic fabric are independent
/// hardware. Each overlap window costs `max(nl, mm)` instead of
/// `nl + mm`.
///
/// This is the scheduling headroom the paper's single-cycle-lookup design
/// enables: with NOVA the non-linear work hides almost entirely behind
/// the tensor work.
#[must_use]
pub fn pipelined_cycles(phases: &[LayerPhase]) -> u64 {
    let mut total = 0u64;
    let mut pending_nl = 0u64; // non-linear + switch work waiting to overlap
    for p in phases {
        match p.kind {
            PhaseKind::NonLinear { .. } | PhaseKind::TableSwitch => {
                pending_nl += p.cycles;
            }
            PhaseKind::Matmul(_) => {
                total += p.cycles.max(pending_nl);
                pending_nl = 0;
            }
        }
    }
    total + pending_nl
}

/// Sums a timeline by phase category: `(matmul, non-linear, table-switch)`
/// cycles.
#[must_use]
pub fn totals(phases: &[LayerPhase]) -> (u64, u64, u64) {
    let mut mm = 0;
    let mut nl = 0;
    let mut sw = 0;
    for p in phases {
        match p.kind {
            PhaseKind::Matmul(_) => mm += p.cycles,
            PhaseKind::NonLinear { .. } => nl += p.cycles,
            PhaseKind::TableSwitch => sw += p.cycles,
        }
    }
    (mm, nl, sw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_workloads::bert::census;

    #[test]
    fn nova_table_switches_are_free() {
        let cfg = AcceleratorConfig::tpu_v4_like();
        let m = BertConfig::bert_tiny();
        let nova = layer_timeline(&cfg, &m, 128, ApproximatorKind::NovaNoc);
        let lut = layer_timeline(&cfg, &m, 128, ApproximatorKind::PerNeuronLut);
        let (_, _, sw_nova) = totals(&nova);
        let (_, _, sw_lut) = totals(&lut);
        assert_eq!(sw_nova, 0, "NOVA stores tables on the wire");
        assert!(sw_lut > 0, "LUTs must reload banks between operators");
    }

    #[test]
    fn timeline_matmuls_match_census_per_layer() {
        let cfg = AcceleratorConfig::tpu_v3_like();
        let m = BertConfig::bert_mini();
        let seq = 256;
        let phases = layer_timeline(&cfg, &m, seq, ApproximatorKind::NovaNoc);
        let mut timeline_dims: Vec<MatmulDims> = phases
            .iter()
            .filter_map(|p| match p.kind {
                PhaseKind::Matmul(d) => Some(d),
                _ => None,
            })
            .collect();
        // The census lists the same matmuls per layer, but orders the
        // per-head score/context pairs differently (it has no softmax
        // barrier) — compare as multisets.
        let ops = census(&m, seq);
        let per_layer = ops.matmuls.len() / m.layers;
        let mut census_dims = ops.matmuls[..per_layer].to_vec();
        let key = |d: &MatmulDims| (d.m, d.k, d.n);
        timeline_dims.sort_by_key(key);
        census_dims.sort_by_key(key);
        assert_eq!(timeline_dims, census_dims);
    }

    #[test]
    fn timeline_queries_match_census_per_layer() {
        let cfg = AcceleratorConfig::react();
        let m = BertConfig::bert_tiny();
        let seq = 128;
        let phases = layer_timeline(&cfg, &m, seq, ApproximatorKind::NovaNoc);
        let q: u64 = phases
            .iter()
            .filter_map(|p| match p.kind {
                PhaseKind::NonLinear { queries } => Some(queries),
                _ => None,
            })
            .sum();
        let ops = census(&m, seq);
        // Census counts layernorm *rows* at 2·S per layer; the timeline
        // splits them into two phases of S. Everything must agree.
        assert_eq!(q * m.layers as u64, ops.approximator_queries());
    }

    #[test]
    fn softmax_dominates_nl_cycles_at_long_seq() {
        let cfg = AcceleratorConfig::tpu_v4_like();
        let m = BertConfig::roberta_base();
        let phases = layer_timeline(&cfg, &m, 1024, ApproximatorKind::NovaNoc);
        let exp_cycles: u64 = phases
            .iter()
            .filter(|p| p.label == "softmax exp")
            .map(|p| p.cycles)
            .sum();
        let gelu_cycles: u64 = phases
            .iter()
            .filter(|p| p.label == "GELU")
            .map(|p| p.cycles)
            .sum();
        assert!(
            exp_cycles > gelu_cycles,
            "A·S² exp beats S·F GELU at S=1024"
        );
    }

    #[test]
    fn pipelining_never_slower_and_hides_nl_work() {
        let cfg = AcceleratorConfig::tpu_v4_like();
        for model in BertConfig::fig8_benchmarks() {
            let phases = layer_timeline(&cfg, &model, 512, ApproximatorKind::NovaNoc);
            let serial = serial_cycles(&phases);
            let pipelined = pipelined_cycles(&phases);
            assert!(pipelined <= serial, "{}", model.name);
            let (mm, _, _) = totals(&phases);
            assert!(pipelined >= mm, "cannot beat the matmul lower bound");
        }
    }

    #[test]
    fn pipelined_overlap_hand_check() {
        let mk = |cycles, kind: PhaseKind| LayerPhase {
            label: String::new(),
            cycles,
            kind,
        };
        let dims = MatmulDims { m: 1, k: 1, n: 1 };
        // nl(10) then mm(30): overlap → 30. Then nl(50) tail → +50.
        let phases = vec![
            mk(10, PhaseKind::NonLinear { queries: 1 }),
            mk(30, PhaseKind::Matmul(dims)),
            mk(50, PhaseKind::NonLinear { queries: 1 }),
        ];
        assert_eq!(serial_cycles(&phases), 90);
        assert_eq!(pipelined_cycles(&phases), 80);
    }

    #[test]
    fn sdp_switch_cost_largest() {
        assert_eq!(table_switch_cycles(ApproximatorKind::NovaNoc, 16), 0);
        assert_eq!(table_switch_cycles(ApproximatorKind::PerNeuronLut, 16), 16);
        assert!(table_switch_cycles(ApproximatorKind::NvdlaSdp, 16) > 16);
    }
}
