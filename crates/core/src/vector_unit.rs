//! One trait over all vector-unit implementations.
//!
//! The paper's comparison hinges on three units that compute *the same
//! function* with different hardware: the NOVA NoC, the per-neuron LUT and
//! the per-core LUT. [`VectorUnit`] captures the shared contract — batch
//! lookups over `(routers × neurons)` grids with bit-identical results —
//! while each implementation reports its own latency and activity.

use nova_approx::QuantizedPwl;
use nova_fixed::Fixed;
use nova_lut::{PerCoreLut, PerNeuronLut};
use nova_noc::{multiline::SegmentedNoc, sim::BroadcastSim, LineConfig};

use crate::NovaError;

/// A batch-lookup vector unit: the functional contract shared by NOVA and
/// the LUT baselines.
pub trait VectorUnit {
    /// Display name (matches the Table III row labels).
    fn name(&self) -> &str;

    /// Evaluates one batch: `inputs[r][n]` → approximated outputs with the
    /// same shape. Results must be bit-identical to the quantized table.
    ///
    /// # Errors
    ///
    /// Implementations return [`NovaError`] for malformed batches.
    fn lookup_batch(&mut self, inputs: &[Vec<Fixed>]) -> Result<Vec<Vec<Fixed>>, NovaError>;

    /// Effective per-batch latency in accelerator cycles.
    fn latency_cycles(&self) -> u64;

    /// Total lookups served so far.
    fn lookups(&self) -> u64;
}

/// The NOVA NoC as a vector unit (wraps the cycle-accurate simulator).
#[derive(Debug, Clone)]
pub struct NovaVectorUnit {
    sim: BroadcastSim,
    last_latency: u64,
    lookups: u64,
}

impl NovaVectorUnit {
    /// Builds the unit for a line geometry and table.
    ///
    /// # Errors
    ///
    /// Propagates NoC configuration/schedule errors.
    pub fn new(config: LineConfig, table: &QuantizedPwl) -> Result<Self, NovaError> {
        Ok(Self {
            sim: BroadcastSim::new(config, table)?,
            last_latency: 0,
            lookups: 0,
        })
    }

    /// The underlying simulator (for stats inspection).
    #[must_use]
    pub fn sim(&self) -> &BroadcastSim {
        &self.sim
    }
}

impl VectorUnit for NovaVectorUnit {
    fn name(&self) -> &str {
        "NOVA NoC"
    }

    fn lookup_batch(&mut self, inputs: &[Vec<Fixed>]) -> Result<Vec<Vec<Fixed>>, NovaError> {
        let outcome = self.sim.run(inputs)?;
        self.last_latency = outcome.stats.core_cycle_latency;
        self.lookups += inputs.iter().map(Vec::len).sum::<usize>() as u64;
        Ok(outcome.outputs)
    }

    fn latency_cycles(&self) -> u64 {
        self.last_latency
    }

    fn lookups(&self) -> u64 {
        self.lookups
    }
}

/// The segmented NOVA NoC as a vector unit: parallel line segments keep
/// the broadcast single-cycle when the host has more routers than the
/// SMART reach covers (e.g. 8 TPU MXUs at a 2.8 GHz NoC clock with a
/// 5-router reach).
#[derive(Debug, Clone)]
pub struct SegmentedNovaUnit {
    noc: SegmentedNoc,
    last_latency: u64,
    lookups: u64,
}

impl SegmentedNovaUnit {
    /// Builds the unit, splitting `config.routers` into the fewest
    /// segments that each fit the single-cycle reach.
    ///
    /// # Errors
    ///
    /// Propagates NoC configuration/schedule errors.
    pub fn new(config: LineConfig, table: &QuantizedPwl) -> Result<Self, NovaError> {
        Ok(Self {
            noc: SegmentedNoc::new(config, table)?,
            last_latency: 0,
            lookups: 0,
        })
    }

    /// Number of parallel line segments.
    #[must_use]
    pub fn segments(&self) -> usize {
        self.noc.segment_count()
    }
}

impl VectorUnit for SegmentedNovaUnit {
    fn name(&self) -> &str {
        "NOVA NoC (segmented)"
    }

    fn lookup_batch(&mut self, inputs: &[Vec<Fixed>]) -> Result<Vec<Vec<Fixed>>, NovaError> {
        let outcome = self.noc.run(inputs)?;
        self.last_latency = outcome.stats.core_cycle_latency;
        self.lookups += inputs.iter().map(Vec::len).sum::<usize>() as u64;
        Ok(outcome.outputs)
    }

    fn latency_cycles(&self) -> u64 {
        self.last_latency
    }

    fn lookups(&self) -> u64 {
        self.lookups
    }
}

/// Which LUT baseline a [`LutVectorUnit`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LutVariant {
    /// One single-ported bank per neuron.
    PerNeuron,
    /// One multi-ported bank per core.
    PerCore,
}

/// A LUT-based vector unit spread across `routers` cores.
#[derive(Debug, Clone)]
pub struct LutVectorUnit {
    variant: LutVariant,
    per_neuron: Vec<PerNeuronLut>,
    per_core: Vec<PerCoreLut>,
    lookups: u64,
}

impl LutVectorUnit {
    /// Builds `routers` cores of `neurons` each, sharing per the variant.
    ///
    /// # Panics
    ///
    /// Panics if `routers == 0` or `neurons == 0`.
    #[must_use]
    pub fn new(table: &QuantizedPwl, routers: usize, neurons: usize, variant: LutVariant) -> Self {
        assert!(routers > 0 && neurons > 0, "need at least one core and neuron");
        let (per_neuron, per_core) = match variant {
            LutVariant::PerNeuron => (
                (0..routers).map(|_| PerNeuronLut::new(table, neurons)).collect(),
                Vec::new(),
            ),
            LutVariant::PerCore => (
                Vec::new(),
                (0..routers).map(|_| PerCoreLut::new(table, neurons)).collect(),
            ),
        };
        Self { variant, per_neuron, per_core, lookups: 0 }
    }
}

impl VectorUnit for LutVectorUnit {
    fn name(&self) -> &str {
        match self.variant {
            LutVariant::PerNeuron => "naive LUT (per-neuron LUT)",
            LutVariant::PerCore => "naive LUT (per-core LUT)",
        }
    }

    fn lookup_batch(&mut self, inputs: &[Vec<Fixed>]) -> Result<Vec<Vec<Fixed>>, NovaError> {
        let cores = self.per_neuron.len().max(self.per_core.len());
        if inputs.len() != cores {
            return Err(NovaError::BatchShape(format!(
                "{} rows for {cores} cores",
                inputs.len()
            )));
        }
        let mut out = Vec::with_capacity(inputs.len());
        match self.variant {
            LutVariant::PerNeuron => {
                for (unit, xs) in self.per_neuron.iter_mut().zip(inputs) {
                    out.push(unit.lookup_batch(xs)?);
                }
            }
            LutVariant::PerCore => {
                for (unit, xs) in self.per_core.iter_mut().zip(inputs) {
                    out.push(unit.lookup_batch(xs)?);
                }
            }
        }
        self.lookups += inputs.iter().map(Vec::len).sum::<usize>() as u64;
        Ok(out)
    }

    fn latency_cycles(&self) -> u64 {
        2 // lookup + MAC (paper §V.B: same latency as NOVA)
    }

    fn lookups(&self) -> u64 {
        self.lookups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_approx::{fit, Activation};
    use nova_fixed::{Q4_12, Rounding};

    fn table() -> QuantizedPwl {
        let pwl = fit::fit_activation(Activation::Gelu, 16, fit::BreakpointStrategy::Uniform)
            .unwrap();
        QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
    }

    fn batch(routers: usize, neurons: usize) -> Vec<Vec<Fixed>> {
        (0..routers)
            .map(|r| {
                (0..neurons)
                    .map(|n| {
                        Fixed::from_f64(
                            ((r * neurons + n) as f64 * 0.37).sin() * 5.0,
                            Q4_12,
                            Rounding::NearestEven,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn all_three_units_agree_bit_for_bit() {
        let t = table();
        let inputs = batch(4, 16);
        let mut nova = NovaVectorUnit::new(LineConfig::paper_default(4, 16), &t).unwrap();
        let mut pn = LutVectorUnit::new(&t, 4, 16, LutVariant::PerNeuron);
        let mut pc = LutVectorUnit::new(&t, 4, 16, LutVariant::PerCore);
        let a = nova.lookup_batch(&inputs).unwrap();
        let b = pn.lookup_batch(&inputs).unwrap();
        let c = pc.lookup_batch(&inputs).unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
        // And all equal the table.
        for (r, row) in inputs.iter().enumerate() {
            for (n, &x) in row.iter().enumerate() {
                assert_eq!(a[r][n], t.eval(x));
            }
        }
    }

    #[test]
    fn latency_parity() {
        // Paper: "NOVA's latency is identical to that of the baseline".
        let t = table();
        let inputs = batch(10, 8);
        let mut nova = NovaVectorUnit::new(LineConfig::paper_default(10, 8), &t).unwrap();
        let mut pn = LutVectorUnit::new(&t, 10, 8, LutVariant::PerNeuron);
        nova.lookup_batch(&inputs).unwrap();
        pn.lookup_batch(&inputs).unwrap();
        assert_eq!(nova.latency_cycles(), pn.latency_cycles());
    }

    #[test]
    fn lookup_counters() {
        let t = table();
        let mut pc = LutVectorUnit::new(&t, 2, 8, LutVariant::PerCore);
        pc.lookup_batch(&batch(2, 8)).unwrap();
        pc.lookup_batch(&batch(2, 8)).unwrap();
        assert_eq!(pc.lookups(), 32);
    }

    #[test]
    fn lut_batch_shape_checked() {
        let t = table();
        let mut pn = LutVectorUnit::new(&t, 3, 8, LutVariant::PerNeuron);
        assert!(matches!(
            pn.lookup_batch(&batch(2, 8)),
            Err(NovaError::BatchShape(_))
        ));
    }

    #[test]
    fn segmented_unit_restores_single_cycle_latency() {
        let t = table();
        let mut config = LineConfig::paper_default(8, 4);
        config.max_hops_per_cycle = 5; // TPU-like 2.8 GHz reach
        let inputs = batch(8, 4);
        let mut plain = NovaVectorUnit::new(config, &t).unwrap();
        let mut seg = SegmentedNovaUnit::new(config, &t).unwrap();
        let a = plain.lookup_batch(&inputs).unwrap();
        let b = seg.lookup_batch(&inputs).unwrap();
        assert_eq!(a, b, "segmentation is functionally invisible");
        assert_eq!(seg.segments(), 2);
        assert!(seg.latency_cycles() < plain.latency_cycles());
        assert_eq!(seg.latency_cycles(), 2);
    }

    #[test]
    fn trait_objects_work() {
        // The trait is object-safe — hosts can hold `Box<dyn VectorUnit>`.
        let t = table();
        let mut units: Vec<Box<dyn VectorUnit>> = vec![
            Box::new(NovaVectorUnit::new(LineConfig::paper_default(2, 4), &t).unwrap()),
            Box::new(LutVectorUnit::new(&t, 2, 4, LutVariant::PerNeuron)),
        ];
        let inputs = batch(2, 4);
        let a = units[0].lookup_batch(&inputs).unwrap();
        let b = units[1].lookup_batch(&inputs).unwrap();
        assert_eq!(a, b);
    }
}
