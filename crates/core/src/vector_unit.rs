//! One trait over all vector-unit implementations.
//!
//! The paper's comparison hinges on three units that compute *the same
//! function* with different hardware: the NOVA NoC, the per-neuron LUT and
//! the per-core LUT. [`VectorUnit`] captures the shared contract — batch
//! lookups over `(routers × neurons)` grids with bit-identical results —
//! while each implementation reports its own latency and activity.

use nova_accel::config::AcceleratorConfig;
use nova_approx::QuantizedPwl;
use nova_fixed::{Fixed, FixedBatch};
use nova_lut::{PerCoreLut, PerNeuronLut, SdpUnit};
use nova_noc::{multiline::SegmentedNoc, sim::BroadcastSim, LineConfig, LinkConfig};
use nova_synth::{timing, TechModel};

use crate::timeline::table_switch_cycles;
use crate::NovaError;

/// Per-batch lookup latency in accelerator cycles shared by NOVA and
/// the NN-LUT baselines: one cycle for the lookup (comparator address /
/// bank read) plus one for the MAC (paper §V.B: "NOVA's latency is
/// identical to that of the baseline"). The NVDLA SDP's pipeline is one
/// stage deeper — see [`ApproximatorKind::batch_latency_cycles`].
pub const BATCH_LATENCY_CYCLES: u64 = 2;

/// Which approximator hardware serves the non-linear queries.
///
/// This enum is the workspace's single dispatch axis: [`build`] /
/// [`line_for_kind`] turn a kind into a functional [`VectorUnit`],
/// [`ApproximatorKind::batch_latency_cycles`] gives its timing, and the
/// engine's cost models key their power/energy formulas off the same
/// variants — adding a new approximator means extending this enum and
/// the `match`es in those few places, all discoverable from here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ApproximatorKind {
    /// The NOVA NoC overlay.
    NovaNoc,
    /// Per-neuron LUT vector unit.
    PerNeuronLut,
    /// Per-core LUT vector unit.
    PerCoreLut,
    /// NVDLA's native SDP (Jetson host only).
    NvdlaSdp,
}

nova_serde::impl_serde_enum!(ApproximatorKind {
    NovaNoc,
    PerNeuronLut,
    PerCoreLut,
    NvdlaSdp
});

impl ApproximatorKind {
    /// Table III row label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ApproximatorKind::NovaNoc => "NOVA NoC",
            ApproximatorKind::PerNeuronLut => "naive LUT (per-neuron LUT)",
            ApproximatorKind::PerCoreLut => "naive LUT (per-core LUT)",
            ApproximatorKind::NvdlaSdp => "NVDLA SDP",
        }
    }

    /// Every variant, in Table III order.
    #[must_use]
    pub fn all() -> [ApproximatorKind; 4] {
        [
            ApproximatorKind::NovaNoc,
            ApproximatorKind::PerNeuronLut,
            ApproximatorKind::PerCoreLut,
            ApproximatorKind::NvdlaSdp,
        ]
    }

    /// The three Fig 8 contenders.
    #[must_use]
    pub fn fig8_contenders() -> [ApproximatorKind; 3] {
        [
            ApproximatorKind::NovaNoc,
            ApproximatorKind::PerNeuronLut,
            ApproximatorKind::PerCoreLut,
        ]
    }

    /// Per-batch lookup latency of this kind's hardware, in accelerator
    /// cycles: NOVA and the NN-LUT baselines share the 2-cycle
    /// lookup+MAC path; the SDP's datapath is one pipeline stage deeper
    /// (read, interpolate, scale).
    #[must_use]
    pub fn batch_latency_cycles(self) -> u64 {
        match self {
            ApproximatorKind::NovaNoc
            | ApproximatorKind::PerNeuronLut
            | ApproximatorKind::PerCoreLut => BATCH_LATENCY_CYCLES,
            ApproximatorKind::NvdlaSdp => SdpUnit::PIPELINE_STAGES,
        }
    }
}

/// The host-side parameters the kind → geometry dispatch needs: how
/// many vector-unit sites the host exposes, how they are spaced, and
/// the clock the NoC would be programmed against.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostGeometry {
    /// Vector-unit sites (NOVA routers / LUT cores) on the host.
    pub routers: usize,
    /// Output neurons served per site.
    pub neurons_per_router: usize,
    /// Host core clock (GHz).
    pub core_ghz: f64,
    /// Physical spacing between adjacent sites (mm).
    pub pitch_mm: f64,
}

impl HostGeometry {
    /// Reads the geometry off a Table II configuration.
    #[must_use]
    pub fn of(config: &AcceleratorConfig) -> Self {
        Self {
            routers: config.nova_routers,
            neurons_per_router: config.neurons_per_router,
            core_ghz: config.frequency_ghz(),
            pitch_mm: config.router_pitch_mm,
        }
    }
}

/// Derives the line geometry `kind` needs on `host` — the one place the
/// kind → geometry dispatch lives.
///
/// Only the NOVA NoC compiles a broadcast schedule (to program the NoC
/// clock and derive the SMART reach). LUT/SDP units have no line to
/// cover, so they get a trivially covering reach and tables too large
/// for the link's tag space still build on LUT hardware.
///
/// # Errors
///
/// Propagates broadcast-schedule compilation errors (NOVA kind only).
pub fn line_for_kind(
    kind: ApproximatorKind,
    tech: &TechModel,
    table: &QuantizedPwl,
    link: LinkConfig,
    host: HostGeometry,
) -> Result<LineConfig, NovaError> {
    let reach = match kind {
        ApproximatorKind::NovaNoc => {
            let schedule = nova_noc::BroadcastSchedule::compile(table, link)?;
            let noc_ghz = host.core_ghz * schedule.noc_clock_multiplier() as f64;
            timing::max_hops_per_cycle(tech, noc_ghz, host.pitch_mm).max(1)
        }
        ApproximatorKind::PerNeuronLut
        | ApproximatorKind::PerCoreLut
        | ApproximatorKind::NvdlaSdp => host.routers.max(1),
    };
    Ok(LineConfig {
        routers: host.routers,
        neurons_per_router: host.neurons_per_router,
        link,
        max_hops_per_cycle: reach,
    })
}

/// Builds the functional vector unit for `kind` on an explicit line
/// geometry — the workspace's one construction point for approximator
/// hardware.
///
/// The NOVA arm picks the plain line when the SMART reach covers it in
/// one cycle and the segmented line otherwise, so callers get the
/// paper's latency behavior without re-implementing that choice.
///
/// # Errors
///
/// Propagates NoC configuration/schedule errors.
pub fn build(
    kind: ApproximatorKind,
    config: LineConfig,
    table: &QuantizedPwl,
) -> Result<Box<dyn VectorUnit>, NovaError> {
    Ok(match kind {
        ApproximatorKind::NovaNoc => {
            if config.max_hops_per_cycle >= config.routers {
                Box::new(NovaVectorUnit::new(config, table)?)
            } else {
                Box::new(SegmentedNovaUnit::new(config, table)?)
            }
        }
        ApproximatorKind::PerNeuronLut => Box::new(LutVectorUnit::new(
            table,
            config.routers,
            config.neurons_per_router,
            LutVariant::PerNeuron,
        )),
        ApproximatorKind::PerCoreLut => Box::new(LutVectorUnit::new(
            table,
            config.routers,
            config.neurons_per_router,
            LutVariant::PerCore,
        )),
        ApproximatorKind::NvdlaSdp => Box::new(SdpVectorUnit::new(
            table,
            config.routers,
            config.neurons_per_router,
        )),
    })
}

/// Builds the functional vector unit for `kind` on a Table II host: the
/// line geometry (router count, neurons, SMART reach at the programmed
/// NoC clock) is derived from `config` and `tech` exactly as the
/// overlay does it.
///
/// # Errors
///
/// Propagates NoC configuration/schedule errors.
pub fn build_for_host(
    kind: ApproximatorKind,
    tech: &TechModel,
    config: &AcceleratorConfig,
    table: &QuantizedPwl,
) -> Result<Box<dyn VectorUnit>, NovaError> {
    let line = line_for_kind(
        kind,
        tech,
        table,
        LinkConfig::paper(),
        HostGeometry::of(config),
    )?;
    build(kind, line, table)
}

/// Validates a `(routers × neurons)` batch: the row count and every
/// row's width must match the unit's grid. Shared by all [`VectorUnit`]
/// implementations so malformed batches — including ragged ones, where
/// one row is narrower than `neurons_per_router` — are rejected with a
/// uniform [`NovaError::BatchShape`] before any lookup runs or counter
/// advances.
///
/// # Errors
///
/// Returns [`NovaError::BatchShape`] naming the offending dimension.
pub fn validate_batch_shape(
    inputs: &[Vec<Fixed>],
    routers: usize,
    neurons: usize,
) -> Result<(), NovaError> {
    if inputs.len() != routers {
        return Err(NovaError::BatchShape(format!(
            "{} rows for {routers} cores",
            inputs.len()
        )));
    }
    if let Some((r, row)) = inputs
        .iter()
        .enumerate()
        .find(|(_, row)| row.len() != neurons)
    {
        return Err(NovaError::BatchShape(format!(
            "row {r} has {} values for {neurons} neurons per core",
            row.len()
        )));
    }
    Ok(())
}

/// Validates a flat [`FixedBatch`] against a unit's `(routers × neurons)`
/// grid — the flat-path twin of [`validate_batch_shape`], shared by all
/// [`VectorUnit`] implementations so malformed batches are rejected with
/// a uniform [`NovaError::BatchShape`] before any lookup runs or counter
/// advances.
///
/// # Errors
///
/// Returns [`NovaError::BatchShape`] naming the offending dimension.
pub fn validate_flat_shape(
    inputs: &FixedBatch,
    routers: usize,
    neurons: usize,
) -> Result<(), NovaError> {
    if inputs.dims() != (routers, neurons) {
        let (r, n) = inputs.dims();
        return Err(NovaError::BatchShape(format!(
            "{r}×{n} batch for a {routers}×{neurons} grid"
        )));
    }
    Ok(())
}

/// A batch-lookup vector unit: the functional contract shared by NOVA and
/// the LUT baselines.
///
/// The primitive operation is the *flat* path
/// [`lookup_batch_into`](Self::lookup_batch_into): one contiguous
/// [`FixedBatch`] in, results written into a caller-recycled
/// [`FixedBatch`] out, with no allocation on the steady-state path. The
/// nested [`lookup_batch`](Self::lookup_batch) survives as a provided
/// compatibility shim that round-trips through flat buffers.
///
/// The trait is `Send` so a `Box<dyn VectorUnit>` can be moved into a
/// worker thread — the serving runtime gives each shard worker its own
/// unit and feeds it batches over a channel. Implementations are plain
/// owned data (simulator state, LUT banks), so this costs nothing.
pub trait VectorUnit: Send {
    /// Display name (matches the Table III row labels).
    fn name(&self) -> &str;

    /// Evaluates one flat batch: slot `r * neurons + n` of `inputs` →
    /// the same slot of `out`, bit-identical to the quantized table.
    ///
    /// `out` is reshaped to the unit's grid by the implementation
    /// (contents discarded, allocation reused), so callers recycle one
    /// buffer across batches and the steady state is allocation-free.
    ///
    /// # Errors
    ///
    /// Implementations return [`NovaError::BatchShape`] when `inputs`
    /// does not match the unit's grid (no counter advances), and
    /// propagate format mismatches.
    fn lookup_batch_into(
        &mut self,
        inputs: &FixedBatch,
        out: &mut FixedBatch,
    ) -> Result<(), NovaError>;

    /// Evaluates one nested batch: `inputs[r][n]` → approximated outputs
    /// with the same shape. Compatibility shim over
    /// [`lookup_batch_into`](Self::lookup_batch_into) — it pays a
    /// flatten/reshape round trip, so hot loops should hold
    /// [`FixedBatch`] buffers instead.
    ///
    /// # Errors
    ///
    /// Returns [`NovaError::BatchShape`] for ragged or mis-shaped
    /// batches; propagates unit errors otherwise.
    fn lookup_batch(&mut self, inputs: &[Vec<Fixed>]) -> Result<Vec<Vec<Fixed>>, NovaError> {
        // Raggedness has no flat representation; reject it here with the
        // same error the nested validators used, before any counter moves.
        let neurons = inputs.first().map_or(0, Vec::len);
        validate_batch_shape(inputs, inputs.len(), neurons)?;
        let flat = FixedBatch::from_rows(inputs).expect("raggedness rejected above");
        let mut out = FixedBatch::empty();
        self.lookup_batch_into(&flat, &mut out)?;
        Ok(out.to_rows())
    }

    /// Re-programs the unit to serve `table`, returning the stall the
    /// switch costs in accelerator cycles —
    /// [`crate::timeline::table_switch_cycles`] of the unit's kind and
    /// the table's segment count. The NOVA NoC stores nothing (the next
    /// broadcast simply carries the next table's pairs), so its switch is
    /// free; LUT banks pay one cycle per entry and the SDP's larger
    /// interpolation tables proportionally more. After a successful
    /// switch the unit is bit-identical to the new table; lookup
    /// counters are preserved.
    ///
    /// # Errors
    ///
    /// Propagates re-programming failures (e.g. a NoC schedule that
    /// cannot address the new table); on error the old table stays
    /// active.
    fn switch_table(&mut self, table: &QuantizedPwl) -> Result<u64, NovaError>;

    /// Effective per-batch latency in accelerator cycles. Before the
    /// first batch runs this is the schedule's nominal per-batch latency
    /// (never a stale 0); afterwards it is the last batch's measured
    /// latency.
    fn latency_cycles(&self) -> u64;

    /// Total lookups served so far.
    fn lookups(&self) -> u64;
}

/// The NOVA NoC as a vector unit (wraps the cycle-accurate simulator).
#[derive(Debug, Clone)]
pub struct NovaVectorUnit {
    sim: BroadcastSim,
    last_latency: u64,
    lookups: u64,
}

impl NovaVectorUnit {
    /// Builds the unit for a line geometry and table.
    ///
    /// # Errors
    ///
    /// Propagates NoC configuration/schedule errors.
    pub fn new(config: LineConfig, table: &QuantizedPwl) -> Result<Self, NovaError> {
        let sim = BroadcastSim::new(config, table)?;
        // Seed the latency with the schedule's nominal per-batch value so
        // callers that query before the first batch don't read a stale 0.
        let last_latency = sim.nominal_core_cycle_latency();
        Ok(Self {
            sim,
            last_latency,
            lookups: 0,
        })
    }

    /// The underlying simulator (for stats inspection).
    #[must_use]
    pub fn sim(&self) -> &BroadcastSim {
        &self.sim
    }
}

impl VectorUnit for NovaVectorUnit {
    fn name(&self) -> &str {
        "NOVA NoC"
    }

    fn lookup_batch_into(
        &mut self,
        inputs: &FixedBatch,
        out: &mut FixedBatch,
    ) -> Result<(), NovaError> {
        let config = self.sim.config();
        validate_flat_shape(inputs, config.routers, config.neurons_per_router)?;
        out.reset(
            config.routers,
            config.neurons_per_router,
            Fixed::zero(self.sim.table().format()),
        );
        let stats = self.sim.run_flat(inputs.as_slice(), out.as_mut_slice())?;
        self.last_latency = stats.core_cycle_latency;
        self.lookups += inputs.len() as u64;
        Ok(())
    }

    fn switch_table(&mut self, table: &QuantizedPwl) -> Result<u64, NovaError> {
        // The table lives on the wire: re-programming is a new broadcast
        // schedule, which the simulator compiles at construction. Only on
        // success does the new simulator replace the old one.
        let sim = BroadcastSim::new(self.sim.config(), table)?;
        self.last_latency = sim.nominal_core_cycle_latency();
        self.sim = sim;
        Ok(table_switch_cycles(
            ApproximatorKind::NovaNoc,
            table.segments() as u64,
        ))
    }

    fn latency_cycles(&self) -> u64 {
        self.last_latency
    }

    fn lookups(&self) -> u64 {
        self.lookups
    }
}

/// The segmented NOVA NoC as a vector unit: parallel line segments keep
/// the broadcast single-cycle when the host has more routers than the
/// SMART reach covers (e.g. 8 TPU MXUs at a 2.8 GHz NoC clock with a
/// 5-router reach).
#[derive(Debug, Clone)]
pub struct SegmentedNovaUnit {
    noc: SegmentedNoc,
    last_latency: u64,
    lookups: u64,
}

impl SegmentedNovaUnit {
    /// Builds the unit, splitting `config.routers` into the fewest
    /// segments that each fit the single-cycle reach.
    ///
    /// # Errors
    ///
    /// Propagates NoC configuration/schedule errors.
    pub fn new(config: LineConfig, table: &QuantizedPwl) -> Result<Self, NovaError> {
        let noc = SegmentedNoc::new(config, table)?;
        // As for the plain line: report the nominal schedule latency
        // until a batch supplies a measured value.
        let last_latency = noc.nominal_core_cycle_latency();
        Ok(Self {
            noc,
            last_latency,
            lookups: 0,
        })
    }

    /// Number of parallel line segments.
    #[must_use]
    pub fn segments(&self) -> usize {
        self.noc.segment_count()
    }
}

impl VectorUnit for SegmentedNovaUnit {
    fn name(&self) -> &str {
        "NOVA NoC (segmented)"
    }

    fn lookup_batch_into(
        &mut self,
        inputs: &FixedBatch,
        out: &mut FixedBatch,
    ) -> Result<(), NovaError> {
        let config = self.noc.config();
        validate_flat_shape(inputs, config.routers, config.neurons_per_router)?;
        out.reset(
            config.routers,
            config.neurons_per_router,
            Fixed::zero(self.noc.table().format()),
        );
        let stats = self.noc.run_flat(inputs.as_slice(), out.as_mut_slice())?;
        self.last_latency = stats.core_cycle_latency;
        self.lookups += inputs.len() as u64;
        Ok(())
    }

    fn switch_table(&mut self, table: &QuantizedPwl) -> Result<u64, NovaError> {
        let noc = SegmentedNoc::new(self.noc.config(), table)?;
        self.last_latency = noc.nominal_core_cycle_latency();
        self.noc = noc;
        Ok(table_switch_cycles(
            ApproximatorKind::NovaNoc,
            table.segments() as u64,
        ))
    }

    fn latency_cycles(&self) -> u64 {
        self.last_latency
    }

    fn lookups(&self) -> u64 {
        self.lookups
    }
}

/// Which LUT baseline a [`LutVectorUnit`] models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LutVariant {
    /// One single-ported bank per neuron.
    PerNeuron,
    /// One multi-ported bank per core.
    PerCore,
}

/// A LUT-based vector unit spread across `routers` cores.
#[derive(Debug, Clone)]
pub struct LutVectorUnit {
    variant: LutVariant,
    per_neuron: Vec<PerNeuronLut>,
    per_core: Vec<PerCoreLut>,
    neurons: usize,
    format: nova_fixed::QFormat,
    lookups: u64,
}

impl LutVectorUnit {
    /// Builds `routers` cores of `neurons` each, sharing per the variant.
    ///
    /// # Panics
    ///
    /// Panics if `routers == 0` or `neurons == 0`.
    #[must_use]
    pub fn new(table: &QuantizedPwl, routers: usize, neurons: usize, variant: LutVariant) -> Self {
        assert!(
            routers > 0 && neurons > 0,
            "need at least one core and neuron"
        );
        let (per_neuron, per_core) = match variant {
            LutVariant::PerNeuron => (
                (0..routers)
                    .map(|_| PerNeuronLut::new(table, neurons))
                    .collect(),
                Vec::new(),
            ),
            LutVariant::PerCore => (
                Vec::new(),
                (0..routers)
                    .map(|_| PerCoreLut::new(table, neurons))
                    .collect(),
            ),
        };
        Self {
            variant,
            per_neuron,
            per_core,
            neurons,
            format: table.format(),
            lookups: 0,
        }
    }
}

impl VectorUnit for LutVectorUnit {
    fn name(&self) -> &str {
        match self.variant {
            LutVariant::PerNeuron => "naive LUT (per-neuron LUT)",
            LutVariant::PerCore => "naive LUT (per-core LUT)",
        }
    }

    fn lookup_batch_into(
        &mut self,
        inputs: &FixedBatch,
        out: &mut FixedBatch,
    ) -> Result<(), NovaError> {
        let cores = self.per_neuron.len().max(self.per_core.len());
        validate_flat_shape(inputs, cores, self.neurons)?;
        out.reset(cores, self.neurons, Fixed::zero(self.format));
        match self.variant {
            LutVariant::PerNeuron => {
                for (r, unit) in self.per_neuron.iter_mut().enumerate() {
                    unit.lookup_into(inputs.row(r), out.row_mut(r))?;
                }
            }
            LutVariant::PerCore => {
                for (r, unit) in self.per_core.iter_mut().enumerate() {
                    unit.lookup_into(inputs.row(r), out.row_mut(r))?;
                }
            }
        }
        self.lookups += inputs.len() as u64;
        Ok(())
    }

    fn switch_table(&mut self, table: &QuantizedPwl) -> Result<u64, NovaError> {
        // Every bank is rewritten: one cycle per entry with a single
        // write port (shared or not, the rewrite serializes per bank
        // set). The rewrite happens in place — bank allocations are
        // reused, so a serving worker's run-boundary switch stays off
        // the allocator's hot path.
        let kind = match self.variant {
            LutVariant::PerNeuron => {
                for core in &mut self.per_neuron {
                    core.reprogram(table);
                }
                ApproximatorKind::PerNeuronLut
            }
            LutVariant::PerCore => {
                for core in &mut self.per_core {
                    core.reprogram(table);
                }
                ApproximatorKind::PerCoreLut
            }
        };
        self.format = table.format();
        Ok(table_switch_cycles(kind, table.segments() as u64))
    }

    fn latency_cycles(&self) -> u64 {
        BATCH_LATENCY_CYCLES // lookup + MAC (paper §V.B: same latency as NOVA)
    }

    fn lookups(&self) -> u64 {
        self.lookups
    }
}

/// NVDLA's native SDP as a vector unit: one single-throughput SDP engine
/// per core (router). Functionally identical to the table like every
/// other unit; the cost difference lives in the synthesis model.
#[derive(Debug, Clone)]
pub struct SdpVectorUnit {
    cores: Vec<SdpUnit>,
    /// Lanes per core, cached at construction (identical across cores by
    /// construction) so the per-batch hot path never re-derives it from
    /// `cores.first()`.
    neurons: usize,
    format: nova_fixed::QFormat,
    lookups: u64,
}

impl SdpVectorUnit {
    /// Builds `routers` SDP engines of `neurons` lanes each.
    ///
    /// # Panics
    ///
    /// Panics if `routers == 0` or `neurons == 0`.
    #[must_use]
    pub fn new(table: &QuantizedPwl, routers: usize, neurons: usize) -> Self {
        assert!(
            routers > 0 && neurons > 0,
            "need at least one core and neuron"
        );
        Self {
            cores: (0..routers).map(|_| SdpUnit::new(table, neurons)).collect(),
            neurons,
            format: table.format(),
            lookups: 0,
        }
    }
}

impl VectorUnit for SdpVectorUnit {
    fn name(&self) -> &str {
        "NVDLA SDP"
    }

    fn lookup_batch_into(
        &mut self,
        inputs: &FixedBatch,
        out: &mut FixedBatch,
    ) -> Result<(), NovaError> {
        validate_flat_shape(inputs, self.cores.len(), self.neurons)?;
        out.reset(self.cores.len(), self.neurons, Fixed::zero(self.format));
        for (r, core) in self.cores.iter_mut().enumerate() {
            core.lookup_into(inputs.row(r), out.row_mut(r))?;
        }
        self.lookups += inputs.len() as u64;
        Ok(())
    }

    fn switch_table(&mut self, table: &QuantizedPwl) -> Result<u64, NovaError> {
        // In-place interpolation-table rewrite per core: allocations
        // reused, activity counters preserved.
        for core in &mut self.cores {
            core.reprogram(table);
        }
        self.format = table.format();
        Ok(table_switch_cycles(
            ApproximatorKind::NvdlaSdp,
            table.segments() as u64,
        ))
    }

    fn latency_cycles(&self) -> u64 {
        // The SDP datapath is one pipeline stage deeper than the
        // 2-cycle NN-LUT/NOVA path (read, interpolate, scale).
        SdpUnit::PIPELINE_STAGES
    }

    fn lookups(&self) -> u64 {
        self.lookups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_approx::{fit, Activation};
    use nova_fixed::{Rounding, Q4_12};

    fn table() -> QuantizedPwl {
        let pwl =
            fit::fit_activation(Activation::Gelu, 16, fit::BreakpointStrategy::Uniform).unwrap();
        QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
    }

    fn batch(routers: usize, neurons: usize) -> Vec<Vec<Fixed>> {
        (0..routers)
            .map(|r| {
                (0..neurons)
                    .map(|n| {
                        Fixed::from_f64(
                            ((r * neurons + n) as f64 * 0.37).sin() * 5.0,
                            Q4_12,
                            Rounding::NearestEven,
                        )
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn all_three_units_agree_bit_for_bit() {
        let t = table();
        let inputs = batch(4, 16);
        let mut nova = NovaVectorUnit::new(LineConfig::paper_default(4, 16), &t).unwrap();
        let mut pn = LutVectorUnit::new(&t, 4, 16, LutVariant::PerNeuron);
        let mut pc = LutVectorUnit::new(&t, 4, 16, LutVariant::PerCore);
        let a = nova.lookup_batch(&inputs).unwrap();
        let b = pn.lookup_batch(&inputs).unwrap();
        let c = pc.lookup_batch(&inputs).unwrap();
        assert_eq!(a, b);
        assert_eq!(b, c);
        // And all equal the table.
        for (r, row) in inputs.iter().enumerate() {
            for (n, &x) in row.iter().enumerate() {
                assert_eq!(a[r][n], t.eval(x));
            }
        }
    }

    #[test]
    fn latency_parity() {
        // Paper: "NOVA's latency is identical to that of the baseline".
        let t = table();
        let inputs = batch(10, 8);
        let mut nova = NovaVectorUnit::new(LineConfig::paper_default(10, 8), &t).unwrap();
        let mut pn = LutVectorUnit::new(&t, 10, 8, LutVariant::PerNeuron);
        nova.lookup_batch(&inputs).unwrap();
        pn.lookup_batch(&inputs).unwrap();
        assert_eq!(nova.latency_cycles(), pn.latency_cycles());
    }

    #[test]
    fn lookup_counters() {
        let t = table();
        let mut pc = LutVectorUnit::new(&t, 2, 8, LutVariant::PerCore);
        pc.lookup_batch(&batch(2, 8)).unwrap();
        pc.lookup_batch(&batch(2, 8)).unwrap();
        assert_eq!(pc.lookups(), 32);
    }

    #[test]
    fn lut_batch_shape_checked() {
        let t = table();
        let mut pn = LutVectorUnit::new(&t, 3, 8, LutVariant::PerNeuron);
        assert!(matches!(
            pn.lookup_batch(&batch(2, 8)),
            Err(NovaError::BatchShape(_))
        ));
    }

    #[test]
    fn segmented_unit_restores_single_cycle_latency() {
        let t = table();
        let mut config = LineConfig::paper_default(8, 4);
        config.max_hops_per_cycle = 5; // TPU-like 2.8 GHz reach
        let inputs = batch(8, 4);
        let mut plain = NovaVectorUnit::new(config, &t).unwrap();
        let mut seg = SegmentedNovaUnit::new(config, &t).unwrap();
        let a = plain.lookup_batch(&inputs).unwrap();
        let b = seg.lookup_batch(&inputs).unwrap();
        assert_eq!(a, b, "segmentation is functionally invisible");
        assert_eq!(seg.segments(), 2);
        assert!(seg.latency_cycles() < plain.latency_cycles());
        assert_eq!(seg.latency_cycles(), 2);
    }

    #[test]
    fn factory_covers_every_kind_and_all_agree() {
        let t = table();
        let inputs = batch(3, 8);
        let config = LineConfig::paper_default(3, 8);
        let expect: Vec<Vec<Fixed>> = inputs
            .iter()
            .map(|row| row.iter().map(|&x| t.eval(x)).collect())
            .collect();
        for kind in ApproximatorKind::all() {
            let mut unit = build(kind, config, &t).unwrap();
            assert_eq!(
                unit.lookup_batch(&inputs).unwrap(),
                expect,
                "{} diverges from the table",
                unit.name()
            );
            assert_eq!(unit.lookups(), 24);
        }
    }

    #[test]
    fn factory_segments_nova_beyond_reach() {
        let t = table();
        let mut config = LineConfig::paper_default(8, 4);
        config.max_hops_per_cycle = 5;
        let mut unit = build(ApproximatorKind::NovaNoc, config, &t).unwrap();
        unit.lookup_batch(&batch(8, 4)).unwrap();
        assert_eq!(unit.name(), "NOVA NoC (segmented)");
        assert_eq!(unit.latency_cycles(), BATCH_LATENCY_CYCLES);
    }

    #[test]
    fn host_factory_matches_line_factory() {
        let t = table();
        let cfg = AcceleratorConfig::jetson_xavier_nx();
        let tech = TechModel::cmos22();
        let inputs = batch(cfg.nova_routers, cfg.neurons_per_router);
        for kind in ApproximatorKind::all() {
            let mut unit = build_for_host(kind, &tech, &cfg, &t).unwrap();
            let out = unit.lookup_batch(&inputs).unwrap();
            for (row_out, row_in) in out.iter().zip(&inputs) {
                for (&o, &x) in row_out.iter().zip(row_in) {
                    assert_eq!(o, t.eval(x), "{}", kind.label());
                }
            }
        }
    }

    #[test]
    fn sdp_latency_reflects_deeper_pipeline() {
        let t = table();
        let mut unit = build(
            ApproximatorKind::NvdlaSdp,
            LineConfig::paper_default(2, 8),
            &t,
        )
        .unwrap();
        unit.lookup_batch(&batch(2, 8)).unwrap();
        // Read, interpolate, scale: one stage deeper than NN-LUT/NOVA.
        assert_eq!(unit.latency_cycles(), 3);
        assert!(unit.latency_cycles() > BATCH_LATENCY_CYCLES);
    }

    #[test]
    fn oversized_tables_still_build_on_lut_hardware() {
        // 32 segments need 4 flits — beyond the paper link's 1-bit tag
        // space — so the NoC must refuse, but LUT/SDP hardware has no
        // broadcast line and must keep working.
        let pwl =
            fit::fit_activation(Activation::Gelu, 32, fit::BreakpointStrategy::Uniform).unwrap();
        let t = QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap();
        let cfg = AcceleratorConfig::react();
        let tech = TechModel::cmos22();
        for kind in [
            ApproximatorKind::PerNeuronLut,
            ApproximatorKind::PerCoreLut,
            ApproximatorKind::NvdlaSdp,
        ] {
            let mut unit = build_for_host(kind, &tech, &cfg, &t)
                .unwrap_or_else(|e| panic!("{} must build: {e}", kind.label()));
            let inputs = batch(cfg.nova_routers, cfg.neurons_per_router);
            let out = unit.lookup_batch(&inputs).unwrap();
            assert_eq!(out[0][0], t.eval(inputs[0][0]));
        }
        assert!(
            build_for_host(ApproximatorKind::NovaNoc, &tech, &cfg, &t).is_err(),
            "the NoC link's tag space cannot address 4 flits"
        );
    }

    #[test]
    fn latency_reported_before_first_batch() {
        // Regression: `latency_cycles()` used to return a stale 0 until
        // the first batch ran. It must report the schedule's nominal
        // per-batch latency from construction, and that nominal value
        // must agree with the measured one.
        let t = table();
        let mut plain = NovaVectorUnit::new(LineConfig::paper_default(4, 16), &t).unwrap();
        let before = plain.latency_cycles();
        assert!(
            before > 0,
            "nominal latency must be reported before any batch"
        );
        plain.lookup_batch(&batch(4, 16)).unwrap();
        assert_eq!(before, plain.latency_cycles());

        let mut config = LineConfig::paper_default(8, 4);
        config.max_hops_per_cycle = 5;
        let mut seg = SegmentedNovaUnit::new(config, &t).unwrap();
        let before = seg.latency_cycles();
        assert!(before > 0);
        seg.lookup_batch(&batch(8, 4)).unwrap();
        assert_eq!(before, seg.latency_cycles());
    }

    #[test]
    fn ragged_batches_rejected_uniformly() {
        // A batch with the right row count but one under-width row must
        // be rejected with `NovaError::BatchShape` by every unit, before
        // any lookup is counted.
        let t = table();
        let config = LineConfig::paper_default(3, 8);
        let mut ragged = batch(3, 8);
        ragged[1].pop();
        for kind in ApproximatorKind::all() {
            let mut unit = build(kind, config, &t).unwrap();
            assert!(
                matches!(unit.lookup_batch(&ragged), Err(NovaError::BatchShape(_))),
                "{} accepted a ragged batch",
                unit.name()
            );
            assert_eq!(
                unit.lookups(),
                0,
                "{} counted a rejected batch",
                unit.name()
            );
        }
    }

    #[test]
    fn flat_path_bit_identical_to_nested_for_every_kind() {
        // The tentpole contract: `lookup_batch_into` over one contiguous
        // buffer produces exactly the words the legacy nested path (and
        // the table) produce, for every approximator kind.
        let t = table();
        let inputs = batch(4, 16);
        let flat = FixedBatch::from_rows(&inputs).unwrap();
        let config = LineConfig::paper_default(4, 16);
        for kind in ApproximatorKind::all() {
            let mut nested_unit = build(kind, config, &t).unwrap();
            let mut flat_unit = build(kind, config, &t).unwrap();
            let nested = nested_unit.lookup_batch(&inputs).unwrap();
            let mut out = FixedBatch::empty();
            flat_unit.lookup_batch_into(&flat, &mut out).unwrap();
            assert_eq!(out.to_rows(), nested, "{}", kind.label());
            assert_eq!(flat_unit.lookups(), 64, "{}", kind.label());
            for (r, row) in inputs.iter().enumerate() {
                for (n, &x) in row.iter().enumerate() {
                    assert_eq!(out.row(r)[n], t.eval(x), "{}", kind.label());
                }
            }
        }
    }

    #[test]
    fn flat_output_buffer_is_recycled_without_reallocation() {
        // The zero-copy contract: a reused output buffer reaches a steady
        // state where repeated batches never grow its allocation.
        let t = table();
        for kind in ApproximatorKind::all() {
            let mut unit = build(kind, LineConfig::paper_default(3, 8), &t).unwrap();
            let flat = FixedBatch::from_rows(&batch(3, 8)).unwrap();
            let mut out = FixedBatch::empty();
            unit.lookup_batch_into(&flat, &mut out).unwrap();
            let cap = out.capacity();
            for _ in 0..4 {
                unit.lookup_batch_into(&flat, &mut out).unwrap();
                assert_eq!(out.capacity(), cap, "{} reallocated", unit.name());
            }
        }
    }

    #[test]
    fn flat_shape_mismatch_rejected_before_counters_move() {
        let t = table();
        let wrong = FixedBatch::from_rows(&batch(2, 8)).unwrap();
        for kind in ApproximatorKind::all() {
            let mut unit = build(kind, LineConfig::paper_default(3, 8), &t).unwrap();
            let mut out = FixedBatch::empty();
            assert!(
                matches!(
                    unit.lookup_batch_into(&wrong, &mut out),
                    Err(NovaError::BatchShape(_))
                ),
                "{} accepted a mis-shaped flat batch",
                unit.name()
            );
            assert_eq!(unit.lookups(), 0, "{}", unit.name());
        }
    }

    #[test]
    fn switch_table_reprograms_every_kind_bit_identically() {
        // The multi-tenant serving contract: after `switch_table` the
        // unit serves the *new* table bit for bit, lookup counters are
        // preserved, and the stall cost matches the timeline model —
        // 0 for NOVA (the table lives on the wire), `entries` cycles for
        // LUT banks, `entries × 16` for the SDP.
        let gelu = table();
        let exp_pwl =
            fit::fit_activation(Activation::Exp, 16, fit::BreakpointStrategy::Uniform).unwrap();
        let exp = QuantizedPwl::from_pwl(&exp_pwl, Q4_12, Rounding::NearestEven).unwrap();
        let inputs = batch(3, 8);
        let config = LineConfig::paper_default(3, 8);
        for kind in ApproximatorKind::all() {
            let mut unit = build(kind, config, &gelu).unwrap();
            unit.lookup_batch(&inputs).unwrap();
            let lookups_before = unit.lookups();
            let cost = unit.switch_table(&exp).unwrap();
            assert_eq!(
                cost,
                table_switch_cycles(kind, exp.segments() as u64),
                "{}",
                kind.label()
            );
            assert_eq!(unit.lookups(), lookups_before, "{}", kind.label());
            let out = unit.lookup_batch(&inputs).unwrap();
            for (row_out, row_in) in out.iter().zip(&inputs) {
                for (&o, &x) in row_out.iter().zip(row_in) {
                    assert_eq!(o, exp.eval(x), "{} serves the old table", kind.label());
                }
            }
        }
        // The cost asymmetry the serving stats surface: free on NOVA,
        // linear on LUTs, heaviest on the SDP.
        let entries = exp.segments() as u64;
        assert_eq!(table_switch_cycles(ApproximatorKind::NovaNoc, entries), 0);
        assert!(
            table_switch_cycles(ApproximatorKind::NvdlaSdp, entries)
                > table_switch_cycles(ApproximatorKind::PerCoreLut, entries)
        );
    }

    #[test]
    fn failed_switch_keeps_the_old_table_active() {
        // A 32-segment table needs more flits than the paper link's tag
        // space addresses: the NOVA NoC must refuse the switch and keep
        // serving the old table.
        let gelu = table();
        let big_pwl =
            fit::fit_activation(Activation::Gelu, 32, fit::BreakpointStrategy::Uniform).unwrap();
        let big = QuantizedPwl::from_pwl(&big_pwl, Q4_12, Rounding::NearestEven).unwrap();
        let inputs = batch(2, 4);
        let mut unit = build(
            ApproximatorKind::NovaNoc,
            LineConfig::paper_default(2, 4),
            &gelu,
        )
        .unwrap();
        assert!(unit.switch_table(&big).is_err());
        let out = unit.lookup_batch(&inputs).unwrap();
        assert_eq!(out[0][0], gelu.eval(inputs[0][0]));
    }

    #[test]
    fn trait_objects_work() {
        // The trait is object-safe — hosts can hold `Box<dyn VectorUnit>`.
        let t = table();
        let mut units: Vec<Box<dyn VectorUnit>> = vec![
            Box::new(NovaVectorUnit::new(LineConfig::paper_default(2, 4), &t).unwrap()),
            Box::new(LutVectorUnit::new(&t, 2, 4, LutVariant::PerNeuron)),
        ];
        let inputs = batch(2, 4);
        let a = units[0].lookup_batch(&inputs).unwrap();
        let b = units[1].lookup_batch(&inputs).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn trait_objects_move_into_worker_threads() {
        // The `Send` supertrait end to end: every kind's boxed unit can
        // be moved into a `std::thread` worker and evaluate there with
        // results identical to the table — the contract the serving
        // worker pool is built on.
        fn assert_send<T: Send + ?Sized>() {}
        assert_send::<dyn VectorUnit>();
        let t = table();
        let inputs = batch(3, 8);
        for kind in ApproximatorKind::all() {
            let mut unit = build(kind, LineConfig::paper_default(3, 8), &t).unwrap();
            let batch_for_thread = inputs.clone();
            let out = std::thread::spawn(move || unit.lookup_batch(&batch_for_thread).unwrap())
                .join()
                .unwrap();
            for (row_out, row_in) in out.iter().zip(&inputs) {
                for (&o, &x) in row_out.iter().zip(row_in) {
                    assert_eq!(o, t.eval(x), "{}", kind.label());
                }
            }
        }
    }
}
