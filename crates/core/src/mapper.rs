//! The NOVA mapper (paper §IV).
//!
//! The mapper runs at compile time: it takes the activation tables the
//! model needs, compiles each into a broadcast schedule, and programs the
//! NoC clock so the lookup latency stays at one accelerator cycle. It also
//! checks physical feasibility: at the chosen NoC clock and router pitch,
//! the SMART reach must still cover the whole line in one cycle (otherwise
//! the broadcast degrades to multi-cycle — the §V.A trade-off).

use nova_approx::{fit, Activation, QuantizedPwl};
use nova_fixed::{QFormat, Rounding};
use nova_noc::{BroadcastSchedule, LinkConfig};
use nova_synth::{timing, TechModel};

use crate::NovaError;

/// One activation's compiled mapping.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivationMapping {
    /// The operator.
    pub activation: Activation,
    /// Its quantized table.
    pub table: QuantizedPwl,
    /// Its broadcast schedule.
    pub schedule: BroadcastSchedule,
}

/// The mapper's output: per-activation schedules plus the programmed NoC
/// clock.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingPlan {
    /// Compiled activations.
    pub mappings: Vec<ActivationMapping>,
    /// NoC clock multiplier over the core clock (max over activations;
    /// paper: 2× for 16 breakpoints).
    pub noc_clock_multiplier: usize,
    /// The resulting NoC clock (GHz).
    pub noc_clock_ghz: f64,
    /// Single-cycle SMART reach at that clock and pitch (routers).
    pub reach: usize,
    /// Whether the whole line is covered in one NoC cycle.
    pub single_cycle_broadcast: bool,
}

/// The compile-time mapper.
#[derive(Debug, Clone)]
pub struct Mapper {
    format: QFormat,
    rounding: Rounding,
    segments: usize,
    link: LinkConfig,
    strategy: fit::BreakpointStrategy,
}

impl Mapper {
    /// A mapper with the paper's defaults: 16 breakpoints, Q4.12 words,
    /// the 257-bit link, MLP-quality greedy breakpoint refinement.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            format: nova_fixed::Q4_12,
            rounding: Rounding::NearestEven,
            segments: 16,
            link: LinkConfig::paper(),
            strategy: fit::BreakpointStrategy::GreedyRefine,
        }
    }

    /// Overrides the segment count (breakpoints ablation).
    #[must_use]
    pub fn with_segments(mut self, segments: usize) -> Self {
        self.segments = segments;
        self
    }

    /// Overrides the link geometry (broadcast-width ablation).
    #[must_use]
    pub fn with_link(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }

    /// Overrides the breakpoint placement strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: fit::BreakpointStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// The configured PWL segment count.
    #[must_use]
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Compiles a plan for `activations` on a line of `routers` routers at
    /// `core_ghz` with `pitch_mm` spacing.
    ///
    /// # Errors
    ///
    /// Propagates fitting/quantization/schedule errors. A line that cannot
    /// be covered in one NoC cycle is *not* an error — the plan reports
    /// `single_cycle_broadcast = false` and the simulator handles the
    /// multi-cycle traversal — but zero activations is.
    pub fn compile(
        &self,
        activations: &[Activation],
        tech: &TechModel,
        routers: usize,
        core_ghz: f64,
        pitch_mm: f64,
    ) -> Result<MappingPlan, NovaError> {
        if activations.is_empty() {
            return Err(NovaError::BatchShape("no activations to map".into()));
        }
        let mut mappings = Vec::with_capacity(activations.len());
        let mut multiplier = 1usize;
        for &activation in activations {
            let pwl = fit::fit_activation(activation, self.segments, self.strategy)?;
            let table = QuantizedPwl::from_pwl(&pwl, self.format, self.rounding)?;
            let schedule = BroadcastSchedule::compile(&table, self.link)?;
            multiplier = multiplier.max(schedule.noc_clock_multiplier());
            mappings.push(ActivationMapping {
                activation,
                table,
                schedule,
            });
        }
        let noc_clock_ghz = core_ghz * multiplier as f64;
        let reach = timing::max_hops_per_cycle(tech, noc_clock_ghz, pitch_mm);
        Ok(MappingPlan {
            mappings,
            noc_clock_multiplier: multiplier,
            noc_clock_ghz,
            reach,
            single_cycle_broadcast: reach >= routers,
        })
    }
}

impl Default for Mapper {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ATTENTION_OPS: [Activation; 3] = [Activation::Exp, Activation::Gelu, Activation::Recip];

    #[test]
    fn paper_plan_16bp_2x_clock() {
        let tech = TechModel::cmos22();
        let plan = Mapper::paper_default()
            .compile(&ATTENTION_OPS, &tech, 10, 0.24, 1.0)
            .unwrap();
        assert_eq!(
            plan.noc_clock_multiplier, 2,
            "16 breakpoints → 2 flits → 2×"
        );
        assert_eq!(plan.mappings.len(), 3);
        assert!(
            plan.single_cycle_broadcast,
            "REACT's 10 routers fit the reach"
        );
    }

    #[test]
    fn tpu_clock_still_single_cycle_at_8_routers() {
        // TPU-v4: 1.4 GHz core → 2.8 GHz NoC. Reach shrinks but 8 routers
        // at 1 mm still fit? At 2.8 GHz the budget is ~312 ps → 5 hops —
        // so the mapper must report multi-cycle and the plan must say so.
        let tech = TechModel::cmos22();
        let plan = Mapper::paper_default()
            .compile(&ATTENTION_OPS, &tech, 8, 1.4, 1.0)
            .unwrap();
        assert_eq!(plan.noc_clock_multiplier, 2);
        assert!(plan.reach < 8, "2.8 GHz cannot cross 8 routers in a cycle");
        assert!(!plan.single_cycle_broadcast);
    }

    #[test]
    fn eight_breakpoints_keep_1x_clock() {
        let tech = TechModel::cmos22();
        let plan = Mapper::paper_default()
            .with_segments(8)
            .compile(&[Activation::Sigmoid], &tech, 10, 1.5, 1.0)
            .unwrap();
        assert_eq!(plan.noc_clock_multiplier, 1);
        assert_eq!(plan.reach, 10);
        assert!(plan.single_cycle_broadcast);
    }

    #[test]
    fn narrow_link_needs_4x() {
        let tech = TechModel::cmos22();
        let link = LinkConfig::new(4, 2).unwrap();
        let plan = Mapper::paper_default()
            .with_link(link)
            .compile(&[Activation::Tanh], &tech, 4, 0.24, 1.0)
            .unwrap();
        assert_eq!(plan.noc_clock_multiplier, 4);
    }

    #[test]
    fn empty_activations_rejected() {
        let tech = TechModel::cmos22();
        assert!(Mapper::paper_default()
            .compile(&[], &tech, 4, 1.0, 1.0)
            .is_err());
    }

    #[test]
    fn tables_cover_all_requested_ops() {
        let tech = TechModel::cmos22();
        let plan = Mapper::paper_default()
            .compile(&ATTENTION_OPS, &tech, 2, 0.5, 0.3)
            .unwrap();
        for (m, &a) in plan.mappings.iter().zip(ATTENTION_OPS.iter()) {
            assert_eq!(m.activation, a);
            assert!(m.table.segments() <= 16);
            assert!(m.schedule.flit_count() <= 2);
        }
    }
}
