//! Engine-backed fused softmax: routes `nova_workloads::attention`
//! softmax scoring through the [`ServingEngine`] as fused op-graph
//! plans.
//!
//! [`EngineSoftmax`] owns a plan-registered engine and implements
//! [`SoftmaxOffload`]: each attention score row is quantized to the
//! plan's word format, served as a fused-plan request
//! (exp → row reduce → reciprocal → scale, executed by the worker pool
//! with a table switch between the exp and reciprocal stages — free on
//! the NOVA NoC, a bank rewrite on LUT/SDP hardware), and decoded back
//! to `f64`. Plugged into
//! [`PwlBackend::with_softmax_offload`](nova_workloads::attention::PwlBackend::with_softmax_offload),
//! an encoder layer's attention runs its softmax on the modeled
//! approximator hardware while matmuls, GELU and LayerNorm stay on the
//! host datapath.
//!
//! The engine path quantizes scores *before* the row max-subtract (the
//! reduce runs in the fixed-point raw domain, as the hardware would),
//! where [`nova_approx::softmax::ApproxSoftmax`] subtracts in `f64`
//! first — so the two disagree by quantization noise, and both track
//! the exact softmax within the paper's error envelope. Bit-exactness
//! is pinned against [`ServingEngine::serve_reference`], not against
//! `ApproxSoftmax`.

use std::cell::RefCell;

use nova_fixed::{Fixed, QFormat, Rounding, Q4_12};
use nova_noc::LineConfig;
use nova_workloads::attention::SoftmaxOffload;

use crate::error::NovaError;
use crate::serving::{Plan, ServingEngine, ServingRequest, ServingStats, TableCache};
use crate::vector_unit::ApproximatorKind;

/// A fused-softmax evaluator backed by a [`ServingEngine`]: the bridge
/// that lets the functional attention workload score through the
/// op-graph serving plane.
///
/// Interior mutability (`RefCell`) adapts the engine's `&mut` serving
/// surface to the `&self` backend trait; the type is single-threaded by
/// construction (the engine's worker pool still runs concurrently
/// underneath).
pub struct EngineSoftmax {
    engine: RefCell<ServingEngine>,
    plan: Plan,
    format: QFormat,
    rounding: Rounding,
}

impl EngineSoftmax {
    /// Builds a fused-softmax engine of `kind` on `line` with the paper
    /// word format (Q4.12, round-to-nearest-even), fitting the exp and
    /// reciprocal tables through `cache`.
    ///
    /// # Errors
    ///
    /// Propagates table fitting and engine construction failures.
    pub fn new(
        kind: ApproximatorKind,
        line: LineConfig,
        cache: &TableCache,
    ) -> Result<Self, NovaError> {
        Self::with_format(kind, line, cache, Q4_12, Rounding::NearestEven)
    }

    /// As [`new`](Self::new) with an explicit word format and rounding
    /// for the plan's tables.
    ///
    /// # Errors
    ///
    /// Propagates table fitting and engine construction failures.
    pub fn with_format(
        kind: ApproximatorKind,
        line: LineConfig,
        cache: &TableCache,
        format: QFormat,
        rounding: Rounding,
    ) -> Result<Self, NovaError> {
        let plan = Plan::fused_softmax(format, rounding);
        let engine = ServingEngine::builder(kind)
            .line(line)
            .cache(cache)
            .plan(&plan)
            .build()?;
        Ok(Self {
            engine: RefCell::new(engine),
            plan,
            format,
            rounding,
        })
    }

    /// The fused plan every row is served with.
    #[must_use]
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Widest attention row the engine can reduce over (its batch
    /// capacity — fused rows never split across batches).
    #[must_use]
    pub fn max_row(&self) -> usize {
        self.engine.borrow().capacity()
    }

    /// Serves a whole slate of score rows in one engine call — one
    /// fused-plan request per row, coalesced row-aligned into shared
    /// batches. The batched face [`softmax_row`](SoftmaxOffload) is the
    /// per-row shim of.
    ///
    /// # Errors
    ///
    /// As [`ServingEngine::serve`] — notably a row wider than
    /// [`max_row`](Self::max_row).
    pub fn softmax_rows(&self, rows: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, NovaError> {
        let requests: Vec<ServingRequest> = rows
            .iter()
            .enumerate()
            .map(|(stream, row)| {
                ServingRequest::new(
                    stream,
                    self.plan.clone(),
                    row.iter()
                        .map(|&x| Fixed::from_f64(x, self.format, self.rounding))
                        .collect(),
                )
            })
            .collect();
        let outputs = self.engine.borrow_mut().serve(&requests)?;
        Ok(outputs
            .iter()
            .map(|row| row.iter().map(|x| x.to_f64()).collect())
            .collect())
    }

    /// Cumulative serving statistics — including the table-switch
    /// ledger the op-graph bench reads (every fused batch re-programs
    /// exp → recip; zero stall cycles on NOVA, real rewrites on
    /// LUT/SDP).
    #[must_use]
    pub fn stats(&self) -> ServingStats {
        self.engine.borrow().stats()
    }
}

impl SoftmaxOffload for EngineSoftmax {
    /// # Panics
    ///
    /// Panics if the row is wider than [`max_row`](Self::max_row) or
    /// the engine's worker pool died — wiring bugs; the fallible
    /// batched surface is [`softmax_rows`](Self::softmax_rows).
    fn softmax_row(&self, row: &[f64]) -> Vec<f64> {
        let mut out = self
            .softmax_rows(std::slice::from_ref(&row.to_vec()))
            .expect("fused softmax row serves");
        out.pop().expect("one row in, one row out")
    }

    fn label(&self) -> &'static str {
        "engine-fused softmax (op-graph)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nova_approx::softmax::softmax_exact;
    use nova_fixed::rng::StdRng;
    use nova_workloads::attention::{
        max_deviation, EncoderLayer, ExactBackend, Matrix, NonLinearBackend, PwlBackend,
    };
    use nova_workloads::bert::BertConfig;

    #[test]
    fn engine_softmax_tracks_exact_within_paper_envelope() {
        let cache = TableCache::new();
        let mut rng = StdRng::seed_from_u64(0xE5);
        for kind in ApproximatorKind::all() {
            let soft = EngineSoftmax::new(kind, LineConfig::paper_default(2, 8), &cache).unwrap();
            for width in [1usize, 3, 8, 13] {
                let row: Vec<f64> = (0..width).map(|_| rng.gen_range(-4.0..4.0)).collect();
                let got = soft.softmax_row(&row);
                let exact = softmax_exact(&row);
                assert_eq!(got.len(), width);
                let sum: f64 = got.iter().sum();
                assert!((sum - 1.0).abs() < 0.05, "{kind:?}: sums to {sum}");
                for (g, e) in got.iter().zip(&exact) {
                    assert!(
                        (g - e).abs() < 0.05,
                        "{kind:?} width {width}: {g} vs exact {e}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_rows_match_per_row_serving() {
        let cache = TableCache::new();
        let soft = EngineSoftmax::new(
            ApproximatorKind::NovaNoc,
            LineConfig::paper_default(2, 8),
            &cache,
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(0xBA7);
        let rows: Vec<Vec<f64>> = [5usize, 9, 1, 16]
            .iter()
            .map(|&w| (0..w).map(|_| rng.gen_range(-3.0..3.0)).collect())
            .collect();
        let batched = soft.softmax_rows(&rows).unwrap();
        for (row, expect) in rows.iter().zip(&batched) {
            assert_eq!(&soft.softmax_row(row), expect);
        }
    }

    #[test]
    fn encoder_attention_through_the_engine_tracks_exact() {
        // The tentpole integration: an encoder layer scoring through
        // the serving engine's fused plans stays within the PWL error
        // envelope of the exact layer, and the engine's switch ledger
        // shows the attention really ran on it — for free on NOVA.
        let config = BertConfig {
            name: "fused-test",
            layers: 1,
            hidden: 32,
            heads: 4,
            ffn: 64,
        };
        let layer = EncoderLayer::random(config, 7);
        let mut rng = StdRng::seed_from_u64(11);
        let x = Matrix::random(12, 32, 1.0, &mut rng);
        let exact = layer.forward(&x, &ExactBackend);
        let cache = TableCache::new();
        let soft = EngineSoftmax::new(
            ApproximatorKind::NovaNoc,
            LineConfig::paper_default(2, 8),
            &cache,
        )
        .unwrap();
        let backend = PwlBackend::new(16).unwrap().with_softmax_offload(&soft);
        assert_eq!(backend.name(), "engine-fused softmax (op-graph)");
        let fused = layer.forward(&x, &backend);
        let dev = max_deviation(&exact, &fused);
        assert!(dev < 0.25, "encoder-layer deviation {dev}");
        let stats = soft.stats();
        assert!(stats.requests > 0, "attention never reached the engine");
        assert!(stats.table_switches > 0, "fused plans must re-program");
        assert_eq!(stats.switch_cycles, 0, "NOVA switches are free");
    }

    #[test]
    fn oversized_rows_error_on_the_batched_surface() {
        let cache = TableCache::new();
        let soft = EngineSoftmax::new(
            ApproximatorKind::NovaNoc,
            LineConfig::paper_default(2, 4),
            &cache,
        )
        .unwrap();
        let wide = vec![vec![0.0; soft.max_row() + 1]];
        assert!(matches!(
            soft.softmax_rows(&wide),
            Err(NovaError::BatchShape(_))
        ));
    }
}
