//! NOVA: a NoC-based Vector Unit for mapping attention layers on CNN
//! accelerators — a from-scratch Rust reproduction of the DATE 2024 paper
//! by Upadhyay, Juneja, Wong and Peh.
//!
//! NOVA replaces the SRAM lookup tables of NN-LUT-style non-linear
//! approximators with an on-chip broadcast: the piecewise-linear
//! `(slope, bias)` pairs travel on a 257-bit line NoC with clockless
//! repeaters, and each router's comparator-addressed tag match latches the
//! right pair for every neuron's MAC. The result is a vector unit that is
//! ~3× smaller and an order of magnitude more power-efficient than LUT
//! baselines, overlayable onto existing accelerators (REACT, TPU-like
//! systolic cores, NVDLA).
//!
//! This crate is the top of the reproduction stack:
//!
//! - [`VectorUnit`]: one trait over the NOVA NoC and the LUT baselines —
//!   identical functional results, different latency/cost semantics,
//! - [`NovaOverlay`]: attach a NOVA NoC to a Table II accelerator config
//!   (Fig 5) and cost it with the 22 nm model,
//! - [`Mapper`]: the §IV software mapper — compiles activation tables into
//!   broadcast schedules and programs the NoC clock multiplier, checking
//!   the SMART timing feasibility,
//! - [`engine`]: per-inference runtime + energy (the Fig 8 evaluation),
//!   plus the multi-stream aggregate evaluation behind the serving bench,
//! - [`serving`]: the concurrent multi-tenant serving runtime — a
//!   thread-shared keyed table cache and a builder-configured
//!   worker-pool pipeline (admission → per-activation coalescing into
//!   fat work units → shard worker threads over [`spsc`] rings with
//!   [`VectorUnit::switch_table`] re-programming → direct result
//!   scatter with watermark completion) that packs activation-tagged
//!   non-linear queries from many concurrent inference streams into
//!   full vector-unit batches, bit-identically to sequential
//!   evaluation for any worker count and activation interleaving, with
//!   a blocking `serve` and a non-blocking `submit`/`try_poll`/`drain`
//!   session surface.
//!
//! # Quickstart
//!
//! ```
//! use nova::{engine, ApproximatorKind};
//! use nova_accel::AcceleratorConfig;
//! use nova_workloads::bert::BertConfig;
//!
//! # fn main() -> Result<(), nova::NovaError> {
//! let tpu = AcceleratorConfig::tpu_v4_like();
//! let report = engine::evaluate(&tpu, &BertConfig::bert_tiny(), 128,
//!                               ApproximatorKind::NovaNoc)?;
//! assert!(report.approximator_energy_mj > 0.0);
//! # Ok(())
//! # }
//! ```

// Unsafe is denied, not forbidden: the serving data plane's SPSC rings
// ([`spsc`]) and its direct result scatter ([`serving`]) are the two
// audited carve-outs — lock-free cross-thread handoff has no safe
// std-only spelling. Every `unsafe` block sits behind a module- or
// item-level `allow` with a SAFETY argument; the rest of the crate (and
// every other workspace crate) still refuses unsafe outright.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;

pub mod engine;
pub mod fused;
pub mod mapper;
pub mod overlay;
pub mod react_pipeline;
pub mod serving;
pub mod spsc;
pub mod timeline;
pub mod vector_unit;

pub use engine::{FusedSoftmaxReport, InferenceReport, MultiStreamReport};
pub use error::NovaError;
pub use fused::EngineSoftmax;
pub use mapper::{Mapper, MappingPlan};
pub use nova_fixed::FixedBatch;
pub use overlay::NovaOverlay;
pub use serving::{
    EngineBuilder, FaultInjector, FaultPolicy, InjectedFault, Plan, PlanStage, ServingConfig,
    ServingEngine, ServingRequest, ServingStats, StageTimes, TableCache, TableKey, Ticket,
    WorkerLoad,
};
pub use vector_unit::{
    ApproximatorKind, LutVariant, LutVectorUnit, NovaVectorUnit, SdpVectorUnit, SegmentedNovaUnit,
    VectorUnit,
};
