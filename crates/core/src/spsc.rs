//! Fixed-capacity single-producer/single-consumer ring buffers with
//! park/unpark wakeups — the channel primitive under the serving
//! engine's data plane.
//!
//! The serving pipeline used to cross threads through
//! `std::sync::mpsc`: a bounded `sync_channel` into each shard worker
//! and one shared unbounded channel back. Both are multi-producer
//! structures, so every hop paid for generality the pipeline never
//! uses — an internal `Mutex` acquisition plus queue-node bookkeeping
//! per message, and (on the shared completion channel) cross-shard
//! contention on one lock. A serving hop moves one pointer-sized job
//! between exactly two fixed threads; the matching primitive is an SPSC
//! ring:
//!
//! - **fixed capacity, zero steady-state allocation** — slots are a
//!   boxed array of `MaybeUninit<T>`; pushing moves the value into a
//!   slot and popping moves it out, no nodes, no free list;
//! - **two atomics per hop** — the producer publishes with one `tail`
//!   store, the consumer retires with one `head` store; there is no
//!   lock anywhere;
//! - **park, don't spin** — a consumer with nothing to pop parks its
//!   thread ([`Consumer::begin_park`]); the producer's push hands it a
//!   wakeup only when the parked flag is raised, so the idle path costs
//!   a load, not a syscall.
//!
//! Lost wakeups are excluded Dekker-style: the consumer raises its
//! parked flag *then* re-checks the ring; the producer publishes *then*
//! checks the flag. The four crossings of that store→load square
//! (`tail` publish, `parked` raise, and both re-check loads) are
//! `SeqCst` — one of the two sides always observes the other. Every
//! other ordering is the weakest the model checker proves sufficient:
//! the cursor handoff is `Release`/`Acquire` (slot contents must be
//! visible before the cursor that publishes them), own-cursor reads and
//! advisory peeks are `Relaxed`. Each callsite carries its one-line
//! rationale; `nova-lint` fails the build if one goes missing.
//!
//! # Model-checked protocols
//!
//! Every protocol claim this module makes is pinned by an exhaustive
//! bounded-DFS model test in `crates/core/tests/model.rs` (run with
//! `RUSTFLAGS="--cfg nova_check_model" cargo test -p nova-core --test
//! model`), driven by the `nova_check` interleaving explorer:
//!
//! - FIFO, no lost or duplicated items → `fifo_no_lost_items`
//! - producer-side close hands every in-flight item back (the
//!   quarantine handshake) → `close_then_join_hands_every_item_back`
//! - begin_park / re-check / park never misses a wakeup →
//!   `parked_consumer_never_misses_wakeup` (and the checker *catches*
//!   the variant with the re-check removed — see
//!   `missing_recheck_after_raise_is_caught_as_lost_wakeup` in
//!   nova-check's self-tests)
//! - doorbell arm/ring races never strand the collector →
//!   `doorbell_arm_ring_no_lost_wake`
//! - dropping endpoints drops each in-flight item exactly once →
//!   `drop_exactly_once_inflight`
//! - the degenerate capacity-1 ring parks and wakes correctly →
//!   `capacity_one_ring_parks_and_wakes`
//!
//! [`ring`] hands back the two endpoints. Each endpoint is `Send` but
//! deliberately **not** `Sync` and not `Clone` — the single-producer /
//! single-consumer discipline is enforced by ownership. Dropping either
//! endpoint closes the ring: the producer's pushes fail with
//! [`PushError::Closed`], while the consumer may still drain items that
//! were pushed before the close.
//!
//! [`Doorbell`] is the inverse primitive for the engine side: *many*
//! producers (the shard workers) wake *one* blocked consumer (the
//! engine thread collecting completions from several rings at once),
//! again with a raise-then-recheck protocol.
//!
//! # Quarantine handshake
//!
//! The serving engine's shard-quarantine path leans on two properties
//! the close protocol already guarantees, pinned here as contract:
//!
//! - **producer-side close loses nothing** — when the engine closes a
//!   failed shard's feed ring from the *producer* end
//!   ([`Producer::close`]), the worker keeps draining every unit that
//!   was pushed before the close (drain-after-close) and only then
//!   observes emptiness as final, so in-flight work units are always
//!   handed back for requeue, never dropped;
//! - **joining after close cannot deadlock** — the retired worker's
//!   hand-backs go out over the *done* ring, whose capacity equals the
//!   engine's per-shard outstanding cap, so every drain-back push fits
//!   without the engine popping concurrently; the engine may therefore
//!   close the feed and immediately `join()` the worker thread.
//!
//! # Example
//!
//! ```
//! use nova::spsc;
//!
//! let (tx, rx) = spsc::ring::<u32>(4);
//! let worker = std::thread::spawn(move || {
//!     let mut got = Vec::new();
//!     loop {
//!         if let Some(v) = rx.try_pop() {
//!             got.push(v);
//!             continue;
//!         }
//!         if rx.is_closed() {
//!             // Drain-after-close: pushes happen before the close.
//!             while let Some(v) = rx.try_pop() {
//!                 got.push(v);
//!             }
//!             return got;
//!         }
//!         rx.begin_park();
//!         if rx.try_pop().is_none() && !rx.is_closed() {
//!             std::thread::park();
//!         }
//!         rx.end_park();
//!     }
//! });
//! for v in 0..8 {
//!     let mut v = v;
//!     loop {
//!         match tx.try_push(v) {
//!             Ok(()) => break,
//!             Err(spsc::PushError::Full(back)) => v = back,
//!             Err(spsc::PushError::Closed(_)) => unreachable!(),
//!         }
//!     }
//! }
//! drop(tx); // close: the worker drains and exits
//! assert_eq!(worker.join().unwrap(), (0..8).collect::<Vec<_>>());
//! ```

#![allow(unsafe_code)] // the audited carve-out: see the crate-root lint note

use std::cell::Cell;
use std::marker::PhantomData;
use std::mem::MaybeUninit;

// All synchronization goes through the nova-check facade: std types in
// normal builds, the instrumented model-checker shim under
// `--cfg nova_check_model`. `nova-lint` (atomic-facade rule) keeps raw
// `std::sync::atomic` out of this crate.
use nova_check::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use nova_check::sync::cell::UnsafeCell;
use nova_check::sync::thread::Thread;
use nova_check::sync::{Arc, Mutex, OnceLock};

/// Why a [`Producer::try_push`] did not take the value. The value rides
/// back in either case, so the caller can retry or drop it.
#[derive(Debug)]
pub enum PushError<T> {
    /// The ring is at capacity; retry after the consumer pops.
    Full(T),
    /// The consumer endpoint was dropped; the value can never arrive.
    Closed(T),
}

/// The largest capacity [`ring`] accepts: the biggest power of two a
/// `usize` can hold, past which the rounding math would overflow.
pub const MAX_CAPACITY: usize = 1 << (usize::BITS - 1);

/// The shared ring state. Slot `i % capacity` is owned by the producer
/// while `head <= i < tail` is false and by the consumer otherwise;
/// the cursors only ever move forward, so a slot is never written and
/// read concurrently.
struct Inner<T> {
    /// `capacity - 1` for the power-of-two capacity (index mask).
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Consumer cursor: next slot to pop. Monotonic, wraps via `mask`.
    head: AtomicUsize,
    /// Producer cursor: next slot to fill. Monotonic, wraps via `mask`.
    tail: AtomicUsize,
    closed: AtomicBool,
    /// Raised by the consumer just before parking (Dekker flag).
    parked: AtomicBool,
    /// The consumer thread handle, bound on its first `begin_park`.
    resident: OnceLock<Thread>,
}

// SAFETY: the ring moves `T` values between threads (so `T: Send` is
// required), and the endpoint types serialize all slot access — the
// producer touches only slots in `[tail, head + capacity)`, the
// consumer only `[head, tail)`, with the cursor atomics ordering the
// handoff.
unsafe impl<T: Send> Send for Inner<T> {}
// SAFETY: as above — shared references only ever reach disjoint slots.
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Inner<T> {
    fn wake_resident(&self) {
        // ordering: SeqCst — producer half of the Dekker square: the
        // preceding tail/closed publish and this flag check must not
        // reorder, or a wakeup is lost (model: parked_consumer test).
        if self.parked.swap(false, Ordering::SeqCst) {
            if let Some(thread) = self.resident.get() {
                thread.unpark();
            }
        }
    }

    fn close(&self) {
        // ordering: SeqCst — publishes the close *and* orders it before
        // the parked-flag check in wake_resident (Dekker store side);
        // also carries release: a consumer that observes the close sees
        // every earlier push (drain-after-close).
        self.closed.store(true, Ordering::SeqCst);
        self.wake_resident();
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Both endpoints are gone: drop whatever was pushed but never
        // popped. Plain loads are fine — `&mut self` proves exclusivity.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            // SAFETY: slots in [head, tail) hold initialized values the
            // consumer never took.
            unsafe { (*self.slots[i & self.mask].get()).assume_init_drop() };
        }
    }
}

/// The push endpoint of a [`ring`]. `Send` but not `Sync`/`Clone`: one
/// thread at a time owns the producing side.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Opts out of `Sync` (a shared `&Producer` on two threads would
    /// break the single-producer discipline) while keeping `Send`.
    _not_sync: PhantomData<Cell<()>>,
}

/// The pop endpoint of a [`ring`]. `Send` but not `Sync`/`Clone`: one
/// thread at a time owns the consuming side. Parking
/// ([`begin_park`](Self::begin_park)) additionally pins the consumer to
/// the first thread that parks — move the endpoint freely *before* the
/// first park, not after.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    _not_sync: PhantomData<Cell<()>>,
}

/// Creates an SPSC ring holding at least `capacity` items (rounded up
/// to a power of two; `0` saturates to 1).
///
/// # Panics
///
/// Panics when `capacity` exceeds [`MAX_CAPACITY`] — beyond it the
/// power-of-two rounding has no representable result (it would
/// previously overflow deep inside the rounding math; now it fails
/// loudly up front).
#[must_use]
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(
        capacity <= MAX_CAPACITY,
        "spsc::ring capacity {capacity} exceeds MAX_CAPACITY ({MAX_CAPACITY}): \
         no power-of-two slot count can hold it"
    );
    let capacity = capacity.max(1).next_power_of_two();
    let slots = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(Inner {
        mask: capacity - 1,
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
        parked: AtomicBool::new(false),
        resident: OnceLock::new(),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            _not_sync: PhantomData,
        },
        Consumer {
            inner,
            _not_sync: PhantomData,
        },
    )
}

impl<T> Producer<T> {
    /// Pushes `value`, waking the consumer if it is parked.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when the ring is at capacity,
    /// [`PushError::Closed`] when the consumer hung up; the value rides
    /// back inside the error either way.
    pub fn try_push(&self, value: T) -> Result<(), PushError<T>> {
        let inner = &*self.inner;
        // ordering: Relaxed — advisory fast-fail; a push that races a
        // consumer-side close lands in the ring and is reclaimed by the
        // ring's Drop, so timeliness is all this load buys.
        if inner.closed.load(Ordering::Relaxed) {
            return Err(PushError::Closed(value));
        }
        // ordering: Relaxed — `tail` is producer-owned; this thread
        // wrote it last, coherence alone returns the latest value.
        let tail = inner.tail.load(Ordering::Relaxed);
        // ordering: Acquire — pairs with the consumer's Release `head`
        // store: the pop's slot read must complete before this side
        // reuses the slot (model: fifo_no_lost_items at capacity 1).
        let head = inner.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) > inner.mask {
            return Err(PushError::Full(value));
        }
        // SAFETY: `[tail, head + capacity)` slots belong to the producer
        // and this one is vacant (the consumer's cursor is behind it).
        unsafe { (*inner.slots[tail & inner.mask].get()).write(value) };
        // ordering: SeqCst — publishes the slot write (release half)
        // *and* forms the Dekker square with the parked-flag swap below
        // against the consumer's raise-then-recheck; Release alone
        // loses wakeups (the model checker finds the interleaving).
        inner.tail.store(tail.wrapping_add(1), Ordering::SeqCst);
        inner.wake_resident();
        Ok(())
    }

    /// Whether the ring is at capacity right now (racy, advisory).
    #[must_use]
    pub fn is_full(&self) -> bool {
        let inner = &*self.inner;
        // ordering: Relaxed ×2 — advisory peek; the serving engine's
        // wait loop re-checks after a completion wakeup rather than
        // relying on this being fresh.
        inner
            .tail
            .load(Ordering::Relaxed)
            .wrapping_sub(inner.head.load(Ordering::Relaxed))
            > inner.mask
    }

    /// Whether either endpoint closed the ring.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        // ordering: Relaxed — advisory on the producer side (the
        // authoritative failure is try_push's Closed error).
        self.inner.closed.load(Ordering::Relaxed)
    }

    /// Closes the ring: later pushes fail, the consumer (woken if
    /// parked) may still drain already-pushed items.
    pub fn close(&self) {
        self.inner.close();
    }

    /// The ring's slot count (after power-of-two rounding).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        // A vanished producer must not leave the consumer parked
        // forever: close wakes it and makes emptiness final.
        self.inner.close();
    }
}

impl<T> Consumer<T> {
    /// Pops the oldest item, if any. Keeps draining after a close, so
    /// nothing pushed before the close is lost.
    #[must_use]
    pub fn try_pop(&self) -> Option<T> {
        let inner = &*self.inner;
        // ordering: Relaxed — `head` is consumer-owned; this thread
        // wrote it last, coherence alone returns the latest value.
        let head = inner.head.load(Ordering::Relaxed);
        // ordering: SeqCst — acquire half pairs with the producer's
        // tail publish (slot contents visible before the read below),
        // and this is the consumer's Dekker re-check after begin_park:
        // Acquire alone loses wakeups (model: parked_consumer test).
        if head == inner.tail.load(Ordering::SeqCst) {
            return None;
        }
        // SAFETY: `[head, tail)` slots hold initialized values the
        // producer published before its tail store.
        let value = unsafe { (*inner.slots[head & inner.mask].get()).assume_init_read() };
        // ordering: Release — hands the emptied slot back to the
        // producer; pairs with try_push's Acquire `head` load so the
        // slot read above completes before the producer overwrites it.
        inner.head.store(head.wrapping_add(1), Ordering::Release);
        value.into()
    }

    /// Whether the ring holds nothing right now. Safe as the re-check
    /// between [`Doorbell::arm`] (or [`begin_park`](Self::begin_park))
    /// and a park: a push it cannot see is guaranteed to ring/wake.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let inner = &*self.inner;
        // ordering: Relaxed — own cursor, coherence suffices…
        // ordering: SeqCst on `tail` — the serving collector re-checks
        // `done.is_empty()` *after* arming the doorbell; that makes
        // this load the Dekker partner of the worker's tail publish +
        // armed check (model: doorbell_arm_ring_no_lost_wake).
        inner.head.load(Ordering::Relaxed) == inner.tail.load(Ordering::SeqCst)
    }

    /// Whether either endpoint closed the ring. Once this returns true,
    /// a [`try_pop`](Self::try_pop) returning `None` is final — every
    /// pre-close push has been drained.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        // ordering: SeqCst — the consumer's Dekker re-check against
        // close(): begin_park raises the flag, this load must then see
        // a close whose wake_resident missed the flag (model:
        // close_then_join_hands_every_item_back); also acquires the
        // pre-close pushes for drain-after-close.
        self.inner.closed.load(Ordering::SeqCst)
    }

    /// Raises the parked flag and binds the calling thread as the
    /// ring's wakeup target (first call only — park from one thread).
    ///
    /// Protocol: `begin_park`, **re-check** (`try_pop` /
    /// [`is_closed`](Self::is_closed)), and only if both still say
    /// "nothing to do" call [`std::thread::park`]; then
    /// [`end_park`](Self::end_park). The re-check closes the race with
    /// a push that landed between the first failed pop and the flag.
    pub fn begin_park(&self) {
        self.inner
            .resident
            .get_or_init(nova_check::sync::thread::current);
        // ordering: SeqCst — the consumer's Dekker raise: it must be
        // ordered before the re-check loads (try_pop / is_closed), or
        // the producer can publish-and-miss while we recheck-and-miss
        // (the model checker finds the lost wakeup under Release).
        self.inner.parked.store(true, Ordering::SeqCst);
    }

    /// Lowers the parked flag after a park (or an aborted one). A stale
    /// wakeup token this leaves behind at worst makes the next park
    /// return early — the re-check loop absorbs it.
    pub fn end_park(&self) {
        // ordering: Relaxed — lowering the flag is pure bookkeeping: a
        // producer that still sees it raised sends one spurious unpark,
        // which the next park absorbs.
        self.inner.parked.store(false, Ordering::Relaxed);
    }

    /// Closes the ring from the consumer side (producer pushes start
    /// failing with [`PushError::Closed`]).
    pub fn close(&self) {
        self.inner.close();
    }

    /// The ring's slot count (after power-of-two rounding).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.inner.close();
    }
}

/// A many-to-one wakeup latch: several worker threads ring it, one
/// blocked collector thread sleeps on it.
///
/// The collector [`arm`](Self::arm)s the bell (recording its thread
/// handle), **re-checks** whatever condition it is waiting on, and only
/// then parks; a worker's [`ring`](Self::ring) after publishing work
/// either sees the armed flag (and unparks the collector) or lost the
/// `SeqCst` race to the collector's re-check — never both miss. The
/// fast path for workers when nobody waits is a single load.
///
/// Unlike the per-ring parked flag, the waiter is stored under a
/// `Mutex` because any number of workers may race a `ring` against the
/// collector re-`arm`ing from a different thread each time.
#[derive(Debug, Default)]
pub struct Doorbell {
    armed: AtomicBool,
    waiter: Mutex<Option<Thread>>,
}

impl Doorbell {
    /// A new, un-armed bell.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the bell for the calling thread. Re-check the waited-on
    /// condition *after* arming and before [`std::thread::park`].
    ///
    /// # Panics
    ///
    /// Panics if the waiter mutex was poisoned (a ringer panicked).
    pub fn arm(&self) {
        *self.waiter.lock().expect("doorbell waiter poisoned") =
            Some(nova_check::sync::thread::current());
        // ordering: SeqCst — the collector's Dekker raise: ordered
        // before its post-arm re-check (e.g. `done.is_empty()`), so a
        // worker that published work either sees the armed flag or its
        // publish is seen by the re-check (model: doorbell test).
        self.armed.store(true, Ordering::SeqCst);
    }

    /// Disarms after waking (or deciding not to park). Stale unpark
    /// tokens are absorbed by the caller's arm → re-check → park loop.
    ///
    /// # Panics
    ///
    /// Panics if the waiter mutex was poisoned (a ringer panicked).
    pub fn disarm(&self) {
        // ordering: Relaxed — lowering the flag is bookkeeping: a
        // worker that still sees it armed sends one spurious unpark,
        // absorbed by the next arm → re-check → park round.
        self.armed.store(false, Ordering::Relaxed);
        self.waiter.lock().expect("doorbell waiter poisoned").take();
    }

    /// Wakes the armed waiter, if any. Cheap when nobody waits: one
    /// `SeqCst` load, no lock.
    ///
    /// # Panics
    ///
    /// Panics if the waiter mutex was poisoned (an armer panicked).
    pub fn ring(&self) {
        // ordering: SeqCst ×2 — the worker's Dekker check after its
        // tail publish: the fast-path load and the claiming swap must
        // both be ordered after the publish or the collector parks on
        // work it never saw (model: doorbell_arm_ring_no_lost_wake).
        if self.armed.load(Ordering::SeqCst) && self.armed.swap(false, Ordering::SeqCst) {
            if let Some(thread) = self.waiter.lock().expect("doorbell waiter poisoned").take() {
                thread.unpark();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo_order() {
        let (tx, rx) = ring::<u32>(4);
        assert!(rx.is_empty());
        for v in 0..4 {
            tx.try_push(v).unwrap();
        }
        assert!(tx.is_full());
        assert!(matches!(tx.try_push(99), Err(PushError::Full(99))));
        for v in 0..4 {
            assert_eq!(rx.try_pop(), Some(v));
        }
        assert_eq!(rx.try_pop(), None);
        // Wrap around the power-of-two boundary many times.
        for round in 0..10u32 {
            tx.try_push(round).unwrap();
            tx.try_push(round + 100).unwrap();
            assert_eq!(rx.try_pop(), Some(round));
            assert_eq!(rx.try_pop(), Some(round + 100));
        }
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = ring::<u8>(3);
        assert_eq!(tx.capacity(), 4);
        let (tx, rx) = ring::<u8>(0);
        assert_eq!(tx.capacity(), 1);
        assert_eq!(rx.capacity(), 1);
        tx.try_push(7).unwrap();
        assert!(matches!(tx.try_push(8), Err(PushError::Full(8))));
    }

    #[test]
    fn capacity_zero_saturates_to_one_and_still_works() {
        // Regression: capacity 0 must neither panic nor produce a
        // zero-slot ring with an all-ones mask.
        let (tx, rx) = ring::<u64>(0);
        assert_eq!(tx.capacity(), 1);
        for round in 0..5 {
            tx.try_push(round).unwrap();
            assert!(tx.is_full());
            assert_eq!(rx.try_pop(), Some(round));
            assert!(rx.is_empty());
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_CAPACITY")]
    fn oversized_capacity_panics_up_front() {
        // Past the largest power of two the rounding math would
        // overflow (debug: panic deep inside next_power_of_two;
        // release: wrap to 0 and build a broken mask). The guard turns
        // both into one clear panic before any allocation.
        let _ = ring::<u8>(MAX_CAPACITY + 1);
    }

    #[test]
    fn capacity_one_full_empty_inversion() {
        // Depth-1 ring: every push flips empty→full, every pop flips
        // it back; the cursors are only ever 0 or 1 apart.
        let (tx, rx) = ring::<u32>(1);
        assert!(rx.is_empty());
        assert!(!tx.is_full());
        tx.try_push(1).unwrap();
        assert!(!rx.is_empty());
        assert!(tx.is_full());
        assert!(matches!(tx.try_push(2), Err(PushError::Full(2))));
        assert_eq!(rx.try_pop(), Some(1));
        assert!(rx.is_empty());
        assert!(!tx.is_full());
        // And the wrap keeps working across many laps.
        for lap in 0..100 {
            tx.try_push(lap).unwrap();
            assert_eq!(rx.try_pop(), Some(lap));
        }
    }

    #[test]
    fn capacity_one_park_wake() {
        // The park protocol at the degenerate depth: the consumer parks
        // between every element, the producer retries through Full.
        let (tx, rx) = ring::<u64>(1);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                if let Some(v) = rx.try_pop() {
                    got.push(v);
                    continue;
                }
                if rx.is_closed() {
                    while let Some(v) = rx.try_pop() {
                        got.push(v);
                    }
                    return got;
                }
                rx.begin_park();
                if rx.try_pop().is_none() && !rx.is_closed() {
                    std::thread::park();
                }
                rx.end_park();
            }
        });
        for v in 0..64u64 {
            let mut item = v;
            loop {
                match tx.try_push(item) {
                    Ok(()) => break,
                    Err(PushError::Full(back)) => {
                        item = back;
                        std::thread::yield_now();
                    }
                    Err(PushError::Closed(_)) => panic!("consumer hung up early"),
                }
            }
        }
        drop(tx);
        assert_eq!(consumer.join().unwrap(), (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn close_fails_pushes_but_drains_pops() {
        let (tx, rx) = ring::<u32>(4);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        tx.close();
        assert!(matches!(tx.try_push(3), Err(PushError::Closed(3))));
        assert!(rx.is_closed());
        assert_eq!(rx.try_pop(), Some(1));
        assert_eq!(rx.try_pop(), Some(2));
        assert_eq!(rx.try_pop(), None, "closed + drained is final");
    }

    #[test]
    fn dropping_an_endpoint_closes_the_ring() {
        let (tx, rx) = ring::<u32>(2);
        drop(rx);
        assert!(matches!(tx.try_push(1), Err(PushError::Closed(1))));
        let (tx, rx) = ring::<u32>(2);
        tx.try_push(5).unwrap();
        drop(tx);
        assert!(rx.is_closed());
        assert_eq!(rx.try_pop(), Some(5), "close never loses pushed items");
    }

    #[test]
    fn unpopped_items_drop_exactly_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (tx, rx) = ring::<Counted>(4);
        for _ in 0..3 {
            assert!(tx.try_push(Counted(Arc::clone(&counter))).is_ok());
        }
        drop(rx.try_pop()); // one popped and dropped by us
        drop(tx);
        drop(rx); // two dropped by the ring's cleanup
        assert_eq!(counter.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn parked_consumer_is_woken_by_push_and_by_close() {
        let (tx, rx) = ring::<u64>(2);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                if let Some(v) = rx.try_pop() {
                    got.push(v);
                    continue;
                }
                if rx.is_closed() {
                    while let Some(v) = rx.try_pop() {
                        got.push(v);
                    }
                    return got;
                }
                rx.begin_park();
                if rx.try_pop().is_none() && !rx.is_closed() {
                    std::thread::park();
                }
                rx.end_park();
            }
        });
        for v in 0..32u64 {
            let mut item = v;
            loop {
                match tx.try_push(item) {
                    Ok(()) => break,
                    Err(PushError::Full(back)) => {
                        item = back;
                        std::thread::yield_now();
                    }
                    Err(PushError::Closed(_)) => panic!("consumer hung up early"),
                }
            }
        }
        drop(tx);
        assert_eq!(consumer.join().unwrap(), (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn producer_close_then_join_hands_every_item_back() {
        // The quarantine handshake in miniature: the engine closes a
        // failed shard's feed ring from the producer side and joins the
        // worker; the worker drains every pre-close unit back over a
        // done ring deep enough for all of them, then exits. Nothing is
        // lost, and the join cannot deadlock because the hand-backs fit
        // the done ring without a concurrent consumer.
        let outstanding = 4usize;
        let (feed_tx, feed_rx) = ring::<u32>(outstanding);
        let (done_tx, done_rx) = ring::<u32>(outstanding);
        for unit in 0..outstanding as u32 {
            feed_tx.try_push(unit).unwrap();
        }
        let worker = std::thread::spawn(move || {
            loop {
                if let Some(unit) = feed_rx.try_pop() {
                    // Drain-back: hand the unit to the engine untouched.
                    done_tx.try_push(unit).unwrap();
                    continue;
                }
                if feed_rx.is_closed() {
                    match feed_rx.try_pop() {
                        Some(unit) => done_tx.try_push(unit).unwrap(),
                        None => return, // closed + drained is final
                    }
                } else {
                    std::thread::yield_now();
                }
            }
        });
        feed_tx.close();
        worker.join().unwrap();
        let drained: Vec<u32> = std::iter::from_fn(|| done_rx.try_pop()).collect();
        assert_eq!(drained, (0..outstanding as u32).collect::<Vec<_>>());
        assert!(done_rx.is_closed(), "retired worker dropped its done end");
    }

    #[test]
    fn doorbell_wakes_armed_waiter() {
        let bell = Arc::new(Doorbell::new());
        let flag = Arc::new(AtomicBool::new(false));
        let waiter = {
            let bell = Arc::clone(&bell);
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || loop {
                bell.arm();
                if flag.load(Ordering::SeqCst) {
                    bell.disarm();
                    return;
                }
                std::thread::park();
                bell.disarm();
            })
        };
        // Publish, then ring — the waiter either re-checked in time or
        // gets the unpark.
        flag.store(true, Ordering::SeqCst);
        bell.ring();
        waiter.join().unwrap();
        // Ringing with nobody armed is a no-op.
        bell.ring();
    }
}
