//! Fixed-capacity single-producer/single-consumer ring buffers with
//! park/unpark wakeups — the channel primitive under the serving
//! engine's data plane.
//!
//! The serving pipeline used to cross threads through
//! `std::sync::mpsc`: a bounded `sync_channel` into each shard worker
//! and one shared unbounded channel back. Both are multi-producer
//! structures, so every hop paid for generality the pipeline never
//! uses — an internal `Mutex` acquisition plus queue-node bookkeeping
//! per message, and (on the shared completion channel) cross-shard
//! contention on one lock. A serving hop moves one pointer-sized job
//! between exactly two fixed threads; the matching primitive is an SPSC
//! ring:
//!
//! - **fixed capacity, zero steady-state allocation** — slots are a
//!   boxed array of `MaybeUninit<T>`; pushing moves the value into a
//!   slot and popping moves it out, no nodes, no free list;
//! - **two atomics per hop** — the producer publishes with one `tail`
//!   store, the consumer retires with one `head` store; there is no
//!   lock anywhere;
//! - **park, don't spin** — a consumer with nothing to pop parks its
//!   thread ([`Consumer::begin_park`]); the producer's push hands it a
//!   wakeup only when the parked flag is raised, so the idle path costs
//!   a load, not a syscall.
//!
//! Lost wakeups are excluded Dekker-style: the consumer raises its
//! parked flag *then* re-checks the ring; the producer publishes *then*
//! checks the flag. All flag and cursor crossings are `SeqCst`, so one
//! of the two always observes the other.
//!
//! [`ring`] hands back the two endpoints. Each endpoint is `Send` but
//! deliberately **not** `Sync` and not `Clone` — the single-producer /
//! single-consumer discipline is enforced by ownership. Dropping either
//! endpoint closes the ring: the producer's pushes fail with
//! [`PushError::Closed`], while the consumer may still drain items that
//! were pushed before the close.
//!
//! [`Doorbell`] is the inverse primitive for the engine side: *many*
//! producers (the shard workers) wake *one* blocked consumer (the
//! engine thread collecting completions from several rings at once),
//! again with a raise-then-recheck protocol.
//!
//! # Quarantine handshake
//!
//! The serving engine's shard-quarantine path leans on two properties
//! the close protocol already guarantees, pinned here as contract:
//!
//! - **producer-side close loses nothing** — when the engine closes a
//!   failed shard's feed ring from the *producer* end
//!   ([`Producer::close`]), the worker keeps draining every unit that
//!   was pushed before the close (drain-after-close) and only then
//!   observes emptiness as final, so in-flight work units are always
//!   handed back for requeue, never dropped;
//! - **joining after close cannot deadlock** — the retired worker's
//!   hand-backs go out over the *done* ring, whose capacity equals the
//!   engine's per-shard outstanding cap, so every drain-back push fits
//!   without the engine popping concurrently; the engine may therefore
//!   close the feed and immediately `join()` the worker thread.
//!
//! # Example
//!
//! ```
//! use nova::spsc;
//!
//! let (tx, rx) = spsc::ring::<u32>(4);
//! let worker = std::thread::spawn(move || {
//!     let mut got = Vec::new();
//!     loop {
//!         if let Some(v) = rx.try_pop() {
//!             got.push(v);
//!             continue;
//!         }
//!         if rx.is_closed() {
//!             // Drain-after-close: pushes happen before the close.
//!             while let Some(v) = rx.try_pop() {
//!                 got.push(v);
//!             }
//!             return got;
//!         }
//!         rx.begin_park();
//!         if rx.try_pop().is_none() && !rx.is_closed() {
//!             std::thread::park();
//!         }
//!         rx.end_park();
//!     }
//! });
//! for v in 0..8 {
//!     let mut v = v;
//!     loop {
//!         match tx.try_push(v) {
//!             Ok(()) => break,
//!             Err(spsc::PushError::Full(back)) => v = back,
//!             Err(spsc::PushError::Closed(_)) => unreachable!(),
//!         }
//!     }
//! }
//! drop(tx); // close: the worker drains and exits
//! assert_eq!(worker.join().unwrap(), (0..8).collect::<Vec<_>>());
//! ```

#![allow(unsafe_code)] // the audited carve-out: see the crate-root lint note

use std::cell::{Cell, UnsafeCell};
use std::marker::PhantomData;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::Thread;

/// Why a [`Producer::try_push`] did not take the value. The value rides
/// back in either case, so the caller can retry or drop it.
#[derive(Debug)]
pub enum PushError<T> {
    /// The ring is at capacity; retry after the consumer pops.
    Full(T),
    /// The consumer endpoint was dropped; the value can never arrive.
    Closed(T),
}

/// The shared ring state. Slot `i % capacity` is owned by the producer
/// while `head <= i < tail` is false and by the consumer otherwise;
/// the cursors only ever move forward, so a slot is never written and
/// read concurrently.
struct Inner<T> {
    /// `capacity - 1` for the power-of-two capacity (index mask).
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Consumer cursor: next slot to pop. Monotonic, wraps via `mask`.
    head: AtomicUsize,
    /// Producer cursor: next slot to fill. Monotonic, wraps via `mask`.
    tail: AtomicUsize,
    closed: AtomicBool,
    /// Raised by the consumer just before parking (Dekker flag).
    parked: AtomicBool,
    /// The consumer thread handle, bound on its first `begin_park`.
    resident: OnceLock<Thread>,
}

// SAFETY: the ring moves `T` values between threads (so `T: Send` is
// required), and the endpoint types serialize all slot access — the
// producer touches only slots in `[tail, head + capacity)`, the
// consumer only `[head, tail)`, with the cursor atomics ordering the
// handoff.
unsafe impl<T: Send> Send for Inner<T> {}
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Inner<T> {
    fn wake_resident(&self) {
        if self.parked.swap(false, SeqCst) {
            if let Some(thread) = self.resident.get() {
                thread.unpark();
            }
        }
    }

    fn close(&self) {
        self.closed.store(true, SeqCst);
        self.wake_resident();
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Both endpoints are gone: drop whatever was pushed but never
        // popped. Plain loads are fine — `&mut self` proves exclusivity.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            // SAFETY: slots in [head, tail) hold initialized values the
            // consumer never took.
            unsafe { (*self.slots[i & self.mask].get()).assume_init_drop() };
        }
    }
}

/// The push endpoint of a [`ring`]. `Send` but not `Sync`/`Clone`: one
/// thread at a time owns the producing side.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Opts out of `Sync` (a shared `&Producer` on two threads would
    /// break the single-producer discipline) while keeping `Send`.
    _not_sync: PhantomData<Cell<()>>,
}

/// The pop endpoint of a [`ring`]. `Send` but not `Sync`/`Clone`: one
/// thread at a time owns the consuming side. Parking
/// ([`begin_park`](Self::begin_park)) additionally pins the consumer to
/// the first thread that parks — move the endpoint freely *before* the
/// first park, not after.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    _not_sync: PhantomData<Cell<()>>,
}

/// Creates an SPSC ring holding at least `capacity` items (rounded up
/// to a power of two, minimum 1).
#[must_use]
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let capacity = capacity.max(1).next_power_of_two();
    let slots = (0..capacity)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect::<Vec<_>>()
        .into_boxed_slice();
    let inner = Arc::new(Inner {
        mask: capacity - 1,
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
        parked: AtomicBool::new(false),
        resident: OnceLock::new(),
    });
    (
        Producer {
            inner: Arc::clone(&inner),
            _not_sync: PhantomData,
        },
        Consumer {
            inner,
            _not_sync: PhantomData,
        },
    )
}

impl<T> Producer<T> {
    /// Pushes `value`, waking the consumer if it is parked.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when the ring is at capacity,
    /// [`PushError::Closed`] when the consumer hung up; the value rides
    /// back inside the error either way.
    pub fn try_push(&self, value: T) -> Result<(), PushError<T>> {
        let inner = &*self.inner;
        if inner.closed.load(SeqCst) {
            return Err(PushError::Closed(value));
        }
        // `tail` is producer-owned; only `head` races with the consumer.
        let tail = inner.tail.load(SeqCst);
        let head = inner.head.load(SeqCst);
        if tail.wrapping_sub(head) > inner.mask {
            return Err(PushError::Full(value));
        }
        // SAFETY: `[tail, head + capacity)` slots belong to the producer
        // and this one is vacant (the consumer's cursor is behind it).
        unsafe { (*inner.slots[tail & inner.mask].get()).write(value) };
        // Publish, then offer a wakeup: a consumer that raised its
        // parked flag before this store sees it on re-check (or we see
        // the flag here) — `SeqCst` on both sides excludes the miss.
        inner.tail.store(tail.wrapping_add(1), SeqCst);
        inner.wake_resident();
        Ok(())
    }

    /// Whether the ring is at capacity right now (racy, advisory).
    #[must_use]
    pub fn is_full(&self) -> bool {
        let inner = &*self.inner;
        inner
            .tail
            .load(SeqCst)
            .wrapping_sub(inner.head.load(SeqCst))
            > inner.mask
    }

    /// Whether either endpoint closed the ring.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(SeqCst)
    }

    /// Closes the ring: later pushes fail, the consumer (woken if
    /// parked) may still drain already-pushed items.
    pub fn close(&self) {
        self.inner.close();
    }

    /// The ring's slot count (after power-of-two rounding).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        // A vanished producer must not leave the consumer parked
        // forever: close wakes it and makes emptiness final.
        self.inner.close();
    }
}

impl<T> Consumer<T> {
    /// Pops the oldest item, if any. Keeps draining after a close, so
    /// nothing pushed before the close is lost.
    #[must_use]
    pub fn try_pop(&self) -> Option<T> {
        let inner = &*self.inner;
        // `head` is consumer-owned; only `tail` races with the producer.
        let head = inner.head.load(SeqCst);
        if head == inner.tail.load(SeqCst) {
            return None;
        }
        // SAFETY: `[head, tail)` slots hold initialized values the
        // producer published before its tail store.
        let value = unsafe { (*inner.slots[head & inner.mask].get()).assume_init_read() };
        inner.head.store(head.wrapping_add(1), SeqCst);
        value.into()
    }

    /// Whether the ring holds nothing right now (racy, advisory).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        let inner = &*self.inner;
        inner.head.load(SeqCst) == inner.tail.load(SeqCst)
    }

    /// Whether either endpoint closed the ring. Once this returns true,
    /// a [`try_pop`](Self::try_pop) returning `None` is final — every
    /// pre-close push has been drained.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(SeqCst)
    }

    /// Raises the parked flag and binds the calling thread as the
    /// ring's wakeup target (first call only — park from one thread).
    ///
    /// Protocol: `begin_park`, **re-check** (`try_pop` /
    /// [`is_closed`](Self::is_closed)), and only if both still say
    /// "nothing to do" call [`std::thread::park`]; then
    /// [`end_park`](Self::end_park). The re-check closes the race with
    /// a push that landed between the first failed pop and the flag.
    pub fn begin_park(&self) {
        self.inner.resident.get_or_init(std::thread::current);
        self.inner.parked.store(true, SeqCst);
    }

    /// Lowers the parked flag after a park (or an aborted one). A stale
    /// wakeup token this leaves behind at worst makes the next park
    /// return early — the re-check loop absorbs it.
    pub fn end_park(&self) {
        self.inner.parked.store(false, SeqCst);
    }

    /// Closes the ring from the consumer side (producer pushes start
    /// failing with [`PushError::Closed`]).
    pub fn close(&self) {
        self.inner.close();
    }

    /// The ring's slot count (after power-of-two rounding).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.inner.mask + 1
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.inner.close();
    }
}

/// A many-to-one wakeup latch: several worker threads ring it, one
/// blocked collector thread sleeps on it.
///
/// The collector [`arm`](Self::arm)s the bell (recording its thread
/// handle), **re-checks** whatever condition it is waiting on, and only
/// then parks; a worker's [`ring`](Self::ring) after publishing work
/// either sees the armed flag (and unparks the collector) or lost the
/// `SeqCst` race to the collector's re-check — never both miss. The
/// fast path for workers when nobody waits is a single load.
///
/// Unlike the per-ring parked flag, the waiter is stored under a
/// `Mutex` because any number of workers may race a `ring` against the
/// collector re-`arm`ing from a different thread each time.
#[derive(Debug, Default)]
pub struct Doorbell {
    armed: AtomicBool,
    waiter: Mutex<Option<Thread>>,
}

impl Doorbell {
    /// A new, un-armed bell.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Arms the bell for the calling thread. Re-check the waited-on
    /// condition *after* arming and before [`std::thread::park`].
    ///
    /// # Panics
    ///
    /// Panics if the waiter mutex was poisoned (a ringer panicked).
    pub fn arm(&self) {
        *self.waiter.lock().expect("doorbell waiter poisoned") = Some(std::thread::current());
        self.armed.store(true, SeqCst);
    }

    /// Disarms after waking (or deciding not to park). Stale unpark
    /// tokens are absorbed by the caller's arm → re-check → park loop.
    ///
    /// # Panics
    ///
    /// Panics if the waiter mutex was poisoned (a ringer panicked).
    pub fn disarm(&self) {
        self.armed.store(false, SeqCst);
        self.waiter.lock().expect("doorbell waiter poisoned").take();
    }

    /// Wakes the armed waiter, if any. Cheap when nobody waits: one
    /// `SeqCst` load, no lock.
    ///
    /// # Panics
    ///
    /// Panics if the waiter mutex was poisoned (an armer panicked).
    pub fn ring(&self) {
        if self.armed.load(SeqCst) && self.armed.swap(false, SeqCst) {
            if let Some(thread) = self.waiter.lock().expect("doorbell waiter poisoned").take() {
                thread.unpark();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo_order() {
        let (tx, rx) = ring::<u32>(4);
        assert!(rx.is_empty());
        for v in 0..4 {
            tx.try_push(v).unwrap();
        }
        assert!(tx.is_full());
        assert!(matches!(tx.try_push(99), Err(PushError::Full(99))));
        for v in 0..4 {
            assert_eq!(rx.try_pop(), Some(v));
        }
        assert_eq!(rx.try_pop(), None);
        // Wrap around the power-of-two boundary many times.
        for round in 0..10u32 {
            tx.try_push(round).unwrap();
            tx.try_push(round + 100).unwrap();
            assert_eq!(rx.try_pop(), Some(round));
            assert_eq!(rx.try_pop(), Some(round + 100));
        }
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = ring::<u8>(3);
        assert_eq!(tx.capacity(), 4);
        let (tx, rx) = ring::<u8>(0);
        assert_eq!(tx.capacity(), 1);
        assert_eq!(rx.capacity(), 1);
        tx.try_push(7).unwrap();
        assert!(matches!(tx.try_push(8), Err(PushError::Full(8))));
    }

    #[test]
    fn close_fails_pushes_but_drains_pops() {
        let (tx, rx) = ring::<u32>(4);
        tx.try_push(1).unwrap();
        tx.try_push(2).unwrap();
        tx.close();
        assert!(matches!(tx.try_push(3), Err(PushError::Closed(3))));
        assert!(rx.is_closed());
        assert_eq!(rx.try_pop(), Some(1));
        assert_eq!(rx.try_pop(), Some(2));
        assert_eq!(rx.try_pop(), None, "closed + drained is final");
    }

    #[test]
    fn dropping_an_endpoint_closes_the_ring() {
        let (tx, rx) = ring::<u32>(2);
        drop(rx);
        assert!(matches!(tx.try_push(1), Err(PushError::Closed(1))));
        let (tx, rx) = ring::<u32>(2);
        tx.try_push(5).unwrap();
        drop(tx);
        assert!(rx.is_closed());
        assert_eq!(rx.try_pop(), Some(5), "close never loses pushed items");
    }

    #[test]
    fn unpopped_items_drop_exactly_once() {
        let counter = Arc::new(AtomicUsize::new(0));
        struct Counted(Arc<AtomicUsize>);
        impl Drop for Counted {
            fn drop(&mut self) {
                self.0.fetch_add(1, SeqCst);
            }
        }
        let (tx, rx) = ring::<Counted>(4);
        for _ in 0..3 {
            assert!(tx.try_push(Counted(Arc::clone(&counter))).is_ok());
        }
        drop(rx.try_pop()); // one popped and dropped by us
        drop(tx);
        drop(rx); // two dropped by the ring's cleanup
        assert_eq!(counter.load(SeqCst), 3);
    }

    #[test]
    fn parked_consumer_is_woken_by_push_and_by_close() {
        let (tx, rx) = ring::<u64>(2);
        let consumer = std::thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                if let Some(v) = rx.try_pop() {
                    got.push(v);
                    continue;
                }
                if rx.is_closed() {
                    while let Some(v) = rx.try_pop() {
                        got.push(v);
                    }
                    return got;
                }
                rx.begin_park();
                if rx.try_pop().is_none() && !rx.is_closed() {
                    std::thread::park();
                }
                rx.end_park();
            }
        });
        for v in 0..32u64 {
            let mut item = v;
            loop {
                match tx.try_push(item) {
                    Ok(()) => break,
                    Err(PushError::Full(back)) => {
                        item = back;
                        std::thread::yield_now();
                    }
                    Err(PushError::Closed(_)) => panic!("consumer hung up early"),
                }
            }
        }
        drop(tx);
        assert_eq!(consumer.join().unwrap(), (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn producer_close_then_join_hands_every_item_back() {
        // The quarantine handshake in miniature: the engine closes a
        // failed shard's feed ring from the producer side and joins the
        // worker; the worker drains every pre-close unit back over a
        // done ring deep enough for all of them, then exits. Nothing is
        // lost, and the join cannot deadlock because the hand-backs fit
        // the done ring without a concurrent consumer.
        let outstanding = 4usize;
        let (feed_tx, feed_rx) = ring::<u32>(outstanding);
        let (done_tx, done_rx) = ring::<u32>(outstanding);
        for unit in 0..outstanding as u32 {
            feed_tx.try_push(unit).unwrap();
        }
        let worker = std::thread::spawn(move || {
            loop {
                if let Some(unit) = feed_rx.try_pop() {
                    // Drain-back: hand the unit to the engine untouched.
                    done_tx.try_push(unit).unwrap();
                    continue;
                }
                if feed_rx.is_closed() {
                    match feed_rx.try_pop() {
                        Some(unit) => done_tx.try_push(unit).unwrap(),
                        None => return, // closed + drained is final
                    }
                } else {
                    std::thread::yield_now();
                }
            }
        });
        feed_tx.close();
        worker.join().unwrap();
        let drained: Vec<u32> = std::iter::from_fn(|| done_rx.try_pop()).collect();
        assert_eq!(drained, (0..outstanding as u32).collect::<Vec<_>>());
        assert!(done_rx.is_closed(), "retired worker dropped its done end");
    }

    #[test]
    fn doorbell_wakes_armed_waiter() {
        let bell = Arc::new(Doorbell::new());
        let flag = Arc::new(AtomicBool::new(false));
        let waiter = {
            let bell = Arc::clone(&bell);
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || loop {
                bell.arm();
                if flag.load(SeqCst) {
                    bell.disarm();
                    return;
                }
                std::thread::park();
                bell.disarm();
            })
        };
        // Publish, then ring — the waiter either re-checked in time or
        // gets the unpark.
        flag.store(true, SeqCst);
        bell.ring();
        waiter.join().unwrap();
        // Ringing with nobody armed is a no-op.
        bell.ring();
    }
}
