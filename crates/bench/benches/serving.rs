//! Serving-layer benchmarks: table-cache amortization, coalesced
//! multi-stream serve calls, and the analytic multi-stream evaluation.

use nova_bench::harness::{black_box, BenchmarkId, Criterion};
use nova_bench::{criterion_group, criterion_main};

use nova::engine::{evaluate_multi_stream, ApproximatorKind};
use nova::serving::{ServingEngine, ServingRequest, TableCache, TableKey};
use nova_accel::AcceleratorConfig;
use nova_approx::Activation;
use nova_fixed::{Fixed, Rounding, Q4_12};
use nova_noc::LineConfig;
use nova_synth::TechModel;
use nova_workloads::bert::OpCensus;
use nova_workloads::traffic::{query_values, TrafficMix};

fn requests(streams: usize, queries: usize) -> Vec<ServingRequest> {
    (0..streams)
        .map(|stream| ServingRequest {
            stream,
            inputs: query_values(stream as u64, queries, -6.0, 6.0)
                .into_iter()
                .map(|x| Fixed::from_f64(x, Q4_12, Rounding::NearestEven))
                .collect(),
        })
        .collect()
}

fn bench_table_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_cache");
    g.bench_function("miss_fit_gelu16", |b| {
        b.iter(|| {
            let cache = TableCache::new();
            cache
                .get_or_fit(black_box(TableKey::paper(Activation::Gelu)))
                .unwrap()
        })
    });
    let cache = TableCache::new();
    cache.get_or_fit(TableKey::paper(Activation::Gelu)).unwrap();
    g.bench_function("hit_gelu16", |b| {
        b.iter(|| {
            cache
                .get_or_fit(black_box(TableKey::paper(Activation::Gelu)))
                .unwrap()
        })
    });
    g.finish();
}

fn bench_serve(c: &mut Criterion) {
    let cache = TableCache::new();
    let table = cache.get_or_fit(TableKey::paper(Activation::Gelu)).unwrap();
    let mut g = c.benchmark_group("serve_8x128_grid");
    for streams in [1usize, 8, 32] {
        let reqs = requests(streams, 200);
        let mut engine = ServingEngine::new(
            ApproximatorKind::PerCoreLut,
            LineConfig::paper_default(8, 128),
            table.clone(),
            1,
        )
        .unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(streams), &reqs, |b, reqs| {
            b.iter(|| engine.serve(black_box(reqs)).unwrap())
        });
    }
    g.finish();
}

fn bench_worker_pool(c: &mut Criterion) {
    // The threaded runtime end to end: same slate, 1 vs 4 shard worker
    // threads, wall-clock measured by the harness.
    let cache = TableCache::new();
    let table = cache.get_or_fit(TableKey::paper(Activation::Gelu)).unwrap();
    let reqs = requests(16, 500);
    let mut g = c.benchmark_group("serve_worker_pool_8x128");
    for workers in [1usize, 4] {
        let mut engine = ServingEngine::new(
            ApproximatorKind::PerCoreLut,
            LineConfig::paper_default(8, 128),
            table.clone(),
            workers,
        )
        .unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(workers), &reqs, |b, reqs| {
            b.iter(|| engine.serve(black_box(reqs)).unwrap())
        });
    }
    g.finish();
}

fn bench_multi_stream_eval(c: &mut Criterion) {
    let tech = TechModel::cmos22();
    let host = AcceleratorConfig::tpu_v4_like();
    let censuses: Vec<OpCensus> = TrafficMix::paper_default(16)
        .generate()
        .into_iter()
        .map(|r| r.census)
        .collect();
    c.bench_function("evaluate_multi_stream_16", |b| {
        b.iter(|| {
            evaluate_multi_stream(
                &tech,
                &host,
                black_box(&censuses),
                ApproximatorKind::NovaNoc,
                4,
            )
            .unwrap()
        })
    });
}

criterion_group!(
    serving,
    bench_table_cache,
    bench_serve,
    bench_worker_pool,
    bench_multi_stream_eval
);
criterion_main!(serving);
