//! Serving-layer benchmarks: table-cache amortization, coalesced
//! multi-stream serve calls, mixed-activation table switching, and the
//! analytic multi-stream evaluation.

use nova_bench::harness::{black_box, BenchmarkId, Criterion};
use nova_bench::{criterion_group, criterion_main};

use nova::engine::{evaluate_multi_stream, ApproximatorKind};
use nova::serving::{Plan, ServingEngine, ServingRequest, TableCache, TableKey};
use nova::vector_unit::build;
use nova_accel::AcceleratorConfig;
use nova_approx::Activation;
use nova_fixed::{Fixed, FixedBatch, Rounding, Q4_12};
use nova_noc::LineConfig;
use nova_synth::TechModel;
use nova_workloads::traffic::{query_words_into, TrafficMix};

fn gelu() -> TableKey {
    TableKey::paper(Activation::Gelu)
}

fn requests(streams: usize, queries: usize) -> Vec<ServingRequest> {
    (0..streams)
        .map(|stream| {
            let mut inputs = Vec::new();
            query_words_into(
                stream as u64,
                queries,
                -6.0,
                6.0,
                Q4_12,
                Rounding::NearestEven,
                &mut inputs,
            );
            ServingRequest::new(stream, gelu(), inputs)
        })
        .collect()
}

/// As [`requests`], but odd streams are tagged with the softmax-exp
/// table — the 2-activation tenancy mix.
fn mixed_requests(streams: usize, queries: usize) -> Vec<ServingRequest> {
    let exp = TableKey::paper(Activation::Exp);
    let mut reqs = requests(streams, queries);
    for r in &mut reqs {
        if r.stream % 2 == 1 {
            r.plan = exp.into();
        }
    }
    reqs
}

fn engine(
    cache: &TableCache,
    kind: ApproximatorKind,
    keys: &[TableKey],
    workers: usize,
) -> ServingEngine {
    ServingEngine::builder(kind)
        .line(LineConfig::paper_default(8, 128))
        .cache(cache)
        .tables(keys.iter().copied())
        .shards(workers)
        .build()
        .unwrap()
}

fn bench_table_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_cache");
    g.bench_function("miss_fit_gelu16", |b| {
        b.iter(|| {
            let cache = TableCache::new();
            cache.get_or_fit(black_box(gelu())).unwrap()
        })
    });
    let cache = TableCache::new();
    cache.get_or_fit(gelu()).unwrap();
    g.bench_function("hit_gelu16", |b| {
        b.iter(|| cache.get_or_fit(black_box(gelu())).unwrap())
    });
    g.finish();
}

fn bench_serve(c: &mut Criterion) {
    let cache = TableCache::new();
    let mut g = c.benchmark_group("serve_8x128_grid");
    for streams in [1usize, 8, 32] {
        let reqs = requests(streams, 200);
        let mut engine = engine(&cache, ApproximatorKind::PerCoreLut, &[gelu()], 1);
        g.bench_with_input(BenchmarkId::from_parameter(streams), &reqs, |b, reqs| {
            b.iter(|| engine.serve(black_box(reqs)).unwrap())
        });
    }
    g.finish();
}

fn bench_worker_pool(c: &mut Criterion) {
    // The threaded runtime end to end: same slate, 1 vs 4 shard worker
    // threads, wall-clock measured by the harness.
    let cache = TableCache::new();
    let reqs = requests(16, 500);
    let mut g = c.benchmark_group("serve_worker_pool_8x128");
    for workers in [1usize, 4] {
        let mut engine = engine(&cache, ApproximatorKind::PerCoreLut, &[gelu()], workers);
        g.bench_with_input(BenchmarkId::from_parameter(workers), &reqs, |b, reqs| {
            b.iter(|| engine.serve(black_box(reqs)).unwrap())
        });
    }
    g.finish();
}

fn bench_table_switching(c: &mut Criterion) {
    // Mixed GELU+exp tenancy vs single-table tenancy on the same query
    // volume: the wall-clock cost of the per-run `switch_table`
    // re-programs the v2 admission stage schedules (the *modeled* stall
    // cycles land in `ServingStats::switch_cycles`, not wall time).
    let cache = TableCache::new();
    let keys = [gelu(), TableKey::paper(Activation::Exp)];
    let single = requests(8, 400);
    let mixed = mixed_requests(8, 400);
    let mut g = c.benchmark_group("serve_mixed_activations_8x128");
    for kind in [ApproximatorKind::NovaNoc, ApproximatorKind::PerCoreLut] {
        let mut eng = engine(&cache, kind, &keys, 2);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}/single")),
            &single,
            |b, reqs| b.iter(|| eng.serve(black_box(reqs)).unwrap()),
        );
        let mut eng = engine(&cache, kind, &keys, 2);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}/mixed")),
            &mixed,
            |b, reqs| b.iter(|| eng.serve(black_box(reqs)).unwrap()),
        );
    }
    g.finish();
}

fn bench_fused_softmax(c: &mut Criterion) {
    // The op-graph path end to end: ragged attention rows served as
    // fused exp → reduce → recip → scale plans, free-switching NOVA vs
    // the per-core LUT that re-programs twice per batch.
    let cache = TableCache::new();
    let plan = Plan::fused_softmax(Q4_12, Rounding::NearestEven);
    let reqs: Vec<ServingRequest> = (0..32)
        .map(|stream| {
            let mut inputs = Vec::new();
            query_words_into(
                stream as u64,
                64 + stream * 7 % 192,
                -4.0,
                4.0,
                Q4_12,
                Rounding::NearestEven,
                &mut inputs,
            );
            ServingRequest::new(stream, plan.clone(), inputs)
        })
        .collect();
    let mut g = c.benchmark_group("serve_fused_softmax_8x128");
    for kind in [ApproximatorKind::NovaNoc, ApproximatorKind::PerCoreLut] {
        let mut eng = ServingEngine::builder(kind)
            .line(LineConfig::paper_default(8, 128))
            .cache(&cache)
            .plan(&plan)
            .shards(2)
            .build()
            .unwrap();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &reqs,
            |b, reqs| b.iter(|| eng.serve(black_box(reqs)).unwrap()),
        );
    }
    g.finish();
}

fn bench_multi_stream_eval(c: &mut Criterion) {
    let tech = TechModel::cmos22();
    let host = AcceleratorConfig::tpu_v4_like();
    let slate = TrafficMix::mixed_activations(16).census_slate();
    c.bench_function("evaluate_multi_stream_16_mixed", |b| {
        b.iter(|| {
            evaluate_multi_stream(
                &tech,
                &host,
                black_box(&slate),
                ApproximatorKind::NovaNoc,
                4,
            )
            .unwrap()
        })
    });
}

fn bench_flat_vs_nested(c: &mut Criterion) {
    // The PR 4 microbench: one full 8×128 batch through a vector
    // unit as nested Vec<Vec<_>> (per-batch allocations + shim round
    // trip) vs one contiguous FixedBatch into a recycled output buffer
    // (allocation-free).
    let cache = TableCache::new();
    let table = cache.get_or_fit(gelu()).unwrap();
    let mut words = Vec::new();
    query_words_into(
        3,
        8 * 128,
        -6.0,
        6.0,
        Q4_12,
        Rounding::NearestEven,
        &mut words,
    );
    let nested: Vec<Vec<Fixed>> = words.chunks(128).map(<[Fixed]>::to_vec).collect();
    let mut flat = FixedBatch::new(8, 128, Fixed::zero(Q4_12));
    flat.as_mut_slice().copy_from_slice(&words);
    let line = LineConfig::paper_default(8, 128);
    let mut g = c.benchmark_group("lookup_batch_8x128");
    for kind in [ApproximatorKind::PerCoreLut, ApproximatorKind::NovaNoc] {
        let mut unit = build(kind, line, &table).unwrap();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}/nested")),
            &nested,
            |b, nested| b.iter(|| unit.lookup_batch(black_box(nested)).unwrap()),
        );
        let mut unit = build(kind, line, &table).unwrap();
        let mut out = FixedBatch::empty();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}/flat_into")),
            &flat,
            |b, flat| {
                b.iter(|| {
                    unit.lookup_batch_into(black_box(flat), &mut out).unwrap();
                    black_box(out.len())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    serving,
    bench_table_cache,
    bench_serve,
    bench_worker_pool,
    bench_table_switching,
    bench_fused_softmax,
    bench_multi_stream_eval,
    bench_flat_vs_nested
);
criterion_main!(serving);
