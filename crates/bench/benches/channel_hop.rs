//! Channel-hop microbenchmark: the admission→worker→completion crossing
//! cost in isolation, at job sizes of 1 and 8 batches.
//!
//! Round-trips one job through a dedicated worker thread via
//!
//! - `mpsc`: the retired design's bounded `std::sync::mpsc` pair
//!   (`sync_channel(2)` feed, `sync_channel(4)` completions), and
//! - `spsc`: the serving engine's rings (`nova::spsc`, feed depth 2,
//!   done depth 4) with the engine's park/doorbell wakeup protocol.
//!
//! Each iteration is one full hop pair — push a job to the worker, get
//! the finished job back — including the wakeup latency on both sides,
//! so the printed time is ns/job for the crossing alone. This pins the
//! "cheaper hops" half of the serving tentpole independently of the
//! evaluation work the pipeline benches mix in.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;

use nova::spsc::{self, Doorbell, PushError};
use nova_bench::harness::{black_box, Criterion};
use nova_bench::{criterion_group, criterion_main};
use nova_fixed::{Fixed, FixedBatch, Q4_12};

/// Mirrors the serving engine's per-shard ring depths.
const FEED_DEPTH: usize = 2;
const DONE_DEPTH: usize = 4;

/// A stand-in for a serving work unit: a run of coalesced batches plus
/// a slot the worker writes so the hop carries a data dependency in
/// both directions.
struct Job {
    batches: Vec<FixedBatch>,
    touched: i64,
}

fn make_job(batches: usize) -> Job {
    let fill = Fixed::zero(Q4_12);
    Job {
        batches: (0..batches).map(|_| FixedBatch::new(2, 8, fill)).collect(),
        touched: 0,
    }
}

/// The worker's "service": read every batch so the payload is live,
/// cheap enough that the channel hop dominates the measurement.
fn touch(batches: &[FixedBatch]) -> i64 {
    batches
        .iter()
        .map(|b| b.as_slice().first().map_or(0, |f| f.raw()))
        .sum()
}

fn bench_mpsc(c: &mut Criterion, batches: usize) {
    let mut g = c.benchmark_group("channel_hop");
    g.bench_function(&format!("mpsc_roundtrip_{batches}batch"), |b| {
        let (feed_tx, feed_rx) = mpsc::sync_channel::<Job>(FEED_DEPTH);
        let (done_tx, done_rx) = mpsc::sync_channel::<Job>(DONE_DEPTH);
        let worker = thread::spawn(move || {
            while let Ok(mut job) = feed_rx.recv() {
                job.touched = black_box(touch(&job.batches));
                if done_tx.send(job).is_err() {
                    break;
                }
            }
        });
        let mut slot = Some(make_job(batches));
        b.iter(|| {
            let job = slot.take().expect("one job in flight");
            feed_tx.send(job).expect("worker alive");
            slot = Some(done_rx.recv().expect("worker alive"));
        });
        drop(feed_tx);
        worker.join().expect("mpsc worker exits cleanly");
    });
    g.finish();
}

fn bench_spsc(c: &mut Criterion, batches: usize) {
    let mut g = c.benchmark_group("channel_hop");
    g.bench_function(&format!("spsc_roundtrip_{batches}batch"), |b| {
        let (feed_tx, feed_rx) = spsc::ring::<Job>(FEED_DEPTH);
        let (done_tx, done_rx) = spsc::ring::<Job>(DONE_DEPTH);
        let bell = Arc::new(Doorbell::new());
        let worker_bell = Arc::clone(&bell);
        // The engine's worker loop: pop, park when dry, drain after close.
        let worker = thread::spawn(move || {
            let serve = |mut job: Job| {
                job.touched = black_box(touch(&job.batches));
                match done_tx.try_push(job) {
                    Ok(()) => worker_bell.ring(),
                    // One job in flight < done capacity: never Full.
                    Err(PushError::Full(_)) => panic!("done ring full with one job in flight"),
                    Err(PushError::Closed(_)) => {}
                }
            };
            loop {
                if let Some(job) = feed_rx.try_pop() {
                    serve(job);
                    continue;
                }
                if feed_rx.is_closed() {
                    // Pushes happen-before close on the bench thread, so
                    // one more pop catches anything racing the close.
                    match feed_rx.try_pop() {
                        Some(job) => serve(job),
                        None => return,
                    }
                    continue;
                }
                feed_rx.begin_park();
                if feed_rx.is_empty() && !feed_rx.is_closed() {
                    thread::park();
                }
                feed_rx.end_park();
            }
        });
        let mut slot = Some(make_job(batches));
        b.iter(|| {
            let job = slot.take().expect("one job in flight");
            assert!(
                feed_tx.try_push(job).is_ok(),
                "feed push failed with one job in flight"
            );
            // The engine's completion wait: arm the bell, re-check, park.
            slot = Some(loop {
                if let Some(job) = done_rx.try_pop() {
                    break job;
                }
                assert!(!done_rx.is_closed(), "worker died mid-roundtrip");
                bell.arm();
                match done_rx.try_pop() {
                    Some(job) => {
                        bell.disarm();
                        break job;
                    }
                    None => thread::park(),
                }
                bell.disarm();
            });
        });
        feed_tx.close();
        worker.join().expect("spsc worker exits cleanly");
    });
    g.finish();
}

fn bench_channel_hop(c: &mut Criterion) {
    for batches in [1usize, 8] {
        bench_mpsc(c, batches);
        bench_spsc(c, batches);
    }
}

criterion_group!(benches, bench_channel_hop);
criterion_main!(benches);
