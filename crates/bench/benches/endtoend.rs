//! End-to-end benchmarks: the cycle-accurate NoC broadcast, the LUT
//! baselines, the systolic runtime model and the full per-inference
//! engine. Runs on the workspace's criterion-shaped harness
//! (`nova_bench::harness`).

use nova_bench::harness::{black_box, BenchmarkId, Criterion};
use nova_bench::{criterion_group, criterion_main};

use nova::engine::{evaluate, ApproximatorKind};
use nova::react_pipeline::ReactNovaPipeline;
use nova::{LutVariant, LutVectorUnit, NovaVectorUnit, SegmentedNovaUnit, VectorUnit};
use nova_accel::nvdla::{convolve, ConvShape, NvdlaCoreConfig};
use nova_accel::systolic::{analytic_cycles, cycle_accurate, Dataflow, SystolicConfig};
use nova_accel::AcceleratorConfig;
use nova_approx::{fit, Activation, QuantizedPwl};
use nova_fixed::rng::StdRng;
use nova_fixed::{Fixed, Rounding, Q4_12};
use nova_noc::LineConfig;
use nova_workloads::attention::{EncoderLayer, ExactBackend, Matrix, PwlBackend};
use nova_workloads::bert::{census, BertConfig, MatmulDims};

fn table() -> QuantizedPwl {
    let pwl = fit::fit_activation(Activation::Exp, 16, fit::BreakpointStrategy::Uniform).unwrap();
    QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
}

fn batch(routers: usize, neurons: usize) -> Vec<Vec<Fixed>> {
    (0..routers)
        .map(|r| {
            (0..neurons)
                .map(|n| {
                    Fixed::from_f64(
                        -(((r * neurons + n) as f64 * 0.7).sin().abs() * 7.0),
                        Q4_12,
                        Rounding::NearestEven,
                    )
                })
                .collect()
        })
        .collect()
}

fn bench_vector_units(c: &mut Criterion) {
    let t = table();
    let mut g = c.benchmark_group("vector_unit_batch_10x256");
    let inputs = batch(10, 256);
    let mut nova = NovaVectorUnit::new(LineConfig::paper_default(10, 256), &t).unwrap();
    g.bench_function("nova_noc", |b| {
        b.iter(|| nova.lookup_batch(black_box(&inputs)).unwrap())
    });
    let mut pn = LutVectorUnit::new(&t, 10, 256, LutVariant::PerNeuron);
    g.bench_function("per_neuron_lut", |b| {
        b.iter(|| pn.lookup_batch(black_box(&inputs)).unwrap())
    });
    let mut pc = LutVectorUnit::new(&t, 10, 256, LutVariant::PerCore);
    g.bench_function("per_core_lut", |b| {
        b.iter(|| pc.lookup_batch(black_box(&inputs)).unwrap())
    });
    g.finish();
}

fn bench_systolic(c: &mut Criterion) {
    let cfg = SystolicConfig {
        rows: 128,
        cols: 128,
        arrays: 8,
    };
    let dims = MatmulDims {
        m: 512,
        k: 512,
        n: 512,
    };
    c.bench_function("systolic/analytic_512_cubed", |b| {
        b.iter(|| analytic_cycles(black_box(&cfg), black_box(dims), Dataflow::OutputStationary))
    });
    let small = MatmulDims {
        m: 16,
        k: 16,
        n: 16,
    };
    let a = vec![1i64; 256];
    let bm = vec![2i64; 256];
    c.bench_function("systolic/cycle_accurate_16_cubed_on_8x8", |b| {
        b.iter(|| cycle_accurate::matmul(8, 8, black_box(small), &a, &bm))
    });
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_per_inference");
    for model in [BertConfig::bert_tiny(), BertConfig::roberta_base()] {
        g.bench_with_input(BenchmarkId::from_parameter(model.name), &model, |b, m| {
            let host = AcceleratorConfig::tpu_v4_like();
            b.iter(|| evaluate(&host, m, 1024, ApproximatorKind::NovaNoc).unwrap())
        });
    }
    g.finish();
}

fn bench_census(c: &mut Criterion) {
    c.bench_function("census/roberta_seq1024", |b| {
        b.iter(|| census(&BertConfig::roberta_base(), black_box(1024)))
    });
}

fn bench_segmented(c: &mut Criterion) {
    let t = table();
    let mut config = LineConfig::paper_default(8, 128);
    config.max_hops_per_cycle = 5; // TPU 2.8 GHz reach
    let inputs = batch(8, 128);
    let mut plain = NovaVectorUnit::new(config, &t).unwrap();
    let mut seg = SegmentedNovaUnit::new(config, &t).unwrap();
    let mut g = c.benchmark_group("noc_beyond_reach_8x128");
    g.bench_function("plain_line", |b| {
        b.iter(|| plain.lookup_batch(black_box(&inputs)).unwrap())
    });
    g.bench_function("segmented", |b| {
        b.iter(|| seg.lookup_batch(black_box(&inputs)).unwrap())
    });
    g.finish();
}

fn bench_react_pipeline(c: &mut Criterion) {
    let t = table();
    let weights: Vec<Vec<Fixed>> = (0..32)
        .map(|n| {
            (0..64)
                .map(|p| {
                    Fixed::from_f64(
                        ((n * 64 + p) as f64 * 0.13).sin() * 0.5,
                        Q4_12,
                        Rounding::NearestEven,
                    )
                })
                .collect()
        })
        .collect();
    let mut pipe = ReactNovaPipeline::new(weights, &t).unwrap();
    let inputs: Vec<Fixed> = (0..64)
        .map(|i| Fixed::from_f64((i as f64 * 0.21).cos(), Q4_12, Rounding::NearestEven))
        .collect();
    c.bench_function("react_nova/dense_64x32", |b| {
        b.iter(|| pipe.forward(black_box(&inputs)).unwrap())
    });
}

fn bench_nvdla_conv(c: &mut Criterion) {
    let shape = ConvShape {
        h: 12,
        w: 12,
        in_c: 8,
        out_c: 16,
        k: 3,
    };
    let input: Vec<Fixed> = (0..12 * 12 * 8)
        .map(|i| Fixed::from_f64((i as f64 * 0.07).sin(), Q4_12, Rounding::NearestEven))
        .collect();
    let weights: Vec<Fixed> = (0..16 * 9 * 8)
        .map(|i| Fixed::from_f64((i as f64 * 0.11).cos() * 0.3, Q4_12, Rounding::NearestEven))
        .collect();
    c.bench_function("nvdla/conv_12x12x8_k3_o16", |b| {
        b.iter(|| {
            convolve(
                NvdlaCoreConfig::jetson(),
                black_box(shape),
                &input,
                &weights,
                Q4_12,
                Rounding::NearestEven,
            )
        })
    });
}

fn bench_encoder_layer(c: &mut Criterion) {
    let cfg = BertConfig {
        name: "bench",
        layers: 1,
        hidden: 64,
        heads: 4,
        ffn: 128,
    };
    let layer = EncoderLayer::random(cfg, 3);
    let mut rng = StdRng::seed_from_u64(1);
    let x = Matrix::random(16, 64, 1.0, &mut rng);
    let pwl = PwlBackend::new(16).unwrap();
    let mut g = c.benchmark_group("encoder_layer_16x64");
    g.bench_function("exact_backend", |b| {
        b.iter(|| layer.forward(black_box(&x), &ExactBackend))
    });
    g.bench_function("pwl_backend", |b| {
        b.iter(|| layer.forward(black_box(&x), &pwl))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_vector_units,
    bench_systolic,
    bench_engine,
    bench_census,
    bench_segmented,
    bench_react_pipeline,
    bench_nvdla_conv,
    bench_encoder_layer
);
criterion_main!(benches);
