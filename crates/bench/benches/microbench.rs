//! Microbenchmarks for the datapath primitives: flit packing, comparator
//! address generation, PWL evaluation (float vs fixed), softmax pipelines
//! and breakpoint fitting. Runs on the workspace's criterion-shaped
//! harness (`nova_bench::harness`).

use nova_bench::harness::{black_box, BenchmarkId, Criterion};
use nova_bench::{criterion_group, criterion_main};

use nova_approx::softmax::{softmax_exact, softmax_online, ApproxSoftmax};
use nova_approx::{fit, Activation, QuantizedPwl};
use nova_fixed::{Fixed, Rounding, Q4_12};
use nova_noc::comparator::Comparators;
use nova_noc::{Flit, LinkConfig};

fn table(segments: usize) -> QuantizedPwl {
    let pwl =
        fit::fit_activation(Activation::Gelu, segments, fit::BreakpointStrategy::Uniform).unwrap();
    QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap()
}

fn bench_flit(c: &mut Criterion) {
    let t = table(16);
    let link = LinkConfig::paper();
    let pairs: Vec<_> = t.pairs().iter().copied().take(8).collect();
    let flit = Flit::from_pairs(&pairs, 1, link).unwrap();
    let bytes = flit.pack();
    c.bench_function("flit/pack_257b", |b| b.iter(|| black_box(&flit).pack()));
    c.bench_function("flit/unpack_257b", |b| {
        b.iter(|| Flit::unpack(black_box(&bytes), link).unwrap())
    });
}

fn bench_comparator(c: &mut Criterion) {
    let t = table(16);
    let cmp = Comparators::from_table(&t);
    let xs: Vec<Fixed> = (0..256)
        .map(|i| Fixed::from_f64((i as f64 * 0.61).sin() * 7.0, Q4_12, Rounding::NearestEven))
        .collect();
    c.bench_function("comparator/address_x256", |b| {
        b.iter(|| {
            for &x in &xs {
                black_box(cmp.address(x));
            }
        })
    });
}

fn bench_pwl_eval(c: &mut Criterion) {
    let pwl = fit::fit_activation(Activation::Gelu, 16, fit::BreakpointStrategy::Uniform).unwrap();
    let t = QuantizedPwl::from_pwl(&pwl, Q4_12, Rounding::NearestEven).unwrap();
    let xf: Vec<f64> = (0..256).map(|i| (i as f64 * 0.43).sin() * 7.0).collect();
    let xq: Vec<Fixed> = xf
        .iter()
        .map(|&x| Fixed::from_f64(x, Q4_12, Rounding::NearestEven))
        .collect();
    c.bench_function("pwl/eval_f64_x256", |b| {
        b.iter(|| xf.iter().map(|&x| pwl.eval(x)).sum::<f64>())
    });
    c.bench_function("pwl/eval_fixed_x256", |b| {
        b.iter(|| xq.iter().map(|&x| t.eval(x).raw()).sum::<i64>())
    });
    c.bench_function("pwl/reference_gelu_x256", |b| {
        b.iter(|| xf.iter().map(|&x| Activation::Gelu.eval(x)).sum::<f64>())
    });
    // The flat-pipeline eval ablation: per-element binary-search address
    // generation (the retired path) vs the dense direct-index table
    // behind `eval`/`eval_into`.
    c.bench_function("pwl/eval_binary_search_x256", |b| {
        b.iter(|| {
            xq.iter()
                .map(|&x| {
                    let xc = t.clamp(x);
                    let addr = t.breakpoints().partition_point(|d| d.raw() <= xc.raw());
                    let pair = t.pairs()[addr];
                    pair.slope
                        .mul_add(xc, pair.bias, t.rounding())
                        .unwrap()
                        .raw()
                })
                .sum::<i64>()
        })
    });
    // The branch-free-clamp ablation: the retired per-element batch body
    // (compare-chain clamp via `clamp()`, `Result`-returning MAC) vs the
    // shipped `eval_into` loop below (hoisted format check, `max`/`min`
    // raw clamp, raw fused MAC) — before/after ns/query for the clamp
    // rework, bit-identical by the full-raw-word sweep test.
    c.bench_function("pwl/eval_branchy_clamp_into_x256", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            assert!(xq.iter().all(|x| x.format() == t.format()));
            out.clear();
            out.reserve(xq.len());
            out.extend(xq.iter().map(|&x| {
                let xc = t.clamp(x);
                let pair = t.pairs()[t.lookup_address_clamped(xc)];
                pair.slope.mul_add(xc, pair.bias, t.rounding()).unwrap()
            }));
            black_box(out.last().copied())
        })
    });
    // The AoS-gather ablation: what the dense direct-index loop compiled
    // to before the table went structure-of-arrays — raw clamp and raw
    // fused MAC, but the `(slope, bias)` fetch is a 32-byte `SlopeBias`
    // gather dragging both `Fixed` format tags through the hot loop.
    // Kept as the before/after baseline for the SoA rows below.
    c.bench_function("pwl/eval_aos_gather_into_x256", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            assert!(xq.iter().all(|x| x.format() == t.format()));
            out.clear();
            out.reserve(xq.len());
            out.extend(xq.iter().map(|&x| {
                let xc = t.clamp(x);
                let pair = t.pairs()[t.lookup_address_clamped(xc)];
                let raw = Fixed::mul_add_raw(
                    pair.slope.raw(),
                    xc.raw(),
                    pair.bias.raw(),
                    t.format(),
                    t.rounding(),
                );
                Fixed::from_raw_saturating(raw, t.format())
            }));
            black_box(out.last().copied())
        })
    });
    // The shipped SoA raw-word kernel, through both entry points: the
    // growable-Vec wrapper (`eval_into`) and the preallocated-slice hot
    // path (`eval_to_slice`) the LUT units and the flat NoC path call.
    let mut out = Vec::new();
    c.bench_function("pwl/eval_direct_index_into_x256", |b| {
        b.iter(|| {
            t.eval_into(black_box(&xq), &mut out);
            black_box(out.last().copied())
        })
    });
    let mut out_slice = vec![Fixed::zero(Q4_12); xq.len()];
    c.bench_function("pwl/eval_soa_to_slice_x256", |b| {
        b.iter(|| {
            t.eval_to_slice(black_box(&xq), &mut out_slice);
            black_box(out_slice.last().copied())
        })
    });
}

fn bench_softmax(c: &mut Criterion) {
    let logits: Vec<f64> = (0..128).map(|i| (i as f64 * 0.37).sin() * 3.0).collect();
    let unit = ApproxSoftmax::new(16, Q4_12, Rounding::NearestEven).unwrap();
    let mut g = c.benchmark_group("softmax_128");
    g.bench_function("exact", |b| b.iter(|| softmax_exact(black_box(&logits))));
    g.bench_function("online_normalizer", |b| {
        b.iter(|| softmax_online(black_box(&logits)))
    });
    g.bench_function("pwl_fixed_point", |b| {
        b.iter(|| unit.eval(black_box(&logits)))
    });
    g.finish();
}

fn bench_fitting(c: &mut Criterion) {
    let mut g = c.benchmark_group("fit_sigmoid_16seg");
    for strategy in [
        fit::BreakpointStrategy::Uniform,
        fit::BreakpointStrategy::CurvatureQuantile,
        fit::BreakpointStrategy::GreedyRefine,
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{strategy:?}")),
            &strategy,
            |b, &s| b.iter(|| fit::fit_activation(Activation::Sigmoid, 16, s).unwrap()),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_flit,
    bench_comparator,
    bench_pwl_eval,
    bench_softmax,
    bench_fitting
);
criterion_main!(benches);
