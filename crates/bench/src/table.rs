//! Minimal fixed-width table printing for the reproduction binaries.

/// A printable table with a title, column headers and string rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        println!("\n=== {} ===", self.title);
        let line = |cells: &[String]| {
            let joined: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            println!("| {} |", joined.join(" | "));
        };
        line(&self.headers);
        println!(
            "|{}|",
            widths
                .iter()
                .map(|w| "-".repeat(w + 2))
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            line(row);
        }
    }
}

/// Renders grouped horizontal bars for a figure-style comparison:
/// one row per x-point, one bar per labeled series, scaled to the global
/// maximum.
///
/// # Panics
///
/// Panics if series lengths disagree with the x-labels.
pub fn bar_chart(title: &str, x_labels: &[String], series: &[(&str, Vec<f64>)], width: usize) {
    for (_, v) in series {
        assert_eq!(v.len(), x_labels.len(), "series length mismatch");
    }
    let max = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(f64::MIN_POSITIVE, f64::max);
    let label_w = series.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let xw = x_labels.iter().map(String::len).max().unwrap_or(0);
    println!("\n--- {title} ---");
    for (i, x) in x_labels.iter().enumerate() {
        for (j, (label, values)) in series.iter().enumerate() {
            let v = values[i];
            let bars = ((v / max) * width as f64).round().max(1.0) as usize;
            let x_cell = if j == 0 { x.as_str() } else { "" };
            println!(
                "{x_cell:>xw$} {label:<label_w$} {} {v:.2}",
                "█".repeat(bars)
            );
        }
    }
}

/// Formats a measured-vs-paper pair with the ratio, e.g. `1.85 (paper 1.82, 1.02x)`.
#[must_use]
pub fn vs_paper(measured: f64, paper: f64, decimals: usize) -> String {
    if paper == 0.0 {
        return format!("{measured:.decimals$}");
    }
    format!(
        "{measured:.decimals$} (paper {paper:.decimals$}, {:.2}x)",
        measured / paper
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vs_paper_formats_ratio() {
        let s = vs_paper(2.0, 1.0, 1);
        assert!(s.contains("2.00x"));
        assert_eq!(vs_paper(3.5, 0.0, 2), "3.50");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("t", &["a", "b"]);
        t.row(&["only one".into()]);
    }
}
