//! Shared helpers for the per-table/figure reproduction binaries.
//!
//! Each paper table/figure has a binary in `src/bin/` that prints the same
//! rows/series the paper reports, side by side with the paper's published
//! value where one exists:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table I — post-approximation accuracy |
//! | `table2` | Table II — accelerator parameters |
//! | `table3` | Table III — hardware overhead vs LUT approximators |
//! | `table4` | Table IV — NOVA vs NACU / I-BERT unit comparison |
//! | `fig6` | Fig 6 — router area vs neurons/router |
//! | `fig7` | Fig 7 — router power vs neurons/router |
//! | `fig8` | Fig 8 — energy/inference for the BERT benchmarks |
//! | `scalability` | §V.A — single-cycle reach vs frequency/pitch |
//! | `serving` | multi-stream serving: throughput vs streams, occupancy vs load |

pub mod harness;
pub mod table;
