//! Fig 8: energy consumption per inference for the five BERT-family
//! benchmarks across the REACT / TPU-v3 / TPU-v4 hosts and the three
//! approximators (sequence length 1024, except REACT at 128).

use nova::engine::{evaluate, ApproximatorKind};
use nova_accel::AcceleratorConfig;
use nova_bench::table::{bar_chart, Table};
use nova_workloads::bert::BertConfig;

fn main() {
    let hosts = [
        AcceleratorConfig::react(),
        AcceleratorConfig::tpu_v3_like(),
        AcceleratorConfig::tpu_v4_like(),
    ];
    for host in &hosts {
        let seq = host.default_seq_len;
        let mut t = Table::new(
            format!(
                "Fig 8 — approximator energy per inference on {} (seq len {seq})",
                host.name
            ),
            &[
                "Benchmark",
                "NOVA (mJ)",
                "Per-neuron LUT (mJ)",
                "Per-core LUT (mJ)",
                "PN/NOVA",
                "PC/NOVA",
                "NOVA overhead vs host (%)",
            ],
        );
        let mut ratio_pn = Vec::new();
        let mut ratio_pc = Vec::new();
        let mut bars: Vec<(String, f64, f64, f64)> = Vec::new();
        for model in BertConfig::fig8_benchmarks() {
            let get = |kind| evaluate(host, &model, seq, kind).expect("valid seq len and config");
            let nova = get(ApproximatorKind::NovaNoc);
            let pn = get(ApproximatorKind::PerNeuronLut);
            let pc = get(ApproximatorKind::PerCoreLut);
            ratio_pn.push(pn.approximator_energy_mj / nova.approximator_energy_mj);
            ratio_pc.push(pc.approximator_energy_mj / nova.approximator_energy_mj);
            t.row(&[
                model.name.to_string(),
                format!("{:.4}", nova.approximator_energy_mj),
                format!("{:.4}", pn.approximator_energy_mj),
                format!("{:.4}", pc.approximator_energy_mj),
                format!("{:.2}x", ratio_pn.last().unwrap()),
                format!("{:.2}x", ratio_pc.last().unwrap()),
                format!("{:.2}", nova.energy_overhead_pct),
            ]);
            bars.push((
                model.name.to_string(),
                nova.approximator_energy_mj,
                pn.approximator_energy_mj,
                pc.approximator_energy_mj,
            ));
        }
        t.print();
        let xs: Vec<String> = bars.iter().map(|b| b.0.clone()).collect();
        bar_chart(
            &format!("Fig 8 on {} (mJ/inference)", host.name),
            &xs,
            &[
                ("NOVA", bars.iter().map(|b| b.1).collect()),
                ("per-neuron LUT", bars.iter().map(|b| b.2).collect()),
                ("per-core LUT", bars.iter().map(|b| b.3).collect()),
            ],
            44,
        );
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "  averages on {}: per-neuron/NOVA {:.2}x, per-core/NOVA {:.2}x",
            host.name,
            avg(&ratio_pn),
            avg(&ratio_pc)
        );
    }
    println!(
        "\nShape check (paper, TPU-v4): LUT baselines cost 4.14x / 9.4x NOVA's\n\
         energy per input sample; NOVA's energy overhead over the host compute\n\
         is ~0.5%. LUT energy can reach 7.5x on systolic configurations."
    );
}
