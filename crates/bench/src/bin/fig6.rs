//! Fig 6: NOVA router area vs number of neurons mapped per router,
//! against the per-neuron and per-core LUT baselines.

use nova_bench::table::{bar_chart, Table};
use nova_synth::{units, LutSharing, TechModel};

fn main() {
    let tech = TechModel::cmos22();
    let mut t = Table::new(
        "Fig 6 — router/vector-unit area vs neurons per router (16 breakpoints)",
        &[
            "Neurons/router",
            "NOVA router (µm²)",
            "Per-neuron LUT (µm²)",
            "Per-core LUT (µm²)",
            "PN/NOVA",
            "PC/NOVA",
        ],
    );
    let mut series: Vec<(String, f64, f64, f64)> = Vec::new();
    for neurons in [16usize, 32, 64, 128, 256] {
        // Router pitch scales with the host core's footprint (a 16-neuron
        // NVDLA core is ~0.3 mm across; a 128-neuron MXU ~1 mm).
        let pitch = (neurons as f64 / 128.0).max(0.2);
        let nova = units::nova_router(&tech, neurons, 16, pitch).area_um2;
        let pn = units::lut_unit(&tech, neurons, 16, LutSharing::PerNeuron).area_um2;
        let pc = units::lut_unit(&tech, neurons, 16, LutSharing::PerCore).area_um2;
        t.row(&[
            neurons.to_string(),
            format!("{nova:.0}"),
            format!("{pn:.0}"),
            format!("{pc:.0}"),
            format!("{:.2}x", pn / nova),
            format!("{:.2}x", pc / nova),
        ]);
        series.push((neurons.to_string(), nova, pn, pc));
    }
    t.print();
    let xs: Vec<String> = series.iter().map(|s| s.0.clone()).collect();
    bar_chart(
        "Fig 6 (µm², log-free bars)",
        &xs,
        &[
            ("NOVA", series.iter().map(|s| s.1).collect()),
            ("per-neuron LUT", series.iter().map(|s| s.2).collect()),
            ("per-core LUT", series.iter().map(|s| s.3).collect()),
        ],
        46,
    );
    println!(
        "\nShape check (paper): NOVA is smallest at every point and the gap widens\n\
         with neuron count (LUT baselines add a bank/ports per neuron; NOVA adds\n\
         only a comparator tree + MAC). Paper reports 3.23x average area gain."
    );
}
