//! §V.A scalability: how many routers a broadcast crosses in one cycle,
//! versus clock frequency and router pitch, and what happens beyond.

use nova_bench::table::Table;
use nova_synth::{timing, TechModel};

fn main() {
    let tech = TechModel::cmos22();

    let mut t = Table::new(
        "§V.A — single-cycle SMART reach (routers) vs NoC clock, 1 mm pitch",
        &[
            "NoC clock (GHz)",
            "Max routers/cycle",
            "Cycles for 10 routers",
            "Cycles for 20 routers",
        ],
    );
    for f in [0.5, 0.75, 1.0, 1.5, 2.0, 2.8, 3.0] {
        t.row(&[
            format!("{f:.2}"),
            timing::max_hops_per_cycle(&tech, f, 1.0).to_string(),
            timing::broadcast_cycles(&tech, 10, f, 1.0).to_string(),
            timing::broadcast_cycles(&tech, 20, f, 1.0).to_string(),
        ]);
    }
    t.print();
    println!(
        "\nPaper anchor: at 1.5 GHz with 1 mm pitch, exactly 10 routers are\n\
         single-cycle reachable — reproduced: {} routers.",
        timing::max_hops_per_cycle(&tech, 1.5, 1.0)
    );

    let mut t2 = Table::new(
        "Reach vs router pitch at 1.5 GHz",
        &[
            "Pitch (mm)",
            "Max routers/cycle",
            "Max single-cycle clock for 10 routers (GHz)",
        ],
    );
    for pitch in [0.3, 0.5, 1.0, 1.5, 2.0] {
        t2.row(&[
            format!("{pitch:.1}"),
            timing::max_hops_per_cycle(&tech, 1.5, pitch).to_string(),
            format!("{:.2}", timing::max_single_cycle_freq_ghz(&tech, 10, pitch)),
        ]);
    }
    t2.print();
    println!(
        "\nTrade-off (paper): scaling beyond 10 routers makes the traversal\n\
         multi-cycle, trading latency for lower clock frequency and power."
    );
}
