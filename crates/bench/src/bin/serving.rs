//! Serving-engine study: aggregate throughput vs. concurrent stream
//! count, and batch occupancy vs. offered load.
//!
//! Two views of the same batching story:
//!
//! 1. **Analytic** (`engine::evaluate_multi_stream`): mixed BERT/CNN/
//!    synthetic traffic on a TPU-v4-like host, sweeping the stream
//!    count. Coalescing non-linear queries across streams shrinks the
//!    batch count versus naive per-stream dispatch, so the aggregate
//!    query service rate rises.
//! 2. **Functional** (`serving::ServingEngine`): the cycle-accounted
//!    engine serving seeded query bursts, sweeping offered load (queries
//!    per request) to show occupancy approaching 100 % as the scheduler
//!    fills tail batches with other tenants' queries.

use nova::engine::{evaluate_multi_stream, ApproximatorKind};
use nova::serving::{ServingEngine, ServingRequest, TableCache, TableKey};
use nova_accel::AcceleratorConfig;
use nova_approx::Activation;
use nova_bench::table::Table;
use nova_fixed::{Fixed, Rounding, Q4_12};
use nova_synth::TechModel;
use nova_workloads::bert::OpCensus;
use nova_workloads::traffic::{query_values, TrafficMix};

fn main() {
    let tech = TechModel::cmos22();
    let host = AcceleratorConfig::tpu_v4_like();
    println!(
        "Serving study on {} ({} routers × {} neurons = {}-query batches)\n",
        host.name,
        host.nova_routers,
        host.neurons_per_router,
        host.total_neurons()
    );

    // 1. Aggregate throughput vs. concurrent stream count (analytic).
    let mut t = Table::new(
        "Multi-stream serving — mixed traffic, NOVA NoC",
        &[
            "Streams",
            "Requests",
            "Queries",
            "Batches (coalesced)",
            "Batches (naive)",
            "Occupancy (%)",
            "Queries/s (coalesced)",
            "Queries/s (naive)",
            "NL speedup",
            "Inferences/s",
        ],
    );
    for streams in [1usize, 2, 4, 8, 16, 32] {
        let trace = TrafficMix::paper_default(streams).generate();
        let censuses: Vec<OpCensus> = trace.into_iter().map(|r| r.census).collect();
        let r = evaluate_multi_stream(&tech, &host, &censuses, ApproximatorKind::NovaNoc)
            .expect("non-empty slate");
        t.row(&[
            format!("{streams}"),
            format!("{}", r.requests),
            format!("{}", r.total_queries),
            format!("{}", r.coalesced_batches),
            format!("{}", r.naive_batches),
            format!("{:.2}", r.batch_occupancy_pct),
            format!("{:.3e}", r.queries_per_second),
            format!("{:.3e}", r.naive_queries_per_second),
            format!("{:.3}x", r.nl_speedup),
            format!("{:.1}", r.inferences_per_second),
        ]);
    }
    t.print();

    // 2. Batch occupancy vs. offered load (functional engine).
    let mut cache = TableCache::new();
    let mut t = Table::new(
        "Batch occupancy vs offered load — functional engine, 8 streams",
        &[
            "Queries/request",
            "Requests",
            "Batches",
            "Padded slots",
            "Occupancy (%)",
            "Queries/s @host clock",
            "Naive queries/s",
        ],
    );
    for queries_per_request in [16usize, 64, 256, 1024, 4096] {
        let requests = bursts(8, 4, queries_per_request);
        let mut engine = ServingEngine::for_host(
            ApproximatorKind::NovaNoc,
            &tech,
            &host,
            &mut cache,
            TableKey::paper(Activation::Gelu),
            1,
        )
        .expect("host engine builds");
        engine.serve(&requests).expect("well-formed requests");
        let mut naive = ServingEngine::for_host(
            ApproximatorKind::NovaNoc,
            &tech,
            &host,
            &mut cache,
            TableKey::paper(Activation::Gelu),
            1,
        )
        .expect("host engine builds");
        for request in &requests {
            naive
                .serve(std::slice::from_ref(request))
                .expect("well-formed request");
        }
        let ghz = host.frequency_ghz();
        let stats = engine.stats();
        t.row(&[
            format!("{queries_per_request}"),
            format!("{}", stats.requests),
            format!("{}", stats.batches),
            format!("{}", stats.padded_slots),
            format!("{:.2}", engine.occupancy_pct()),
            format!("{:.3e}", engine.queries_per_second(ghz)),
            format!("{:.3e}", naive.queries_per_second(ghz)),
        ]);
    }
    t.print();
    println!(
        "Table cache after both engines per load point: {} fit(s), {} hit(s).",
        cache.misses(),
        cache.hits()
    );
    println!(
        "\nShape check: with ≥ 8 concurrent streams the coalesced scheduler keeps\n\
         occupancy above 90% and its aggregate queries/s beats naive per-stream\n\
         dispatch — the paper's 2-cycle per-batch latency amortized across tenants."
    );
}

/// Seeded query bursts: `streams × requests_per_stream` requests of
/// `queries` GELU inputs each.
fn bursts(streams: usize, requests_per_stream: usize, queries: usize) -> Vec<ServingRequest> {
    let mut requests = Vec::with_capacity(streams * requests_per_stream);
    for stream in 0..streams {
        for burst in 0..requests_per_stream {
            let seed = (stream * 1009 + burst) as u64;
            let inputs = query_values(seed, queries, -6.0, 6.0)
                .into_iter()
                .map(|x| Fixed::from_f64(x, Q4_12, Rounding::NearestEven))
                .collect();
            requests.push(ServingRequest { stream, inputs });
        }
    }
    requests
}
