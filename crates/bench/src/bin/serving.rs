//! Serving-runtime study: throughput-vs-workers scaling, batch occupancy
//! vs offered load, the analytic multi-stream evaluation, per-kind
//! table-switch penalties under mixed-activation tenancy, and the flat
//! zero-copy datapath microbenchmarks.
//!
//! Six views of the concurrent serving story:
//!
//! 1. **Analytic** (`engine::evaluate_multi_stream`): mixed BERT/CNN/
//!    synthetic traffic on a TPU-v4-like host, sweeping the stream count
//!    and then the worker count. Coalescing shrinks the batch count
//!    versus naive per-stream dispatch; round-robin workers shrink the
//!    non-linear makespan without changing the energy integral.
//! 2. **Open-loop offered load**: the seeded arrival process
//!    (`TrafficMix::open_loop`) drives a windowed admission model —
//!    batches dispatch when full or when the coalescing window expires —
//!    showing occupancy approaching 100 % as offered load grows.
//! 3. **Functional wall clock** (`serving::ServingEngine`): the real
//!    worker-pool runtime serving seeded *mixed-activation* (GELU + exp)
//!    query bursts at 1/2/4 threads in **fixed-work** mode — every
//!    worker count serves the identical slate the identical number of
//!    times, so wall-second ratios are honest speedups — with a
//!    per-stage breakdown (admit / worker busy / finalize) from the
//!    engine's ledger and a checksum proving outputs are bit-identical
//!    at every worker count and activation interleaving. Wall-clock
//!    speedup is only meaningful when `hardware_threads` (recorded in
//!    the JSON) covers the worker count — on a single-core runner extra
//!    shard threads can only add overhead, so the speedup assertions
//!    arm only at ≥ 4 hardware threads and the deterministic
//!    `model_queries_per_second` column carries the scaling story
//!    everywhere else.
//! 4. **Table-switch penalty** (`table_switch`): the same 2-activation
//!    trace served by every `ApproximatorKind` — NOVA's makespan stays
//!    flat (switches are free broadcasts) while LUT/SDP engines pay
//!    `table_switch_cycles` of bank rewrites between activation runs.
//! 5. **Flat datapath** (`flat_path`): nested `Vec<Vec<_>>` batches vs
//!    contiguous `FixedBatch` + `lookup_batch_into`; the three eval
//!    kernel generations (per-element binary search → AoS direct index
//!    → the shipped SoA raw-word kernel, all bit-identical by the
//!    full-raw-word sweep test); the NoC sim's analytic flat fast path
//!    vs its flit-level reference — with a checksum proving the flat
//!    serve path is bit-identical to the sequential reference (the CI
//!    smoke compares the two printed checksum lines).
//! 6. **Op-graph plans** (`op_graph`): the fused-softmax pipeline
//!    (exp → row reduce → reciprocal → scale) served end-to-end as one
//!    plan per attention row, by every `ApproximatorKind` — each fused
//!    batch re-programs the unit between the exp and reciprocal tables,
//!    so NOVA's switch overhead stays at 0 % while LUT/SDP engines pay
//!    a bank rewrite twice per batch; plus the analytic twin
//!    (`engine::evaluate_fused_softmax`) on the traffic generator's
//!    fused-attention trace, and a fused determinism checksum per
//!    worker count (the CI fused gate greps the printed
//!    `fused serve checksum [k worker(s)]` lines at k=1 and k=4).
//!
//! Flags/env:
//!
//! - `--json`: emit the whole study as machine-readable JSON
//!   (`nova-serde`) instead of tables, for `BENCH_*.json` trending.
//! - `NOVA_SERVE_WORKERS=k`: restrict the wall-clock sweep to `k`
//!   workers (the CI determinism smoke runs k=1 and k=4 and compares
//!   checksums).
//! - `NOVA_SERVE_MEASURE_MS`: per-point wall-clock budget (default 300).
//!   In fixed-work mode the budget sizes the *calibrated* serve-call
//!   count at the first sweep point; later points reuse that count.
//! - `NOVA_SERVE_CALLS=n`: pin the fixed-work serve-call count directly,
//!   bypassing calibration (for reproducible cross-run comparisons).
//! - `NOVA_SERVE_STRICT_SCALING=1`: upgrade the 2.5× 4-worker speedup
//!   target from a printed verdict to a hard assertion.

use std::time::Instant;

use nova::engine::{
    evaluate_fused_softmax, evaluate_multi_stream, ApproximatorKind, FusedSoftmaxReport,
    MultiStreamReport,
};
use nova::serving::{
    FaultInjector, FaultPolicy, Plan, ServingEngine, ServingRequest, TableCache, TableKey,
};
use nova::vector_unit::build;
use nova_accel::AcceleratorConfig;
use nova_approx::Activation;
use nova_bench::table::Table;
use nova_fixed::{Fixed, FixedBatch, Rounding, Q4_12};
use nova_noc::LineConfig;
use nova_serde::Serialize;
use nova_synth::TechModel;
use nova_workloads::traffic::{query_words_into, TrafficMix};

/// One point of the fixed-work wall-clock worker-scaling sweep: every
/// worker count serves the *same* slate the *same* number of times, so
/// `wall_seconds` ratios are directly comparable.
struct ScalingPoint {
    workers: usize,
    serve_calls: u64,
    queries: u64,
    wall_seconds: f64,
    wall_queries_per_second: f64,
    /// Fixed-work wall-clock speedup over the 1-worker point — the
    /// 1-worker wall over this point's wall (0 when the sweep was
    /// restricted and the 1-worker baseline was not measured).
    speedup_vs_one_worker: f64,
    /// Cycle-accounted throughput at a 1 GHz core clock — the
    /// deterministic makespan view, independent of host CPU count.
    model_queries_per_second: f64,
    /// Per-stage attribution of the timed window (admission packing on
    /// the caller thread, summed and busiest-worker evaluation time on
    /// the pool, finalize bookkeeping on the caller thread), in ns.
    admit_ns: u64,
    worker_busy_ns: u64,
    worker_busy_max_ns: u64,
    finalize_ns: u64,
    /// FNV-1a over all output words in request order — bit-identical
    /// across worker counts by construction.
    checksum: String,
    /// How this point fares against the wall-clock scaling targets:
    /// `"baseline"` (the 1-worker reference), `"met"` / `"missed"`
    /// (judged on a host with enough hardware threads), `"skipped"`
    /// (under-provisioned host — the raw speedup is recorded but not
    /// meaningful), or `"not-judged"` (restricted sweep with no
    /// measured 1-worker baseline).
    verdict: String,
    /// Why a `"skipped"` / `"not-judged"` point was not held to the
    /// target; empty for judged points.
    skipped_reason: String,
}

nova_serde::impl_serialize_struct!(ScalingPoint {
    workers,
    serve_calls,
    queries,
    wall_seconds,
    wall_queries_per_second,
    speedup_vs_one_worker,
    model_queries_per_second,
    admit_ns,
    worker_busy_ns,
    worker_busy_max_ns,
    finalize_ns,
    checksum,
    verdict,
    skipped_reason,
});

/// One point of the open-loop offered-load sweep.
struct OfferedLoadPoint {
    mean_interarrival_cycles: u64,
    offered_queries_per_kcycle: f64,
    batches: u64,
    padded_slots: u64,
    occupancy_pct: f64,
}

nova_serde::impl_serialize_struct!(OfferedLoadPoint {
    mean_interarrival_cycles,
    offered_queries_per_kcycle,
    batches,
    padded_slots,
    occupancy_pct,
});

/// One row of the per-kind table-switch penalty study: the same
/// 2-activation (GELU + softmax-exp) mixed trace served by each
/// approximator kind.
struct TableSwitchPoint {
    kind: String,
    batches: u64,
    table_switches: u64,
    switch_cycles: u64,
    /// Busiest worker's batch-latency cycles alone (no switch stalls).
    batch_makespan_cycles: u64,
    /// Busiest worker's total cycles, switch stalls included — what
    /// `ServingEngine::makespan_cycles` reports.
    makespan_cycles: u64,
    /// `100 · (makespan - batch_makespan) / batch_makespan` — ≈ 0 for
    /// NOVA, growing for LUT/SDP hardware.
    switch_overhead_pct: f64,
    /// Cycle-accounted throughput at 1 GHz, switch stalls included.
    model_queries_per_second: f64,
    /// FNV-1a over the outputs — identical across kinds (all units are
    /// bit-identical to the tables).
    checksum: String,
}

nova_serde::impl_serialize_struct!(TableSwitchPoint {
    kind,
    batches,
    table_switches,
    switch_cycles,
    batch_makespan_cycles,
    makespan_cycles,
    switch_overhead_pct,
    model_queries_per_second,
    checksum,
});

/// The flat-datapath microbenchmarks: nested vs contiguous batches, the
/// eval-kernel generations (binary search → AoS direct index → SoA
/// raw-word), the NoC-sim flat fast path vs its flit-level reference,
/// plus the flat-vs-reference bit-identity checksums (the CI gate).
struct FlatPathBench {
    grid: String,
    batch_slots: usize,
    nested_ns_per_batch: f64,
    flat_ns_per_batch: f64,
    /// Nested time over flat time — > 1 means the flat path wins.
    flat_speedup: f64,
    binary_search_eval_ns_per_query: f64,
    /// The retired AoS loop: dense address lookup, then a 32-byte
    /// `SlopeBias` gather per query. Kept measured so the SoA speedup
    /// stays an apples-to-apples before/after.
    direct_index_eval_ns_per_query: f64,
    /// Binary-search time over AoS direct-index time — > 1 means the
    /// dense table wins.
    direct_index_speedup: f64,
    /// The shipped SoA raw-word kernel (`eval_into` over parallel
    /// `slopes_raw`/`biases_raw` arrays) — the CI perf gate asserts this
    /// stays at or below `direct_index_eval_ns_per_query`.
    soa_eval_ns_per_query: f64,
    /// AoS direct-index time over SoA time — > 1 means SoA wins.
    soa_speedup: f64,
    /// Whether the benched paper table takes the dense-address path —
    /// must be `true`, else every eval row above silently measures the
    /// binary-search fallback (the CI gate asserts it).
    uses_dense_address: bool,
    /// The cycle-accurate flit-level NoC simulation (`run_flat_reference`)
    /// vs the analytic SoA fast path (`run_flat`), same grid.
    noc_reference_ns_per_query: f64,
    noc_flat_ns_per_query: f64,
    /// Reference time over fast-path time — > 1 means the fast path wins.
    noc_flat_speedup: f64,
    /// Buffer pairs the engine minted over the steady-state probe — the
    /// allocation-free invariant (stays at its warmup value).
    buffers_created: u64,
    flat_checksum: String,
    reference_checksum: String,
}

nova_serde::impl_serialize_struct!(FlatPathBench {
    grid,
    batch_slots,
    nested_ns_per_batch,
    flat_ns_per_batch,
    flat_speedup,
    binary_search_eval_ns_per_query,
    direct_index_eval_ns_per_query,
    direct_index_speedup,
    soa_eval_ns_per_query,
    soa_speedup,
    uses_dense_address,
    noc_reference_ns_per_query,
    noc_flat_ns_per_query,
    noc_flat_speedup,
    buffers_created,
    flat_checksum,
    reference_checksum,
});

/// One row of the functional op-graph study: the same fused-softmax
/// trace (one plan per attention row) served end-to-end by each
/// approximator kind on the real worker pool.
struct OpGraphPoint {
    kind: String,
    requests: u64,
    queries: u64,
    batches: u64,
    /// Two re-programs per fused batch (exp → recip → exp …), minus the
    /// boot batch per worker whose exp table is preloaded.
    table_switches: u64,
    switch_cycles: u64,
    /// Busiest worker's batch-latency cycles alone (no switch stalls).
    batch_makespan_cycles: u64,
    /// Busiest worker's total cycles, switch stalls included.
    makespan_cycles: u64,
    /// `100 · (makespan - batch_makespan) / batch_makespan` — the
    /// op-graph headline: ≈ 0 for NOVA (switches are free broadcasts),
    /// strictly positive for LUT/SDP hardware that rewrites banks
    /// between the exp and reciprocal stages of every batch.
    switch_overhead_pct: f64,
    /// Cycle-accounted softmax lanes per second at 1 GHz, stalls
    /// included.
    model_queries_per_second: f64,
    /// FNV-1a over the outputs — identical across kinds (every unit is
    /// bit-identical to its tables) and equal to the sequential
    /// op-graph reference's digest.
    checksum: String,
}

nova_serde::impl_serialize_struct!(OpGraphPoint {
    kind,
    requests,
    queries,
    batches,
    table_switches,
    switch_cycles,
    batch_makespan_cycles,
    makespan_cycles,
    switch_overhead_pct,
    model_queries_per_second,
    checksum,
});

/// One fused determinism probe: the op-graph trace served at a given
/// worker count, digested in request order.
struct FusedChecksum {
    workers: usize,
    checksum: String,
}

nova_serde::impl_serialize_struct!(FusedChecksum { workers, checksum });

/// The op-graph serving study: fused softmax as first-class plans.
struct OpGraphSection {
    /// Fused rows in the functional trace (one plan-request per row).
    rows: u64,
    /// Total softmax lanes across those rows.
    lanes: u64,
    /// The functional per-kind sweep on the real worker pool.
    functional: Vec<OpGraphPoint>,
    /// The analytic twin (`engine::evaluate_fused_softmax`) on the
    /// traffic generator's fused-attention trace, per kind.
    analytic: Vec<FusedSoftmaxReport>,
    /// Reference digest of the functional trace (sequential op-graph
    /// interpreter) — every functional checksum must equal it.
    reference_checksum: String,
    /// Fused serve digests per worker count — all identical, and the CI
    /// fused gate re-checks 1 vs 4 workers across processes.
    determinism: Vec<FusedChecksum>,
}

nova_serde::impl_serialize_struct!(OpGraphSection {
    rows,
    lanes,
    functional,
    analytic,
    reference_checksum,
    determinism,
});

/// Degraded-mode serving: the same fixed-work slate on the healthy
/// 4-shard pool and on the pool after a fault quarantined one shard,
/// plus the requeue cost the ledger attributed to the fault handling.
struct DegradedSection {
    /// Shards at build time (healthy pool size).
    workers: usize,
    /// Shards quarantined by the injected fault (the sweep injects 1).
    quarantined_shards: u64,
    /// In-flight units bounced back and re-run on healthy shards.
    requeued_units: u64,
    /// `100 × quarantined / workers` as the engine reports it.
    degraded_capacity_pct: f64,
    /// Engine-attributed quarantine + requeue cost (ns) for the fault
    /// serve — feed close, worker join, and unit re-admission.
    requeue_latency_ns: u64,
    /// Fixed-work wall-clock throughput of the healthy pool.
    healthy_queries_per_second: f64,
    /// The same fixed work on the quarantined (3-survivor) pool.
    degraded_queries_per_second: f64,
    /// `degraded / healthy` — expected near the capacity ratio when the
    /// host has a hardware thread per worker, near 1.0 when it doesn't.
    throughput_ratio: f64,
    /// Output digests: the degraded serve must stay bit-identical.
    healthy_checksum: String,
    degraded_checksum: String,
}

nova_serde::impl_serialize_struct!(DegradedSection {
    workers,
    quarantined_shards,
    requeued_units,
    degraded_capacity_pct,
    requeue_latency_ns,
    healthy_queries_per_second,
    degraded_queries_per_second,
    throughput_ratio,
    healthy_checksum,
    degraded_checksum,
});

/// The whole study, JSON-emittable for perf trending.
struct ServingBenchReport {
    host: String,
    approximator: String,
    batch_capacity: usize,
    hardware_threads: usize,
    streams_sweep: Vec<MultiStreamReport>,
    worker_sweep: Vec<MultiStreamReport>,
    offered_load: Vec<OfferedLoadPoint>,
    scaling: Vec<ScalingPoint>,
    table_switch: Vec<TableSwitchPoint>,
    flat_path: FlatPathBench,
    op_graph: OpGraphSection,
    degraded: DegradedSection,
}

nova_serde::impl_serialize_struct!(ServingBenchReport {
    host,
    approximator,
    batch_capacity,
    hardware_threads,
    streams_sweep,
    worker_sweep,
    offered_load,
    scaling,
    table_switch,
    flat_path,
    op_graph,
    degraded,
});

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let tech = TechModel::cmos22();
    let host = AcceleratorConfig::tpu_v4_like();
    if !json {
        println!(
            "Serving study on {} ({} routers × {} neurons = {}-query batches)\n",
            host.name,
            host.nova_routers,
            host.neurons_per_router,
            host.total_neurons()
        );
    }

    let streams_sweep = streams_sweep(&tech, &host, json);
    let worker_sweep = worker_sweep(&tech, &host, json);
    let offered_load = offered_load_sweep(&host, json);
    let scaling = scaling_sweep(json);
    let table_switch = table_switch_sweep(json);
    let flat_path = flat_path_bench(json);
    let op_graph = op_graph_section(&host, json);
    let degraded = degraded_section(json);

    let report = ServingBenchReport {
        host: host.name.to_string(),
        approximator: ApproximatorKind::NovaNoc.label().to_string(),
        batch_capacity: host.total_neurons(),
        hardware_threads: std::thread::available_parallelism().map_or(1, usize::from),
        streams_sweep,
        worker_sweep,
        offered_load,
        scaling,
        table_switch,
        flat_path,
        op_graph,
        degraded,
    };
    if json {
        println!("{}", report.to_json_string());
    } else {
        println!(
            "\nShape check: with ≥ 8 concurrent streams the coalesced scheduler keeps\n\
             occupancy above 90% and its aggregate queries/s beats naive per-stream\n\
             dispatch; the worker pool divides the non-linear makespan while the\n\
             output checksum stays bit-identical at every worker count, and the\n\
             flat FixedBatch + direct-index path beats nested + binary search."
        );
    }
}

/// Per-point measurement budget (ms) shared by the wall-clock sections.
fn measure_budget_ms() -> u64 {
    std::env::var("NOVA_SERVE_MEASURE_MS")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(300)
        .max(1)
}

/// Times `routine` for ~`budget_ms` after one warmup call; returns
/// nanoseconds per iteration.
fn time_ns_per_iter(budget_ms: u64, mut routine: impl FnMut()) -> f64 {
    routine(); // warmup
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed().as_millis() < u128::from(budget_ms) {
        routine();
        iters += 1;
    }
    start.elapsed().as_secs_f64() * 1e9 / iters as f64
}

/// Analytic: aggregate throughput vs concurrent stream count (1 worker).
fn streams_sweep(tech: &TechModel, host: &AcceleratorConfig, json: bool) -> Vec<MultiStreamReport> {
    let mut t = Table::new(
        "Multi-stream serving — mixed traffic, NOVA NoC, 1 worker",
        &[
            "Streams",
            "Requests",
            "Queries",
            "Batches (coalesced)",
            "Batches (naive)",
            "Occupancy (%)",
            "Queries/s (coalesced)",
            "Queries/s (naive)",
            "NL speedup",
            "Inferences/s",
        ],
    );
    let mut reports = Vec::new();
    for streams in [1usize, 2, 4, 8, 16, 32] {
        let censuses = TrafficMix::paper_default(streams).census_slate();
        let r = evaluate_multi_stream(tech, host, &censuses, ApproximatorKind::NovaNoc, 1)
            .expect("non-empty slate");
        t.row(&[
            format!("{streams}"),
            format!("{}", r.requests),
            format!("{}", r.total_queries),
            format!("{}", r.coalesced_batches),
            format!("{}", r.naive_batches),
            format!("{:.2}", r.batch_occupancy_pct),
            format!("{:.3e}", r.queries_per_second),
            format!("{:.3e}", r.naive_queries_per_second),
            format!("{:.3}x", r.nl_speedup),
            format!("{:.1}", r.inferences_per_second),
        ]);
        reports.push(r);
    }
    if !json {
        t.print();
    }
    reports
}

/// Analytic: non-linear makespan and throughput vs worker count at a
/// fixed 16-stream mix — per-worker counters rolled up.
fn worker_sweep(tech: &TechModel, host: &AcceleratorConfig, json: bool) -> Vec<MultiStreamReport> {
    let censuses = TrafficMix::paper_default(16).census_slate();
    let mut t = Table::new(
        "Worker-pool scaling — 16 streams, NOVA NoC (analytic makespan)",
        &[
            "Workers",
            "Batches",
            "NL cycles (serial)",
            "NL makespan",
            "Queries/s",
            "Speedup",
            "Energy (mJ)",
        ],
    );
    let mut reports = Vec::new();
    let mut base_qps = 0.0;
    for workers in [1usize, 2, 4, 8] {
        let r = evaluate_multi_stream(tech, host, &censuses, ApproximatorKind::NovaNoc, workers)
            .expect("non-empty slate");
        if workers == 1 {
            base_qps = r.queries_per_second;
        }
        t.row(&[
            format!("{workers}"),
            format!("{}", r.coalesced_batches),
            format!("{}", r.nl_cycles),
            format!("{}", r.makespan_nl_cycles),
            format!("{:.3e}", r.queries_per_second),
            format!("{:.2}x", r.queries_per_second / base_qps),
            format!("{:.4}", r.approximator_energy_mj),
        ]);
        reports.push(r);
    }
    if !json {
        t.print();
    }
    reports
}

/// Open-loop offered-load sweep: seeded interarrival gaps drive a
/// windowed admission model — a batch dispatches when full, or when the
/// oldest pending query has waited out the coalescing window.
fn offered_load_sweep(host: &AcceleratorConfig, json: bool) -> Vec<OfferedLoadPoint> {
    const STREAMS: usize = 8;
    /// Coalescing window: how long admission will hold a partial batch
    /// open waiting for more arrivals, in host cycles.
    const WINDOW_CYCLES: u64 = 100_000;
    let capacity = host.total_neurons() as u64;
    let mut t = Table::new(
        "Batch occupancy vs offered load — open-loop arrivals, 8 streams",
        &[
            "Mean gap (cycles)",
            "Offered (q/kcycle)",
            "Batches",
            "Padded slots",
            "Occupancy (%)",
        ],
    );
    let mut points = Vec::new();
    for mean_gap in [100u64, 1_000, 10_000, 100_000, 1_000_000] {
        let trace = TrafficMix::open_loop(STREAMS, mean_gap).generate();
        let horizon = trace.last().expect("non-empty trace").arrival_cycle.max(1);
        let total_queries: u64 = trace.iter().map(|r| r.census.approximator_queries()).sum();
        let mut batches = 0u64;
        let mut padded = 0u64;
        let mut pending = 0u64;
        let mut oldest_pending_arrival = 0u64;
        for request in &trace {
            // Window expiry: the oldest pending query gives up on
            // coalescing before this request arrives — dispatch partial.
            if pending > 0 && request.arrival_cycle > oldest_pending_arrival + WINDOW_CYCLES {
                batches += 1;
                padded += capacity - pending;
                pending = 0;
            }
            if pending == 0 {
                oldest_pending_arrival = request.arrival_cycle;
            }
            pending += request.census.approximator_queries();
            // Full batches dispatch immediately.
            let full = pending / capacity;
            batches += full;
            pending %= capacity;
            if full > 0 {
                // Everything older went out in the full batches, so any
                // remainder is this request's tail: its window restarts.
                oldest_pending_arrival = request.arrival_cycle;
            }
        }
        if pending > 0 {
            batches += 1;
            padded += capacity - pending;
        }
        let point = OfferedLoadPoint {
            mean_interarrival_cycles: mean_gap,
            offered_queries_per_kcycle: total_queries as f64 * 1e3 / horizon as f64,
            batches,
            padded_slots: padded,
            occupancy_pct: 100.0 * total_queries as f64 / (batches * capacity) as f64,
        };
        t.row(&[
            format!("{mean_gap}"),
            format!("{:.2}", point.offered_queries_per_kcycle),
            format!("{}", point.batches),
            format!("{}", point.padded_slots),
            format!("{:.2}", point.occupancy_pct),
        ]);
        points.push(point);
    }
    if !json {
        t.print();
    }
    points
}

/// Functional wall clock: the real thread pool serving seeded bursts,
/// swept over worker counts in **fixed-work** mode — every worker count
/// serves the identical slate the identical number of times (calibrated
/// once from the baseline point, or pinned via `NOVA_SERVE_CALLS`), so
/// wall-second ratios are honest speedups, with a determinism checksum
/// and a per-stage time breakdown from the engine's ledger.
fn scaling_sweep(json: bool) -> Vec<ScalingPoint> {
    let worker_counts: Vec<usize> = match std::env::var("NOVA_SERVE_WORKERS") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .ok()
            .filter(|&w| w > 0)
            .expect("NOVA_SERVE_WORKERS must be a positive integer")],
        Err(_) => vec![1, 2, 4],
    };
    let budget_ms = measure_budget_ms();
    let pinned_calls: Option<u64> = std::env::var("NOVA_SERVE_CALLS").ok().map(|s| {
        s.trim()
            .parse()
            .ok()
            .filter(|&c| c > 0)
            .expect("NOVA_SERVE_CALLS must be a positive integer")
    });
    let cache = TableCache::new();
    let gelu = TableKey::paper(Activation::Gelu);
    let exp = TableKey::paper(Activation::Exp);
    // 16 streams × 2000 queries over a 8×128 grid: 32_000 queries per
    // serve call in 32 coalesced 1024-slot batches — even streams on the
    // GELU table, odd streams on softmax-exp, so the determinism
    // checksum also gates mixed-activation tenancy. Queries extract
    // straight into fixed-point words — no intermediate f64 vector.
    let requests: Vec<ServingRequest> = (0..16)
        .map(|stream| {
            let mut inputs = Vec::new();
            query_words_into(
                stream as u64,
                2000,
                -6.0,
                6.0,
                Q4_12,
                Rounding::NearestEven,
                &mut inputs,
            );
            ServingRequest::new(stream, if stream % 2 == 0 { gelu } else { exp }, inputs)
        })
        .collect();
    let queries_per_call: u64 = requests.iter().map(|r| r.inputs.len() as u64).sum();
    let line = LineConfig::paper_default(8, 128);

    let mut t = Table::new(
        "Fixed-work worker scaling — PerCoreLut, 8×128 grid, 16 streams (GELU+exp mix)",
        &[
            "Workers",
            "Serve calls",
            "Queries",
            "Wall (s)",
            "Queries/s (wall)",
            "Speedup",
            "Admit (ms)",
            "Busy max (ms)",
            "Finalize (ms)",
            "Queries/s (model @1GHz)",
            "Checksum",
        ],
    );
    let mut points: Vec<ScalingPoint> = Vec::new();
    // Fixed-work calibration: the first point picks a serve-call count
    // that fills the budget, and every later point reuses it verbatim —
    // identical queries at every worker count.
    let mut serve_calls = pinned_calls;
    let mut base_wall = 0.0f64;
    for &workers in &worker_counts {
        let mut engine = ServingEngine::builder(ApproximatorKind::PerCoreLut)
            .line(line)
            .cache(&cache)
            .tables([gelu, exp])
            .shards(workers)
            .build()
            .expect("engine builds");
        // The determinism probe: one serve call, checksummed in request
        // order. Identical for every worker count. Also the warmup (it
        // mints the steady-state buffer pool) and, on the first point,
        // the calibration sample for the fixed-work call count.
        let probe_start = Instant::now();
        let outputs = engine.serve(&requests).expect("well-formed requests");
        let probe_seconds = probe_start.elapsed().as_secs_f64();
        let checksum = fnv1a_outputs(&outputs);
        let calls = *serve_calls.get_or_insert_with(|| {
            ((budget_ms as f64 / 1e3 / probe_seconds.max(1e-9)) as u64).clamp(1, 100_000)
        });
        // The timed window: exactly `calls` identical slates. The probe
        // above is outside it, so the stage ledger is snapshotted here.
        let stage_before = engine.stage_times();
        let start = Instant::now();
        for _ in 0..calls {
            engine.serve(&requests).expect("well-formed requests");
        }
        let wall = start.elapsed().as_secs_f64();
        let stage = {
            let after = engine.stage_times();
            nova::StageTimes {
                admit_ns: after.admit_ns - stage_before.admit_ns,
                worker_busy_ns: after.worker_busy_ns - stage_before.worker_busy_ns,
                worker_busy_max_ns: after.worker_busy_max_ns - stage_before.worker_busy_max_ns,
                finalize_ns: after.finalize_ns - stage_before.finalize_ns,
                requeue_ns: after.requeue_ns - stage_before.requeue_ns,
            }
        };
        let queries = calls * queries_per_call;
        let wall_qps = queries as f64 / wall;
        if points.is_empty() {
            base_wall = wall;
        }
        let speedup = if worker_counts[0] == 1 {
            base_wall / wall
        } else {
            0.0
        };
        let (verdict, skipped_reason) = judge_scaling_point(workers, speedup);
        let point = ScalingPoint {
            workers,
            serve_calls: calls,
            queries,
            wall_seconds: wall,
            wall_queries_per_second: wall_qps,
            speedup_vs_one_worker: speedup,
            model_queries_per_second: engine.queries_per_second(1.0),
            admit_ns: stage.admit_ns,
            worker_busy_ns: stage.worker_busy_ns,
            worker_busy_max_ns: stage.worker_busy_max_ns,
            finalize_ns: stage.finalize_ns,
            checksum: format!("{checksum:#018x}"),
            verdict,
            skipped_reason,
        };
        t.row(&[
            format!("{workers}"),
            format!("{calls}"),
            format!("{queries}"),
            format!("{wall:.3}"),
            format!("{wall_qps:.3e}"),
            if speedup > 0.0 {
                format!("{speedup:.2}x")
            } else {
                "-".to_string()
            },
            format!("{:.1}", stage.admit_ns as f64 / 1e6),
            format!("{:.1}", stage.worker_busy_max_ns as f64 / 1e6),
            format!("{:.1}", stage.finalize_ns as f64 / 1e6),
            format!("{:.3e}", point.model_queries_per_second),
            point.checksum.clone(),
        ]);
        points.push(point);
    }
    // Bit-identity across worker counts is a hard invariant, not a
    // statistic: every point in this run must hash identically.
    assert!(
        points.iter().all(|p| p.checksum == points[0].checksum),
        "serve checksums diverged across worker counts"
    );
    if !json {
        t.print();
        // The line the CI determinism smoke greps: same checksum for
        // every NOVA_SERVE_WORKERS value, or the run is nondeterministic.
        for point in &points {
            println!(
                "serve checksum [{} worker(s)]: {}",
                point.workers, point.checksum
            );
        }
        // Per-point verdicts: the JSON carries the same fields so a
        // trend reader never mistakes an under-provisioned runner's
        // sub-1.0 speedup for a regression.
        for point in &points {
            println!(
                "scaling verdict [{} worker(s)]: {}{}",
                point.workers,
                point.verdict,
                if point.skipped_reason.is_empty() {
                    String::new()
                } else {
                    format!(" ({})", point.skipped_reason)
                }
            );
        }
    }
    scaling_verdict(&points, json);
    points
}

/// Judges one fixed-work sweep point against the wall-clock scaling
/// floor (speedup > 1 over the measured 1-worker baseline). Wall time
/// can only improve when the host has a hardware thread per worker, so
/// under-provisioned runners record `"skipped"` with the reason instead
/// of a misleading `"missed"` — the `speedup_vs_one_worker` column
/// still carries the raw number either way.
fn judge_scaling_point(workers: usize, speedup: f64) -> (String, String) {
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    if workers == 1 && speedup > 0.0 {
        return ("baseline".into(), String::new());
    }
    if speedup <= 0.0 {
        return (
            "not-judged".into(),
            "restricted sweep: the 1-worker baseline was not measured in this run".into(),
        );
    }
    if threads < workers {
        return (
            "skipped".into(),
            format!(
                "under-provisioned host: {threads} hardware thread(s) for {workers} workers — \
                 wall-clock speedup is not meaningful"
            ),
        );
    }
    if speedup > 1.0 {
        ("met".into(), String::new())
    } else {
        ("missed".into(), String::new())
    }
}

/// Judges the fixed-work sweep against the scaling targets. The wall
/// clock only has room to improve when the host actually has spare
/// cores, so the hard floor (speedup > 1 at 4 workers) applies when
/// `available_parallelism ≥ 4`; the 2.5× design target upgrades from a
/// printed verdict to an assertion under `NOVA_SERVE_STRICT_SCALING=1`.
fn scaling_verdict(points: &[ScalingPoint], json: bool) {
    let four = points
        .iter()
        .find(|p| p.workers == 4 && p.speedup_vs_one_worker > 0.0);
    let Some(four) = four else {
        return; // restricted sweep: no measured 1-worker baseline
    };
    let threads = std::thread::available_parallelism().map_or(1, usize::from);
    let speedup = four.speedup_vs_one_worker;
    if !json {
        println!(
            "fixed-work speedup at 4 workers: {speedup:.2}x (target 2.5x) on {threads} hardware thread(s){}",
            if threads < 4 {
                " — under-provisioned host, wall-clock verdict not meaningful"
            } else if speedup >= 2.5 {
                " — target met"
            } else {
                " — target missed"
            }
        );
    }
    if threads >= 4 {
        assert!(
            speedup > 1.0,
            "4-worker fixed-work speedup {speedup:.2}x must beat the 1-worker baseline \
             on a {threads}-thread host"
        );
    }
    if std::env::var("NOVA_SERVE_STRICT_SCALING").is_ok_and(|v| v.trim() == "1") {
        assert!(
            speedup >= 2.5,
            "NOVA_SERVE_STRICT_SCALING: 4-worker fixed-work speedup {speedup:.2}x < 2.5x target"
        );
    }
}

/// Degraded-mode study: one injected bit-flip fault quarantines a shard
/// mid-slate, then the same fixed work runs on the healthy 4-shard pool
/// and on the 3-survivor pool — degraded throughput, the requeue cost
/// the engine attributed, and the bit-identity of the faulted slate.
fn degraded_section(json: bool) -> DegradedSection {
    const WORKERS: usize = 4;
    let budget_ms = measure_budget_ms();
    let cache = TableCache::new();
    let gelu = TableKey::paper(Activation::Gelu);
    let exp = TableKey::paper(Activation::Exp);
    let line = LineConfig::paper_default(8, 128);
    // The scaling sweep's mixed-tenancy shape at a lighter weight: 16
    // streams × 500 queries per serve call.
    let requests: Vec<ServingRequest> = (0..16)
        .map(|stream| {
            let mut inputs = Vec::new();
            query_words_into(
                80 + stream as u64,
                500,
                -6.0,
                6.0,
                Q4_12,
                Rounding::NearestEven,
                &mut inputs,
            );
            ServingRequest::new(stream, if stream % 2 == 0 { gelu } else { exp }, inputs)
        })
        .collect();
    let queries_per_call: u64 = requests.iter().map(|r| r.inputs.len() as u64).sum();

    // Healthy baseline: probe (warmup + checksum + calibration), then
    // the fixed-work timed window.
    let mut healthy = ServingEngine::builder(ApproximatorKind::PerCoreLut)
        .line(line)
        .cache(&cache)
        .tables([gelu, exp])
        .shards(WORKERS)
        .build()
        .expect("engine builds");
    let probe_start = Instant::now();
    let outputs = healthy.serve(&requests).expect("well-formed requests");
    let probe_seconds = probe_start.elapsed().as_secs_f64();
    let healthy_checksum = fnv1a_outputs(&outputs);
    let calls = ((budget_ms as f64 / 1e3 / probe_seconds.max(1e-9)) as u64).clamp(1, 100_000);
    let start = Instant::now();
    for _ in 0..calls {
        healthy.serve(&requests).expect("well-formed requests");
    }
    let healthy_qps = (calls * queries_per_call) as f64 / start.elapsed().as_secs_f64();

    // The fault serve: shard 0's second lookup evaluation comes back
    // with a flipped output bit, the canary trips, the shard is
    // quarantined and its in-flight units re-run on the survivors.
    let mut degraded = ServingEngine::builder(ApproximatorKind::PerCoreLut)
        .line(line)
        .cache(&cache)
        .tables([gelu, exp])
        .shards(WORKERS)
        .fault_check(FaultPolicy::new().inject(0, FaultInjector::bit_flip(1, 9)))
        .build()
        .expect("engine builds");
    let outputs = degraded
        .serve(&requests)
        .expect("degraded slate completes on the survivors");
    let degraded_checksum = fnv1a_outputs(&outputs);
    let stats = degraded.stats();
    let requeue_latency_ns = degraded.stage_times().requeue_ns;
    assert_eq!(
        degraded_checksum, healthy_checksum,
        "quarantined serve diverged from the healthy digest"
    );
    assert_eq!(stats.quarantined_shards, 1, "exactly one shard quarantined");
    // The same fixed work on the quarantined pool (3 survivors).
    let start = Instant::now();
    for _ in 0..calls {
        degraded.serve(&requests).expect("well-formed requests");
    }
    let degraded_qps = (calls * queries_per_call) as f64 / start.elapsed().as_secs_f64();

    let section = DegradedSection {
        workers: WORKERS,
        quarantined_shards: stats.quarantined_shards,
        requeued_units: stats.requeued_units,
        degraded_capacity_pct: stats.degraded_capacity_pct,
        requeue_latency_ns,
        healthy_queries_per_second: healthy_qps,
        degraded_queries_per_second: degraded_qps,
        throughput_ratio: degraded_qps / healthy_qps,
        healthy_checksum: format!("{healthy_checksum:#018x}"),
        degraded_checksum: format!("{degraded_checksum:#018x}"),
    };
    if !json {
        let mut t = Table::new(
            "Degraded-mode serving — 1 of 4 shards quarantined, 8×128 grid, 16 streams",
            &[
                "Pool",
                "Shards",
                "Serve calls",
                "Queries/s (wall)",
                "Requeued units",
                "Requeue (ns)",
                "Checksum",
            ],
        );
        t.row(&[
            "healthy".into(),
            format!("{WORKERS}"),
            format!("{calls}"),
            format!("{healthy_qps:.3e}"),
            "0".into(),
            "0".into(),
            section.healthy_checksum.clone(),
        ]);
        t.row(&[
            "quarantined".into(),
            format!("{}", WORKERS as u64 - section.quarantined_shards),
            format!("{calls}"),
            format!("{degraded_qps:.3e}"),
            format!("{}", section.requeued_units),
            format!("{requeue_latency_ns}"),
            section.degraded_checksum.clone(),
        ]);
        t.print();
        // The lines the CI degraded smoke greps.
        println!(
            "degraded serve checksum equal: {} [{} quarantined of {WORKERS}]",
            section.degraded_checksum == section.healthy_checksum,
            section.quarantined_shards
        );
        println!(
            "degraded capacity: {:.1}% lost, requeued {} unit(s), requeue latency {} ns, \
             throughput ratio {:.2}",
            section.degraded_capacity_pct,
            section.requeued_units,
            requeue_latency_ns,
            section.throughput_ratio
        );
    }
    section
}

/// The table-switch penalty study: every approximator kind serves the
/// same mixed GELU+exp trace (interleaved tenants, repeated slates so
/// workers keep re-programming); NOVA's makespan stays the pure batch
/// latency while LUT/SDP makespans grow by `table_switch_cycles` per
/// re-program.
fn table_switch_sweep(json: bool) -> Vec<TableSwitchPoint> {
    const ROUTERS: usize = 4;
    const NEURONS: usize = 32;
    let cache = TableCache::new();
    let gelu = TableKey::paper(Activation::Gelu);
    let exp = TableKey::paper(Activation::Exp);
    // 8 tenants × 333 queries, alternating activation per stream, served
    // 4 times: every worker switches tables on every slate after the
    // first run warms its programmed table.
    let requests: Vec<ServingRequest> = (0..8)
        .map(|stream| {
            let mut inputs = Vec::new();
            query_words_into(
                40 + stream as u64,
                333,
                -6.0,
                6.0,
                Q4_12,
                Rounding::NearestEven,
                &mut inputs,
            );
            ServingRequest::new(stream, if stream % 2 == 0 { gelu } else { exp }, inputs)
        })
        .collect();
    let mut t = Table::new(
        "Table-switch penalty — 2-activation mixed trace, 4×32 grid, 2 workers",
        &[
            "Kind",
            "Batches",
            "Switches",
            "Switch cycles",
            "Makespan (batch)",
            "Makespan (total)",
            "Overhead (%)",
            "Queries/s (model @1GHz)",
        ],
    );
    let mut points = Vec::new();
    for kind in ApproximatorKind::all() {
        let mut engine = ServingEngine::builder(kind)
            .line(LineConfig::paper_default(ROUTERS, NEURONS))
            .cache(&cache)
            .tables([gelu, exp])
            .shards(2)
            .build()
            .expect("engine builds");
        let outputs = engine.serve(&requests).expect("well-formed trace");
        assert_eq!(
            outputs,
            engine.serve_reference(&requests),
            "{kind:?} mixed-activation serve must match the reference"
        );
        let checksum = fnv1a_outputs(&outputs);
        for _ in 0..3 {
            engine.serve(&requests).expect("well-formed trace");
        }
        let stats = engine.stats();
        let batch_makespan = engine
            .worker_loads()
            .iter()
            .map(|l| l.cycles)
            .max()
            .unwrap_or(0);
        let makespan = engine.makespan_cycles();
        let point = TableSwitchPoint {
            kind: format!("{kind:?}"),
            batches: stats.batches,
            table_switches: stats.table_switches,
            switch_cycles: stats.switch_cycles,
            batch_makespan_cycles: batch_makespan,
            makespan_cycles: makespan,
            switch_overhead_pct: if batch_makespan == 0 {
                0.0
            } else {
                100.0 * (makespan - batch_makespan) as f64 / batch_makespan as f64
            },
            model_queries_per_second: engine.queries_per_second(1.0),
            checksum: format!("{checksum:#018x}"),
        };
        t.row(&[
            point.kind.clone(),
            format!("{}", point.batches),
            format!("{}", point.table_switches),
            format!("{}", point.switch_cycles),
            format!("{}", point.batch_makespan_cycles),
            format!("{}", point.makespan_cycles),
            format!("{:.2}", point.switch_overhead_pct),
            format!("{:.3e}", point.model_queries_per_second),
        ]);
        points.push(point);
    }
    // The headline shape the paper claims: re-programming is free on the
    // broadcast NoC and a real stall everywhere else.
    let nova = &points[0];
    assert_eq!(nova.switch_cycles, 0, "NOVA switches must be free");
    assert_eq!(nova.makespan_cycles, nova.batch_makespan_cycles);
    assert!(
        points[1..].iter().all(|p| p.switch_cycles > 0),
        "LUT/SDP kinds must pay switch stalls"
    );
    if !json {
        t.print();
        println!(
            "table-switch overhead: NOVA {:.2}% vs worst baseline {:.2}%",
            nova.switch_overhead_pct,
            points[1..]
                .iter()
                .map(|p| p.switch_overhead_pct)
                .fold(0.0f64, f64::max)
        );
    }
    points
}

/// The flat-datapath study: contiguous `FixedBatch` + `lookup_batch_into`
/// vs nested `Vec<Vec<_>>` batches on a real vector unit, direct-indexed
/// vs binary-search table eval, and the flat-vs-reference bit-identity
/// checksums the CI smoke compares.
fn flat_path_bench(json: bool) -> FlatPathBench {
    const ROUTERS: usize = 8;
    const NEURONS: usize = 128;
    let budget_ms = measure_budget_ms();
    let cache = TableCache::new();
    let table = cache
        .get_or_fit(TableKey::paper(Activation::Gelu))
        .expect("paper table fits");

    // One full grid of seeded queries, in both representations.
    let mut words = Vec::new();
    query_words_into(
        7,
        ROUTERS * NEURONS,
        -6.0,
        6.0,
        Q4_12,
        Rounding::NearestEven,
        &mut words,
    );
    let nested: Vec<Vec<Fixed>> = words.chunks(NEURONS).map(<[Fixed]>::to_vec).collect();
    let mut flat = FixedBatch::new(ROUTERS, NEURONS, Fixed::zero(Q4_12));
    flat.as_mut_slice().copy_from_slice(&words);

    let line = LineConfig::paper_default(ROUTERS, NEURONS);
    let mut unit = build(ApproximatorKind::PerCoreLut, line, &table).expect("unit builds");
    let nested_ns = time_ns_per_iter(budget_ms, || {
        std::hint::black_box(unit.lookup_batch(std::hint::black_box(&nested)).unwrap());
    });
    let mut out = FixedBatch::empty();
    let flat_ns = time_ns_per_iter(budget_ms, || {
        unit.lookup_batch_into(std::hint::black_box(&flat), &mut out)
            .unwrap();
        std::hint::black_box(&out);
    });

    // Table eval, three kernel generations: the retired per-element path
    // (format assert + clamp + re-clamping binary-search address + MAC),
    // the retired AoS direct-index loop (dense address, then a 32-byte
    // `SlopeBias` gather per query), and the shipped SoA raw-word batch
    // kernel (`eval_into`). All three are bit-identical by the
    // full-raw-word sweep test; only the layout differs.
    let n = words.len() as f64;
    let binary_ns = time_ns_per_iter(budget_ms, || {
        let mut acc = 0i64;
        for &x in std::hint::black_box(&words) {
            assert_eq!(x.format(), table.format(), "format check per element");
            let xc = table.clamp(x);
            let addr = {
                let xcc = table.clamp(xc); // the legacy double clamp
                table
                    .breakpoints()
                    .partition_point(|d| d.raw() <= xcc.raw())
            };
            let pair = table.pairs()[addr];
            acc ^= pair
                .slope
                .mul_add(xc, pair.bias, table.rounding())
                .unwrap()
                .raw();
        }
        std::hint::black_box(acc);
    }) / n;
    let direct_ns = time_ns_per_iter(budget_ms, || {
        let mut acc = 0i64;
        assert!(
            words.iter().all(|x| x.format() == table.format()),
            "hoisted format check"
        );
        for &x in std::hint::black_box(&words) {
            let xc = table.clamp(x);
            let pair = table.pairs()[table.lookup_address_clamped(xc)];
            acc ^= Fixed::mul_add_raw(
                pair.slope.raw(),
                xc.raw(),
                pair.bias.raw(),
                table.format(),
                table.rounding(),
            );
        }
        std::hint::black_box(acc);
    }) / n;
    let mut eval_out = Vec::new();
    let soa_ns = time_ns_per_iter(budget_ms, || {
        table.eval_into(std::hint::black_box(&words), &mut eval_out);
        std::hint::black_box(&eval_out);
    }) / n;

    // The NoC simulation's flat path: the analytic SoA fast path
    // (`run_flat`) vs the cycle-accurate flit-level reference it is
    // tested bit-identical against, on the same 8×128 NOVA line.
    let mut sim = nova_noc::sim::BroadcastSim::new(line, &table).expect("sim builds");
    let mut sim_out = vec![Fixed::zero(Q4_12); words.len()];
    let noc_reference_ns = time_ns_per_iter(budget_ms, || {
        let stats = sim
            .run_flat_reference(std::hint::black_box(&words), &mut sim_out)
            .expect("well-formed batch");
        std::hint::black_box((&sim_out, stats));
    }) / n;
    let noc_flat_ns = time_ns_per_iter(budget_ms, || {
        let stats = sim
            .run_flat(std::hint::black_box(&words), &mut sim_out)
            .expect("well-formed batch");
        std::hint::black_box((&sim_out, stats));
    }) / n;

    // Bit-identity gate: the flat engine pipeline vs the sequential
    // reference, on a multi-stream probe slate with a ragged tail.
    let probe: Vec<ServingRequest> = (0..5)
        .map(|stream| {
            let mut inputs = Vec::new();
            query_words_into(
                100 + stream as u64,
                777,
                -6.0,
                6.0,
                Q4_12,
                Rounding::NearestEven,
                &mut inputs,
            );
            ServingRequest::new(stream, TableKey::paper(Activation::Gelu), inputs)
        })
        .collect();
    let mut engine = ServingEngine::builder(ApproximatorKind::PerCoreLut)
        .line(line)
        .cache(&cache)
        .table(TableKey::paper(Activation::Gelu))
        .shards(2)
        .build()
        .expect("engine builds");
    let flat_outputs = engine.serve(&probe).expect("well-formed probe");
    // Steady-state probe: more slates must not mint buffers.
    for _ in 0..3 {
        engine.serve(&probe).expect("well-formed probe");
    }
    let reference_outputs = engine.serve_reference(&probe);
    let bench = FlatPathBench {
        grid: format!("{ROUTERS}x{NEURONS}"),
        batch_slots: ROUTERS * NEURONS,
        nested_ns_per_batch: nested_ns,
        flat_ns_per_batch: flat_ns,
        flat_speedup: nested_ns / flat_ns,
        binary_search_eval_ns_per_query: binary_ns,
        direct_index_eval_ns_per_query: direct_ns,
        direct_index_speedup: binary_ns / direct_ns,
        soa_eval_ns_per_query: soa_ns,
        soa_speedup: direct_ns / soa_ns,
        uses_dense_address: table.uses_dense_address(),
        noc_reference_ns_per_query: noc_reference_ns,
        noc_flat_ns_per_query: noc_flat_ns,
        noc_flat_speedup: noc_reference_ns / noc_flat_ns,
        buffers_created: engine.buffers_created(),
        flat_checksum: format!("{:#018x}", fnv1a_outputs(&flat_outputs)),
        reference_checksum: format!("{:#018x}", fnv1a_outputs(&reference_outputs)),
    };
    if !json {
        let mut t = Table::new(
            "Flat zero-copy datapath — PerCoreLut, 8×128 grid",
            &["Path", "ns/batch", "ns/query (eval)", "Speedup"],
        );
        t.row(&[
            "nested + binary search".into(),
            format!("{nested_ns:.0}"),
            format!("{binary_ns:.2}"),
            "1.00x".into(),
        ]);
        t.row(&[
            "flat + AoS direct index".into(),
            format!("{flat_ns:.0}"),
            format!("{direct_ns:.2}"),
            format!(
                "{:.2}x batch / {:.2}x eval",
                bench.flat_speedup, bench.direct_index_speedup
            ),
        ]);
        t.row(&[
            "flat + SoA raw-word".into(),
            format!("{flat_ns:.0}"),
            format!("{soa_ns:.2}"),
            format!("{:.2}x eval vs AoS", bench.soa_speedup),
        ]);
        t.print();
        println!(
            "dense-address eval path: {} (span {} entries, cap {})",
            bench.uses_dense_address,
            table.dense_address_entries(),
            nova_approx::DENSE_ADDR_MAX_ENTRIES
        );
        let mut noc = Table::new(
            "NoC sim flat path — BroadcastSim, 8×128 grid",
            &["Path", "ns/query", "Speedup"],
        );
        noc.row(&[
            "flit-level reference".into(),
            format!("{noc_reference_ns:.2}"),
            "1.00x".into(),
        ]);
        noc.row(&[
            "analytic SoA fast path".into(),
            format!("{noc_flat_ns:.2}"),
            format!("{:.2}x", bench.noc_flat_speedup),
        ]);
        noc.print();
        // The lines the CI flat-vs-reference smoke greps.
        println!("flat serve checksum: {}", bench.flat_checksum);
        println!("reference serve checksum: {}", bench.reference_checksum);
        println!(
            "steady-state buffer pairs minted: {} (constant across slates)",
            bench.buffers_created
        );
    }
    bench
}

/// The op-graph serving study: the fused softmax pipeline
/// (exp → row reduce → reciprocal → scale) as one plan per attention
/// row, served end-to-end by every approximator kind — each fused batch
/// re-programs the unit between the exp and reciprocal tables, free on
/// the NOVA NoC and a bank rewrite on LUT/SDP hardware — plus the
/// analytic twin on the traffic generator's fused-attention trace and
/// the per-worker-count fused determinism checksums the CI fused gate
/// compares.
fn op_graph_section(host: &AcceleratorConfig, json: bool) -> OpGraphSection {
    const ROUTERS: usize = 8;
    const NEURONS: usize = 128;
    let cache = TableCache::new();
    let plan = Plan::fused_softmax(Q4_12, Rounding::NearestEven);
    // 48 ragged attention rows (32..=255 lanes on a 1024-slot grid):
    // enough rows that every worker sees several batches and the
    // exp↔recip re-programming ledger has real weight.
    let requests: Vec<ServingRequest> = (0..48)
        .map(|row| {
            let mut inputs = Vec::new();
            query_words_into(
                200 + row as u64,
                32 + (row * 37) % 224,
                -6.0,
                6.0,
                Q4_12,
                Rounding::NearestEven,
                &mut inputs,
            );
            ServingRequest::new(row, plan.clone(), inputs)
        })
        .collect();
    let rows = requests.len() as u64;
    let lanes: u64 = requests.iter().map(|r| r.inputs.len() as u64).sum();

    let mut t = Table::new(
        "Op-graph fused softmax — 48 ragged rows, 8×128 grid, 2 workers",
        &[
            "Kind",
            "Batches",
            "Switches",
            "Switch cycles",
            "Makespan (batch)",
            "Makespan (total)",
            "Overhead (%)",
            "Lanes/s (model @1GHz)",
        ],
    );
    let mut reference_checksum = String::new();
    let mut functional = Vec::new();
    for kind in ApproximatorKind::all() {
        let mut engine = ServingEngine::builder(kind)
            .line(LineConfig::paper_default(ROUTERS, NEURONS))
            .cache(&cache)
            .plan(&plan)
            .shards(2)
            .build()
            .expect("engine builds");
        let outputs = engine.serve(&requests).expect("well-formed fused trace");
        let reference = engine.serve_reference(&requests);
        assert_eq!(
            outputs, reference,
            "{kind:?} fused serve must match the sequential op-graph reference"
        );
        if reference_checksum.is_empty() {
            reference_checksum = format!("{:#018x}", fnv1a_outputs(&reference));
        }
        let checksum = format!("{:#018x}", fnv1a_outputs(&outputs));
        assert_eq!(
            checksum, reference_checksum,
            "{kind:?} fused outputs must digest identically to the reference"
        );
        for _ in 0..3 {
            engine.serve(&requests).expect("well-formed fused trace");
        }
        let stats = engine.stats();
        let batch_makespan = engine
            .worker_loads()
            .iter()
            .map(|l| l.cycles)
            .max()
            .unwrap_or(0);
        let makespan = engine.makespan_cycles();
        let point = OpGraphPoint {
            kind: format!("{kind:?}"),
            requests: stats.requests,
            queries: stats.queries,
            batches: stats.batches,
            table_switches: stats.table_switches,
            switch_cycles: stats.switch_cycles,
            batch_makespan_cycles: batch_makespan,
            makespan_cycles: makespan,
            switch_overhead_pct: if batch_makespan == 0 {
                0.0
            } else {
                100.0 * (makespan - batch_makespan) as f64 / batch_makespan as f64
            },
            model_queries_per_second: engine.queries_per_second(1.0),
            checksum,
        };
        t.row(&[
            point.kind.clone(),
            format!("{}", point.batches),
            format!("{}", point.table_switches),
            format!("{}", point.switch_cycles),
            format!("{}", point.batch_makespan_cycles),
            format!("{}", point.makespan_cycles),
            format!("{:.2}", point.switch_overhead_pct),
            format!("{:.3e}", point.model_queries_per_second),
        ]);
        functional.push(point);
    }
    // The acceptance shape: fused plans switch tables constantly (exp →
    // recip inside every batch), and only the broadcast NoC rides them
    // for free.
    let nova = &functional[0];
    assert!(nova.table_switches > 0, "fused plans must re-program");
    assert_eq!(nova.switch_cycles, 0, "NOVA fused switches must be free");
    assert_eq!(nova.makespan_cycles, nova.batch_makespan_cycles);
    assert!(
        functional[1..]
            .iter()
            .all(|p| p.switch_cycles > 0 && p.switch_overhead_pct > 0.0),
        "LUT/SDP kinds must pay fused switch stalls"
    );

    // Analytic twin: the traffic generator's fused-attention trace
    // (odd streams are fused-softmax pipeline tenants) through
    // `evaluate_fused_softmax`, per kind.
    let trace_rows = TrafficMix::fused_attention(8).fused_rows_slate();
    let analytic: Vec<FusedSoftmaxReport> = ApproximatorKind::all()
        .into_iter()
        .map(|kind| {
            evaluate_fused_softmax(host, &trace_rows, kind, 2).expect("non-empty fused trace")
        })
        .collect();
    assert_eq!(analytic[0].switch_cycles, 0, "analytic NOVA switches free");
    assert!(
        analytic[1..].iter().all(|r| r.switch_overhead_pct > 0.0),
        "analytic LUT/SDP overhead must be positive"
    );

    // Fused determinism: the same trace at every worker count must
    // digest identically (and identically to the reference). The CI
    // fused gate re-runs this with NOVA_SERVE_WORKERS=1 and =4 and
    // compares the printed lines across processes.
    let worker_counts: Vec<usize> = match std::env::var("NOVA_SERVE_WORKERS") {
        Ok(s) => vec![s
            .trim()
            .parse()
            .ok()
            .filter(|&w| w > 0)
            .expect("NOVA_SERVE_WORKERS must be a positive integer")],
        Err(_) => vec![1, 2, 4],
    };
    let mut determinism = Vec::new();
    for &workers in &worker_counts {
        let mut engine = ServingEngine::builder(ApproximatorKind::NovaNoc)
            .line(LineConfig::paper_default(ROUTERS, NEURONS))
            .cache(&cache)
            .plan(&plan)
            .shards(workers)
            .build()
            .expect("engine builds");
        let outputs = engine.serve(&requests).expect("well-formed fused trace");
        let checksum = format!("{:#018x}", fnv1a_outputs(&outputs));
        assert_eq!(
            checksum, reference_checksum,
            "fused serve at {workers} worker(s) diverged from the reference"
        );
        determinism.push(FusedChecksum { workers, checksum });
    }
    if !json {
        t.print();
        println!(
            "op-graph switch overhead: NOVA {:.2}% vs worst baseline {:.2}%",
            nova.switch_overhead_pct,
            functional[1..]
                .iter()
                .map(|p| p.switch_overhead_pct)
                .fold(0.0f64, f64::max)
        );
        // The lines the CI fused determinism gate greps.
        for probe in &determinism {
            println!(
                "fused serve checksum [{} worker(s)]: {}",
                probe.workers, probe.checksum
            );
        }
    }
    OpGraphSection {
        rows,
        lanes,
        functional,
        analytic,
        reference_checksum,
        determinism,
    }
}

/// FNV-1a over every output word in request order: a stable, order-
/// sensitive digest of a serve call's results.
fn fnv1a_outputs(outputs: &[Vec<Fixed>]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for out in outputs {
        for y in out {
            for byte in y.raw().to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
    }
    hash
}
