//! Per-layer execution timeline and the paper's §I motivation claim:
//! "non-linear operations can consume up to nearly 40% of the runtime in
//! models with significant attention layers".
//!
//! The claim holds when the non-linear operators are *serialized* behind a
//! narrow vector unit; a full-width approximator (LUT or NOVA) shrinks the
//! share to noise. This binary shows both regimes.

use nova::timeline::{layer_timeline, totals};
use nova::ApproximatorKind;
use nova_accel::AcceleratorConfig;
use nova_bench::table::Table;
use nova_workloads::bert::BertConfig;

fn main() {
    let cfg = AcceleratorConfig::tpu_v4_like();
    let model = BertConfig::roberta_base();
    let seq = 1024;

    // Detailed phase breakdown for one layer.
    let phases = layer_timeline(&cfg, &model, seq, ApproximatorKind::NovaNoc);
    let mut t = Table::new(
        format!(
            "One {} encoder layer on {} (seq {seq}) — NOVA",
            model.name, cfg.name
        ),
        &["Phase", "Cycles"],
    );
    for p in &phases {
        if p.cycles > 0 {
            t.row(&[p.label.clone(), p.cycles.to_string()]);
        }
    }
    t.print();
    let (mm, nl, sw) = totals(&phases);
    println!(
        "  totals: matmul {mm} cycles, non-linear {nl} cycles, table switches {sw} cycles\n\
         → non-linear share with a full-width approximator: {:.1}%",
        100.0 * nl as f64 / (mm + nl + sw) as f64
    );

    // §I claim: with the approximator serialized through a narrow unit
    // (e.g. a 32-lane vector unit, as on CPUs/early NPUs), the share
    // explodes.
    let mut t2 = Table::new(
        "§I motivation — non-linear runtime share vs vector-unit width (RoBERTa, seq 1024)",
        &["Vector-unit lanes", "Non-linear share of runtime (%)"],
    );
    for lanes in [32u64, 128, 512, 1024u64] {
        let queries: u64 = phases
            .iter()
            .filter_map(|p| match p.kind {
                nova::timeline::PhaseKind::NonLinear { queries } => Some(queries),
                _ => None,
            })
            .sum();
        let nl_cycles = queries.div_ceil(lanes) * 2;
        let share = 100.0 * nl_cycles as f64 / (mm + nl_cycles) as f64;
        t2.row(&[lanes.to_string(), format!("{share:.1}")]);
    }
    t2.print();
    println!(
        "  The paper's \"up to ~40% of runtime\" regime is the narrow-unit row;\n\
         NOVA's full-width overlay ({} neurons here) removes the bottleneck.",
        cfg.total_neurons()
    );
}
