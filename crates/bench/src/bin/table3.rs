//! Table III: hardware overhead of NOVA versus LUT-based approximators on
//! top of each host accelerator, plus the §V.C REACT overhead percentages.

use nova::engine::{approximator_power_mw, ApproximatorKind};
use nova::NovaOverlay;
use nova_accel::AcceleratorConfig;
use nova_bench::table::{vs_paper, Table};
use nova_synth::{units, LutSharing, TechModel};

struct PaperRow {
    approximator: &'static str,
    area_mm2: f64,
    power_mw: f64,
}

fn main() {
    let tech = TechModel::cmos22();
    let mut t = Table::new(
        "Table III — hardware overhead of NOVA vs LUT-based approximators",
        &[
            "Accelerator",
            "Hardware Approximator",
            "Area (mm²)",
            "Power (mW)",
        ],
    );

    let paper: &[(&str, &[PaperRow])] = &[
        (
            "REACT",
            &[
                PaperRow {
                    approximator: "naive LUT (per-neuron LUT)",
                    area_mm2: 6.058,
                    power_mw: 289.08,
                },
                PaperRow {
                    approximator: "naive LUT (per-core LUT)",
                    area_mm2: 3.226,
                    power_mw: 292.57,
                },
                PaperRow {
                    approximator: "NOVA NoC",
                    area_mm2: 1.817,
                    power_mw: 117.51,
                },
            ],
        ),
        (
            "TPU v3-like",
            &[
                PaperRow {
                    approximator: "naive LUT (per-neuron LUT)",
                    area_mm2: 1.267,
                    power_mw: 382.468,
                },
                PaperRow {
                    approximator: "naive LUT (per-core LUT)",
                    area_mm2: 1.004,
                    power_mw: 862.472,
                },
                PaperRow {
                    approximator: "NOVA NoC",
                    area_mm2: 0.414,
                    power_mw: 103.78,
                },
            ],
        ),
        (
            "TPU v4-like",
            &[
                PaperRow {
                    approximator: "naive LUT (per-neuron LUT)",
                    area_mm2: 2.534,
                    power_mw: 764.936,
                },
                PaperRow {
                    approximator: "naive LUT (per-core LUT)",
                    area_mm2: 2.008,
                    power_mw: 1724.94,
                },
                PaperRow {
                    approximator: "NOVA NoC",
                    area_mm2: 0.82,
                    power_mw: 184.83,
                },
            ],
        ),
        (
            "Jetson Xavier NX",
            &[
                PaperRow {
                    approximator: "NVDLA SDP",
                    area_mm2: 0.1382,
                    power_mw: 48.867,
                },
                PaperRow {
                    approximator: "NOVA NoC",
                    area_mm2: 0.0276,
                    power_mw: 1.294,
                },
            ],
        ),
    ];

    for (host, rows) in paper {
        let cfg = match *host {
            "REACT" => AcceleratorConfig::react(),
            "TPU v3-like" => AcceleratorConfig::tpu_v3_like(),
            "TPU v4-like" => AcceleratorConfig::tpu_v4_like(),
            _ => AcceleratorConfig::jetson_xavier_nx(),
        };
        let overlay = NovaOverlay::new(&cfg);
        for row in *rows {
            let (area, power) = match row.approximator {
                "NOVA NoC" => {
                    let ap = overlay.area_power(&tech);
                    (ap.area_mm2, ap.power_mw)
                }
                "naive LUT (per-neuron LUT)" => {
                    let ap = overlay.lut_area_power(&tech, LutSharing::PerNeuron);
                    (ap.area_mm2, ap.power_mw)
                }
                "naive LUT (per-core LUT)" => {
                    let ap = overlay.lut_area_power(&tech, LutSharing::PerCore);
                    (ap.area_mm2, ap.power_mw)
                }
                _ => {
                    let unit = units::nvdla_sdp(&tech, cfg.neurons_per_router);
                    let area = unit.area_um2 * cfg.nova_routers as f64 * 1e-6;
                    let power = approximator_power_mw(&tech, &cfg, ApproximatorKind::NvdlaSdp);
                    (area, power)
                }
            };
            t.row(&[
                (*host).to_string(),
                row.approximator.to_string(),
                vs_paper(area, row.area_mm2, 4),
                vs_paper(power, row.power_mw, 2),
            ]);
        }
    }
    t.print();

    // §V.C: overhead as % of the REACT die.
    let react = AcceleratorConfig::react();
    let overlay = NovaOverlay::new(&react);
    let die = react.die_area_mm2.expect("REACT reports a die area");
    let pct = |mm2: f64| 100.0 * mm2 / die;
    println!("\n§V.C REACT area overheads (% of ~{die:.1} mm² die):");
    println!(
        "  per-neuron LUT : {:>6.2}%   (paper 31%)",
        pct(overlay
            .lut_area_power(&tech, LutSharing::PerNeuron)
            .area_mm2)
    );
    println!(
        "  per-core LUT   : {:>6.2}%   (paper 19.2%)",
        pct(overlay.lut_area_power(&tech, LutSharing::PerCore).area_mm2)
    );
    println!(
        "  NOVA NoC       : {:>6.2}%   (paper 9.11%)",
        overlay.area_overhead_pct(&tech).expect("die area known")
    );
}
