//! Table I: post-approximation accuracy comparison.
//!
//! Paper: six models, exact vs approximated softmax, 16 breakpoints (8 for
//! CIFAR-10), negligible accuracy change. The reproduction substitutes
//! synthetic classification tasks (see DESIGN.md) and reports exact
//! accuracy, approximated accuracy and prediction agreement through the
//! full fixed-point PWL softmax pipeline.

use nova_bench::table::Table;
use nova_workloads::{models::TableOneModel, synthetic};

fn main() {
    // Paper's published (exact, approx) accuracies per row, for context.
    let paper: [(f64, f64); 6] = [
        (97.31, 97.31),
        (63.44, 63.44),
        (68.56, 68.56),
        (88.30, 88.30),
        (89.30, 89.30),
        (94.60, 94.40),
    ];
    let mut t = Table::new(
        "Table I — post-approximation accuracy (synthetic substitution)",
        &[
            "Model",
            "Dataset",
            "Breakpoints",
            "Acc (exact softmax) %",
            "Acc (approx softmax) %",
            "Agreement %",
            "Paper exact→approx",
        ],
    );
    for (model, &(pe, pa)) in TableOneModel::all().iter().zip(&paper) {
        let row = synthetic::evaluate_model(model, 20_000, 0xD47E_2024)
            .expect("table construction cannot fail for valid models");
        t.row(&[
            row.name.clone(),
            row.dataset.clone(),
            row.breakpoints.to_string(),
            format!("{:.2}", row.accuracy_exact),
            format!("{:.2}", row.accuracy_approx),
            format!("{:.2}", row.agreement),
            format!("{pe:.2} → {pa:.2}"),
        ]);
    }
    t.print();
    println!(
        "\nClaim under test: the PWL-approximated softmax does not change model\n\
         predictions (accuracy delta ≈ 0, agreement ≈ 100%)."
    );
}
