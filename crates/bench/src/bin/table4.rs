//! Table IV: single-approximator-unit comparison against NACU and I-BERT.
//!
//! NACU (28 nm) and I-BERT (22 nm) numbers are literature constants from
//! the paper; the NOVA row is produced by the calibrated model — one
//! neuron slice of a 16-neuron router at the Table IV operating point.

use nova_bench::table::{vs_paper, Table};
use nova_synth::{units, TechModel};

fn main() {
    let tech = TechModel::cmos22();
    // One NOVA approximator slice: a 16-neuron router's per-neuron share
    // at NVDLA-like pitch, evaluated at the low-duty operating point the
    // paper's unit row reflects (REACT/NVDLA ≈ 0.046 mW/neuron).
    let router = units::nova_router(&tech, 16, 16, 0.3);
    let area_per_neuron = router.area_um2 / 16.0;
    let power_per_neuron = router.power_mw(&tech, 1.4, 2.8, 0.1) / 16.0;

    let mut t = Table::new(
        "Table IV — hardware overhead of NOVA vs NACU / I-BERT",
        &[
            "Non-linear approximator",
            "Tech node",
            "Area (µm²)",
            "Power (mW)",
        ],
    );
    t.row(&[
        "NACU [literature]".into(),
        "28 nm".into(),
        "9671".into(),
        "2.159 (sigmoid), 1.95 (tanh), 3.74 (exp)".into(),
    ]);
    t.row(&[
        "I-BERT [literature]".into(),
        "22 nm".into(),
        "2941".into(),
        "0.201".into(),
    ]);
    t.row(&[
        "NOVA (this model)".into(),
        "22 nm".into(),
        vs_paper(area_per_neuron, 898.75, 1),
        vs_paper(power_per_neuron, 0.046, 3),
    ]);
    t.print();

    println!(
        "\nShape check: NOVA < I-BERT < NACU on both axes — NOVA/I-BERT area ratio {:.2}x (paper {:.2}x).",
        2941.0 / area_per_neuron,
        2941.0 / 898.75
    );
}
