//! Parameter sweeps beyond the paper's fixed points: sequence length,
//! breakpoint budget (including 32 breakpoints on a widened 2-bit-tag
//! link), and the serial-vs-pipelined schedule.

use nova::engine::{evaluate, ApproximatorKind};
use nova::timeline::{layer_timeline, pipelined_cycles, serial_cycles};
use nova::Mapper;
use nova_accel::AcceleratorConfig;
use nova_approx::{fit, metrics, Activation};
use nova_bench::table::Table;
use nova_noc::LinkConfig;
use nova_synth::TechModel;
use nova_workloads::bert::BertConfig;

fn main() {
    seq_len_sweep();
    breakpoint_sweep();
    schedule_sweep();
}

/// Energy vs sequence length: softmax's quadratic query count at work.
fn seq_len_sweep() {
    let host = AcceleratorConfig::tpu_v4_like();
    let model = BertConfig::bert_mini();
    let mut t = Table::new(
        "Sweep — approximator energy vs sequence length (BERT-mini on TPU v4-like)",
        &[
            "Seq len",
            "NL queries",
            "NOVA (mJ)",
            "Per-core LUT (mJ)",
            "NOVA overhead (%)",
        ],
    );
    for seq in [64usize, 128, 256, 512, 1024, 2048] {
        let nova =
            evaluate(&host, &model, seq, ApproximatorKind::NovaNoc).expect("positive seq len");
        let pc =
            evaluate(&host, &model, seq, ApproximatorKind::PerCoreLut).expect("positive seq len");
        t.row(&[
            seq.to_string(),
            nova.nl_queries.to_string(),
            format!("{:.5}", nova.approximator_energy_mj),
            format!("{:.5}", pc.approximator_energy_mj),
            format!("{:.2}", nova.energy_overhead_pct),
        ]);
    }
    t.print();
}

/// Accuracy vs NoC clock trade-off across breakpoint budgets. 32
/// breakpoints exceed the paper's 1-bit tag, so the sweep widens the tag
/// field to 2 bits (a 259-bit link) — the hardware-growth direction the
/// paper's §IV implies.
fn breakpoint_sweep() {
    let tech = TechModel::cmos22();
    let mut t = Table::new(
        "Sweep — breakpoints vs accuracy and NoC clock (GELU, REACT 240 MHz)",
        &[
            "Breakpoints",
            "Link",
            "Max |error|",
            "Flits/lookup",
            "NoC clock",
        ],
    );
    for (bp, link) in [
        (4usize, LinkConfig::paper()),
        (8, LinkConfig::paper()),
        (16, LinkConfig::paper()),
        (32, LinkConfig::new(8, 2).expect("valid link")),
    ] {
        let pwl = fit::fit_activation(Activation::Gelu, bp, fit::BreakpointStrategy::GreedyRefine)
            .expect("fit succeeds");
        let err = metrics::compare(
            &|x| Activation::Gelu.eval(x),
            &|x| pwl.eval(x),
            Activation::Gelu.domain(),
            3000,
        )
        .max_abs;
        let plan = Mapper::paper_default()
            .with_segments(bp)
            .with_link(link)
            .compile(&[Activation::Gelu], &tech, 10, 0.24, 1.0)
            .expect("mapping succeeds");
        t.row(&[
            bp.to_string(),
            format!("{} bits", link.link_bits()),
            format!("{err:.2e}"),
            plan.mappings[0].schedule.flit_count().to_string(),
            format!(
                "{}x = {:.2} GHz",
                plan.noc_clock_multiplier, plan.noc_clock_ghz
            ),
        ]);
    }
    t.print();
    println!(
        "  Doubling breakpoints roughly quarters the PWL error (O(1/n²)) but\n\
         raises the NoC clock multiplier — 16 is the paper's sweet spot."
    );
}

/// Serial vs double-buffered layer schedules on every host.
fn schedule_sweep() {
    let model = BertConfig::roberta_base();
    let mut t = Table::new(
        "Sweep — serial vs pipelined layer schedule (RoBERTa)",
        &[
            "Host",
            "Seq",
            "Serial cycles",
            "Pipelined cycles",
            "Speedup",
        ],
    );
    for host in [
        AcceleratorConfig::react(),
        AcceleratorConfig::tpu_v3_like(),
        AcceleratorConfig::tpu_v4_like(),
    ] {
        let seq = host.default_seq_len;
        let phases = layer_timeline(&host, &model, seq, ApproximatorKind::NovaNoc);
        let serial = serial_cycles(&phases);
        let pipelined = pipelined_cycles(&phases);
        t.row(&[
            host.name.to_string(),
            seq.to_string(),
            serial.to_string(),
            pipelined.to_string(),
            format!("{:.2}x", serial as f64 / pipelined as f64),
        ]);
    }
    t.print();
    println!(
        "  Overlapping the vector unit with the next matmul hides most of the\n\
         non-linear latency — possible precisely because NOVA's lookups are\n\
         single-cycle and its table switches are free."
    );
}
