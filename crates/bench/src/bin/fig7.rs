//! Fig 7: NOVA router power vs number of neurons mapped per router,
//! against the LUT baselines (1.4 GHz accelerator clock; NOVA's NoC at
//! 2×).

use nova_bench::table::{bar_chart, Table};
use nova_synth::{units, LutSharing, TechModel};

fn main() {
    let tech = TechModel::cmos22();
    let (core, noc) = (1.4, 2.8);
    let mut t = Table::new(
        "Fig 7 — router/vector-unit power vs neurons per router (16 breakpoints, 1.4 GHz)",
        &[
            "Neurons/router",
            "NOVA router (mW)",
            "Per-neuron LUT (mW)",
            "Per-core LUT (mW)",
            "PN/NOVA",
            "PC/NOVA",
        ],
    );
    let mut series: Vec<(String, f64, f64, f64)> = Vec::new();
    for neurons in [16usize, 32, 64, 128, 256] {
        // Router pitch scales with the host core's footprint (a 16-neuron
        // NVDLA core is ~0.3 mm across; a 128-neuron MXU ~1 mm).
        let pitch = (neurons as f64 / 128.0).max(0.2);
        let nova = units::nova_router(&tech, neurons, 16, pitch).power_mw(&tech, core, noc, 1.0);
        // (collected for the bar chart below)
        let pn =
            units::lut_unit(&tech, neurons, 16, LutSharing::PerNeuron).power_mw(&tech, core, 1.0);
        let pc =
            units::lut_unit(&tech, neurons, 16, LutSharing::PerCore).power_mw(&tech, core, 1.0);
        t.row(&[
            neurons.to_string(),
            format!("{nova:.2}"),
            format!("{pn:.2}"),
            format!("{pc:.2}"),
            format!("{:.2}x", pn / nova),
            format!("{:.2}x", pc / nova),
        ]);
        series.push((neurons.to_string(), nova, pn, pc));
    }
    t.print();
    let xs: Vec<String> = series.iter().map(|s| s.0.clone()).collect();
    bar_chart(
        "Fig 7 (mW)",
        &xs,
        &[
            ("NOVA", series.iter().map(|s| s.1).collect()),
            ("per-neuron LUT", series.iter().map(|s| s.2).collect()),
            ("per-core LUT", series.iter().map(|s| s.3).collect()),
        ],
        46,
    );
    println!(
        "\nShape check (paper): NOVA wins despite the 2x NoC clock (wires replace\n\
         SRAM reads); the per-core LUT is *worst* on power — its multi-ported\n\
         bank pays per-port bitline energy for every neuron, every cycle.\n\
         Paper reports 16.56x average power gain."
    );
}
