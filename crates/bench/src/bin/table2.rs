//! Table II: accelerator parameters integrated with NOVA.

use nova_accel::AcceleratorConfig;
use nova_bench::table::Table;

fn main() {
    let mut t = Table::new(
        "Table II — accelerator parameters integrated with NOVA",
        &[
            "Hardware Accelerator",
            "NOVA routers",
            "Neurons per router",
            "On-chip memory",
            "Frequency (0.8V) [MHz]",
            "Router pitch [mm]",
            "Eval seq len",
        ],
    );
    for cfg in AcceleratorConfig::table2() {
        let mem = if cfg.onchip_memory_kb >= 1024 {
            format!("{} MB", cfg.onchip_memory_kb / 1024)
        } else {
            format!("{} kB", cfg.onchip_memory_kb)
        };
        t.row(&[
            cfg.name.to_string(),
            cfg.nova_routers.to_string(),
            cfg.neurons_per_router.to_string(),
            mem,
            format!("{:.0}", cfg.frequency_mhz),
            format!("{:.1}", cfg.router_pitch_mm),
            cfg.default_seq_len.to_string(),
        ]);
    }
    t.print();
}
